"""Section 4.4.2 case study: the multi-agent FSM repairing s453.

s453 scales each element by a scalar induction variable (``s += 2`` every
iteration).  A naive vectorization initializes the induction vector as if a
single scalar update covered all eight lanes — checksum testing catches the
mismatch, the tester agent feeds the discrepancy back, and the vectorizer
agent produces the corrected ``_mm256_setr_epi32(2,4,...,16)`` form on a
later attempt.  This script forces that first faulty attempt so the repair
loop is always exercised.
"""

from __future__ import annotations

from repro.agents.fsm import FSMConfig, VectorizationFSM
from repro.llm.faults import FaultKind, FaultProfile
from repro.llm.synthetic import SyntheticLLM, SyntheticLLMConfig
from repro.tsvc import load_kernel


def make_llm_with_forced_induction_bug() -> SyntheticLLM:
    """An LLM configuration that (almost) always starts with the s453 bug."""
    profile = FaultProfile(
        base_fault_rate=1.0,
        with_dependence_info_rate=1.0,
        with_feedback_rate=0.05,
        kind_weights={FaultKind.NAIVE_INDUCTION: 1.0},
    )
    return SyntheticLLM(SyntheticLLMConfig(seed=7, fault_profile=profile))


def main() -> int:
    kernel = load_kernel("s453")
    print("Scalar s453:")
    print(kernel.source.strip())
    print()

    llm = make_llm_with_forced_induction_bug()
    fsm = VectorizationFSM(llm, kernel.name, kernel.source, FSMConfig(max_attempts=10))
    result = fsm.run()

    for record in result.history:
        print(f"--- attempt {record.attempt}: {record.outcome} "
              f"(generation mode: {record.llm_annotations.get('mode', '?')}"
              f"{', fault: ' + record.llm_annotations['fault'] if 'fault' in record.llm_annotations else ''}) ---")
    print()
    if result.accepted:
        print(f"Repaired after {result.attempts} attempts. Final vectorized code:")
        print(result.final_code.strip())
    else:
        print("The FSM did not converge within its attempt budget.")
    return 0 if result.accepted else 1


if __name__ == "__main__":
    raise SystemExit(main())
