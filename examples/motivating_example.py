"""The paper's Figure 1 motivating example, reproduced end to end.

s212 has a spurious backward dependence that makes GCC, Clang and ICC refuse
to vectorize it (or vectorize it poorly); the LLM-generated AVX2 code
pre-loads `a[i+1]` before storing `a[i]` and wins.  This script reproduces
Figure 1(c): the runtime speedup of the LLM code over each compiler.
"""

from __future__ import annotations

from repro.analysis.features import analyze_kernel
from repro.compilers import all_compilers
from repro.perf import measure_kernel
from repro.reporting import render_table
from repro.tsvc import load_kernel
from repro.vectorizer import vectorize_kernel


def main() -> int:
    kernel = load_kernel("s212")
    features = analyze_kernel(kernel.function)

    print("Why the compilers struggle (dependence analysis report):")
    print(features.dependence_summary())
    print()

    print("Baseline compiler decisions for s212:")
    rows = []
    for compiler in all_compilers():
        decision = compiler.decide(features)
        rows.append({"Compiler": compiler.name, "Vectorizes?": decision.vectorized,
                     "Reason": decision.reason})
    print(render_table(rows))

    result = vectorize_kernel(kernel.function)
    assert result is not None, "the rule-based vectorizer should handle s212"
    print("LLM-style vectorized code (AVX2 intrinsics + scalar epilogue):")
    print(result.source.strip())
    print()

    performance = measure_kernel("s212", kernel.source, result.source)
    rows = [{"Compiler": record.compiler,
             "Baseline vectorized?": record.baseline_vectorized,
             "Speedup of LLM code": f"{record.speedup:.2f}x"}
            for record in performance.records]
    print(render_table(rows, title="Figure 1(c): runtime speedup of the LLM-vectorized s212"))
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
