"""Quickstart: vectorize one TSVC kernel end to end.

Runs the full LLM-Vectorizer pipeline on the paper's motivating kernel s212:
the multi-agent FSM drives the (synthetic) LLM to a checksum-plausible AVX2
candidate, Algorithm 1 then formally verifies it, and the cycle simulator
reports the speedup over the three baseline compilers.

Run with:  python examples/quickstart.py [kernel-name]
"""

from __future__ import annotations

import sys

from repro.perf import measure_kernel, speedups_for_kernel
from repro.pipeline import LLMVectorizer
from repro.tsvc import load_kernel


def main() -> int:
    kernel_name = sys.argv[1] if len(sys.argv) > 1 else "s212"
    kernel = load_kernel(kernel_name)
    print(f"=== scalar kernel {kernel.name} ({kernel.category}) ===")
    print(kernel.source.strip())
    print()

    tool = LLMVectorizer()
    result = tool.vectorize(kernel)
    print(f"FSM attempts: {result.fsm_result.attempts}, "
          f"LLM invocations: {result.fsm_result.llm_invocations}, "
          f"plausible: {result.plausible}")
    if not result.plausible or result.vectorized_code is None:
        print("No plausible vectorization was found within the attempt budget.")
        return 1

    print("\n=== vectorized candidate ===")
    print(result.vectorized_code.strip())
    print(f"\nFormal verification verdict: {result.verdict.value}"
          f" (stage: {result.pipeline_report.deciding_stage if result.pipeline_report else 'n/a'})")

    performance = measure_kernel(kernel.name, kernel.source, result.vectorized_code)
    print("\nEstimated speedup of the LLM-vectorized code:")
    for compiler, speedup in speedups_for_kernel(performance).items():
        print(f"  vs {compiler:<6} {speedup:5.2f}x")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
