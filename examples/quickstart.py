"""Quickstart: vectorize TSVC kernels end to end through the campaign engine.

Runs the full LLM-Vectorizer pipeline — the multi-agent FSM drives the
(synthetic) LLM to a checksum-plausible SIMD candidate, Algorithm 1 formally
verifies it — on one or more kernels via the campaign engine: kernels fan
out over a process pool, results land in a content-addressed cache, and the
run ends with the campaign summary (verdicts, wall clock, cache hit-rate,
throughput).  The cycle simulator then reports the speedup of the first
kernel over the three baseline compilers.

Run with:  python examples/quickstart.py [kernel-name ...]

Everything this script needs is on the stable top-level surface
(``repro.__all__``) except the cycle-simulator extras.

Environment knobs: REPRO_WORKERS (pool width, default 0 = one per CPU),
REPRO_STORE (JSONL result store for resumable runs), REPRO_TARGET
(target ISA: sse4 / neon / sve128 / sve256 (alias sve) / avx2 / avx512;
default avx2, the paper's setup),
REPRO_EPILOGUE (tail strategy: scalar / masked / predicated; default
scalar — predicated needs an SVE target),
REPRO_SHARD ("i/n" runs only the i-th of n disjoint suite shards — run each
shard on its own machine with its own REPRO_STORE, then merge the stores
with repro.merge_stores / repro.report_from_store).
"""

from __future__ import annotations

import os
import sys

from repro import (
    CampaignConfig,
    LLMVectorizer,
    load_kernel,
    plan_cache_stats,
    render_campaign_report,
)
from repro.perf import measure_kernel, speedups_for_kernel


def main() -> int:
    names = sys.argv[1:] or ["s212"]
    kernel = load_kernel(names[0])
    print(f"=== scalar kernel {kernel.name} ({kernel.category}) ===")
    print(kernel.source.strip())
    print()

    target = os.environ.get("REPRO_TARGET", "avx2").strip() or "avx2"
    shard = os.environ.get("REPRO_SHARD", "").strip() or None
    config = CampaignConfig(
        workers=int(os.environ.get("REPRO_WORKERS", "0")),
        store_path=os.environ.get("REPRO_STORE", "").strip() or None,
        target=target,
        epilogue=os.environ.get("REPRO_EPILOGUE", "scalar").strip() or "scalar",
        shard=shard,
    )
    tool = LLMVectorizer()
    report = tool.vectorize_suite(names, campaign=config)
    print(render_campaign_report(report))
    cache = plan_cache_stats.as_dict()
    if any(cache.values()):
        print(f"plan cache: {cache['parse_hits']} parse hits / "
              f"{cache['parse_misses']} misses, "
              f"{cache['vectorize_hits']} codegen hits / "
              f"{cache['vectorize_misses']} misses")

    if kernel.name not in report.by_kernel():
        print(f"{kernel.name} is outside shard {shard}; nothing more to show here.")
        return 0
    result = report.by_kernel()[kernel.name]
    if result["verdict"] == "error":
        print(f"{kernel.name} failed with an error (recorded, campaign continued):")
        print(f"  {result['error']}")
        return 1
    print(f"FSM attempts: {result['attempts']}, "
          f"LLM invocations: {result['llm_invocations']}, "
          f"plausible: {result['plausible']}")
    if not result["plausible"] or not result["final_code"]:
        print("No plausible vectorization was found within the attempt budget.")
        return 1

    print("\n=== vectorized candidate ===")
    print(result["final_code"].strip())
    print(f"\nFormal verification verdict: {result['verdict']}"
          f" (stage: {result['deciding_stage'] or 'n/a'})")

    performance = measure_kernel(kernel.name, kernel.source, result["final_code"],
                                 target=target)
    print("\nEstimated speedup of the LLM-vectorized code:")
    for compiler, speedup in speedups_for_kernel(performance).items():
        print(f"  vs {compiler:<6} {speedup:5.2f}x")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
