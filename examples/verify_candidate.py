"""Formal verification walk-through: catching a bug that testing misses.

This example mirrors the paper's Section 3 motivation: a vectorized candidate
that passes checksum-based testing can still be wrong.  We take a correct
vectorization of the guarded kernel `vif`, inject the "relaxed comparison"
fault (strict ``>`` silently becomes ``>=``), and show that random testing
keeps calling it plausible while bounded translation validation refutes it.
"""

from __future__ import annotations

import random

from repro.interp.checksum import checksum_testing
from repro.llm.faults import FaultKind, apply_fault
from repro.pipeline import EquivalencePipeline
from repro.tsvc import load_kernel
from repro.vectorizer import vectorize_kernel


def main() -> int:
    kernel = load_kernel("vif")
    correct = vectorize_kernel(kernel.function)
    assert correct is not None
    buggy_source = apply_fault(correct.source, FaultKind.CMP_OFF_BY_ONE, random.Random(1))

    print("Checksum-based testing of the buggy candidate:")
    report = checksum_testing(kernel.source, buggy_source, seed=5)
    print(f"  outcome: {report.outcome.value} (after {report.tests_run} random tests)")
    print()

    pipeline = EquivalencePipeline()
    print("Algorithm 1 (checksum, then bounded translation validation):")
    result = pipeline.check_equivalence(kernel.source, buggy_source)
    for stage, outcome in result.stage_outcomes.items():
        print(f"  {stage:18s} -> {outcome}")
    print(f"final verdict: {result.verdict.value} (decided by {result.deciding_stage})")
    print(f"detail: {result.detail}")

    print()
    print("The same pipeline on the correct candidate:")
    result_ok = pipeline.check_equivalence(kernel.source, correct.source)
    print(f"final verdict: {result_ok.verdict.value} (decided by {result_ok.deciding_stage})")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
