"""Table 3: the equivalence-checking funnel over plausible vectorizations.

Paper numbers (149 tests): Checksum 0/24/125, Alive2 26/17/82, C-Unroll
28/18/36, Splitting 3/2/31, All 57/61/31 (Equiv / Not Equiv / Inconclusive).
The shape to reproduce: each successive technique settles a further slice of
the cases the previous one left inconclusive, and a non-trivial fraction of
checksum-plausible candidates is formally verified while some remain
inconclusive.
"""

from repro.reporting import render_table


def test_table3_verification_funnel(benchmark, verification_funnel):
    def build_rows():
        return verification_funnel.rows()

    rows = benchmark.pedantic(build_rows, iterations=1, rounds=1)
    print()
    print(render_table(rows, title="Table 3: Evaluation of vectorized code using equivalence checking"))

    by_name = {row["Techniques"]: row for row in rows}
    alive = by_name["Alive2"]
    c_unroll = by_name["C-Unroll"]
    splitting = by_name["Splitting"]
    total = by_name["All"]

    # Funnel structure: each stage only sees what the previous stage left open.
    assert c_unroll["Total"] == alive["Inconcl"]
    assert splitting["Total"] == c_unroll["Inconcl"]
    # The out-of-the-box technique verifies a substantial set...
    assert alive["Equiv"] > 0
    # ...and the domain-specific optimizations settle additional cases
    # (the paper's central claim for Section 3.2/3.3).
    assert (c_unroll["Equiv"] + c_unroll["Not Equiv"] + splitting["Equiv"] + splitting["Not Equiv"]) >= 0
    # Overall: verified + refuted + inconclusive partitions the dataset.
    assert total["Equiv"] + total["Not Equiv"] + total["Inconcl"] == total["Total"]
    assert total["Equiv"] > 0
