"""Section 4.4: evaluation of the multi-agent FSM.

Two paper results are regenerated:

* 4.4.1 — with the FSM (dependence-analysis context in the prompt), more
  kernels reach a plausible vectorization with a *single* LLM invocation than
  with a bare one-shot completion (72 -> 96 in the paper);
* 4.4.2 — the FSM solves most kernels within its ten-attempt budget and the
  feedback loop repairs some initially wrong candidates (92 solved, nine
  repaired, at most seven attempts in the paper).
"""

import os

from repro.experiments import run_fsm_evaluation
from repro.llm.synthetic import SyntheticLLM, SyntheticLLMConfig
from repro.reporting import render_table


def test_sec44_fsm_evaluation(benchmark, checksum_evaluation, bench_kernels):
    subset_env = os.environ.get("REPRO_BENCH_FSM_KERNELS", "")
    kernels = [k.strip() for k in subset_env.split(",") if k.strip()] or bench_kernels

    def evaluate():
        llm = SyntheticLLM(SyntheticLLMConfig(seed=77))
        return run_fsm_evaluation(kernels=kernels, llm=llm)

    evaluation = benchmark.pedantic(evaluate, iterations=1, rounds=1)
    summary = evaluation.summary()

    one_shot_plausible = sum(1 for r in checksum_evaluation.records if r.plausible_within(1))
    rows = [
        {"Metric": "Plausible with one bare completion (k=1)", "Value": one_shot_plausible},
        {"Metric": "Plausible with one LLM invocation under the FSM",
         "Value": summary["plausible_with_one_invocation"]},
        {"Metric": "Solved within the 10-attempt budget", "Value": summary["solved_within_budget"]},
        {"Metric": "Repaired via the feedback loop (needed >1 attempt)",
         "Value": summary["repaired_via_feedback"]},
        {"Metric": "Maximum attempts for a solved kernel", "Value": summary["max_attempts"]},
    ]
    print()
    print(render_table(rows, title="Section 4.4: multi-agent FSM evaluation"))

    # Shape: the FSM's dependence-analysis context beats the bare completion,
    # the feedback loop repairs at least one kernel, and the budget is respected.
    assert summary["plausible_with_one_invocation"] >= one_shot_plausible
    assert summary["solved_within_budget"] >= summary["plausible_with_one_invocation"]
    assert summary["repaired_via_feedback"] >= 1
    assert summary["max_attempts"] <= 10
