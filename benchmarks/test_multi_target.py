"""Multi-target campaign benchmark: one invocation, one cache, N ISAs.

The ROADMAP's "multi-backend targets as parallel campaigns over the same
cache" milestone, made runnable: the full pipeline (FSM -> checksum ->
formal verification) fans out per target ISA over a representative kernel
slice, every per-ISA campaign sharing the session's content-addressed
cache.  ``REPRO_BENCH_TARGETS`` selects the ISAs (default: all of them),
``REPRO_BENCH_KERNELS`` widens the kernel slice to the full suite.
"""

from __future__ import annotations

import os

from repro.reporting.campaign import render_multi_target_summary

#: A representative slice across the paper's categories (linear, reduction,
#: control flow, induction, dependence-rejected) keeps the default tier-1
#: runtime modest; REPRO_BENCH_KERNELS overrides it with any subset.
DEFAULT_KERNELS = [
    "s000", "s1111", "s212", "s251", "s271", "s453",
    "vsumr", "vdotr", "vif", "s321", "s116",
]


def _campaign_kernels() -> list[str]:
    names = os.environ.get("REPRO_BENCH_KERNELS", "").strip()
    if not names:
        return DEFAULT_KERNELS
    return [name.strip() for name in names.split(",") if name.strip()]


def test_multi_target_campaign_shares_one_cache(bench_campaign, bench_targets):
    kernels = _campaign_kernels()
    reports = bench_campaign.run_multi_target(kernels, targets=bench_targets)

    assert list(reports) == bench_targets
    for target, report in reports.items():
        assert report.summary.target == target
        assert report.summary.kernels == len(kernels)
        # Every kernel reaches a verdict on every target.
        assert all("verdict" in record.result for record in report.records)

    # The per-ISA campaigns must stay disjoint in the shared cache: records
    # for the same kernel on different targets never share a cache key.
    for kernel in kernels:
        keys = {next(r.key for r in reports[target].records if r.kernel == kernel)
                for target in bench_targets}
        assert len(keys) == len(bench_targets)

    print()
    print(render_multi_target_summary(reports))


def test_multi_target_rerun_is_fully_cached(bench_campaign, bench_targets):
    kernels = _campaign_kernels()
    reports = bench_campaign.run_multi_target(kernels, targets=bench_targets)
    for report in reports.values():
        assert report.summary.executed == 0
        assert report.summary.cache_hit_rate == 1.0
