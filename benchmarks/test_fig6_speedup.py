"""Figure 6: runtime speedup of the formally verified vectorizations, by category.

The paper reports speedups between 1.1x and 9.4x over the three compilers for
the 57 verified kernels, grouped into six categories.  The shape to
reproduce: dependence-related categories give the LLM its largest wins, the
reduction and naively-vectorizable categories give small (or no) wins, and
ICC is consistently the hardest baseline to beat.
"""

from repro.analysis.features import (
    CATEGORY_DEPENDENCE,
    CATEGORY_NAIVE,
    CATEGORY_REDUCTION,
)
from repro.experiments import run_performance_evaluation
from repro.reporting import render_table


def test_fig6_speedup_by_category(benchmark, verification_funnel, checksum_evaluation):
    verified_codes = {
        name: code
        for name, code in checksum_evaluation.first_plausible_codes().items()
        if name in set(verification_funnel.verified_kernels)
    }
    assert verified_codes, "the verification funnel produced no verified kernels"

    def evaluate():
        return run_performance_evaluation(verified_codes, trip_count=256)

    evaluation = benchmark.pedantic(evaluate, iterations=1, rounds=1)
    print()
    print(render_table(evaluation.speedup_rows(),
                       title="Figure 6 (per kernel): speedup of verified LLM vectorizations"))
    print(render_table(evaluation.category_summary(),
                       title="Figure 6 (category geomean): speedup by category"))
    low, high = evaluation.speedup_range()
    print(f"speedup range across all verified kernels and compilers: {low:.2f}x .. {high:.2f}x")

    summary = {row["Category"]: row for row in evaluation.category_summary()}
    # ICC is the hardest baseline in every populated category.
    for row in summary.values():
        assert row["vs ICC"] <= max(row["vs GCC"], row["vs Clang"]) + 1e-6
    # Dependence kernels are where the LLM wins big; naive/reduction kernels much less so.
    if CATEGORY_DEPENDENCE in summary and CATEGORY_NAIVE in summary:
        assert summary[CATEGORY_DEPENDENCE]["vs GCC"] > summary[CATEGORY_NAIVE]["vs GCC"]
    if CATEGORY_REDUCTION in summary:
        assert summary[CATEGORY_REDUCTION]["vs ICC"] < 2.5
    assert high > 1.5
