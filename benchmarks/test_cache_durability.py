"""Benchmark: the fsync cost of the persistent result cache.

The seed cache fsync'd every entry — ~600 fsyncs for a 149-kernel x
4-target campaign — and that durability is now a knob
(``ResultCache(flush_interval=N)``; the campaign engine flushes at the end
of every ``run_tasks`` call).  This benchmark measures the per-put cost of
the durable default against batched and end-of-run syncing, and verifies
that every mode persists every entry.
"""

import time

from repro.pipeline import ResultCache, content_key

ENTRIES = 400
#: A payload the size of a realistic per-kernel verdict record.
VALUE = {"kernel": "s000", "verdict": "equivalent", "attempts": 3,
         "final_code_sha": "0" * 64, "stage_outcomes": {"Alive2": "equivalent"}}


def _time_puts(path, flush_interval: int) -> float:
    cache = ResultCache(path, flush_interval=flush_interval)
    started = time.perf_counter()
    for i in range(ENTRIES):
        cache.put(content_key(f"key-{i}"), VALUE)
    cache.flush()
    elapsed = time.perf_counter() - started
    cache.close()
    return elapsed


def test_batched_fsync_beats_per_entry_fsync(tmp_path):
    durable = _time_puts(tmp_path / "durable.jsonl", flush_interval=1)
    batched = _time_puts(tmp_path / "batched.jsonl", flush_interval=64)
    end_of_run = _time_puts(tmp_path / "end.jsonl", flush_interval=0)

    for name in ("durable", "batched", "end"):
        reloaded = ResultCache(tmp_path / f"{name}.jsonl")
        assert len(reloaded) == ENTRIES, name
        assert reloaded.peek(content_key("key-7")) == VALUE

    per_put = {"flush_interval=1": durable / ENTRIES,
               "flush_interval=64": batched / ENTRIES,
               "flush_interval=0": end_of_run / ENTRIES}
    print("\ncache put cost (s/entry): "
          + ", ".join(f"{k}: {v:.2e}" for k, v in per_put.items()))
    # Timing asserts flake on fast tmpfs, so this only guards the absurd:
    # batching must never be an order of magnitude *slower* than per-entry.
    assert batched < durable * 10
    assert end_of_run < durable * 10
