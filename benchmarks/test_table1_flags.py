"""Table 1: compiler versions and optimization flags.

Regenerates the configuration table (GCC / Clang / ICC, unvectorized vs
vectorized flag sets) from the simulated-compiler definitions.
"""

from repro.compilers import COMPILER_FLAG_TABLE, all_compilers
from repro.reporting import render_table


def test_table1_compiler_flags(benchmark):
    def build():
        return [
            {
                "Compiler": entry.name,
                "Version": entry.version,
                "Unvectorized": entry.unvectorized_flags,
                "Vectorized": entry.vectorized_flags,
            }
            for entry in COMPILER_FLAG_TABLE
        ]

    rows = benchmark(build)
    print()
    print(render_table(rows, title="Table 1: Compiler Optimization Flags and Version Details"))
    assert {row["Compiler"] for row in rows} == {c.name for c in all_compilers()}
    assert len(rows) == 3
