"""Figure 5: pass@k as a function of k.

The paper's curve rises steeply up to k around 20 and saturates near k = 50.
The benchmark recomputes the unbiased pass@k estimate from the same sampled
completions used for Table 2 and checks the curve's monotone, saturating
shape.

The estimate is only meaningful for k well below the sampling budget n: at
k = n the estimator ``1 - C(n-c, k)/C(n, k)`` degenerates to exactly 1.0 for
every kernel with a single plausible completion (``C(n-c, n) = 0``), which
inflates the tail of the curve into a spurious late surge.  Chen et al. 2021
therefore always sample n strictly greater than the largest reported k
(n = 200 for pass@100); we follow suit and only evaluate k <= n/2.
"""

from repro.reporting import render_pass_at_k_curve


def test_fig5_pass_at_k_curve(benchmark, checksum_evaluation, bench_completions):
    ks = [k for k in (1, 2, 3, 4, 5, 10, 20, 30, 40, 50, 100) if k <= bench_completions // 2]

    def compute():
        return checksum_evaluation.pass_at_k(ks)

    curve = benchmark(compute)
    print()
    print(render_pass_at_k_curve(curve, title="Figure 5: pass@k of LLM-Vectorizer (checksum criterion)"))

    values = [curve[k] for k in ks]
    assert all(later >= earlier for earlier, later in zip(values, values[1:])), "pass@k must be monotone"
    assert curve[ks[-1]] > curve[ks[0]], "sampling more completions must help"
    # Saturation: the last quarter of the curve contributes little.
    if len(ks) >= 4:
        early_gain = curve[ks[len(ks) // 2]] - curve[ks[0]]
        late_gain = curve[ks[-1]] - curve[ks[len(ks) // 2]]
        assert late_gain <= early_gain + 1e-9
