"""CI perf gate: serial + parallel throughput floors plus the AVX2 golden pin.

Runs the standard 11-kernel vectorize suite serially on every target, then
a parallel-scaling sweep of the *full* TSVC suite (``--scale-workers``,
default 1/2/4/8, through the work-stealing batch dispatcher), appends every
fresh summary (with per-stage timings, batch counts, fleet plan-cache
stats, and this machine's CPU probe score) to ``BENCH_campaign.json``, and
fails when any of

- a target's serial kernels/sec drops more than ``--tolerance`` (default
  20%) below the machine-normalised floor for that (target, kernel-count)
  configuration,
- a scaling run's effective kernels/sec drops more than ``--tolerance``
  below the machine-normalised floor for its (target, workers,
  kernel-count) configuration,
- a fully-fresh run's solve-stage seconds rise more than ``--tolerance``
  above the machine-normalised solve floor for its configuration (the
  solver fast path must not regress),
- any scaling run's verdicts or final-code SHAs differ from the serial
  member of the sweep (parallel dispatch must be bit-identical), or
- the paper-default AVX2 campaign's verdicts or final-code SHAs drift from
  the golden record pinned in ``tests/test_sve.py``.

Floors are a machine-normalised ratchet: committed entries carry the
``machine_score`` CPU probe of the box that recorded them, and each floor
is scaled by (current score / recorded score) before the tolerance is
applied.  A uniformly slower container therefore doesn't read as a code
regression, while a genuine slowdown still does.  Entries recorded before
machine scoring (no ``machine_score`` key) are kept as history but no
longer gate.

Usage:  PYTHONPATH=src python benchmarks/perf_gate.py [--tolerance 0.2]
                  [--baseline BENCH_campaign.json] [--json BENCH_campaign.json]
                  [--scale-workers 1,2,4,8] [--scale-target avx2]

Exit status 0 on pass, 1 on regression or drift.
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parents[1]
sys.path.insert(0, str(REPO_ROOT / "benchmarks"))
sys.path.insert(0, str(REPO_ROOT / "tests"))

from test_multi_target import DEFAULT_KERNELS  # noqa: E402
from test_sve import AVX2_GOLDEN  # noqa: E402

from repro.perf.profile import machine_score  # noqa: E402
from repro.pipeline import CampaignConfig, CampaignRunner  # noqa: E402
from repro.reporting.campaign import write_bench_json  # noqa: E402
from repro.targets import ALL_TARGETS  # noqa: E402


def baseline_rates(path: Path) -> dict[tuple[str, int, int], tuple[float, float]]:
    """Best committed (kernels/sec, machine_score) per configuration.

    Keyed by (target, workers, kernel count): the 11-kernel serial smoke
    suite and the full-suite scaling sweep have incomparable inherent
    rates, so they ratchet independently.  Serial entries gate on the
    fresh-execution rate; parallel entries gate on the effective rate of
    fully-fresh runs (``executed == kernels``), matching the ``scaling``
    section ``write_bench_json`` derives.  Only entries carrying a
    ``machine_score`` participate — a rate without the recording machine's
    probe score cannot be normalised to this machine.
    """
    if not path.exists():
        return {}
    entries = json.loads(path.read_text(encoding="utf-8")).get("campaigns", [])
    best: dict[tuple[str, int, int], tuple[float, float]] = {}
    for entry in entries:
        target = entry.get("target")
        workers = entry.get("workers", 1)
        kernels = entry.get("kernels", 0)
        score = entry.get("machine_score")
        if (not target or not isinstance(workers, int) or workers < 1
                or not kernels or not isinstance(score, (int, float))
                or score <= 0):
            continue
        if workers == 1:
            rate = entry.get("kernels_per_second")
        else:
            fresh = entry.get("executed") == kernels
            rate = entry.get("effective_kernels_per_second") if fresh else None
        if not isinstance(rate, (int, float)):
            continue
        key = (target, workers, kernels)
        slot = best.get(key)
        # Compare on the machine-normalised rate so the slot holds the
        # genuinely best recorded run, not just the fastest recording box.
        if slot is None or float(rate) / float(score) > slot[0] / slot[1]:
            best[key] = (float(rate), float(score))
    return best


def baseline_solve_seconds(path: Path) -> dict[tuple[str, int, int], tuple[float, float]]:
    """Best committed (solve-stage seconds, machine_score) per configuration.

    Keyed like :func:`baseline_rates` — (target, workers, kernel count) —
    and restricted the same way: fully-fresh runs (``executed == kernels``)
    carrying a ``machine_score``.  The slot keeps the lowest
    machine-normalised solve time, so the solve stage ratchets downward the
    way throughput ratchets upward.  The gate script's phase order is
    deterministic, so each configuration's solve-cache warmth is identical
    across sessions and the comparison is like-for-like.
    """
    if not path.exists():
        return {}
    entries = json.loads(path.read_text(encoding="utf-8")).get("campaigns", [])
    best: dict[tuple[str, int, int], tuple[float, float]] = {}
    for entry in entries:
        target = entry.get("target")
        workers = entry.get("workers", 1)
        kernels = entry.get("kernels", 0)
        score = entry.get("machine_score")
        stages = entry.get("stage_seconds")
        if (not target or not isinstance(workers, int) or workers < 1
                or not kernels or entry.get("executed") != kernels
                or not isinstance(score, (int, float)) or score <= 0
                or not isinstance(stages, dict)):
            continue
        seconds = stages.get("solve")
        if not isinstance(seconds, (int, float)) or seconds < 0:
            continue
        key = (target, workers, kernels)
        slot = best.get(key)
        # Normalised solve time = seconds * score (a slower box is allowed
        # proportionally more wall clock); keep the lowest.
        if slot is None or float(seconds) * float(score) < slot[0] * slot[1]:
            best[key] = (float(seconds), float(score))
    return best


def signature(report) -> list[tuple]:
    """The bit-identity signature of a campaign: verdict + SHA per kernel."""
    return [(record.kernel,
             record.result.get("verdict"),
             record.result.get("final_code_sha"))
            for record in report.records]


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--baseline", type=Path,
                        default=REPO_ROOT / "BENCH_campaign.json")
    parser.add_argument("--json", type=Path,
                        default=REPO_ROOT / "BENCH_campaign.json",
                        help="file the fresh summaries are appended to")
    parser.add_argument("--tolerance", type=float, default=0.2,
                        help="allowed fractional throughput drop per entry")
    parser.add_argument("--scale-workers", default="1,2,4,8",
                        help="comma-separated worker counts for the full-suite "
                             "parallel-scaling sweep (empty disables it)")
    parser.add_argument("--scale-target", default="avx2",
                        help="target ISA the scaling sweep runs on")
    args = parser.parse_args()

    floors = baseline_rates(args.baseline)
    solve_floors = baseline_solve_seconds(args.baseline)
    score = machine_score()
    print(f"machine score: {score:.1f} (floors scale by current/recorded score)")
    failures: list[str] = []
    all_summaries = []

    def gate(kind: str, key: tuple[str, int, int], rate: float) -> str:
        """Apply one machine-normalised ratchet check; returns the suffix."""
        slot = floors.get(key)
        if slot is None:
            return "  (no scored baseline entry; recorded)"
        base_rate, base_score = slot
        scaled = base_rate * (score / base_score)
        minimum = scaled * (1.0 - args.tolerance)
        if rate < minimum:
            failures.append(
                f"{kind}: {rate:.1f} kernels/s is >{args.tolerance:.0%} below "
                f"the machine-normalised baseline {scaled:.1f} "
                f"(recorded {base_rate:.1f} at score {base_score:.1f})")
        return f"  floor {minimum:.1f} (normalised baseline {scaled:.1f})"

    def gate_solve(kind: str, key: tuple[str, int, int], summary) -> str:
        """The solve-stage ceiling: fresh runs must not regress the stage.

        Only fully-fresh runs gate (a cached run has no solve stage to
        measure); a missing baseline slot records without judging.  A
        half-second absolute grace rides on top of the fractional
        tolerance: sub-second solve stages are dominated by scheduling
        noise, and the ceiling exists to catch multi-second regressions.
        """
        if summary.executed != summary.kernels:
            return ""
        seconds = summary.stage_seconds.get("solve")
        slot = solve_floors.get(key)
        if slot is None or not isinstance(seconds, (int, float)):
            return ""
        base_seconds, base_score = slot
        scaled = base_seconds * (base_score / score)
        maximum = scaled * (1.0 + args.tolerance) + 0.5
        if seconds > maximum:
            failures.append(
                f"{kind}: solve stage took {seconds:.2f}s, >{args.tolerance:.0%} "
                f"above the machine-normalised baseline {scaled:.2f}s "
                f"(recorded {base_seconds:.2f}s at score {base_score:.1f})")
        return f"  solve {seconds:.2f}s (ceiling {maximum:.2f}s)"

    # Phase 1: the serial per-target ratchet on the 11-kernel suite.
    targets = [isa.name for isa in ALL_TARGETS]
    runner = CampaignRunner(CampaignConfig(workers=1))
    reports = runner.run_multi_target(DEFAULT_KERNELS, targets=targets)
    all_summaries.extend(runner.summaries)

    for target, report in reports.items():
        summary = report.summary
        line = (f"{target:<8} w=1  {summary.kernels_per_second:8.1f} kernels/s "
                f"(stages: {sum(summary.stage_seconds.values()):.3f}s profiled)")
        line += gate(target, (target, 1, summary.kernels),
                     summary.kernels_per_second)
        line += gate_solve(f"{target} solve", (target, 1, summary.kernels), summary)
        print(line)

    # Phase 2: the parallel-scaling sweep — full suite, one fresh runner per
    # worker count, every run bit-identical to the sweep's serial member.
    scale_workers = [int(w) for w in args.scale_workers.split(",") if w.strip()]
    reference_signature = None
    for workers in scale_workers:
        scale_runner = CampaignRunner(CampaignConfig(workers=workers))
        report = scale_runner.run(target=args.scale_target)
        all_summaries.extend(scale_runner.summaries)
        summary = report.summary
        sig = signature(report)
        if reference_signature is None:
            reference_signature = sig
        elif sig != reference_signature:
            diffs = [a[0] for a, b in zip(reference_signature, sig) if a != b]
            failures.append(
                f"scaling: workers={workers} verdicts/SHAs differ from the "
                f"serial sweep member on {diffs[:5]}")
        rate = summary.throughput.effective_rate
        line = (f"{args.scale_target:<8} w={workers:<2} {rate:8.1f} kernels/s "
                f"effective ({summary.kernels} kernels, "
                f"{summary.batches or 'no'} batches, "
                f"batch_size={summary.batch_size})")
        line += gate(f"{args.scale_target} workers={workers}",
                     (args.scale_target, workers, summary.kernels), rate)
        line += gate_solve(f"{args.scale_target} workers={workers} solve",
                           (args.scale_target, workers, summary.kernels), summary)
        print(line)

    write_bench_json(all_summaries, args.json, machine_score=score)

    # Phase 3: the verdict pin — the golden kernels are a superset check run
    # on AVX2 alone, with the exact seed campaign config.
    golden_kernels = [kernel for kernel, _, _ in AVX2_GOLDEN]
    golden_report = CampaignRunner(CampaignConfig(workers=1)).run(golden_kernels)
    observed = signature(golden_report)
    for want, got in zip(AVX2_GOLDEN, observed):
        if want != got:
            failures.append(f"AVX2 drift on {want[0]}: expected {want[1:]}, "
                            f"got {got[1:]}")
    if len(observed) != len(AVX2_GOLDEN):
        failures.append(f"AVX2 golden campaign ran {len(observed)} kernels, "
                        f"expected {len(AVX2_GOLDEN)}")

    if failures:
        print("\nPERF GATE FAILED:")
        for failure in failures:
            print(f"  - {failure}")
        return 1
    print(f"\nperf gate passed: {len(reports)} targets and "
          f"{len(scale_workers)} scaling points within {args.tolerance:.0%} "
          f"of baseline, parallel runs and AVX2 verdicts bit-for-bit")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
