"""CI perf gate: throughput floor plus the AVX2 golden-verdict pin.

Runs the standard 11-kernel vectorize suite serially on every target,
appends the fresh summaries (with their per-stage timing breakdown) to
``BENCH_campaign.json``, and fails when either

- any target's kernels/sec drops more than ``--tolerance`` (default 20%)
  below the best committed baseline entry for that target, or
- the paper-default AVX2 campaign's verdicts or final-code SHAs drift
  from the golden record pinned in ``tests/test_sve.py``.

Usage:  PYTHONPATH=src python benchmarks/perf_gate.py [--tolerance 0.2]
                  [--baseline BENCH_campaign.json] [--json BENCH_campaign.json]

Exit status 0 on pass, 1 on regression or drift.
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parents[1]
sys.path.insert(0, str(REPO_ROOT / "benchmarks"))
sys.path.insert(0, str(REPO_ROOT / "tests"))

from test_multi_target import DEFAULT_KERNELS  # noqa: E402
from test_sve import AVX2_GOLDEN  # noqa: E402

from repro.pipeline import CampaignConfig, CampaignRunner  # noqa: E402
from repro.reporting.campaign import write_bench_json  # noqa: E402
from repro.targets import ALL_TARGETS  # noqa: E402


def baseline_rates(path: Path) -> dict[str, float]:
    """Best committed kernels/sec per target (the ratchet to regress against)."""
    if not path.exists():
        return {}
    entries = json.loads(path.read_text(encoding="utf-8")).get("campaigns", [])
    best: dict[str, float] = {}
    for entry in entries:
        target = entry.get("target")
        rate = entry.get("kernels_per_second")
        if not target or not isinstance(rate, (int, float)):
            continue
        best[target] = max(best.get(target, 0.0), float(rate))
    return best


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--baseline", type=Path,
                        default=REPO_ROOT / "BENCH_campaign.json")
    parser.add_argument("--json", type=Path,
                        default=REPO_ROOT / "BENCH_campaign.json",
                        help="file the fresh summaries are appended to")
    parser.add_argument("--tolerance", type=float, default=0.2,
                        help="allowed fractional throughput drop per target")
    args = parser.parse_args()

    floors = baseline_rates(args.baseline)
    targets = [isa.name for isa in ALL_TARGETS]
    runner = CampaignRunner(CampaignConfig(workers=1))
    reports = runner.run_multi_target(DEFAULT_KERNELS, targets=targets)
    write_bench_json(runner.summaries, args.json)

    failures: list[str] = []

    for target, report in reports.items():
        summary = report.summary
        floor = floors.get(target)
        line = (f"{target:<8} {summary.kernels_per_second:8.1f} kernels/s "
                f"(stages: {sum(summary.stage_seconds.values()):.3f}s profiled)")
        if floor is not None:
            minimum = floor * (1.0 - args.tolerance)
            line += f"  floor {minimum:.1f} (baseline {floor:.1f})"
            if summary.kernels_per_second < minimum:
                failures.append(
                    f"{target}: {summary.kernels_per_second:.1f} kernels/s is "
                    f">{args.tolerance:.0%} below the baseline {floor:.1f}")
        else:
            line += "  (no baseline entry; recorded)"
        print(line)

    # The verdict pin: the golden kernels are a superset check run on AVX2
    # alone, with the exact seed campaign config.
    golden_kernels = [kernel for kernel, _, _ in AVX2_GOLDEN]
    golden_report = CampaignRunner(CampaignConfig(workers=1)).run(golden_kernels)
    observed = [(record.kernel,
                 record.result.get("verdict"),
                 record.result.get("final_code_sha"))
                for record in golden_report.records]
    for want, got in zip(AVX2_GOLDEN, observed):
        if want != got:
            failures.append(f"AVX2 drift on {want[0]}: expected {want[1:]}, "
                            f"got {got[1:]}")
    if len(observed) != len(AVX2_GOLDEN):
        failures.append(f"AVX2 golden campaign ran {len(observed)} kernels, "
                        f"expected {len(AVX2_GOLDEN)}")

    if failures:
        print("\nPERF GATE FAILED:")
        for failure in failures:
            print(f"  - {failure}")
        return 1
    print(f"\nperf gate passed: {len(reports)} targets within "
          f"{args.tolerance:.0%} of baseline, AVX2 verdicts bit-for-bit")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
