"""Shared fixtures for the benchmark harness.

The expensive artefacts — the k-completion checksum evaluation and the
verification funnel it feeds — are produced once per session and shared by
the Table 2, Table 3, Figure 5, and Figure 6 targets, exactly mirroring how
the paper's experiments build on one another.

All suite-scale work goes through the campaign engine: kernels fan out over
a process pool and share one session-scoped content-addressed result cache,
so re-running a benchmark target reuses everything the earlier targets
already settled.  Per-kernel results are derived-seed deterministic, i.e.
identical at any worker count.

Environment knobs (all optional):

``REPRO_BENCH_COMPLETIONS``
    number of completions per kernel for the RQ1 evaluation (default 30;
    the paper uses 100 — raise it when runtime is not a concern).
``REPRO_BENCH_KERNELS``
    comma-separated kernel subset (default: the full suite).
``REPRO_BENCH_WORKERS``
    campaign worker-pool width (default 0 = one worker per CPU; 1 runs
    serially in-process).
``REPRO_BENCH_BATCH``
    kernel tasks per worker dispatch: ``auto`` (the default) adapts batch
    sizes to the remaining queue (guided self-scheduling with work
    stealing), an int fixes the size, ``1`` restores one task per
    dispatch.  Batch size never changes results — per-kernel seeds derive
    from kernel names.
``REPRO_BENCH_STORE``
    path to a campaign JSONL result store; lets an interrupted benchmark
    session resume and persists results for offline inspection.
``REPRO_BENCH_SHARD``
    ``i/n`` restricts every campaign of the session to the i-th of n
    disjoint suite shards (kernel-name-hash partition; results stay
    bit-identical to an unsharded run).  Point each shard's machine at its
    own ``REPRO_BENCH_STORE`` file, then merge the stores into one report
    with ``repro.pipeline.shard.merge_stores`` / ``report_from_store``.
``REPRO_BENCH_TARGETS``
    comma-separated target ISAs for the multi-target campaign benchmark
    (``sse4,neon,avx2,avx512``; ``all`` expands to every registered
    target, which is also the default).  All targets share the session
    cache/store; the target-salted fingerprints keep their entries
    disjoint.
``REPRO_BENCH_JSON``
    when set, write every campaign summary of the session (throughput,
    cache hit-rates, verdict counts per target) to a benchmark JSON file —
    ``1``/``true`` selects the default ``BENCH_campaign.json`` at the repo
    root, any other value is used as the output path.  This is what feeds
    the perf trajectory across runs.
"""

from __future__ import annotations

import os
from pathlib import Path

import pytest

from repro.experiments import run_checksum_evaluation, run_verification_funnel
from repro.llm.synthetic import SyntheticLLM, SyntheticLLMConfig
from repro.pipeline import CampaignConfig, CampaignRunner
from repro.targets import get_target, target_names
from repro.tsvc import all_kernel_names, load_kernel

_BENCH_DIR = Path(__file__).parent


def pytest_collection_modifyitems(items):
    """Mark everything under benchmarks/ with the ``bench`` marker."""
    for item in items:
        try:
            in_benchmarks = item.path.is_relative_to(_BENCH_DIR)
        except (AttributeError, ValueError):
            in_benchmarks = False
        if in_benchmarks:
            item.add_marker(pytest.mark.bench)


def _configured_kernels() -> list[str] | None:
    names = os.environ.get("REPRO_BENCH_KERNELS", "").strip()
    if not names:
        return None
    return [name.strip() for name in names.split(",") if name.strip()]


def _configured_completions() -> int:
    return int(os.environ.get("REPRO_BENCH_COMPLETIONS", "30"))


def _configured_workers() -> int:
    return int(os.environ.get("REPRO_BENCH_WORKERS", "0"))


def _configured_batch() -> "int | str":
    value = os.environ.get("REPRO_BENCH_BATCH", "").strip().lower()
    if not value or value == "auto":
        return "auto"
    return int(value)


def _configured_shard():
    from repro.pipeline import ShardSpec

    spec = os.environ.get("REPRO_BENCH_SHARD", "").strip()
    return ShardSpec.parse(spec) if spec else None


def _configured_targets() -> list[str]:
    names = os.environ.get("REPRO_BENCH_TARGETS", "").strip()
    if not names or names.lower() in ("all", "*"):
        return target_names()
    return [get_target(name).name for name in names.split(",") if name.strip()]


@pytest.fixture(scope="session")
def bench_kernels() -> list[str]:
    return _configured_kernels() or all_kernel_names()


@pytest.fixture(scope="session")
def bench_completions() -> int:
    return _configured_completions()


@pytest.fixture(scope="session")
def bench_targets() -> list[str]:
    return _configured_targets()


def _bench_json_path() -> Path | None:
    value = os.environ.get("REPRO_BENCH_JSON", "").strip()
    if not value or value.lower() in ("0", "false", "no"):
        return None
    if value.lower() in ("1", "true", "yes"):
        return _BENCH_DIR.parent / "BENCH_campaign.json"
    return Path(value)


@pytest.fixture(scope="session")
def bench_campaign() -> CampaignRunner:
    """One campaign runner (and thus one result cache) for the whole session.

    With ``REPRO_BENCH_JSON`` set, every campaign summary the session
    produced is written out at teardown so the perf trajectory accumulates.
    """
    store = os.environ.get("REPRO_BENCH_STORE", "").strip() or None
    config = CampaignConfig(workers=_configured_workers(), store_path=store,
                            shard=_configured_shard(),
                            batch_size=_configured_batch())
    runner = CampaignRunner(config)
    yield runner
    path = _bench_json_path()
    if path is not None and runner.summaries:
        from repro.perf.profile import machine_score
        from repro.reporting.campaign import write_bench_json

        write_bench_json(runner.summaries, path, machine_score=machine_score())


@pytest.fixture(scope="session")
def checksum_evaluation(bench_kernels, bench_completions, bench_campaign):
    """The RQ1 evaluation (Table 2 / Figure 5 input), computed once."""
    llm = SyntheticLLM(SyntheticLLMConfig(seed=2024))
    return run_checksum_evaluation(
        num_completions=bench_completions, kernels=bench_kernels, llm=llm,
        campaign=bench_campaign,
    )


@pytest.fixture(scope="session")
def verification_funnel(checksum_evaluation, bench_kernels, bench_campaign):
    """The RQ2 funnel (Table 3), fed by the first plausible candidate per kernel."""
    candidates = checksum_evaluation.first_plausible_codes()
    sources = {name: load_kernel(name).source for name in candidates}
    return run_verification_funnel(
        candidates, sources, total_tests=len(bench_kernels), campaign=bench_campaign,
    )
