"""Table 2: checksum-based evaluation of LLM completions at k = 1, 10, 100.

The paper's numbers (149 kernels): plausible 72 / 107 / 125, not equivalent
62 / 40 / 24, cannot compile 15 / 2 / 0.  The shape to reproduce: the
plausible count grows substantially with k and the cannot-compile count
collapses to (near) zero.  The default run uses REPRO_BENCH_COMPLETIONS=30
completions per kernel; set it to 100 to match the paper's sampling budget.
"""

from repro.reporting import render_table


def test_table2_checksum_evaluation(benchmark, checksum_evaluation, bench_completions):
    ks = [k for k in (1, 10, 100) if k <= bench_completions]
    if bench_completions not in ks:
        ks.append(bench_completions)

    def build_rows():
        rows = []
        for label in ("Plausible", "Not equivalent", "Cannot compile"):
            row = {"Parameters": label}
            for k in ks:
                row[f"k={k}"] = checksum_evaluation.table2_row(k)[label]
            rows.append(row)
        return rows

    rows = benchmark(build_rows)
    print()
    print(render_table(rows, title="Table 2: Evaluation of vectorized code using checksum-based testing"))

    first, last = f"k={ks[0]}", f"k={ks[-1]}"
    plausible = rows[0]
    cannot_compile = rows[2]
    total = len(checksum_evaluation.records)
    # Shape: more sampling finds more plausible vectorizations, and
    # compile-failure-only kernels (nearly) disappear.
    assert plausible[last] >= plausible[first]
    assert plausible[last] >= total * 0.5
    assert cannot_compile[last] <= cannot_compile[first]
    assert cannot_compile[last] <= total * 0.05
