"""Figure 1(c): runtime speedup of the LLM-vectorized s212 over ICC, Clang, GCC.

The paper reports 2.09x / 7.35x / 8.08x (ICC / Clang / GCC).  The shape to
reproduce: every baseline loses to the LLM code (none of them vectorizes
s212), and ICC — with its stronger scalar code — is by far the closest.
"""

from repro.perf import measure_kernel, speedups_for_kernel
from repro.reporting import render_table
from repro.tsvc import load_kernel
from repro.vectorizer import vectorize_kernel


def test_fig1c_s212_speedup(benchmark):
    kernel = load_kernel("s212")
    vectorized = vectorize_kernel(kernel.function)
    assert vectorized is not None

    def measure():
        return measure_kernel("s212", kernel.source, vectorized.source, n=256)

    performance = benchmark(measure)
    speedups = speedups_for_kernel(performance)
    rows = [
        {"Compiler": name, "Paper speedup": paper, "Measured speedup": f"{speedups[name]:.2f}x"}
        for name, paper in (("GCC", "8.08x"), ("Clang", "7.35x"), ("ICC", "2.09x"))
    ]
    print()
    print(render_table(rows, title="Figure 1(c): speedup of GPT-4-style vectorized s212"))

    # Shape assertions: the LLM wins against all three, ICC is the closest.
    assert speedups["GCC"] > 1.0
    assert speedups["Clang"] > 1.0
    assert speedups["ICC"] > 1.0
    assert speedups["ICC"] < min(speedups["GCC"], speedups["Clang"])
