"""Pluggable vector-target layer: ISA descriptions consumed by every stage.

``repro.targets`` is the single source of truth for what a vector backend
*is*: lane count, type and intrinsic naming, per-operation availability and
cycle costs.  The planner, code generator, interpreter, symbolic executor,
performance model and campaign engine all parameterize on a
:class:`TargetISA`; the AVX2 instance reproduces the paper's setup exactly
and remains the default everywhere.
"""

from repro.targets.isa import (
    ALL_TARGETS,
    AVX2,
    AVX512,
    DEFAULT_TARGET,
    SSE4,
    TargetISA,
    UnsupportedTargetOperation,
    all_targets,
    detect_target,
    get_target,
    target_names,
)

__all__ = [
    "ALL_TARGETS",
    "AVX2",
    "AVX512",
    "DEFAULT_TARGET",
    "SSE4",
    "TargetISA",
    "UnsupportedTargetOperation",
    "all_targets",
    "detect_target",
    "get_target",
    "target_names",
]
