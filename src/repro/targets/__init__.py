"""Pluggable vector-target layer: ISA descriptions consumed by every stage.

``repro.targets`` is the single source of truth for what a vector backend
*is*: lane count, vector type, intrinsic spelling (the bidirectional
op <-> name mapping), per-operation availability and cycle costs.  The
planner, code generator, interpreter, symbolic executor, lexer/parser
keyword sets, performance model and campaign engine all parameterize on a
:class:`TargetISA`; the AVX2 instance reproduces the paper's setup exactly
and remains the default everywhere.
"""

from repro.targets.isa import (
    ALL_TARGETS,
    AVX2,
    AVX512,
    DEFAULT_TARGET,
    NEON,
    PREDICATE_TYPE_NAMES,
    SCALABLE_LANES,
    SSE4,
    SVE128,
    SVE256,
    VECTOR_TYPE_BITS,
    VECTOR_TYPE_LANES,
    TargetISA,
    UnknownIntrinsicName,
    UnsupportedTargetOperation,
    all_targets,
    contains_known_intrinsics,
    detect_target,
    dtype_of_spelling,
    get_target,
    known_intrinsic_spellings,
    resolve_intrinsic,
    resolve_target_setting,
    target_names,
    vector_type_lanes,
    vector_type_lanes_for,
)

__all__ = [
    "ALL_TARGETS",
    "AVX2",
    "AVX512",
    "DEFAULT_TARGET",
    "NEON",
    "PREDICATE_TYPE_NAMES",
    "SCALABLE_LANES",
    "SSE4",
    "SVE128",
    "SVE256",
    "VECTOR_TYPE_BITS",
    "VECTOR_TYPE_LANES",
    "TargetISA",
    "UnknownIntrinsicName",
    "UnsupportedTargetOperation",
    "all_targets",
    "contains_known_intrinsics",
    "detect_target",
    "dtype_of_spelling",
    "get_target",
    "known_intrinsic_spellings",
    "resolve_intrinsic",
    "resolve_target_setting",
    "target_names",
    "vector_type_lanes",
    "vector_type_lanes_for",
]
