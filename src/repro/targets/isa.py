"""Target ISA descriptions: the data that defines a vector backend.

A :class:`TargetISA` bundles everything the pipeline needs to know about one
SIMD instruction set: how many 32-bit lanes a register holds, what the
vector type and the intrinsics are called, which generic operations the ISA
can express, and how its instructions are priced by the cycle simulator.

This module is the **only** place where concrete intrinsic spellings live.
Every other layer speaks in *generic operation* names (``add``, ``mul``,
``select``, ``loadu`` ...); the mapping to a target's spelling — and back —
is owned by the target:

* ``TargetISA.intrinsic(op)`` spells a generic op for the target;
* ``TargetISA.op_of(name)`` inverts one target's spelling;
* :func:`resolve_intrinsic` inverts any registered target's spelling and
  raises :class:`UnknownIntrinsicName` for spellings no target emits —
  callers must never guess or silently coerce an unknown name into some
  other ISA's grammar.

Six concrete instances ship here:

* ``SSE4``  — 4 lanes / 128-bit registers, x86 ``{prefix}_{op}_{suffix}``
  spellings;
* ``NEON``  — 4 lanes / 128-bit registers with the ARM ``v{op}q_s32``
  spelling scheme, which deliberately shares nothing with the x86 grammar;
* ``SVE128`` / ``SVE256`` — ARM SVE at two *simulated* vector lengths
  (scalable hardware modelled at fixed 128-/256-bit widths): the first
  *predicate-first* backend — ``svbool_t`` predicate registers govern
  memory, comparisons and selects, and there are no unpredicated loads or
  stores at all;
* ``AVX2``  — 8 lanes / 256-bit registers (the paper's target; every
  default in the pipeline resolves to it);
* ``AVX512`` — 16 lanes / 512-bit registers with native masked
  loads/stores/blends.

Everything downstream — the intrinsic registries, the planner's legality
window, code generation, the interpreter and symbolic executor, the lexer's
vector-type keywords, the cost model and the campaign engine — consumes
these descriptions, so adding a further backend (SVE, RVV, ...) is a
data-only change in this module.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from collections.abc import Mapping
from typing import TYPE_CHECKING

from repro.lanetypes import INT32, LaneType, get_lane_type

if TYPE_CHECKING:  # pragma: no cover - import cycle guard (cfront derives
    from repro.cfront.ctypes import CType  # its vector types from this module)


class UnsupportedTargetOperation(KeyError):
    """A generic vector operation the active target cannot express
    (at the requested lane element type)."""

    def __init__(self, target: "TargetISA", op: str,
                 dtype: "LaneType | None" = None):
        dtype = get_lane_type(dtype)
        if dtype is INT32:
            message = f"{target.display_name} has no intrinsic for {op!r}"
        else:
            message = (f"{target.display_name} has no {dtype.name} "
                       f"intrinsic for {op!r}")
        super().__init__(message)
        self.target = target
        self.op = op
        self.dtype = dtype


class UnknownIntrinsicName(KeyError):
    """An intrinsic spelling that no registered target emits.

    Raised by the reverse mapping instead of guessing a target: mutating an
    unknown spelling into some ISA's grammar would silently change which
    backend a candidate belongs to.
    """

    def __init__(self, name: str):
        known = ", ".join(t.display_name for t in ALL_TARGETS)
        super().__init__(
            f"intrinsic spelling {name!r} belongs to no registered target ({known})"
        )
        self.name = name


def _x86_op_names(prefix: str, si: str, bits: int = 32,
                  **overrides: str) -> dict[str, str]:
    """The regular x86 naming scheme: ``{prefix}_{op}`` / ``{prefix}_{op}_{si}``.

    Keys are the ISA-neutral generic operation names the rest of the
    pipeline speaks; values are this scheme's concrete spellings at one lane
    element width (``bits``).  The ``si``-typed spellings (bitwise logic,
    whole-register memory, ``setzero``, the byte blend, the half permute)
    are element-type-free and come out identical at every width — the dtype
    of those operations travels with the kernel's declared element type, not
    with the intrinsic name.  Element-typed ops carry the ``_epi{bits}``
    suffix, and the availability holes of the real ISA are modelled:
    16-bit lanes have no masked memory and no in-block shuffle, 64-bit
    lanes additionally lack ``mullo``/``min``/``max``/``abs``/``srai``/
    ``hadd`` below AVX-512 (whose per-dtype overrides restore them).

    ``overrides`` replaces individual entries (e.g. AVX-512's native masked
    forms); mapping an op to an empty string removes it, which is how a
    target declares an operation unavailable.
    """
    e = f"epi{bits}"
    # 64-bit scalar-argument constructors spell the lane width as ``epi64x``
    # at the 128-/256-bit register sizes (``_mm512`` drops the ``x``).
    ctor = e if bits != 64 or prefix == "_mm512" else "epi64x"
    names = {
        # per-lane arithmetic / comparison
        "add": f"{prefix}_add_{e}",
        "sub": f"{prefix}_sub_{e}",
        "mul": f"{prefix}_mullo_{e}",
        "cmpgt": f"{prefix}_cmpgt_{e}",
        "cmpeq": f"{prefix}_cmpeq_{e}",
        "max": f"{prefix}_max_{e}",
        "min": f"{prefix}_min_{e}",
        "abs": f"{prefix}_abs_{e}",
        # full-register bitwise
        "and": f"{prefix}_and_{si}",
        "or": f"{prefix}_or_{si}",
        "xor": f"{prefix}_xor_{si}",
        "andnot": f"{prefix}_andnot_{si}",
        # per-lane selects and shifts
        "select": f"{prefix}_blendv_epi8",
        "srl": f"{prefix}_srli_{e}",
        "sll": f"{prefix}_slli_{e}",
        "sra": f"{prefix}_srai_{e}",
        # lane rearrangement
        "shuffle": f"{prefix}_shuffle_{e}",
        "hadd": f"{prefix}_hadd_{e}",
        "permute_halves": f"{prefix}_permute2x128_{si}",
        # memory
        "loadu": f"{prefix}_loadu_{si}",
        "storeu": f"{prefix}_storeu_{si}",
        "maskload": f"{prefix}_maskload_{e}",
        "maskstore": f"{prefix}_maskstore_{e}",
        # vector construction / extraction
        "set1": f"{prefix}_set1_{ctor}",
        "setzero": f"{prefix}_setzero_{si}",
        "setr": f"{prefix}_setr_{ctor}",
        "set": f"{prefix}_set_{ctor}",
        "extract": f"{prefix}_extract_{e}",
    }
    if bits == 16:
        # No ``_mm*_maskload_epi16`` and no in-block dword-style shuffle.
        for op in ("maskload", "maskstore", "shuffle"):
            names.pop(op)
    elif bits == 64:
        # Pre-AVX-512 holes; AVX-512's per-dtype overrides restore most.
        for op in ("mul", "max", "min", "abs", "sra", "shuffle", "hadd"):
            names.pop(op)
    for op, name in overrides.items():
        if name:
            names[op] = name
        else:
            names.pop(op, None)
    return names


def _neon_op_names(bits: int = 32) -> dict[str, str]:
    """The ARM NEON (AArch64 AdvSIMD) naming scheme at one element width.

    The ``_s{bits}`` suffix carries the element type in every spelling, so
    unlike x86 there are no shared dtype-free names.  64-bit lanes model the
    real AdvSIMD holes: no ``vmulq_s64`` and no ``vmaxq_s64``/``vminq_s64``
    (the A64 ISA has no 64-bit lane multiply or min/max).
    """
    s = f"s{bits}"
    names = {
        "add": f"vaddq_{s}",
        "sub": f"vsubq_{s}",
        "mul": f"vmulq_{s}",
        "cmpgt": f"vcgtq_{s}",
        "cmpeq": f"vceqq_{s}",
        "max": f"vmaxq_{s}",
        "min": f"vminq_{s}",
        "abs": f"vabsq_{s}",
        "and": f"vandq_{s}",
        "or": f"vorrq_{s}",
        "xor": f"veorq_{s}",
        "select": f"vbslq_{s}",
        "srl": f"vshrq_n_u{bits}",
        "sll": f"vshlq_n_{s}",
        "sra": f"vshrq_n_{s}",
        "hadd": f"vpaddq_{s}",
        "loadu": f"vld1q_{s}",
        "storeu": f"vst1q_{s}",
        "set1": f"vdupq_n_{s}",
        "setr": f"vsetq_{s}",
        "extract": f"vgetq_lane_{s}",
    }
    if bits == 64:
        for op in ("mul", "max", "min"):
            names.pop(op)
    return names


def _sve_op_names(vl_bits: int, bits: int = 32) -> dict[str, str]:
    """The ARM SVE (ACLE) naming scheme at one simulated vector length.

    Real ACLE spellings are deliberately VL-agnostic (``svadd_s32_x`` works
    at any hardware vector length); the pipeline's "width travels with the
    intrinsic name" invariant forces each *simulated* VL to stamp its width
    into the spelling (``_vl128`` / ``_vl256``), the same kind of model-level
    fidelity compromise the AVX-512 and NEON notes document.  Further
    fidelity notes: the unpredicated ``_x`` forms drop ACLE's governing
    predicate operand (an implicit all-true ``ptrue``), ``svptest_any`` takes
    one predicate instead of ACLE's two, and ``svget_lane_s32`` stands in
    for the ``svlasta``/compact dance a real single-lane extract needs.

    There is **no** ``loadu``/``storeu``/``cmpgt``/``select`` here: SVE has
    no unpredicated memory operations and its comparisons produce predicate
    registers, so the predicate-first generic ops (``pload``/``pstore``/
    ``pcmpgt``/``psel`` ...) are the only way to touch memory or build masks.

    SVE's op set is fully orthogonal over element types — ``bits`` swaps
    the ``_s32``/``_b32`` suffixes for ``_s16``/``_b16`` or ``_s64``/
    ``_b64`` without any availability holes, exactly like real ACLE.  The
    predicate logic ops (``svnot_b_z`` ...) are element-type-free on the
    ``svbool_t`` register and shared across dtypes.
    """
    s = f"_vl{vl_bits}"
    e = f"s{bits}"
    b = f"b{bits}"
    return {
        # unpredicated ("don't-care" _x form) data ops
        "add": f"svadd_{e}_x{s}",
        "sub": f"svsub_{e}_x{s}",
        "mul": f"svmul_{e}_x{s}",
        "max": f"svmax_{e}_x{s}",
        "min": f"svmin_{e}_x{s}",
        "abs": f"svabs_{e}_x{s}",
        "and": f"svand_{e}_x{s}",
        "or": f"svorr_{e}_x{s}",
        "xor": f"sveor_{e}_x{s}",
        "srl": f"svlsr_n_{e}_x{s}",
        "sll": f"svlsl_n_{e}_x{s}",
        "sra": f"svasr_n_{e}_x{s}",
        # construction / extraction
        "set1": f"svdup_n_{e}{s}",
        "index": f"svindex_{e}{s}",
        "extract": f"svget_lane_{e}{s}",
        # predicate construction and queries
        "ptrue": f"svptrue_{b}{s}",
        "whilelt": f"svwhilelt_{b}{s}",
        "ptest_any": f"svptest_any_{b}{s}",
        # predicate logic (zeroing forms, governed by the first operand;
        # element-type-free on the svbool_t register)
        "pnot": f"svnot_b_z{s}",
        "pand": f"svand_b_z{s}",
        "por": f"svorr_b_z{s}",
        # predicate-producing comparisons and predicate-consuming ops
        "pcmpgt": f"svcmpgt_{e}{s}",
        "pcmpeq": f"svcmpeq_{e}{s}",
        "psel": f"svsel_{e}{s}",
        "pload": f"svld1_{e}{s}",
        "pstore": f"svst1_{e}{s}",
        "padd": f"svadd_{e}_m{s}",
    }


@dataclass(frozen=True)
class TargetISA:
    """One vector backend, described entirely as data."""

    #: Canonical lowercase identifier used in configs, caches and env knobs.
    name: str
    #: Human-facing spelling used in prompts and rejection messages.
    display_name: str
    #: Number of 32-bit lanes per vector register.
    lanes: int
    #: The C vector type the backend's candidates declare.
    vector_type: str
    #: Intrinsic name prefix; informational (prompts, docs) — spelling goes
    #: through ``op_names``, never through string surgery on the prefix.
    prefix: str
    #: Generic operation -> concrete intrinsic name.  An op absent from this
    #: mapping is unavailable on the target.
    op_names: Mapping[str, str] = field(default_factory=dict)
    #: Cost-model category overrides (``vec_load`` ...) relative to the AVX2
    #: base table in :mod:`repro.perf.costmodel`.
    vector_cost_overrides: Mapping[str, float] = field(default_factory=dict)
    #: Per-op cycle-cost overrides for the intrinsic registry specs, keyed by
    #: generic op name.
    intrinsic_cost_overrides: Mapping[str, float] = field(default_factory=dict)
    #: True when masked loads/stores/blends are first-class instructions
    #: (AVX-512) rather than AVX-style emulations.
    has_native_masked_ops: bool = False
    #: Bits per lane; the whole pipeline models 32-bit integer TSVC loops.
    lane_bits: int = 32
    #: Header a candidate for this target conventionally includes.
    header: str = "immintrin.h"
    #: A gather spelling the target does *not* actually have; the synthetic
    #: LLM uses it to model "the model invented an intrinsic" failures.  It
    #: must never collide with a real ``op_names`` entry of any target.
    bogus_gather_spelling: str = ""
    #: C type of the target's predicate registers ("" = the target has no
    #: predicate registers; masks are ordinary data vectors).
    predicate_type: str = ""
    #: True when the architectural vector length is scalable and ``lanes``
    #: is one *simulated* fixed width.  Scalable vector types are shared
    #: across simulated widths, so their declarations always need an
    #: initializer — the width travels with the intrinsic names, never with
    #: the type.
    scalable: bool = False
    #: Generic operation tables for the non-default lane element types,
    #: keyed by dtype name (``"int16"``/``"int64"``).  ``op_names`` remains
    #: the int32 table.  An op absent from a dtype's table is unavailable on
    #: the target at that element type; a dtype absent entirely is
    #: unsupported by the target.
    op_names_by_dtype: Mapping[str, Mapping[str, str]] = field(default_factory=dict)
    #: C vector type per non-default dtype (dtype name -> type name).  ARM
    #: types carry the element type (``int16x8_t``, ``svint64_t``); x86's
    #: ``__m256i`` is element-type-free and used for every dtype, so x86
    #: targets leave this empty.
    vector_types_by_dtype: Mapping[str, str] = field(default_factory=dict)

    def __post_init__(self) -> None:
        reverse: dict[str, str] = {}
        for op, spelled in self.op_names.items():
            if spelled in reverse:
                raise ValueError(
                    f"{self.display_name}: spelling {spelled!r} assigned to both "
                    f"{reverse[spelled]!r} and {op!r}"
                )
            reverse[spelled] = op
        object.__setattr__(self, "_ops_by_name", reverse)
        # Spellings across every dtype table (op identity is dtype-free:
        # one spelling may recur across dtype tables — the x86 ``si``-typed
        # names do — but always for the same generic op).
        all_spellings: dict[str, str] = dict(reverse)
        spelling_dtype: dict[str, str] = {}
        for dtype_name, table in self.op_names_by_dtype.items():
            for op, spelled in table.items():
                prior = all_spellings.get(spelled)
                if prior is not None and prior != op:
                    raise ValueError(
                        f"{self.display_name}: spelling {spelled!r} assigned "
                        f"to both {prior!r} and {op!r}"
                    )
                if spelled in all_spellings:
                    # Shared across dtypes: the spelling is dtype-free.
                    spelling_dtype.pop(spelled, None)
                else:
                    all_spellings[spelled] = op
                    spelling_dtype[spelled] = dtype_name
        object.__setattr__(self, "_ops_by_name_all", all_spellings)
        object.__setattr__(self, "_dtype_by_name", spelling_dtype)

    # -- capability queries -------------------------------------------------

    @property
    def register_bits(self) -> int:
        return self.lanes * self.lane_bits

    def lane_types(self) -> tuple[LaneType, ...]:
        """The lane element types this target has op tables for."""
        return (INT32,) + tuple(
            get_lane_type(name) for name in self.op_names_by_dtype
        )

    def supports_dtype(self, dtype: "LaneType | str | None") -> bool:
        """Whether this target has an op table for ``dtype`` at all."""
        dtype = get_lane_type(dtype)
        return dtype is INT32 or dtype.name in self.op_names_by_dtype

    def lanes_for(self, dtype: "LaneType | str | None" = None) -> int:
        """Lane count of one register at ``dtype`` (default int32)."""
        return self.register_bits // get_lane_type(dtype).bits

    def op_table(self, dtype: "LaneType | str | None" = None) -> Mapping[str, str]:
        """The generic-op -> spelling table at one element type."""
        dtype = get_lane_type(dtype)
        if dtype is INT32:
            return self.op_names
        table = self.op_names_by_dtype.get(dtype.name)
        if table is None:
            raise ValueError(
                f"{self.display_name} has no {dtype.name} operation table"
            )
        return table

    def supports(self, op: str,
                 dtype: "LaneType | str | None" = None) -> bool:
        """Whether the generic operation ``op`` exists on this target (at
        the given lane element type; default int32)."""
        dtype = get_lane_type(dtype)
        if dtype is INT32:
            return op in self.op_names
        return op in self.op_names_by_dtype.get(dtype.name, {})

    @property
    def has_masked_memory(self) -> bool:
        """Whether the target can express masked loads *and* stores at all
        (natively or as AVX-style emulations).  NEON-class targets cannot:
        their masking is select-based and purely in-register.  SVE-class
        targets answer False too — their memory masking is predicate
        registers, a strictly stronger mechanism with its own legalization
        (:attr:`has_predicated_loops`)."""
        return self.supports("maskload") and self.supports("maskstore")

    @property
    def has_predicates(self) -> bool:
        """Whether masks live in predicate registers (``svbool_t``) rather
        than data vectors.  Predicate-first targets spell comparisons,
        selects and memory through the ``p*`` generic ops."""
        return bool(self.predicate_type)

    @property
    def plain_load_op(self) -> str:
        """Generic op of this target's plain full-width load: ``loadu``, or
        ``pload`` on predicate-first targets (whose every load is governed
        by a predicate — an all-true one for plain code)."""
        return "loadu" if self.supports("loadu") else "pload"

    @property
    def has_predicated_loops(self) -> bool:
        """Whether the target can retire a loop tail with a
        ``whilelt``-governed predicated main loop (no scalar epilogue, no
        masked-tail iteration): it needs predicate construction, a loop-exit
        test and predicate-governed memory."""
        return all(self.supports(op)
                   for op in ("whilelt", "ptest_any", "pload", "pstore"))

    # -- spelling (the bidirectional op <-> name mapping) -------------------

    def intrinsic(self, op: str,
                  dtype: "LaneType | str | None" = None) -> str:
        """Concrete intrinsic name for a generic op at one lane element
        type (default int32); raises if unavailable."""
        try:
            return self.op_table(dtype)[op]
        except (KeyError, ValueError):
            raise UnsupportedTargetOperation(self, op, dtype) from None

    def op_of(self, name: str) -> str:
        """Generic op of one of *this* target's spellings (raises otherwise)."""
        try:
            return self._ops_by_name_all[name]
        except KeyError:
            raise UnknownIntrinsicName(name) from None

    def spells(self, name: str) -> bool:
        """Whether ``name`` is one of this target's intrinsic spellings
        (at any lane element type)."""
        return name in self._ops_by_name_all

    def dtype_of(self, name: str) -> "LaneType | None":
        """The lane element type a spelling of this target is dedicated to,
        or ``None`` for dtype-free spellings (x86 ``si``-typed names, SVE
        predicate logic) shared across element types."""
        if name in self._dtype_by_name:
            return get_lane_type(self._dtype_by_name[name])
        if name in self._ops_by_name:
            # In the int32 table and in no dtype table under another dtype:
            # dedicated to int32 unless some dtype table shares the spelling.
            shared = any(name in table
                         for table in self.op_names_by_dtype.values())
            return None if shared else INT32
        return None

    def zero_call(self, dtype: "LaneType | str | None" = None,
                  ) -> tuple[str, tuple[int, ...]]:
        """How this target materializes an all-zero register, as
        ``(intrinsic name, immediate args)``.

        x86 has a dedicated ``setzero``; NEON idiomatically broadcasts a zero
        (``vdupq_n_s32(0)``), so targets without ``setzero`` fall back to
        ``set1`` with a literal 0 argument.
        """
        if self.supports("setzero", dtype):
            return self.intrinsic("setzero", dtype), ()
        return self.intrinsic("set1", dtype), (0,)

    # -- C-type plumbing ----------------------------------------------------

    def vector_type_for(self, dtype: "LaneType | str | None" = None) -> str:
        """The C vector type at one lane element type (default int32)."""
        dtype = get_lane_type(dtype)
        if dtype is INT32:
            return self.vector_type
        named = self.vector_types_by_dtype.get(dtype.name)
        if named is not None:
            return named
        if not self.supports_dtype(dtype):
            raise ValueError(
                f"{self.display_name} has no {dtype.name} vector type"
            )
        return self.vector_type

    @property
    def vector_ctype(self) -> "CType":
        from repro.cfront.ctypes import CType

        return CType(self.vector_type)

    def vector_ctype_for(self, dtype: "LaneType | str | None" = None) -> "CType":
        from repro.cfront.ctypes import CType

        return CType(self.vector_type_for(dtype))

    @property
    def vector_pointer_ctype(self) -> "CType":
        from repro.cfront.ctypes import CType

        return CType(self.vector_type, 1)

    def vector_pointer_ctype_for(self,
                                 dtype: "LaneType | str | None" = None) -> "CType":
        from repro.cfront.ctypes import CType

        return CType(self.vector_type_for(dtype), 1)

    @property
    def predicate_ctype(self) -> "CType":
        from repro.cfront.ctypes import CType

        if not self.predicate_type:
            raise ValueError(f"{self.display_name} has no predicate registers")
        return CType(self.predicate_type)


#: 4 x 32-bit lanes.  The 128-bit maskload is technically an AVX (VEX)
#: encoding of a 128-bit operation; it is included so masked-epilogue
#: candidates stay expressible at every x86 width.
SSE4 = TargetISA(
    name="sse4",
    display_name="SSE4",
    lanes=4,
    vector_type="__m128i",
    prefix="_mm",
    op_names=_x86_op_names("_mm", "si128", permute_halves=""),
    vector_cost_overrides={
        # 128-bit memory ops move half the data of the AVX2 base figures.
        "vec_load": 4.0,
        "vec_store": 4.0,
        "vec_maskload": 6.0,
        "vec_maskstore": 6.0,
        "vec_setr": 1.5,
        "vec_set": 1.5,
        "vec_extract": 2.0,
    },
    intrinsic_cost_overrides={"loadu": 2.0, "storeu": 2.0, "extract": 1.0},
    bogus_gather_spelling="_mm_gather_load_epi32",
    op_names_by_dtype={
        "int16": _x86_op_names("_mm", "si128", 16, permute_halves=""),
        "int64": _x86_op_names("_mm", "si128", 64, permute_halves=""),
    },
)

#: 4 x 32-bit lanes with the ARM NEON (AArch64 AdvSIMD) naming scheme: the
#: first backend whose spellings share nothing with the x86
#: ``{prefix}_{op}_{suffix}`` grammar, which is exactly why it exists —
#: any string surgery that survives elsewhere breaks on ``vaddq_s32``.
#:
#: NEON has **no masked loads or stores**: ``maskload``/``maskstore`` are
#: absent from the table, masking is select-based (``vbslq_s32``) and purely
#: in-register, and the planner/codegen reject masked-memory requests with a
#: message naming the gap.  There is also no zero-idiom intrinsic
#: (``zero_call`` falls back to ``vdupq_n_s32(0)``), no whole-register
#: ``set`` constructor and no in-register shuffle-by-immediate.
#:
#: Fidelity notes (same spirit as the AVX-512 ones): the pipeline keeps one
#: uniform call shape per generic op, so a few spellings are model-level
#: pseudo-intrinsics rather than verbatim ``arm_neon.h``: real
#: ``vbslq_s32`` takes the mask operand *first* (here it shares the
#: ``(else, then, mask)`` order of the other targets), ``vshrq_n_u32``
#: would need ``vreinterpretq`` casts around it for a logical shift of
#: signed data, and ``vsetq_s32`` stands in for the lane-by-lane
#: ``vsetq_lane_s32`` chain that a real ramp constant needs.
NEON = TargetISA(
    name="neon",
    display_name="NEON",
    lanes=4,
    vector_type="int32x4_t",
    prefix="v",
    op_names=_neon_op_names(),
    op_names_by_dtype={
        "int16": _neon_op_names(16),
        "int64": _neon_op_names(64),
    },
    vector_types_by_dtype={"int16": "int16x8_t", "int64": "int64x2_t"},
    vector_cost_overrides={
        # 128-bit memory ops, like SSE4; NEON multiplies are single-uop and
        # lane extraction is cheap on AArch64 cores.
        "vec_load": 4.0,
        "vec_store": 4.0,
        "vec_pure_vector": 1.5,
        "vec_setr": 1.5,
        "vec_extract": 1.5,
    },
    intrinsic_cost_overrides={"loadu": 2.0, "storeu": 2.0, "extract": 1.0,
                              "mul": 1.5, "select": 0.5},
    bogus_gather_spelling="vgatherq_s32",
    header="arm_neon.h",
)

#: ARM SVE at a simulated 128-bit vector length: 4 x 32-bit lanes behind the
#: scalable ``svint32_t``/``svbool_t`` types.  The first predicate-first
#: backend: comparisons produce ``svbool_t`` predicates (``svcmpgt_s32``),
#: selects consume them (``svsel_s32``), and **every** memory access is
#: predicate-governed (``svld1_s32``/``svst1_s32`` — there are no
#: unpredicated loads or stores in the table because the architecture has
#: none).  ``svwhilelt_b32`` + ``svptest_any`` give the tail-free
#: predicated-loop legalization the planner's ``predicated_loop`` epilogue
#: strategy emits.  See :func:`_sve_op_names` for the simulated-VL spelling
#: fidelity notes.
SVE128 = TargetISA(
    name="sve128",
    display_name="SVE (VL128)",
    lanes=4,
    vector_type="svint32_t",
    prefix="sv",
    op_names=_sve_op_names(128),
    op_names_by_dtype={
        "int16": _sve_op_names(128, 16),
        "int64": _sve_op_names(128, 64),
    },
    vector_types_by_dtype={"int16": "svint16_t", "int64": "svint64_t"},
    vector_cost_overrides={
        # 128-bit predicated memory moves half the data of the 256-bit base
        # figures (SVE has no unpredicated loads/stores, so only the
        # predicated categories need narrowing); lane extraction is cheap on
        # AArch64 cores.
        "vec_pload": 4.5,
        "vec_pstore": 4.5,
        "vec_extract": 1.5,
    },
    intrinsic_cost_overrides={"pload": 2.5, "pstore": 2.5, "extract": 1.0,
                              "mul": 1.5, "psel": 0.5},
    bogus_gather_spelling="svgather_index_s32_vl128",
    header="arm_sve.h",
    predicate_type="svbool_t",
    scalable=True,
)

#: ARM SVE at a simulated 256-bit vector length: the same scalable types and
#: predicate-first op set as :data:`SVE128` at 8 lanes.  Campaigns drive both
#: simulated VLs through ``CampaignRunner.run_multi_target`` to demonstrate
#: VL-agnostic verdicts — the same kernel must verify identically at either
#: width.
SVE256 = TargetISA(
    name="sve256",
    display_name="SVE (VL256)",
    lanes=8,
    vector_type="svint32_t",
    prefix="sv",
    op_names=_sve_op_names(256),
    op_names_by_dtype={
        "int16": _sve_op_names(256, 16),
        "int64": _sve_op_names(256, 64),
    },
    vector_types_by_dtype={"int16": "svint16_t", "int64": "svint64_t"},
    vector_cost_overrides={
        # 256-bit predicated memory: AVX2-class traffic plus the predicate
        # overhead.
        "vec_pload": 6.5,
        "vec_pstore": 6.5,
    },
    intrinsic_cost_overrides={"mul": 1.5, "psel": 0.5},
    bogus_gather_spelling="svgather_index_s32_vl256",
    header="arm_sve.h",
    predicate_type="svbool_t",
    scalable=True,
)

#: 8 x 32-bit lanes — the paper's target; the behavioural baseline every
#: other backend is measured against.  No overrides: the AVX2 tables *are*
#: the base tables.  ``cast_low`` is the historical reduction-tail
#: reinterpret of the low 128-bit half, an AVX2-only extra spelling.
AVX2 = TargetISA(
    name="avx2",
    display_name="AVX2",
    lanes=8,
    vector_type="__m256i",
    prefix="_mm256",
    op_names=_x86_op_names("_mm256", "si256",
                           cast_low="_mm256_castsi256_si128"),
    bogus_gather_spelling="_mm256_gather_load_epi32",
    op_names_by_dtype={
        "int16": _x86_op_names("_mm256", "si256", 16),
        "int64": _x86_op_names("_mm256", "si256", 64),
    },
)

#: 16 x 32-bit lanes with native masked memory ops and blends.  Horizontal
#: adds and half-register permutes do not exist at 512 bits; reductions fall
#: back to per-lane extracts.
#:
#: Fidelity note: this backend keeps the pipeline's uniform call shapes, so
#: a few spellings are model-level pseudo-intrinsics rather than verbatim
#: immintrin.h: real AVX-512 comparisons return a 16-bit predicate mask,
#: the masked forms take the mask operand first, and there is no 512-bit
#: single-lane extract.  The semantics modelled (full-lane 0/-1 masks,
#: select/maskload argument order shared with the other targets) are what
#: the interpreter, symbolic executor and verifier implement; emitting
#: compilable AVX-512 C would need a thin renaming pass on top of this
#: table.
AVX512 = TargetISA(
    name="avx512",
    display_name="AVX-512",
    lanes=16,
    vector_type="__m512i",
    prefix="_mm512",
    op_names=_x86_op_names(
        "_mm512", "si512",
        select="_mm512_mask_blend_epi32",
        maskload="_mm512_mask_loadu_epi32",
        maskstore="_mm512_mask_storeu_epi32",
        hadd="",
        permute_halves="",
    ),
    op_names_by_dtype={
        # AVX-512BW: the full 16-bit lane op set, with native masked forms.
        "int16": _x86_op_names(
            "_mm512", "si512", 16,
            select="_mm512_mask_blend_epi16",
            maskload="_mm512_mask_loadu_epi16",
            maskstore="_mm512_mask_storeu_epi16",
            hadd="",
            permute_halves="",
        ),
        # AVX-512F/DQ restore the pre-512 64-bit holes: mullo (DQ),
        # min/max/abs (F) and an arithmetic 64-bit right shift.
        "int64": _x86_op_names(
            "_mm512", "si512", 64,
            mul="_mm512_mullo_epi64",
            max="_mm512_max_epi64",
            min="_mm512_min_epi64",
            abs="_mm512_abs_epi64",
            sra="_mm512_srai_epi64",
            select="_mm512_mask_blend_epi64",
            maskload="_mm512_mask_loadu_epi64",
            maskstore="_mm512_mask_storeu_epi64",
            permute_halves="",
        ),
    },
    vector_cost_overrides={
        # 512-bit ops: wider data per instruction, slightly worse latency
        # (port 5 pressure / licence-level downclock on Skylake-X-class cores).
        "vec_load": 8.0,
        "vec_store": 8.0,
        "vec_maskload": 9.0,
        "vec_maskstore": 9.0,
        "vec_pure_binary": 2.0,
        "vec_pure_vector": 2.5,
        "vec_setr": 3.0,
        "vec_set": 3.0,
        "vec_extract": 4.0,
    },
    intrinsic_cost_overrides={"loadu": 4.0, "storeu": 4.0, "extract": 3.0,
                              "mul": 2.5, "select": 1.0},
    has_native_masked_ops=True,
    bogus_gather_spelling="_mm512_gather_load_epi32",
)

#: Registration order doubles as the canonical narrow-to-wide ordering
#: (ties broken by registration: SSE4 before NEON before SVE128 at 4 lanes,
#: AVX2 — the default — before SVE256 at 8).
ALL_TARGETS: tuple[TargetISA, ...] = (SSE4, NEON, SVE128, AVX2, SVE256, AVX512)

DEFAULT_TARGET: TargetISA = AVX2

_ALIASES = {
    "sse": "sse4", "sse4": "sse4", "sse4.1": "sse4", "sse41": "sse4",
    "neon": "neon", "arm": "neon", "armv8": "neon", "asimd": "neon",
    "sve": "sve256", "sve128": "sve128", "sve-128": "sve128",
    "sve256": "sve256", "sve-256": "sve256", "sve2": "sve256",
    "avx2": "avx2", "avx": "avx2",
    "avx512": "avx512", "avx-512": "avx512", "avx512f": "avx512",
}

_BY_NAME = {target.name: target for target in ALL_TARGETS}


def _build_spelling_index() -> dict[str, tuple[str, str]]:
    """Intrinsic spelling -> (target name, generic op), across all targets
    and lane element types."""
    index: dict[str, tuple[str, str]] = {}
    for target in ALL_TARGETS:
        tables = [target.op_names, *target.op_names_by_dtype.values()]
        for table in tables:
            for op, spelled in table.items():
                existing = index.get(spelled)
                if existing is not None and existing[1] != op:
                    raise RuntimeError(
                        f"intrinsic spelling collision across targets: {spelled!r} "
                        f"is {existing[1]!r} on {existing[0]} but {op!r} on {target.name}"
                    )
                if existing is None:
                    index[spelled] = (target.name, op)
    return index


_SPELLING_INDEX = _build_spelling_index()


def _build_spelling_dtypes() -> dict[str, str]:
    """Spelling -> dtype name, for spellings dedicated to one element type.

    Dtype-free spellings (x86 ``si``-typed names, the byte blend, SVE
    predicate logic) are absent: their element type travels with the
    kernel's declared C types, not with the intrinsic name.
    """
    dedicated: dict[str, str] = {}
    shared: set[str] = set()
    for target in ALL_TARGETS:
        tables = {INT32.name: target.op_names, **target.op_names_by_dtype}
        for dtype_name, table in tables.items():
            for spelled in table.values():
                prior = dedicated.get(spelled)
                if spelled in shared:
                    continue
                if prior is None:
                    dedicated[spelled] = dtype_name
                elif prior != dtype_name:
                    dedicated.pop(spelled)
                    shared.add(spelled)
    return dedicated


_SPELLING_DTYPES = _build_spelling_dtypes()


def dtype_of_spelling(name: str) -> "LaneType | None":
    """The lane element type an intrinsic spelling is dedicated to, or
    ``None`` for dtype-free spellings shared across element types.

    Raises :class:`UnknownIntrinsicName` for spellings no target emits.
    """
    if name not in _SPELLING_INDEX:
        raise UnknownIntrinsicName(name)
    dtype_name = _SPELLING_DTYPES.get(name)
    return None if dtype_name is None else get_lane_type(dtype_name)


#: Lane count recorded for scalable vector types: the width is simulated
#: per target, so the *type* carries no width — declarations of a scalable
#: type always need an initializer, and the width travels with the intrinsic
#: names instead.
SCALABLE_LANES = 0


def _build_vector_type_lanes() -> dict[str, int]:
    table: dict[str, int] = {}
    for target in ALL_TARGETS:
        # The target's own (int32) vector type, plus any dtype-dedicated
        # type names (``int16x8_t``, ``svint64_t`` ...).  x86's
        # element-type-free register types stay at their int32 lane count —
        # reinterpreting them under another dtype needs the kernel's dtype
        # context (:func:`vector_type_lanes_for`).
        entries = [(target.vector_type,
                    SCALABLE_LANES if target.scalable else target.lanes)]
        for dtype_name, type_name in target.vector_types_by_dtype.items():
            if type_name == target.vector_type:
                continue
            lanes = (SCALABLE_LANES if target.scalable
                     else target.lanes_for(dtype_name))
            entries.append((type_name, lanes))
        for type_name, lanes in entries:
            existing = table.get(type_name)
            if existing is not None and existing != lanes:
                raise RuntimeError(
                    f"vector type {type_name!r} registered with both "
                    f"{existing} and {lanes} lanes"
                )
            table[type_name] = lanes
    return table


#: Vector type name -> 32-bit lane count, derived from the registered
#: targets.  The lexer/parser keyword sets and the C type model consume
#: this, so a new backend's vector type becomes a keyword automatically.
#: Scalable types map to :data:`SCALABLE_LANES` (0): the two simulated SVE
#: vector lengths share one ``svint32_t``, exactly as on real hardware.
VECTOR_TYPE_LANES: dict[str, int] = _build_vector_type_lanes()

#: Predicate register type names of every registered target (``svbool_t``);
#: the lexer/parser keyword sets and the C type model consume this the same
#: way they consume :data:`VECTOR_TYPE_LANES`.
PREDICATE_TYPE_NAMES: frozenset[str] = frozenset(
    target.predicate_type for target in ALL_TARGETS if target.predicate_type
)


def _build_vector_type_bits() -> dict[str, int]:
    """Vector type name -> register size in bits (0 for scalable types)."""
    table: dict[str, int] = {}
    for target in ALL_TARGETS:
        names = {target.vector_type, *target.vector_types_by_dtype.values()}
        bits = 0 if target.scalable else target.register_bits
        for type_name in names:
            existing = table.get(type_name)
            if existing is not None and existing != bits:
                raise RuntimeError(
                    f"vector type {type_name!r} registered with both "
                    f"{existing} and {bits} register bits"
                )
            table[type_name] = bits
    return table


#: Vector type name -> register size in bits (0 = scalable).  The dtype
#: context needed to reinterpret an element-type-free register type
#: (``__m256i`` as 8 int32 / 16 int16 / 4 int64 lanes) enters through
#: :func:`vector_type_lanes_for`.
VECTOR_TYPE_BITS: dict[str, int] = _build_vector_type_bits()


def vector_type_lanes_for(type_name: str,
                          dtype: "LaneType | str | None" = None) -> int:
    """Lane count of a vector type at one lane element type.

    Scalable types return :data:`SCALABLE_LANES` (the width travels with
    the intrinsic names, never with the type).  Without an explicit
    ``dtype`` the type's registered natural lane count applies — dedicated
    type names (``int64x2_t``) carry their own element type, and the
    element-type-free x86 register types default to int32.
    """
    bits = VECTOR_TYPE_BITS[type_name]
    if bits == 0:
        return SCALABLE_LANES
    if dtype is None:
        return VECTOR_TYPE_LANES[type_name]
    return bits // get_lane_type(dtype).bits


def vector_type_lanes() -> dict[str, int]:
    """A copy of the vector-type table (type name -> lane count)."""
    return dict(VECTOR_TYPE_LANES)


def target_names() -> list[str]:
    """Canonical names of all registered targets, narrow to wide."""
    return [target.name for target in ALL_TARGETS]


def all_targets() -> tuple[TargetISA, ...]:
    return ALL_TARGETS


def get_target(target: "TargetISA | str | None") -> TargetISA:
    """Resolve a target spec (instance, name/alias, or None -> default)."""
    if target is None:
        return DEFAULT_TARGET
    if isinstance(target, TargetISA):
        return target
    canonical = _ALIASES.get(str(target).strip().lower())
    if canonical is None:
        known = ", ".join(sorted(_BY_NAME))
        raise ValueError(f"unknown target ISA {target!r} (known: {known})")
    return _BY_NAME[canonical]


def resolve_target_setting(*settings: "TargetISA | str | None") -> TargetISA:
    """The single default-resolution rule for layered target settings.

    Walks ``settings`` from most to least specific (e.g. explicit argument,
    tool config, campaign config) and resolves the first one that is set;
    when every layer is unset (``None``), the pipeline default applies.
    Agents, prompts, the synthetic LLM and the campaign engine all resolve
    through here, so they cannot disagree about the active target.
    """
    for setting in settings:
        if setting is not None:
            return get_target(setting)
    return DEFAULT_TARGET


def resolve_intrinsic(name: str) -> tuple[TargetISA, str]:
    """Invert an intrinsic spelling: ``(owning target, generic op)``.

    Spellings shared by several targets resolve to the first registrant.
    Raises :class:`UnknownIntrinsicName` for spellings no target emits —
    never coerces an unknown name into another ISA's grammar.
    """
    entry = _SPELLING_INDEX.get(name)
    if entry is None:
        raise UnknownIntrinsicName(name)
    target_name, op = entry
    return _BY_NAME[target_name], op


def known_intrinsic_spellings() -> frozenset[str]:
    """Every intrinsic spelling any registered target emits."""
    return frozenset(_SPELLING_INDEX)


def contains_known_intrinsics(source: str) -> bool:
    """Whether ``source`` mentions any registered target's intrinsics."""
    return any(name in source for name in _SPELLING_INDEX)


def detect_target(source: str, default: "TargetISA | str | None" = None) -> TargetISA:
    """Infer the target ISA of candidate C source from its intrinsic spellings.

    The widest target with a spelling hit wins (an AVX2 reduction tail may
    legitimately contain the narrow ``cast_low`` + 4-lane extract idiom);
    source with no registered intrinsics at all resolves to ``default`` (the
    pipeline default when not given).
    """
    for target in sorted(ALL_TARGETS, key=lambda t: -t.lanes):
        tables = [target.op_names, *target.op_names_by_dtype.values()]
        if any(name in source for table in tables for name in table.values()):
            return target
    return get_target(default)
