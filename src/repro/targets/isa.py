"""Target ISA descriptions: the data that defines a vector backend.

A :class:`TargetISA` bundles everything the pipeline needs to know about one
SIMD instruction set: how many 32-bit lanes a register holds, what the
vector type and the intrinsics are called, which generic operations the ISA
can express, and how its instructions are priced by the cycle simulator.

This module is the **only** place where concrete intrinsic spellings live.
Every other layer speaks in *generic operation* names (``add``, ``mul``,
``select``, ``loadu`` ...); the mapping to a target's spelling — and back —
is owned by the target:

* ``TargetISA.intrinsic(op)`` spells a generic op for the target;
* ``TargetISA.op_of(name)`` inverts one target's spelling;
* :func:`resolve_intrinsic` inverts any registered target's spelling and
  raises :class:`UnknownIntrinsicName` for spellings no target emits —
  callers must never guess or silently coerce an unknown name into some
  other ISA's grammar.

Six concrete instances ship here:

* ``SSE4``  — 4 lanes / 128-bit registers, x86 ``{prefix}_{op}_{suffix}``
  spellings;
* ``NEON``  — 4 lanes / 128-bit registers with the ARM ``v{op}q_s32``
  spelling scheme, which deliberately shares nothing with the x86 grammar;
* ``SVE128`` / ``SVE256`` — ARM SVE at two *simulated* vector lengths
  (scalable hardware modelled at fixed 128-/256-bit widths): the first
  *predicate-first* backend — ``svbool_t`` predicate registers govern
  memory, comparisons and selects, and there are no unpredicated loads or
  stores at all;
* ``AVX2``  — 8 lanes / 256-bit registers (the paper's target; every
  default in the pipeline resolves to it);
* ``AVX512`` — 16 lanes / 512-bit registers with native masked
  loads/stores/blends.

Everything downstream — the intrinsic registries, the planner's legality
window, code generation, the interpreter and symbolic executor, the lexer's
vector-type keywords, the cost model and the campaign engine — consumes
these descriptions, so adding a further backend (SVE, RVV, ...) is a
data-only change in this module.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Mapping

if TYPE_CHECKING:  # pragma: no cover - import cycle guard (cfront derives
    from repro.cfront.ctypes import CType  # its vector types from this module)


class UnsupportedTargetOperation(KeyError):
    """A generic vector operation the active target cannot express."""

    def __init__(self, target: "TargetISA", op: str):
        super().__init__(f"{target.display_name} has no intrinsic for {op!r}")
        self.target = target
        self.op = op


class UnknownIntrinsicName(KeyError):
    """An intrinsic spelling that no registered target emits.

    Raised by the reverse mapping instead of guessing a target: mutating an
    unknown spelling into some ISA's grammar would silently change which
    backend a candidate belongs to.
    """

    def __init__(self, name: str):
        known = ", ".join(t.display_name for t in ALL_TARGETS)
        super().__init__(
            f"intrinsic spelling {name!r} belongs to no registered target ({known})"
        )
        self.name = name


def _x86_op_names(prefix: str, si: str, **overrides: str) -> dict[str, str]:
    """The regular x86 naming scheme: ``{prefix}_{op}`` / ``{prefix}_{op}_{si}``.

    Keys are the ISA-neutral generic operation names the rest of the
    pipeline speaks; values are this scheme's concrete spellings.
    ``overrides`` replaces individual entries (e.g. AVX-512's native masked
    forms); mapping an op to an empty string removes it, which is how a
    target declares an operation unavailable.
    """
    names = {
        # per-lane arithmetic / comparison
        "add": f"{prefix}_add_epi32",
        "sub": f"{prefix}_sub_epi32",
        "mul": f"{prefix}_mullo_epi32",
        "cmpgt": f"{prefix}_cmpgt_epi32",
        "cmpeq": f"{prefix}_cmpeq_epi32",
        "max": f"{prefix}_max_epi32",
        "min": f"{prefix}_min_epi32",
        "abs": f"{prefix}_abs_epi32",
        # full-register bitwise
        "and": f"{prefix}_and_{si}",
        "or": f"{prefix}_or_{si}",
        "xor": f"{prefix}_xor_{si}",
        "andnot": f"{prefix}_andnot_{si}",
        # per-lane selects and shifts
        "select": f"{prefix}_blendv_epi8",
        "srl": f"{prefix}_srli_epi32",
        "sll": f"{prefix}_slli_epi32",
        "sra": f"{prefix}_srai_epi32",
        # lane rearrangement
        "shuffle": f"{prefix}_shuffle_epi32",
        "hadd": f"{prefix}_hadd_epi32",
        "permute_halves": f"{prefix}_permute2x128_{si}",
        # memory
        "loadu": f"{prefix}_loadu_{si}",
        "storeu": f"{prefix}_storeu_{si}",
        "maskload": f"{prefix}_maskload_epi32",
        "maskstore": f"{prefix}_maskstore_epi32",
        # vector construction / extraction
        "set1": f"{prefix}_set1_epi32",
        "setzero": f"{prefix}_setzero_{si}",
        "setr": f"{prefix}_setr_epi32",
        "set": f"{prefix}_set_epi32",
        "extract": f"{prefix}_extract_epi32",
    }
    for op, name in overrides.items():
        if name:
            names[op] = name
        else:
            names.pop(op, None)
    return names


def _sve_op_names(vl_bits: int) -> dict[str, str]:
    """The ARM SVE (ACLE) naming scheme at one simulated vector length.

    Real ACLE spellings are deliberately VL-agnostic (``svadd_s32_x`` works
    at any hardware vector length); the pipeline's "width travels with the
    intrinsic name" invariant forces each *simulated* VL to stamp its width
    into the spelling (``_vl128`` / ``_vl256``), the same kind of model-level
    fidelity compromise the AVX-512 and NEON notes document.  Further
    fidelity notes: the unpredicated ``_x`` forms drop ACLE's governing
    predicate operand (an implicit all-true ``ptrue``), ``svptest_any`` takes
    one predicate instead of ACLE's two, and ``svget_lane_s32`` stands in
    for the ``svlasta``/compact dance a real single-lane extract needs.

    There is **no** ``loadu``/``storeu``/``cmpgt``/``select`` here: SVE has
    no unpredicated memory operations and its comparisons produce predicate
    registers, so the predicate-first generic ops (``pload``/``pstore``/
    ``pcmpgt``/``psel`` ...) are the only way to touch memory or build masks.
    """
    s = f"_vl{vl_bits}"
    return {
        # unpredicated ("don't-care" _x form) data ops
        "add": f"svadd_s32_x{s}",
        "sub": f"svsub_s32_x{s}",
        "mul": f"svmul_s32_x{s}",
        "max": f"svmax_s32_x{s}",
        "min": f"svmin_s32_x{s}",
        "abs": f"svabs_s32_x{s}",
        "and": f"svand_s32_x{s}",
        "or": f"svorr_s32_x{s}",
        "xor": f"sveor_s32_x{s}",
        "srl": f"svlsr_n_s32_x{s}",
        "sll": f"svlsl_n_s32_x{s}",
        "sra": f"svasr_n_s32_x{s}",
        # construction / extraction
        "set1": f"svdup_n_s32{s}",
        "index": f"svindex_s32{s}",
        "extract": f"svget_lane_s32{s}",
        # predicate construction and queries
        "ptrue": f"svptrue_b32{s}",
        "whilelt": f"svwhilelt_b32{s}",
        "ptest_any": f"svptest_any_b32{s}",
        # predicate logic (zeroing forms, governed by the first operand)
        "pnot": f"svnot_b_z{s}",
        "pand": f"svand_b_z{s}",
        "por": f"svorr_b_z{s}",
        # predicate-producing comparisons and predicate-consuming ops
        "pcmpgt": f"svcmpgt_s32{s}",
        "pcmpeq": f"svcmpeq_s32{s}",
        "psel": f"svsel_s32{s}",
        "pload": f"svld1_s32{s}",
        "pstore": f"svst1_s32{s}",
        "padd": f"svadd_s32_m{s}",
    }


@dataclass(frozen=True)
class TargetISA:
    """One vector backend, described entirely as data."""

    #: Canonical lowercase identifier used in configs, caches and env knobs.
    name: str
    #: Human-facing spelling used in prompts and rejection messages.
    display_name: str
    #: Number of 32-bit lanes per vector register.
    lanes: int
    #: The C vector type the backend's candidates declare.
    vector_type: str
    #: Intrinsic name prefix; informational (prompts, docs) — spelling goes
    #: through ``op_names``, never through string surgery on the prefix.
    prefix: str
    #: Generic operation -> concrete intrinsic name.  An op absent from this
    #: mapping is unavailable on the target.
    op_names: Mapping[str, str] = field(default_factory=dict)
    #: Cost-model category overrides (``vec_load`` ...) relative to the AVX2
    #: base table in :mod:`repro.perf.costmodel`.
    vector_cost_overrides: Mapping[str, float] = field(default_factory=dict)
    #: Per-op cycle-cost overrides for the intrinsic registry specs, keyed by
    #: generic op name.
    intrinsic_cost_overrides: Mapping[str, float] = field(default_factory=dict)
    #: True when masked loads/stores/blends are first-class instructions
    #: (AVX-512) rather than AVX-style emulations.
    has_native_masked_ops: bool = False
    #: Bits per lane; the whole pipeline models 32-bit integer TSVC loops.
    lane_bits: int = 32
    #: Header a candidate for this target conventionally includes.
    header: str = "immintrin.h"
    #: A gather spelling the target does *not* actually have; the synthetic
    #: LLM uses it to model "the model invented an intrinsic" failures.  It
    #: must never collide with a real ``op_names`` entry of any target.
    bogus_gather_spelling: str = ""
    #: C type of the target's predicate registers ("" = the target has no
    #: predicate registers; masks are ordinary data vectors).
    predicate_type: str = ""
    #: True when the architectural vector length is scalable and ``lanes``
    #: is one *simulated* fixed width.  Scalable vector types are shared
    #: across simulated widths, so their declarations always need an
    #: initializer — the width travels with the intrinsic names, never with
    #: the type.
    scalable: bool = False

    def __post_init__(self) -> None:
        reverse: dict[str, str] = {}
        for op, spelled in self.op_names.items():
            if spelled in reverse:
                raise ValueError(
                    f"{self.display_name}: spelling {spelled!r} assigned to both "
                    f"{reverse[spelled]!r} and {op!r}"
                )
            reverse[spelled] = op
        object.__setattr__(self, "_ops_by_name", reverse)

    # -- capability queries -------------------------------------------------

    @property
    def register_bits(self) -> int:
        return self.lanes * self.lane_bits

    def supports(self, op: str) -> bool:
        """Whether the generic operation ``op`` exists on this target."""
        return op in self.op_names

    @property
    def has_masked_memory(self) -> bool:
        """Whether the target can express masked loads *and* stores at all
        (natively or as AVX-style emulations).  NEON-class targets cannot:
        their masking is select-based and purely in-register.  SVE-class
        targets answer False too — their memory masking is predicate
        registers, a strictly stronger mechanism with its own legalization
        (:attr:`has_predicated_loops`)."""
        return self.supports("maskload") and self.supports("maskstore")

    @property
    def has_predicates(self) -> bool:
        """Whether masks live in predicate registers (``svbool_t``) rather
        than data vectors.  Predicate-first targets spell comparisons,
        selects and memory through the ``p*`` generic ops."""
        return bool(self.predicate_type)

    @property
    def plain_load_op(self) -> str:
        """Generic op of this target's plain full-width load: ``loadu``, or
        ``pload`` on predicate-first targets (whose every load is governed
        by a predicate — an all-true one for plain code)."""
        return "loadu" if self.supports("loadu") else "pload"

    @property
    def has_predicated_loops(self) -> bool:
        """Whether the target can retire a loop tail with a
        ``whilelt``-governed predicated main loop (no scalar epilogue, no
        masked-tail iteration): it needs predicate construction, a loop-exit
        test and predicate-governed memory."""
        return all(self.supports(op)
                   for op in ("whilelt", "ptest_any", "pload", "pstore"))

    # -- spelling (the bidirectional op <-> name mapping) -------------------

    def intrinsic(self, op: str) -> str:
        """Concrete intrinsic name for a generic op (raises if unavailable)."""
        try:
            return self.op_names[op]
        except KeyError:
            raise UnsupportedTargetOperation(self, op) from None

    def op_of(self, name: str) -> str:
        """Generic op of one of *this* target's spellings (raises otherwise)."""
        try:
            return self._ops_by_name[name]
        except KeyError:
            raise UnknownIntrinsicName(name) from None

    def spells(self, name: str) -> bool:
        """Whether ``name`` is one of this target's intrinsic spellings."""
        return name in self._ops_by_name

    def zero_call(self) -> tuple[str, tuple[int, ...]]:
        """How this target materializes an all-zero register, as
        ``(intrinsic name, immediate args)``.

        x86 has a dedicated ``setzero``; NEON idiomatically broadcasts a zero
        (``vdupq_n_s32(0)``), so targets without ``setzero`` fall back to
        ``set1`` with a literal 0 argument.
        """
        if self.supports("setzero"):
            return self.intrinsic("setzero"), ()
        return self.intrinsic("set1"), (0,)

    # -- C-type plumbing ----------------------------------------------------

    @property
    def vector_ctype(self) -> "CType":
        from repro.cfront.ctypes import CType

        return CType(self.vector_type)

    @property
    def vector_pointer_ctype(self) -> "CType":
        from repro.cfront.ctypes import CType

        return CType(self.vector_type, 1)

    @property
    def predicate_ctype(self) -> "CType":
        from repro.cfront.ctypes import CType

        if not self.predicate_type:
            raise ValueError(f"{self.display_name} has no predicate registers")
        return CType(self.predicate_type)


#: 4 x 32-bit lanes.  The 128-bit maskload is technically an AVX (VEX)
#: encoding of a 128-bit operation; it is included so masked-epilogue
#: candidates stay expressible at every x86 width.
SSE4 = TargetISA(
    name="sse4",
    display_name="SSE4",
    lanes=4,
    vector_type="__m128i",
    prefix="_mm",
    op_names=_x86_op_names("_mm", "si128", permute_halves=""),
    vector_cost_overrides={
        # 128-bit memory ops move half the data of the AVX2 base figures.
        "vec_load": 4.0,
        "vec_store": 4.0,
        "vec_maskload": 6.0,
        "vec_maskstore": 6.0,
        "vec_setr": 1.5,
        "vec_set": 1.5,
        "vec_extract": 2.0,
    },
    intrinsic_cost_overrides={"loadu": 2.0, "storeu": 2.0, "extract": 1.0},
    bogus_gather_spelling="_mm_gather_load_epi32",
)

#: 4 x 32-bit lanes with the ARM NEON (AArch64 AdvSIMD) naming scheme: the
#: first backend whose spellings share nothing with the x86
#: ``{prefix}_{op}_{suffix}`` grammar, which is exactly why it exists —
#: any string surgery that survives elsewhere breaks on ``vaddq_s32``.
#:
#: NEON has **no masked loads or stores**: ``maskload``/``maskstore`` are
#: absent from the table, masking is select-based (``vbslq_s32``) and purely
#: in-register, and the planner/codegen reject masked-memory requests with a
#: message naming the gap.  There is also no zero-idiom intrinsic
#: (``zero_call`` falls back to ``vdupq_n_s32(0)``), no whole-register
#: ``set`` constructor and no in-register shuffle-by-immediate.
#:
#: Fidelity notes (same spirit as the AVX-512 ones): the pipeline keeps one
#: uniform call shape per generic op, so a few spellings are model-level
#: pseudo-intrinsics rather than verbatim ``arm_neon.h``: real
#: ``vbslq_s32`` takes the mask operand *first* (here it shares the
#: ``(else, then, mask)`` order of the other targets), ``vshrq_n_u32``
#: would need ``vreinterpretq`` casts around it for a logical shift of
#: signed data, and ``vsetq_s32`` stands in for the lane-by-lane
#: ``vsetq_lane_s32`` chain that a real ramp constant needs.
NEON = TargetISA(
    name="neon",
    display_name="NEON",
    lanes=4,
    vector_type="int32x4_t",
    prefix="v",
    op_names={
        "add": "vaddq_s32",
        "sub": "vsubq_s32",
        "mul": "vmulq_s32",
        "cmpgt": "vcgtq_s32",
        "cmpeq": "vceqq_s32",
        "max": "vmaxq_s32",
        "min": "vminq_s32",
        "abs": "vabsq_s32",
        "and": "vandq_s32",
        "or": "vorrq_s32",
        "xor": "veorq_s32",
        "select": "vbslq_s32",
        "srl": "vshrq_n_u32",
        "sll": "vshlq_n_s32",
        "sra": "vshrq_n_s32",
        "hadd": "vpaddq_s32",
        "loadu": "vld1q_s32",
        "storeu": "vst1q_s32",
        "set1": "vdupq_n_s32",
        "setr": "vsetq_s32",
        "extract": "vgetq_lane_s32",
    },
    vector_cost_overrides={
        # 128-bit memory ops, like SSE4; NEON multiplies are single-uop and
        # lane extraction is cheap on AArch64 cores.
        "vec_load": 4.0,
        "vec_store": 4.0,
        "vec_pure_vector": 1.5,
        "vec_setr": 1.5,
        "vec_extract": 1.5,
    },
    intrinsic_cost_overrides={"loadu": 2.0, "storeu": 2.0, "extract": 1.0,
                              "mul": 1.5, "select": 0.5},
    bogus_gather_spelling="vgatherq_s32",
    header="arm_neon.h",
)

#: ARM SVE at a simulated 128-bit vector length: 4 x 32-bit lanes behind the
#: scalable ``svint32_t``/``svbool_t`` types.  The first predicate-first
#: backend: comparisons produce ``svbool_t`` predicates (``svcmpgt_s32``),
#: selects consume them (``svsel_s32``), and **every** memory access is
#: predicate-governed (``svld1_s32``/``svst1_s32`` — there are no
#: unpredicated loads or stores in the table because the architecture has
#: none).  ``svwhilelt_b32`` + ``svptest_any`` give the tail-free
#: predicated-loop legalization the planner's ``predicated_loop`` epilogue
#: strategy emits.  See :func:`_sve_op_names` for the simulated-VL spelling
#: fidelity notes.
SVE128 = TargetISA(
    name="sve128",
    display_name="SVE (VL128)",
    lanes=4,
    vector_type="svint32_t",
    prefix="sv",
    op_names=_sve_op_names(128),
    vector_cost_overrides={
        # 128-bit predicated memory moves half the data of the 256-bit base
        # figures (SVE has no unpredicated loads/stores, so only the
        # predicated categories need narrowing); lane extraction is cheap on
        # AArch64 cores.
        "vec_pload": 4.5,
        "vec_pstore": 4.5,
        "vec_extract": 1.5,
    },
    intrinsic_cost_overrides={"pload": 2.5, "pstore": 2.5, "extract": 1.0,
                              "mul": 1.5, "psel": 0.5},
    bogus_gather_spelling="svgather_index_s32_vl128",
    header="arm_sve.h",
    predicate_type="svbool_t",
    scalable=True,
)

#: ARM SVE at a simulated 256-bit vector length: the same scalable types and
#: predicate-first op set as :data:`SVE128` at 8 lanes.  Campaigns drive both
#: simulated VLs through ``CampaignRunner.run_multi_target`` to demonstrate
#: VL-agnostic verdicts — the same kernel must verify identically at either
#: width.
SVE256 = TargetISA(
    name="sve256",
    display_name="SVE (VL256)",
    lanes=8,
    vector_type="svint32_t",
    prefix="sv",
    op_names=_sve_op_names(256),
    vector_cost_overrides={
        # 256-bit predicated memory: AVX2-class traffic plus the predicate
        # overhead.
        "vec_pload": 6.5,
        "vec_pstore": 6.5,
    },
    intrinsic_cost_overrides={"mul": 1.5, "psel": 0.5},
    bogus_gather_spelling="svgather_index_s32_vl256",
    header="arm_sve.h",
    predicate_type="svbool_t",
    scalable=True,
)

#: 8 x 32-bit lanes — the paper's target; the behavioural baseline every
#: other backend is measured against.  No overrides: the AVX2 tables *are*
#: the base tables.  ``cast_low`` is the historical reduction-tail
#: reinterpret of the low 128-bit half, an AVX2-only extra spelling.
AVX2 = TargetISA(
    name="avx2",
    display_name="AVX2",
    lanes=8,
    vector_type="__m256i",
    prefix="_mm256",
    op_names=_x86_op_names("_mm256", "si256",
                           cast_low="_mm256_castsi256_si128"),
    bogus_gather_spelling="_mm256_gather_load_epi32",
)

#: 16 x 32-bit lanes with native masked memory ops and blends.  Horizontal
#: adds and half-register permutes do not exist at 512 bits; reductions fall
#: back to per-lane extracts.
#:
#: Fidelity note: this backend keeps the pipeline's uniform call shapes, so
#: a few spellings are model-level pseudo-intrinsics rather than verbatim
#: immintrin.h: real AVX-512 comparisons return a 16-bit predicate mask,
#: the masked forms take the mask operand first, and there is no 512-bit
#: single-lane extract.  The semantics modelled (full-lane 0/-1 masks,
#: select/maskload argument order shared with the other targets) are what
#: the interpreter, symbolic executor and verifier implement; emitting
#: compilable AVX-512 C would need a thin renaming pass on top of this
#: table.
AVX512 = TargetISA(
    name="avx512",
    display_name="AVX-512",
    lanes=16,
    vector_type="__m512i",
    prefix="_mm512",
    op_names=_x86_op_names(
        "_mm512", "si512",
        select="_mm512_mask_blend_epi32",
        maskload="_mm512_mask_loadu_epi32",
        maskstore="_mm512_mask_storeu_epi32",
        hadd="",
        permute_halves="",
    ),
    vector_cost_overrides={
        # 512-bit ops: wider data per instruction, slightly worse latency
        # (port 5 pressure / licence-level downclock on Skylake-X-class cores).
        "vec_load": 8.0,
        "vec_store": 8.0,
        "vec_maskload": 9.0,
        "vec_maskstore": 9.0,
        "vec_pure_binary": 2.0,
        "vec_pure_vector": 2.5,
        "vec_setr": 3.0,
        "vec_set": 3.0,
        "vec_extract": 4.0,
    },
    intrinsic_cost_overrides={"loadu": 4.0, "storeu": 4.0, "extract": 3.0,
                              "mul": 2.5, "select": 1.0},
    has_native_masked_ops=True,
    bogus_gather_spelling="_mm512_gather_load_epi32",
)

#: Registration order doubles as the canonical narrow-to-wide ordering
#: (ties broken by registration: SSE4 before NEON before SVE128 at 4 lanes,
#: AVX2 — the default — before SVE256 at 8).
ALL_TARGETS: tuple[TargetISA, ...] = (SSE4, NEON, SVE128, AVX2, SVE256, AVX512)

DEFAULT_TARGET: TargetISA = AVX2

_ALIASES = {
    "sse": "sse4", "sse4": "sse4", "sse4.1": "sse4", "sse41": "sse4",
    "neon": "neon", "arm": "neon", "armv8": "neon", "asimd": "neon",
    "sve": "sve256", "sve128": "sve128", "sve-128": "sve128",
    "sve256": "sve256", "sve-256": "sve256", "sve2": "sve256",
    "avx2": "avx2", "avx": "avx2",
    "avx512": "avx512", "avx-512": "avx512", "avx512f": "avx512",
}

_BY_NAME = {target.name: target for target in ALL_TARGETS}


def _build_spelling_index() -> dict[str, tuple[str, str]]:
    """Intrinsic spelling -> (target name, generic op), across all targets."""
    index: dict[str, tuple[str, str]] = {}
    for target in ALL_TARGETS:
        for op, spelled in target.op_names.items():
            existing = index.get(spelled)
            if existing is not None and existing[1] != op:
                raise RuntimeError(
                    f"intrinsic spelling collision across targets: {spelled!r} "
                    f"is {existing[1]!r} on {existing[0]} but {op!r} on {target.name}"
                )
            if existing is None:
                index[spelled] = (target.name, op)
    return index


_SPELLING_INDEX = _build_spelling_index()


#: Lane count recorded for scalable vector types: the width is simulated
#: per target, so the *type* carries no width — declarations of a scalable
#: type always need an initializer, and the width travels with the intrinsic
#: names instead.
SCALABLE_LANES = 0


def _build_vector_type_lanes() -> dict[str, int]:
    table: dict[str, int] = {}
    for target in ALL_TARGETS:
        lanes = SCALABLE_LANES if target.scalable else target.lanes
        existing = table.get(target.vector_type)
        if existing is not None and existing != lanes:
            raise RuntimeError(
                f"vector type {target.vector_type!r} registered with both "
                f"{existing} and {lanes} lanes"
            )
        table[target.vector_type] = lanes
    return table


#: Vector type name -> 32-bit lane count, derived from the registered
#: targets.  The lexer/parser keyword sets and the C type model consume
#: this, so a new backend's vector type becomes a keyword automatically.
#: Scalable types map to :data:`SCALABLE_LANES` (0): the two simulated SVE
#: vector lengths share one ``svint32_t``, exactly as on real hardware.
VECTOR_TYPE_LANES: dict[str, int] = _build_vector_type_lanes()

#: Predicate register type names of every registered target (``svbool_t``);
#: the lexer/parser keyword sets and the C type model consume this the same
#: way they consume :data:`VECTOR_TYPE_LANES`.
PREDICATE_TYPE_NAMES: frozenset[str] = frozenset(
    target.predicate_type for target in ALL_TARGETS if target.predicate_type
)


def vector_type_lanes() -> dict[str, int]:
    """A copy of the vector-type table (type name -> lane count)."""
    return dict(VECTOR_TYPE_LANES)


def target_names() -> list[str]:
    """Canonical names of all registered targets, narrow to wide."""
    return [target.name for target in ALL_TARGETS]


def all_targets() -> tuple[TargetISA, ...]:
    return ALL_TARGETS


def get_target(target: "TargetISA | str | None") -> TargetISA:
    """Resolve a target spec (instance, name/alias, or None -> default)."""
    if target is None:
        return DEFAULT_TARGET
    if isinstance(target, TargetISA):
        return target
    canonical = _ALIASES.get(str(target).strip().lower())
    if canonical is None:
        known = ", ".join(sorted(_BY_NAME))
        raise ValueError(f"unknown target ISA {target!r} (known: {known})")
    return _BY_NAME[canonical]


def resolve_target_setting(*settings: "TargetISA | str | None") -> TargetISA:
    """The single default-resolution rule for layered target settings.

    Walks ``settings`` from most to least specific (e.g. explicit argument,
    tool config, campaign config) and resolves the first one that is set;
    when every layer is unset (``None``), the pipeline default applies.
    Agents, prompts, the synthetic LLM and the campaign engine all resolve
    through here, so they cannot disagree about the active target.
    """
    for setting in settings:
        if setting is not None:
            return get_target(setting)
    return DEFAULT_TARGET


def resolve_intrinsic(name: str) -> tuple[TargetISA, str]:
    """Invert an intrinsic spelling: ``(owning target, generic op)``.

    Spellings shared by several targets resolve to the first registrant.
    Raises :class:`UnknownIntrinsicName` for spellings no target emits —
    never coerces an unknown name into another ISA's grammar.
    """
    entry = _SPELLING_INDEX.get(name)
    if entry is None:
        raise UnknownIntrinsicName(name)
    target_name, op = entry
    return _BY_NAME[target_name], op


def known_intrinsic_spellings() -> frozenset[str]:
    """Every intrinsic spelling any registered target emits."""
    return frozenset(_SPELLING_INDEX)


def contains_known_intrinsics(source: str) -> bool:
    """Whether ``source`` mentions any registered target's intrinsics."""
    return any(name in source for name in _SPELLING_INDEX)


def detect_target(source: str, default: "TargetISA | str | None" = None) -> TargetISA:
    """Infer the target ISA of candidate C source from its intrinsic spellings.

    The widest target with a spelling hit wins (an AVX2 reduction tail may
    legitimately contain the narrow ``cast_low`` + 4-lane extract idiom);
    source with no registered intrinsics at all resolves to ``default`` (the
    pipeline default when not given).
    """
    for target in sorted(ALL_TARGETS, key=lambda t: -t.lanes):
        if any(name in source for name in target.op_names.values()):
            return target
    return get_target(default)
