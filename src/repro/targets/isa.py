"""Target ISA descriptions: the data that defines a vector backend.

A :class:`TargetISA` bundles everything the pipeline needs to know about one
SIMD instruction set: how many 32-bit lanes a register holds, what the
vector type and the intrinsics are called, which generic operations the ISA
can express, and how its instructions are priced by the cycle simulator.
Three concrete instances ship here:

* ``SSE4``  — 4 lanes / 128-bit registers, ``_mm_*`` intrinsics;
* ``AVX2``  — 8 lanes / 256-bit registers, ``_mm256_*`` intrinsics (the
  paper's target; every default in the pipeline resolves to it);
* ``AVX512`` — 16 lanes / 512-bit registers, ``_mm512_*`` intrinsics with
  native masked loads/stores/blends.

Everything downstream — the intrinsic registries, the planner's legality
window, code generation, the interpreter and symbolic executor, the cost
model and the campaign engine — consumes these descriptions, so adding a
further backend is a data-only change in this module.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Mapping

from repro.cfront.ctypes import CType


class UnsupportedTargetOperation(KeyError):
    """A generic vector operation the active target cannot express."""

    def __init__(self, target: "TargetISA", op: str):
        super().__init__(f"{target.display_name} has no intrinsic for {op!r}")
        self.target = target
        self.op = op


def _x86_op_names(prefix: str, si: str, **overrides: str) -> dict[str, str]:
    """The regular x86 naming scheme: ``{prefix}_{op}`` / ``{prefix}_{op}_{si}``.

    ``overrides`` replaces individual entries (e.g. AVX-512's native masked
    forms); mapping an op to an empty string removes it, which is how a
    target declares an operation unavailable.
    """
    names = {
        # per-lane arithmetic / comparison (suffix epi32)
        "add_epi32": f"{prefix}_add_epi32",
        "sub_epi32": f"{prefix}_sub_epi32",
        "mullo_epi32": f"{prefix}_mullo_epi32",
        "cmpgt_epi32": f"{prefix}_cmpgt_epi32",
        "cmpeq_epi32": f"{prefix}_cmpeq_epi32",
        "max_epi32": f"{prefix}_max_epi32",
        "min_epi32": f"{prefix}_min_epi32",
        "abs_epi32": f"{prefix}_abs_epi32",
        # full-register bitwise (suffix si128/si256/si512)
        "and": f"{prefix}_and_{si}",
        "or": f"{prefix}_or_{si}",
        "xor": f"{prefix}_xor_{si}",
        "andnot": f"{prefix}_andnot_{si}",
        # blends and shifts
        "blendv": f"{prefix}_blendv_epi8",
        "srli_epi32": f"{prefix}_srli_epi32",
        "slli_epi32": f"{prefix}_slli_epi32",
        "srai_epi32": f"{prefix}_srai_epi32",
        # lane rearrangement
        "shuffle_epi32": f"{prefix}_shuffle_epi32",
        "hadd_epi32": f"{prefix}_hadd_epi32",
        "permute2x128": f"{prefix}_permute2x128_{si}",
        # memory
        "loadu": f"{prefix}_loadu_{si}",
        "storeu": f"{prefix}_storeu_{si}",
        "maskload": f"{prefix}_maskload_epi32",
        "maskstore": f"{prefix}_maskstore_epi32",
        # vector construction / extraction
        "set1": f"{prefix}_set1_epi32",
        "setzero": f"{prefix}_setzero_{si}",
        "setr": f"{prefix}_setr_epi32",
        "set": f"{prefix}_set_epi32",
        "extract": f"{prefix}_extract_epi32",
    }
    for op, name in overrides.items():
        if name:
            names[op] = name
        else:
            names.pop(op, None)
    return names


@dataclass(frozen=True)
class TargetISA:
    """One vector backend, described entirely as data."""

    #: Canonical lowercase identifier used in configs, caches and env knobs.
    name: str
    #: Human-facing spelling used in prompts and rejection messages.
    display_name: str
    #: Number of 32-bit lanes per vector register.
    lanes: int
    #: The C vector type the backend's candidates declare (``__m256i`` ...).
    vector_type: str
    #: Intrinsic name prefix (``_mm``, ``_mm256``, ``_mm512``).
    prefix: str
    #: Generic operation -> concrete intrinsic name.  An op absent from this
    #: mapping is unavailable on the target.
    op_names: Mapping[str, str] = field(default_factory=dict)
    #: Cost-model category overrides (``vec_load`` ...) relative to the AVX2
    #: base table in :mod:`repro.perf.costmodel`.
    vector_cost_overrides: Mapping[str, float] = field(default_factory=dict)
    #: Per-op cycle-cost overrides for the intrinsic registry specs.
    intrinsic_cost_overrides: Mapping[str, float] = field(default_factory=dict)
    #: True when masked loads/stores/blends are first-class instructions
    #: (AVX-512) rather than AVX-style emulations.
    has_native_masked_ops: bool = False
    #: Bits per lane; the whole pipeline models 32-bit integer TSVC loops.
    lane_bits: int = 32

    # -- capability queries -------------------------------------------------

    @property
    def register_bits(self) -> int:
        return self.lanes * self.lane_bits

    def supports(self, op: str) -> bool:
        """Whether the generic operation ``op`` exists on this target."""
        return op in self.op_names

    def intrinsic(self, op: str) -> str:
        """Concrete intrinsic name for a generic op (raises if unavailable)."""
        try:
            return self.op_names[op]
        except KeyError:
            raise UnsupportedTargetOperation(self, op) from None

    # -- C-type plumbing ----------------------------------------------------

    @property
    def vector_ctype(self) -> CType:
        return CType(self.vector_type)

    @property
    def vector_pointer_ctype(self) -> CType:
        return CType(self.vector_type, 1)


#: 4 x 32-bit lanes.  ``_mm_maskload_epi32`` is technically an AVX (VEX)
#: encoding of a 128-bit operation; it is included so masked-epilogue
#: candidates stay expressible at every width.
SSE4 = TargetISA(
    name="sse4",
    display_name="SSE4",
    lanes=4,
    vector_type="__m128i",
    prefix="_mm",
    op_names=_x86_op_names("_mm", "si128", permute2x128=""),
    vector_cost_overrides={
        # 128-bit memory ops move half the data of the AVX2 base figures.
        "vec_load": 4.0,
        "vec_store": 4.0,
        "vec_maskload": 6.0,
        "vec_maskstore": 6.0,
        "vec_setr": 1.5,
        "vec_set": 1.5,
        "vec_extract": 2.0,
    },
    intrinsic_cost_overrides={"loadu": 2.0, "storeu": 2.0, "extract": 1.0},
)

#: 8 x 32-bit lanes — the paper's target; the behavioural baseline every
#: other backend is measured against.  No overrides: the AVX2 tables *are*
#: the base tables.
AVX2 = TargetISA(
    name="avx2",
    display_name="AVX2",
    lanes=8,
    vector_type="__m256i",
    prefix="_mm256",
    op_names=_x86_op_names("_mm256", "si256"),
)

#: 16 x 32-bit lanes with native masked memory ops and blends.  Horizontal
#: adds and 2x128 permutes do not exist at 512 bits; reductions fall back to
#: per-lane extracts.
#:
#: Fidelity note: this backend keeps the pipeline's uniform call shapes, so
#: a few spellings are model-level pseudo-intrinsics rather than verbatim
#: immintrin.h: real AVX-512 comparisons return ``__mmask16``
#: (``_mm512_cmpgt_epi32_mask``), the masked forms take the mask operand
#: first, and there is no ``_mm512_extract_epi32``.  The semantics modelled
#: (full-lane 0/-1 masks, blend/maskload argument order shared with the
#: other targets) are what the interpreter, symbolic executor and verifier
#: implement; emitting compilable AVX-512 C would need a thin renaming pass
#: on top of this table.
AVX512 = TargetISA(
    name="avx512",
    display_name="AVX-512",
    lanes=16,
    vector_type="__m512i",
    prefix="_mm512",
    op_names=_x86_op_names(
        "_mm512", "si512",
        blendv="_mm512_mask_blend_epi32",
        maskload="_mm512_mask_loadu_epi32",
        maskstore="_mm512_mask_storeu_epi32",
        hadd_epi32="",
        permute2x128="",
    ),
    vector_cost_overrides={
        # 512-bit ops: wider data per instruction, slightly worse latency
        # (port 5 pressure / licence-level downclock on Skylake-X-class cores).
        "vec_load": 8.0,
        "vec_store": 8.0,
        "vec_maskload": 9.0,
        "vec_maskstore": 9.0,
        "vec_pure_binary": 2.0,
        "vec_pure_vector": 2.5,
        "vec_setr": 3.0,
        "vec_set": 3.0,
        "vec_extract": 4.0,
    },
    intrinsic_cost_overrides={"loadu": 4.0, "storeu": 4.0, "extract": 3.0,
                              "mullo_epi32": 2.5, "blendv": 1.0},
    has_native_masked_ops=True,
)

#: Registration order doubles as the canonical narrow-to-wide ordering.
ALL_TARGETS: tuple[TargetISA, ...] = (SSE4, AVX2, AVX512)

DEFAULT_TARGET: TargetISA = AVX2

_ALIASES = {
    "sse": "sse4", "sse4": "sse4", "sse4.1": "sse4", "sse41": "sse4",
    "avx2": "avx2", "avx": "avx2",
    "avx512": "avx512", "avx-512": "avx512", "avx512f": "avx512",
}

_BY_NAME = {target.name: target for target in ALL_TARGETS}


def target_names() -> list[str]:
    """Canonical names of all registered targets, narrow to wide."""
    return [target.name for target in ALL_TARGETS]


def all_targets() -> tuple[TargetISA, ...]:
    return ALL_TARGETS


def get_target(target: "TargetISA | str | None") -> TargetISA:
    """Resolve a target spec (instance, name/alias, or None -> default)."""
    if target is None:
        return DEFAULT_TARGET
    if isinstance(target, TargetISA):
        return target
    canonical = _ALIASES.get(str(target).strip().lower())
    if canonical is None:
        known = ", ".join(sorted(_BY_NAME))
        raise ValueError(f"unknown target ISA {target!r} (known: {known})")
    return _BY_NAME[canonical]


def detect_target(source: str, default: "TargetISA | str | None" = None) -> TargetISA:
    """Infer the target ISA of candidate C source from its intrinsic prefixes.

    Widest match wins (``_mm512_`` before ``_mm256_`` before ``_mm_``, which
    is also a prefix of the other two); source with no intrinsics at all
    resolves to ``default`` (the AVX2 default when not given).
    """
    if "_mm512_" in source:
        return AVX512
    if "_mm256_" in source:
        return AVX2
    if "_mm_" in source:
        return SSE4
    return get_target(default)
