"""Incremental re-verification and store compaction for long-lived campaigns.

A full-matrix CI sweep re-runs the whole suite after *every* change, but
most changes invalidate almost nothing: the campaign cache keys are
content-addressed — each task's key folds in the kernel source, the
candidate code, the derived seed and the target-salted
``config_fingerprint`` of the fully-resolved vectorizer configuration — so
a planner/codegen/target/epilogue edit changes exactly the keys of the work
it affects, and an existing JSONL store already answers every key it
doesn't.  This module turns that property into a workflow:

* :func:`plan_reverify` recomputes the current configuration's task keys
  and diffs them against a store — *without executing anything* — reporting
  which kernels are up to date and which must re-run;
* :func:`reverify` executes only the changed kernels (through the ordinary
  campaign engine, with all its batching/stealing/fault tolerance) and
  splices the unchanged verdicts from the store, returning the plan plus a
  report bit-identical to a from-scratch run;
* :func:`compact_store` rewrites a long-lived JSONL store keeping only the
  live records — one (latest) result entry per key, the latest summary per
  (label, target, shard) — so stores that accumulated months of superseded
  error records, resumed passes and re-run summaries shrink back to their
  working set with byte-identical :func:`~repro.pipeline.shard.report_from_store`
  output.

An unchanged campaign re-verified against its own store executes **zero**
jobs; that is the CI contract (the ``incremental`` job asserts it).
"""

from __future__ import annotations

import json
import os
from dataclasses import dataclass, field, replace
from pathlib import Path
from typing import TYPE_CHECKING

from repro.pipeline.campaign import (
    CampaignConfig,
    CampaignRunner,
    _ResultStore,
    is_error_result,
)
from repro.pipeline.shard import store_live_entries

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.pipeline.campaign import CampaignReport

#: The flagship campaign label incremental re-verification targets.
VECTORIZE_LABEL = "vectorize"


@dataclass(frozen=True)
class IncrementalPlan:
    """The fingerprint diff between a configuration and an existing store."""

    label: str
    #: Resolved target ISA the tasks were fingerprinted for.
    target: str
    #: Kernels whose content-addressed key the store already answers; their
    #: verdicts splice straight from the store.
    unchanged: list[str] = field(default_factory=list)
    #: Kernels whose key is *not* in the store — new kernels, edited
    #: sources, or any config change (planner/codegen/target/epilogue/seed)
    #: that re-fingerprinted them.  Only these execute.
    changed: list[str] = field(default_factory=list)

    @property
    def total(self) -> int:
        return len(self.unchanged) + len(self.changed)

    @property
    def up_to_date(self) -> bool:
        """True when the store already answers every task (0 jobs to run)."""
        return not self.changed

    def as_dict(self) -> dict:
        return {
            "label": self.label,
            "target": self.target,
            "total": self.total,
            "unchanged": len(self.unchanged),
            "changed": list(self.changed),
        }


def _runner_for(store_path: str | Path,
                config: CampaignConfig | None) -> CampaignRunner:
    """A runner bound to ``store_path`` with resume on (the splice source)."""
    config = config or CampaignConfig()
    return CampaignRunner(replace(config, store_path=store_path, resume=True))


def plan_reverify(
    store_path: str | Path,
    names: list[str] | None = None,
    *,
    vectorizer_config=None,
    target: str | None = None,
    config: CampaignConfig | None = None,
) -> IncrementalPlan:
    """Diff the current configuration's task keys against a store — dry run.

    Builds exactly the tasks :meth:`CampaignRunner.run` would execute for
    this (kernels, vectorizer config, target) and checks which keys the
    store already answers.  Executes nothing and writes nothing.  Error
    records count as *changed* when the config would retry them
    (``retry_errors``, the default), mirroring the resume semantics.
    """
    runner = _runner_for(store_path, config)
    tasks, isa_name = runner.vectorize_tasks(names, vectorizer_config,
                                             target=target)
    stored = _ResultStore(store_path).load()
    retry_errors = runner.config.retry_errors
    unchanged: list[str] = []
    changed: list[str] = []
    for task in tasks:
        result = stored.get(task.cache_key(VECTORIZE_LABEL))
        if result is not None and not (retry_errors and is_error_result(result)):
            unchanged.append(task.kernel)
        else:
            changed.append(task.kernel)
    return IncrementalPlan(label=VECTORIZE_LABEL, target=isa_name,
                           unchanged=unchanged, changed=changed)


def reverify(
    store_path: str | Path,
    names: list[str] | None = None,
    *,
    vectorizer_config=None,
    target: str | None = None,
    config: CampaignConfig | None = None,
) -> "tuple[IncrementalPlan, CampaignReport]":
    """Execute only the kernels whose fingerprints changed; splice the rest.

    Runs the flagship vectorize campaign against ``store_path`` with resume
    on: the store answers every unchanged key, the changed kernels go
    through the ordinary engine (work-stealing batches, fault tolerance,
    persistence), and the returned report is bit-identical to a
    from-scratch run of the same configuration.  The plan tells you what
    the run is about to do; ``report.summary.executed`` confirms what it
    did (0 for an up-to-date store).
    """
    plan = plan_reverify(store_path, names, vectorizer_config=vectorizer_config,
                         target=target, config=config)
    runner = _runner_for(store_path, config)
    report = runner.run(names, vectorizer_config=vectorizer_config, target=target)
    return plan, report


@dataclass(frozen=True)
class CompactionStats:
    """What one store compaction dropped (and where the output went)."""

    path: Path
    records_before: int
    records_kept: int
    summaries_before: int
    summaries_kept: int
    bytes_before: int
    bytes_after: int

    @property
    def dropped(self) -> int:
        return (self.records_before - self.records_kept
                + self.summaries_before - self.summaries_kept)


def compact_store(path: str | Path, out_path: str | Path | None = None) -> CompactionStats:
    """Rewrite a JSONL store keeping only live records.

    Keeps the latest result entry per cache key (first-seen key order — the
    replay semantics resume, merge and reporting already apply) and the
    latest summary per (label, target, shard) (the only one
    :func:`~repro.pipeline.shard.report_from_store` aggregates), dropping
    superseded duplicates, retried error records and stale per-pass
    summaries.  ``report_from_store`` output is identical before and after.

    With no ``out_path`` the store is replaced *atomically* (written to a
    sibling temp file, then renamed over), so a reader or resuming campaign
    never observes a half-compacted store.
    """
    source = Path(path)
    results, summaries = store_live_entries(source)
    latest_summaries: dict[tuple, dict] = {}
    for entry in summaries:
        latest_summaries[(entry.get("label"), entry.get("target"),
                          entry.get("shard"))] = entry

    from repro.pipeline.cache import iter_jsonl_dicts

    records_before = sum(1 for entry in iter_jsonl_dicts(source)
                         if entry.get("type") == "result")
    bytes_before = source.stat().st_size
    destination = Path(out_path) if out_path is not None else source
    destination.parent.mkdir(parents=True, exist_ok=True)
    temp = destination.with_name(destination.name + ".compact.tmp")
    with temp.open("w", encoding="utf-8") as handle:
        for entry in results.values():
            handle.write(json.dumps(entry) + "\n")
        for entry in latest_summaries.values():
            handle.write(json.dumps(entry) + "\n")
        handle.flush()
        os.fsync(handle.fileno())
    os.replace(temp, destination)

    return CompactionStats(
        path=destination,
        records_before=records_before,
        records_kept=len(results),
        summaries_before=len(summaries),
        summaries_kept=len(latest_summaries),
        bytes_before=bytes_before,
        bytes_after=destination.stat().st_size,
    )
