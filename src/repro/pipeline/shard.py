"""Merging sharded campaign runs back into one report.

A sharded campaign runs each of N disjoint suite partitions on its own
machine (``CampaignConfig(shard=ShardSpec(i, n), store_path=...)``), each
appending to its own JSONL result store.  Because per-kernel seeds derive
from kernel names — never from suite order, worker count or shard layout —
the union of the shard stores contains exactly the records an unsharded run
would have produced, bit for bit.  This module does the offline half of the
workflow:

* :func:`merge_stores` concatenates shard result stores into one JSONL
  store, deduplicating records by cache key (and refusing to merge stores
  that *disagree* on a key, which would mean non-identical configs);
* :func:`merge_caches` does the same for persistent result-cache files, so
  a follow-up campaign on any machine starts fully warm;
* :func:`report_from_store` reconstructs a combined
  :class:`~repro.pipeline.campaign.CampaignReport` — per-kernel records in
  canonical suite order plus an aggregated summary — from a (merged or
  single) store, entirely offline.

A two-machine campaign is therefore: run shard ``0/2`` and ``1/2``, copy
the stores together, ``merge_stores``, ``report_from_store``, render.
"""

from __future__ import annotations

import json
from pathlib import Path
from collections.abc import Iterable, Iterator

from repro.perf.profile import merge_counts
from repro.pipeline.cache import iter_jsonl_dicts
from repro.targets import resolve_target_setting
from repro.pipeline.campaign import (
    SOURCE_STORE,
    CampaignRecord,
    CampaignReport,
    CampaignSummary,
    count_verdicts,
    is_error_result,
)


def _iter_entries(path: Path) -> Iterator[dict]:
    """Yield the JSON objects of one JSONL store (which must exist)."""
    if not path.exists():
        raise FileNotFoundError(f"no such store: {path}")
    yield from iter_jsonl_dicts(path)


def store_live_entries(path: str | Path) -> tuple[dict[str, dict], list[dict]]:
    """Replay one store's appends: the live result entry per key, plus summaries.

    Within one store a later entry supersedes an earlier one with the same
    key (an error record retried into a result on resume) — the store's own
    replay semantics, shared by resume, :func:`merge_stores`,
    :func:`report_from_store` and store compaction
    (:func:`repro.pipeline.incremental.compact_store`).  Keys keep
    first-seen order; summaries come back verbatim in append order.
    """
    results: dict[str, dict] = {}
    summaries: list[dict] = []
    for entry in _iter_entries(Path(path)):
        kind = entry.get("type")
        if kind == "result":
            results[str(entry["key"])] = entry
        elif kind == "summary":
            summaries.append(entry)
    return results, summaries


def merge_stores(paths: Iterable[str | Path], out_path: str | Path) -> Path:
    """Merge shard result stores into one, deduplicating records by key.

    Result entries keep first-seen order; exact duplicates (the same cache
    key with the same result — e.g. overlapping resumed runs) collapse to
    one, and an error record paired with a retried real result for the same
    key resolves to the real result (the engine's own retry semantics).
    Two stores carrying *different real* results for one key mean the
    shards did not run the same campaign, and the merge refuses.  Shard
    summaries are carried over verbatim, so :func:`report_from_store` can
    aggregate wall clock and cache accounting across machines.
    """
    out = Path(out_path)
    results: dict[str, dict] = {}
    order: list[str] = []
    summaries: list[dict] = []
    for path in paths:
        # Within one store a later entry supersedes an earlier one with the
        # same key (an error record retried into a result on resume) — that
        # is the store's own replay semantics, not a conflict.
        store_results, store_summaries = store_live_entries(path)
        summaries.extend(store_summaries)
        for key, entry in store_results.items():
            if key not in results:
                results[key] = entry
                order.append(key)
                continue
            existing = results[key]
            if existing["result"] == entry["result"]:
                continue
            # An error record and a retried success for the same key are the
            # engine's own retry semantics playing out across stores: the
            # real result wins (two distinct errors keep the first).
            if is_error_result(existing["result"]):
                if not is_error_result(entry["result"]):
                    results[key] = entry
                continue
            if is_error_result(entry["result"]):
                continue
            raise ValueError(
                f"shard stores disagree on key {key[:16]}... "
                f"(kernel {entry.get('kernel')!r}): the shards did not "
                "run identical campaign configurations"
            )
    out.parent.mkdir(parents=True, exist_ok=True)
    with out.open("w", encoding="utf-8") as handle:
        for key in order:
            handle.write(json.dumps(results[key]) + "\n")
        for summary in summaries:
            handle.write(json.dumps(summary) + "\n")
    return out


def merge_caches(paths: Iterable[str | Path], out_path: str | Path) -> Path:
    """Merge persistent result-cache JSONL files, deduplicating by key.

    Same conflict rules as :func:`merge_stores`: within one file a later
    entry supersedes an earlier one (replaying the appends), an error record
    loses to a real result across files, and two files carrying *different
    real* values for one content-addressed key refuse to merge — a silently
    wrong cache entry would poison every warm-started campaign after it.
    """
    out = Path(out_path)
    entries: dict[str, dict] = {}
    order: list[str] = []
    for path in paths:
        file_entries: dict[str, dict] = {}
        for entry in _iter_entries(Path(path)):
            if "key" in entry:
                file_entries[str(entry["key"])] = entry
        for key, entry in file_entries.items():
            if key not in entries:
                entries[key] = entry
                order.append(key)
                continue
            existing = entries[key]
            if existing.get("value") == entry.get("value"):
                continue
            if is_error_result(existing.get("value")):
                if not is_error_result(entry.get("value")):
                    entries[key] = entry
                continue
            if is_error_result(entry.get("value")):
                continue
            raise ValueError(
                f"cache files disagree on key {key[:16]}...: the shards did "
                "not run identical campaign configurations"
            )
    out.parent.mkdir(parents=True, exist_ok=True)
    with out.open("w", encoding="utf-8") as handle:
        for key in order:
            handle.write(json.dumps(entries[key]) + "\n")
    return out


def _suite_order(kernels: Iterable[str]) -> list[str]:
    """Canonical suite order (unknown kernels sort after, alphabetically)."""
    from repro.tsvc import all_kernel_names

    position = {name: index for index, name in enumerate(all_kernel_names())}
    fallback = len(position)
    return sorted(kernels, key=lambda name: (position.get(name, fallback), name))


def report_from_store(path: str | Path, label: str | None = None,
                      target: str | None = None) -> CampaignReport:
    """Reconstruct a combined :class:`CampaignReport` from a (merged) store.

    ``label`` selects which campaign's records to read when the store holds
    several (required then; inferred when there is exactly one).  ``target``
    restricts a multi-target store to one ISA's records; entries written
    before stores stamped a target pass any filter (a legacy store cannot
    be split by ISA — re-run it to tag its entries).  Records come back
    in canonical suite order; the summary aggregates the latest matching
    summary per shard (wall clock, executed and cache counters sum across
    shards; the verdict counts are recomputed from the merged records).
    """
    results: dict[str, dict] = {}
    summaries: list[dict] = []
    labels_seen: list[str] = []
    for entry in _iter_entries(Path(path)):
        kind = entry.get("type")
        if kind == "result":
            # A record with no campaign label stays unlabeled: stringifying
            # it would fabricate a bogus "None" label that label inference
            # could then "succeed" with.
            raw_label = entry.get("campaign")
            entry_label = str(raw_label) if raw_label is not None else None
            if entry_label is not None and entry_label not in labels_seen:
                labels_seen.append(entry_label)
            if label is not None and entry_label != label:
                continue
            if target is not None and entry.get("target") not in (None, target):
                continue
            results[f"{entry_label}:{entry['key']}"] = entry
        elif kind == "summary":
            summaries.append(entry)
    if label is None:
        if not labels_seen:
            raise ValueError(
                "store holds no labeled campaign records; pass label= to pick one"
            )
        if len(labels_seen) != 1:
            raise ValueError(
                f"store holds {len(labels_seen)} campaign labels "
                f"({', '.join(labels_seen)}); pass label= to pick one"
            )
        label = labels_seen[0]

    by_kernel: dict[str, dict] = {}
    for entry in results.values():
        if entry.get("campaign") != label:
            continue
        kernel = str(entry["kernel"])
        if kernel in by_kernel and by_kernel[kernel]["result"] != entry["result"]:
            raise ValueError(
                f"store holds conflicting results for kernel {kernel!r} under "
                f"label {label!r}; pass target= to disambiguate a multi-target store"
            )
        by_kernel[kernel] = entry
    records = [
        CampaignRecord(kernel=name, key=str(by_kernel[name]["key"]),
                       result=by_kernel[name]["result"], source=SOURCE_STORE)
        for name in _suite_order(by_kernel)
    ]

    # A resumed or re-run shard appends a summary per pass; only the latest
    # pass per (label, target, shard) reflects that shard's final state —
    # summing all of them would double-count wall clock and cache counters.
    latest: dict[tuple, dict] = {}
    for entry in summaries:
        if entry.get("label") != label:
            continue
        # Same tolerance as the record filter: an entry with no target on
        # record (a pre-target-stamping store) matches any requested target,
        # so legacy stores keep their accounting instead of zeroing out.
        if target is not None and entry.get("target") not in (None, target):
            continue
        latest[(entry.get("label"), entry.get("target"), entry.get("shard"))] = entry
    matching = list(latest.values())
    targets = {s.get("target") for s in matching if s.get("target")}
    # Pre-dtype stores carry no dtype stamp; they were all int32 by
    # construction, so the merged summary says so rather than guessing.
    dtypes = {s.get("dtype") for s in matching if s.get("dtype")}
    plan_cache: dict[str, int] = {}
    for entry in matching:
        merge_counts(plan_cache, entry.get("plan_cache")
                     if isinstance(entry.get("plan_cache"), dict) else None)
    static_flags: dict[str, int] = {}
    for record in records:
        flags = record.result.get("static_flags")
        merge_counts(static_flags, flags if isinstance(flags, dict) else None)
    summary = CampaignSummary(
        label=label,
        kernels=len(records),
        executed=sum(s.get("executed", 0) for s in matching),
        cache_hits=sum(s.get("cache_hits", 0) for s in matching),
        cache_misses=sum(s.get("cache_misses", 0) for s in matching),
        resumed=sum(s.get("resumed", 0) for s in matching),
        wall_clock_seconds=sum(s.get("wall_clock_seconds", 0.0) for s in matching),
        workers=max((s.get("workers", 1) for s in matching), default=1),
        verdict_counts=count_verdicts(records),
        # The fallback for a store with no target stamps goes through the
        # one default-resolution rule — never a hardcoded ISA name.
        target=(target or (targets.pop() if len(targets) == 1
                           else ("mixed" if targets
                                 else resolve_target_setting().name))),
        dtype=(dtypes.pop() if len(dtypes) == 1
               else ("mixed" if dtypes else "int32")),
        shard=None,  # a merged report covers the whole suite again
        batches=sum(s.get("batches", 0) for s in matching),
        plan_cache=plan_cache,
        static_flags=static_flags,
    )
    return CampaignReport(label=label, records=records, summary=summary)
