"""LLM-Vectorizer: the end-to-end tool (Figure 2 of the paper).

:class:`LLMVectorizer` ties everything together for one kernel: the
multi-agent FSM drives the LLM to a checksum-plausible candidate, and the
equivalence pipeline (Algorithm 1) then tries to formally verify or refute
it.  The batch entry point runs the whole TSVC suite and is what the
experiment harness and the benchmarks build on.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace

from repro.agents.fsm import FSMConfig, FSMResult, VectorizationFSM
from repro.llm.client import LLMClient
from repro.llm.synthetic import SyntheticLLM, SyntheticLLMConfig
from repro.pipeline.equivalence import EquivalencePipeline, PipelineReport
from repro.pipeline.verdict import Verdict
from repro.targets import resolve_target_setting
from repro.tsvc import LoadedKernel


@dataclass
class LLMVectorizerConfig:
    """Top-level configuration of the end-to-end tool."""

    fsm: FSMConfig = field(default_factory=FSMConfig)
    llm: SyntheticLLMConfig = field(default_factory=SyntheticLLMConfig)
    run_verification: bool = True
    checksum_seed: int = 0
    #: Target ISA name the tool vectorizes for.  ``None`` means "unset":
    #: campaign-level targets apply, and unresolved settings fall through
    #: :func:`repro.targets.resolve_target_setting` to the pipeline default.
    target: str | None = None
    #: Epilogue strategy candidates are generated with (``"scalar"``,
    #: ``"masked"`` or ``"predicated"``); pinned into the FSM config per run.
    epilogue: str = "scalar"
    #: Static candidate vetting mode (``"off"``, ``"advisory"``,
    #: ``"screen"``); pinned into the FSM config per run like ``epilogue``.
    static_check: str = "advisory"


@dataclass
class KernelRunResult:
    """Everything the tool produced for one kernel."""

    kernel: LoadedKernel
    fsm_result: FSMResult
    pipeline_report: PipelineReport | None = None

    @property
    def plausible(self) -> bool:
        return self.fsm_result.accepted

    @property
    def verdict(self) -> Verdict:
        if not self.plausible:
            history = self.fsm_result.history
            if history and all(r.outcome == "static_reject" for r in history):
                # Screen mode refuted every attempt without executing one.
                return Verdict.STATIC_REJECT
            return Verdict.NOT_EQUIVALENT
        if self.pipeline_report is None:
            return Verdict.PLAUSIBLE
        return self.pipeline_report.verdict

    @property
    def vectorized_code(self) -> str | None:
        return self.fsm_result.final_code


class LLMVectorizer:
    """The end-to-end tool: scalar C in, (verified) vectorized C out."""

    def __init__(self, config: LLMVectorizerConfig | None = None, llm: LLMClient | None = None):
        self.config = config or LLMVectorizerConfig()
        self.llm = llm or SyntheticLLM(self.config.llm)
        self.pipeline = EquivalencePipeline(checksum_seed=self.config.checksum_seed)

    def vectorize(self, kernel: LoadedKernel) -> KernelRunResult:
        """Run the full tool on one kernel."""
        return self._vectorize_for(kernel, resolve_target_setting(self.config.target).name)

    def _vectorize_for(self, kernel: LoadedKernel, target: str) -> KernelRunResult:
        """Run the tool on one kernel for an explicit target ISA."""
        fsm_config = self.config.fsm
        if fsm_config.target != target:
            fsm_config = replace(fsm_config, target=target)
        if fsm_config.epilogue != self.config.epilogue:
            fsm_config = replace(fsm_config, epilogue=self.config.epilogue)
        if fsm_config.static_check != self.config.static_check:
            fsm_config = replace(fsm_config, static_check=self.config.static_check)
        fsm = VectorizationFSM(self.llm, kernel.name, kernel.source, fsm_config)
        fsm_result = fsm.run()
        pipeline_report = None
        if fsm_result.accepted and self.config.run_verification and fsm_result.final_code:
            # Checksum already passed inside the FSM; Algorithm 1's later
            # stages do the formal work.
            pipeline_report = self.pipeline.check_equivalence(
                kernel.source, fsm_result.final_code, skip_checksum=True
            )
        return KernelRunResult(kernel=kernel, fsm_result=fsm_result, pipeline_report=pipeline_report)

    def vectorize_suite(self, names: list[str] | None = None,
                        campaign: "CampaignConfig | None" = None) -> "CampaignReport":
        """Run the tool over the TSVC suite (or the subset ``names``).

        Suite execution goes through the campaign engine: kernels fan out
        over a process pool (``campaign.workers``), results are cached
        content-addressed and appended to a resumable JSONL store, and the
        returned :class:`~repro.pipeline.campaign.CampaignReport` carries
        per-kernel verdicts plus the campaign summary (verdict counts, wall
        clock, cache hit-rate, throughput).  With the synthetic LLM,
        per-kernel results are identical at any parallelism level: each
        kernel runs with a seed derived from ``(llm seed, kernel name)``,
        never with shared LLM state.  An injected non-synthetic client
        cannot be reconstructed inside worker processes, so it runs the
        serial in-process path (shared client, no caching) instead.
        """
        from repro.pipeline.campaign import CampaignConfig, CampaignReport, CampaignRunner

        if not isinstance(self.llm, SyntheticLLM):
            # Same precedence as the campaign path: an explicitly-set tool
            # target wins, otherwise the campaign config's target applies.
            campaign_target = (getattr(campaign, "config", campaign).target
                               if campaign is not None else None)
            isa = resolve_target_setting(self.config.target, campaign_target)
            return self._vectorize_suite_serial(names, isa.name)
        # The live client's config wins over self.config.llm (they differ when
        # an already-configured SyntheticLLM instance was injected).
        config = replace(self.config, llm=self.llm.config)
        runner = CampaignRunner(campaign or CampaignConfig())
        return runner.run(names, vectorizer_config=config)

    def _vectorize_suite_serial(self, names: list[str] | None,
                                target: str = "avx2") -> "CampaignReport":
        """Serial fallback for LLM clients that cannot be shipped to workers."""
        import time

        from repro.pipeline.campaign import (
            CampaignRecord,
            CampaignReport,
            CampaignSummary,
            count_verdicts,
            kernel_result_record,
        )
        from repro.tsvc import load_suite

        started = time.perf_counter()
        records = []
        for kernel in load_suite(names):
            result = kernel_result_record(self._vectorize_for(kernel, target))
            records.append(CampaignRecord(kernel=kernel.name, key="", result=result))
        summary = CampaignSummary(
            label="vectorize", kernels=len(records), executed=len(records),
            cache_hits=0, cache_misses=0, resumed=0,
            wall_clock_seconds=time.perf_counter() - started, workers=1,
            verdict_counts=count_verdicts(records),
            target=target,
        )
        return CampaignReport(label="vectorize", records=records, summary=summary)
