"""LLM-Vectorizer: the end-to-end tool (Figure 2 of the paper).

:class:`LLMVectorizer` ties everything together for one kernel: the
multi-agent FSM drives the LLM to a checksum-plausible candidate, and the
equivalence pipeline (Algorithm 1) then tries to formally verify or refute
it.  The batch entry point runs the whole TSVC suite and is what the
experiment harness and the benchmarks build on.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

from repro.agents.fsm import FSMConfig, FSMResult, VectorizationFSM
from repro.llm.client import LLMClient
from repro.llm.synthetic import SyntheticLLM, SyntheticLLMConfig
from repro.pipeline.equivalence import EquivalencePipeline, PipelineReport
from repro.pipeline.verdict import Verdict
from repro.tsvc import LoadedKernel, load_suite


@dataclass
class LLMVectorizerConfig:
    """Top-level configuration of the end-to-end tool."""

    fsm: FSMConfig = field(default_factory=FSMConfig)
    llm: SyntheticLLMConfig = field(default_factory=SyntheticLLMConfig)
    run_verification: bool = True
    checksum_seed: int = 0


@dataclass
class KernelRunResult:
    """Everything the tool produced for one kernel."""

    kernel: LoadedKernel
    fsm_result: FSMResult
    pipeline_report: Optional[PipelineReport] = None

    @property
    def plausible(self) -> bool:
        return self.fsm_result.accepted

    @property
    def verdict(self) -> Verdict:
        if not self.plausible:
            return Verdict.NOT_EQUIVALENT
        if self.pipeline_report is None:
            return Verdict.PLAUSIBLE
        return self.pipeline_report.verdict

    @property
    def vectorized_code(self) -> Optional[str]:
        return self.fsm_result.final_code


class LLMVectorizer:
    """The end-to-end tool: scalar C in, (verified) vectorized C out."""

    def __init__(self, config: LLMVectorizerConfig | None = None, llm: LLMClient | None = None):
        self.config = config or LLMVectorizerConfig()
        self.llm = llm or SyntheticLLM(self.config.llm)
        self.pipeline = EquivalencePipeline(checksum_seed=self.config.checksum_seed)

    def vectorize(self, kernel: LoadedKernel) -> KernelRunResult:
        """Run the full tool on one kernel."""
        fsm = VectorizationFSM(self.llm, kernel.name, kernel.source, self.config.fsm)
        fsm_result = fsm.run()
        pipeline_report = None
        if fsm_result.accepted and self.config.run_verification and fsm_result.final_code:
            # Checksum already passed inside the FSM; Algorithm 1's later
            # stages do the formal work.
            pipeline_report = self.pipeline.check_equivalence(
                kernel.source, fsm_result.final_code, skip_checksum=True
            )
        return KernelRunResult(kernel=kernel, fsm_result=fsm_result, pipeline_report=pipeline_report)

    def vectorize_suite(self, names: list[str] | None = None) -> list[KernelRunResult]:
        """Run the tool over the TSVC suite (or the subset ``names``)."""
        return [self.vectorize(kernel) for kernel in load_suite(names)]
