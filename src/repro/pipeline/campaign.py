"""The campaign engine: suite-scale runs of the pipeline, in parallel.

The paper's headline experiments (Tables 1-3, Figures 5-6) all reduce to the
same shape of work: run some per-kernel job — vectorize-and-verify, sample
``n`` completions and classify them, push a candidate through the
verification funnel, simulate performance — over the whole TSVC suite.  The
seed code did this with a serial Python loop per experiment.  The campaign
engine makes the shape a first-class subsystem:

* **parallelism** — kernels fan out over a :class:`ProcessPoolExecutor`
  with a configurable worker count (``workers=0`` means one per CPU),
  dispatched as adaptively-sized *batches* claimed off one shared queue
  (:mod:`repro.pipeline.scheduler`): IPC/pickle overhead amortizes over
  each batch, fast workers steal the remaining work from stragglers, and
  a warm-worker initializer pre-seeds every worker's plan cache;
* **determinism** — every kernel gets a seed derived from
  ``(base seed, kernel name)`` (the LLM seed for the vectorize and
  experiment campaigns), so per-kernel results are byte-identical at any
  parallelism level and in any completion order;
* **caching** — results are stored in a content-addressed
  :class:`~repro.pipeline.cache.ResultCache` keyed on the kernel source,
  the candidate code where one exists, the configuration fingerprint and
  the derived seed, so re-runs and pass@k re-estimation skip work that is
  already settled;
* **resumability** — every completed task is appended to a JSONL result
  store; an interrupted campaign picks up where it left off;
* **fault tolerance** — a raising job does not abort the campaign: the
  failure becomes a first-class error record (``verdict="error"`` with the
  message and traceback) that is persisted, counted and reported like any
  other verdict (``CampaignConfig.fail_fast=True`` restores the
  abort-on-first-failure behaviour), and a broken worker pool is rebuilt
  with the orphaned tasks resubmitted (``max_pool_retries`` bounds it);
* **sharding** — ``CampaignConfig.shard = ShardSpec(i, n)`` (or the string
  ``"i/n"``) deterministically restricts the run to the i-th of n disjoint
  partitions of the suite, keyed on a kernel-name hash, so N machines cover
  the suite exactly once at any worker count; shard stores merge back into
  one report via :mod:`repro.pipeline.shard`;
* **accounting** — each run produces a :class:`CampaignSummary` with
  verdict counts, wall clock, cache hit-rate and throughput (kernels/sec).

Jobs must be module-level callables taking one :class:`KernelTask` and
returning a JSON-serializable dict (the process pool pickles jobs by
reference).  With ``workers=1`` tasks run inline in-process, so closures
and non-picklable payloads are also accepted.
"""

from __future__ import annotations

import contextlib
import hashlib
import json
import os
import time
import traceback as traceback_module
from concurrent.futures import FIRST_COMPLETED, ProcessPoolExecutor, wait
from concurrent.futures.process import BrokenProcessPool
from dataclasses import KW_ONLY, dataclass, field, replace
from pathlib import Path
from collections.abc import Callable
from typing import Any

from repro.perf.profile import counter_delta, merge_counts, merge_stage_seconds
from repro.pipeline.cache import CacheStats, ResultCache, config_fingerprint, content_key
from repro.pipeline.scheduler import (
    AUTO_BATCH,
    ExecutionStats,
    dispatch_batches,
    resolve_batch_setting,
)
from repro.lanetypes import get_lane_type
from repro.pipeline.verdict import Verdict
from repro.targets import get_target, resolve_target_setting, target_names

JobFn = Callable[["KernelTask"], dict]

#: Sentinel key a job's per-stage timings travel back under.  ``run_tasks``
#: pops it into the campaign accumulator before the result is cached or
#: recorded, so persisted results stay timing-free (and byte-identical
#: across worker counts and re-runs).
STAGE_SECONDS_KEY = "_stage_seconds"

#: Result-source tags recorded on every :class:`CampaignRecord`.
SOURCE_RUN = "run"
SOURCE_CACHE = "cache"
SOURCE_STORE = "store"

#: Verdict value of a job that raised instead of producing a result.
ERROR_VERDICT = "error"


def is_error_result(result: Any) -> bool:
    """True for the error records a failing job turns into (not aborts)."""
    return isinstance(result, dict) and result.get("verdict") == ERROR_VERDICT


def error_result(task: "KernelTask", label: str, error: BaseException,
                 traceback_text: str | None = None) -> dict:
    """Build the first-class record of a job failure on one kernel."""
    return {
        "kernel": task.kernel,
        "verdict": ERROR_VERDICT,
        "error": f"{type(error).__name__}: {error}",
        "error_type": type(error).__name__,
        "traceback": traceback_text,
        "campaign": label,
    }


def shard_of(kernel_name: str, count: int) -> int:
    """The shard a kernel belongs to — a pure function of its name.

    Keyed on a content hash of the name alone (never on seeds, configs or
    suite order), so every machine computes the same partition and per-kernel
    results stay bit-identical to an unsharded run.
    """
    digest = hashlib.sha256(f"shard:{kernel_name}".encode()).hexdigest()
    return int(digest[:16], 16) % count


@dataclass(frozen=True)
class ShardSpec:
    """One of ``count`` disjoint, exhaustive partitions of a suite."""

    index: int
    count: int

    def __post_init__(self):
        if self.count < 1:
            raise ValueError(f"shard count must be >= 1, got {self.count}")
        if not 0 <= self.index < self.count:
            raise ValueError(f"shard index must be in [0, {self.count}), got {self.index}")

    @classmethod
    def parse(cls, spec: "ShardSpec | str") -> "ShardSpec":
        """Accept a ShardSpec or the ``"i/n"`` spelling used by env knobs."""
        if isinstance(spec, cls):
            return spec
        try:
            index_text, count_text = str(spec).split("/", 1)
            return cls(index=int(index_text), count=int(count_text))
        except (ValueError, TypeError) as error:
            raise ValueError(f"shard spec must look like 'i/n', got {spec!r}") from error

    def contains(self, kernel_name: str) -> bool:
        return shard_of(kernel_name, self.count) == self.index

    def __str__(self) -> str:
        return f"{self.index}/{self.count}"


def count_verdicts(records: list["CampaignRecord"]) -> dict[str, int]:
    """Tally the per-kernel verdict values (records without one are skipped)."""
    counts: dict[str, int] = {}
    for record in records:
        verdict = record.result.get("verdict")
        if verdict is not None:
            counts[verdict] = counts.get(verdict, 0) + 1
    return counts


def as_campaign_runner(campaign: "CampaignRunner | CampaignConfig | None") -> "CampaignRunner":
    """Accept a runner (shared cache), a config, or None (fresh defaults)."""
    if isinstance(campaign, CampaignRunner):
        return campaign
    return CampaignRunner(campaign)


def derive_kernel_seed(base_seed: int, kernel_name: str) -> int:
    """A deterministic per-kernel seed, independent of suite order and worker count."""
    digest = hashlib.sha256(f"{base_seed}:{kernel_name}".encode()).hexdigest()
    return int(digest[:16], 16)


@dataclass(frozen=True)
class KernelTask:
    """One unit of campaign work: a kernel plus everything its job needs."""

    kernel: str
    scalar_code: str
    seed: int
    config_hash: str
    #: Job-specific data; must be picklable when ``workers > 1``.
    payload: Any = None
    #: Candidate code, for jobs that verify an existing candidate; folding it
    #: into the cache key makes candidate-level results content-addressed.
    candidate_code: str | None = None

    def cache_key(self, label: str) -> str:
        parts = [label, self.kernel, self.scalar_code, self.config_hash, str(self.seed)]
        if self.candidate_code is not None:
            parts.append(self.candidate_code)
        return content_key(*parts)


@dataclass
class CampaignConfig:
    """Knobs of a campaign run (all deterministic at any setting).

    Every field past ``workers`` is keyword-only: campaign configurations
    are long-lived records whose call sites should read as named settings.
    """

    #: Process-pool width; 1 runs inline, 0 means one worker per CPU.
    workers: int = 1
    _: KW_ONLY
    #: Base seed; each kernel derives its own seed from (seed, kernel name).
    seed: int = 0
    #: JSONL file backing the content-addressed result cache (optional).
    cache_path: str | Path | None = None
    #: JSONL result store for resumability and offline inspection (optional).
    store_path: str | Path | None = None
    #: Reuse records found in the result store from a previous, interrupted run.
    resume: bool = True
    #: Target ISA name the campaign vectorizes for; ``None`` means "inherit"
    #: (the single default-resolution rule in
    #: :func:`repro.targets.resolve_target_setting` applies).  The resolved
    #: target is folded into every cache-key fingerprint, so multi-target
    #: campaigns can share one cache/store without colliding on a verdict.
    target: str | None = None
    #: Epilogue strategy campaigns vectorize with (``"scalar"``, ``"masked"``
    #: or ``"predicated"``).  A vectorizer config requesting a non-default
    #: epilogue wins over this setting, mirroring the target precedence.
    epilogue: str = "scalar"
    #: Lane element type the campaign models kernels at (``"int16"``,
    #: ``"int32"`` or ``"int64"``).  Non-default dtypes load the suite
    #: retargeted — sized ``<stdint.h>`` spellings, dtype-suffixed kernel
    #: names — and salt every config fingerprint, so per-dtype verdicts can
    #: never collide in a shared cache or store.
    dtype: str = "int32"
    #: Static candidate vetting mode: ``"off"`` skips the rule-based linter,
    #: ``"advisory"`` (default) attaches its reports and per-rule counters
    #: while leaving every verdict bit-identical to the unvetted pipeline,
    #: ``"screen"`` fast-rejects error-severity candidates before any
    #: execution (outcome ``static_reject``).  A vectorizer config requesting
    #: a non-default mode wins over this setting, mirroring ``epilogue``.
    static_check: str = "advisory"
    #: Abort the campaign on the first failing job (the pre-fault-tolerance
    #: behaviour).  Off by default: failures become error records instead.
    fail_fast: bool = False
    #: Re-execute kernels whose cached/stored result is an error record
    #: (errors are persisted for accounting, but a resumed run retries them
    #: rather than letting one crash poison every future run).  Set False to
    #: reuse error records like any other result.
    retry_errors: bool = True
    #: Broken-pool recovery budget, per task: orphaned tasks are resubmitted
    #: (bisecting batches to isolate a repeat offender), and a task that
    #: breaks its own singleton pool more than this many times is recorded
    #: as an error (or, under ``fail_fast``, aborts the campaign).
    max_pool_retries: int = 2
    #: Run only this shard of the task list (``ShardSpec`` or ``"i/n"``);
    #: None runs everything.  Sharding never changes per-kernel results —
    #: seeds derive from kernel names — so N shard stores merge back into a
    #: report bit-identical to the unsharded run (:mod:`repro.pipeline.shard`).
    shard: "ShardSpec | str | None" = None
    #: fsync cadence of the persistent result cache: 1 syncs every entry
    #: (maximally durable), N batches every N entries, 0 syncs only at the
    #: end of each ``run_tasks`` call.
    cache_flush_interval: int = 1
    #: How many kernel tasks one worker dispatch carries.  ``"auto"`` (the
    #: default) uses guided self-scheduling — early batches large to
    #: amortize pickle/IPC, late batches shrinking toward singletons so the
    #: tail balances across workers; an int fixes the size (1 restores
    #: one-task-per-dispatch).  Batch size never changes a result: seeds
    #: derive from kernel names, so any batching is bit-identical.
    batch_size: int | str = AUTO_BATCH
    #: Pre-seed each pool worker's plan cache (parse table + small SMT
    #: constants) with the campaign's scalar sources before its first
    #: batch.  Purely a warm-up; results are identical either way.
    warm_workers: bool = True
    #: JSONL file persisting the solved-query cache
    #: (:mod:`repro.smt.solvecache`) across campaigns: loaded before tasks
    #: run, saved (with everything the fleet solved) afterwards.  A hit
    #: returns exactly what a fresh solve would, so persistence is purely a
    #: speed-up; ``None`` keeps the cache process-local.
    solve_cache_path: str | Path | None = None

    def resolved_target_name(self) -> str:
        return resolve_target_setting(self.target).name

    def resolved_dtype(self) -> str:
        """Canonical lane-type name (aliases like ``int64_t`` normalize)."""
        return get_lane_type(self.dtype).name

    def resolved_shard(self) -> "ShardSpec | None":
        return ShardSpec.parse(self.shard) if self.shard is not None else None

    def resolved_batch_size(self) -> "int | str":
        return resolve_batch_setting(self.batch_size)

    def effective_workers(self) -> int:
        if self.workers <= 0:
            return max(1, os.cpu_count() or 1)
        return self.workers


@dataclass
class CampaignRecord:
    """One per-kernel result plus where it came from."""

    kernel: str
    key: str
    result: dict
    source: str = SOURCE_RUN


@dataclass
class CampaignSummary:
    """Campaign-level accounting: the numbers the ROADMAP steers by."""

    label: str
    kernels: int
    executed: int
    cache_hits: int
    cache_misses: int
    resumed: int
    wall_clock_seconds: float
    #: Workers *actually used* by this run — 1 on the serial path, the
    #: pool width after clamping to the pending task count otherwise, and 0
    #: when everything came from cache/store (no worker ran at all).  The
    #: configured width lives on the config; reporting it here used to
    #: overstate fully-cached and clamped runs.
    workers: int
    verdict_counts: dict[str, int] = field(default_factory=dict)
    #: Target ISA the campaign ran for.
    target: str = "avx2"
    #: Lane element type the campaign modelled kernels at.  Entries written
    #: before the dtype axis existed deserialize to the old universe's
    #: ``"int32"`` default.
    dtype: str = "int32"
    #: ``"i/n"`` when the run covered one shard of the suite; None otherwise.
    shard: str | None = None
    #: Wall-clock seconds spent per pipeline stage (parse/plan/codegen/
    #: interp/symexec/solve) across the freshly executed tasks, accumulated
    #: from the per-job profiles (:mod:`repro.perf.profile`).
    stage_seconds: dict[str, float] = field(default_factory=dict)
    #: The batch-size setting the dispatcher ran with (``"auto"`` or an
    #: int); None when no batched dispatch happened (serial path, or
    #: nothing pending).
    batch_size: "int | str | None" = None
    #: Batches dispatched to the worker pool (0 on the serial path).
    batches: int = 0
    #: Fleet-wide plan-cache counters (parse/plan/vectorize hits+misses)
    #: summed over every worker's per-batch deltas — the true cross-process
    #: hit rates, not the parent's view (:mod:`repro.vectorizer.plancache`).
    plan_cache: dict[str, int] = field(default_factory=dict)
    #: Fleet-wide solver counters: solve-cache hits/misses/stores plus the
    #: raw CDCL work (decisions/propagations/conflicts/learned_clauses/
    #: restarts), summed the same way (:mod:`repro.smt.solvecache`).
    solver: dict[str, int] = field(default_factory=dict)
    #: Per-rule static-vetter error counts summed over every record's
    #: attempts (:mod:`repro.staticcheck`); empty when nothing was flagged
    #: (or the vetter was off).
    static_flags: dict[str, int] = field(default_factory=dict)

    @property
    def cache_hit_rate(self) -> float:
        lookups = self.cache_hits + self.cache_misses
        return self.cache_hits / lookups if lookups else 0.0

    @property
    def plan_cache_hit_rate(self) -> float:
        """Fleet-wide plan-cache hit rate over every counter pair."""
        hits = sum(v for k, v in self.plan_cache.items() if k.endswith("_hits"))
        misses = sum(v for k, v in self.plan_cache.items() if k.endswith("_misses"))
        return hits / (hits + misses) if hits + misses else 0.0

    @property
    def solve_cache_hit_rate(self) -> float:
        """Fleet-wide solved-query cache hit rate (SAT query batches)."""
        hits = self.solver.get("cache_hits", 0)
        misses = self.solver.get("cache_misses", 0)
        return hits / (hits + misses) if hits + misses else 0.0

    @property
    def throughput(self) -> "ThroughputReport":
        from repro.metrics.throughput import ThroughputReport

        return ThroughputReport(
            total_kernels=self.kernels,
            executed_kernels=self.executed,
            wall_clock_seconds=self.wall_clock_seconds,
        )

    @property
    def kernels_per_second(self) -> float:
        """Sustained rate over freshly executed work (cached results excluded:
        a fully-cached re-run reports 0, not an inflated number)."""
        return self.throughput.executed_rate

    def as_dict(self) -> dict:
        return {
            "label": self.label,
            "kernels": self.kernels,
            "executed": self.executed,
            "cache_hits": self.cache_hits,
            "cache_misses": self.cache_misses,
            "cache_hit_rate": round(self.cache_hit_rate, 4),
            "resumed": self.resumed,
            "wall_clock_seconds": round(self.wall_clock_seconds, 4),
            "kernels_per_second": round(self.kernels_per_second, 4),
            "effective_kernels_per_second": round(self.throughput.effective_rate, 4),
            "workers": self.workers,
            "target": self.target,
            "dtype": self.dtype,
            "verdict_counts": dict(self.verdict_counts),
            "stage_seconds": {name: round(seconds, 6)
                              for name, seconds in sorted(self.stage_seconds.items())},
            **({"shard": self.shard} if self.shard is not None else {}),
            **({"batch_size": self.batch_size} if self.batch_size is not None else {}),
            **({"batches": self.batches} if self.batches else {}),
            **({"plan_cache": dict(sorted(self.plan_cache.items())),
                "plan_cache_hit_rate": round(self.plan_cache_hit_rate, 4)}
               if self.plan_cache else {}),
            **({"solver": dict(sorted(self.solver.items())),
                "solve_cache_hit_rate": round(self.solve_cache_hit_rate, 4)}
               if self.solver else {}),
            **({"static_flags": dict(sorted(self.static_flags.items()))}
               if self.static_flags else {}),
        }


@dataclass
class CampaignReport:
    """Everything one campaign run produced, in deterministic task order."""

    label: str
    records: list[CampaignRecord]
    summary: CampaignSummary

    def results(self) -> list[dict]:
        return [record.result for record in self.records]

    def by_kernel(self) -> dict[str, dict]:
        return {record.kernel: record.result for record in self.records}


class CampaignRunner:
    """Runs per-kernel jobs over a suite with caching, resume and fan-out."""

    def __init__(self, config: CampaignConfig | None = None, cache: ResultCache | None = None):
        self.config = config or CampaignConfig()
        self.cache = cache if cache is not None else ResultCache(
            self.config.cache_path, flush_interval=self.config.cache_flush_interval)
        #: The JSONL result store, shared by every run of this runner; it
        #: parses the file once and tracks appends incrementally, so
        #: ``run_multi_target`` no longer re-reads the whole store per target.
        self.store = _ResultStore(self.config.store_path)
        #: Every summary this runner produced, in run order — the raw
        #: material for benchmark trajectories (``REPRO_BENCH_JSON``).
        self.summaries: list[CampaignSummary] = []

    # -- generic task execution -------------------------------------------------

    def run_tasks(
        self,
        job: JobFn,
        tasks: list[KernelTask],
        *,
        label: str,
        cache_accept: Callable[[dict, KernelTask], bool] | None = None,
        cache_adapt: Callable[[dict, KernelTask], dict] | None = None,
        target: str | None = None,
    ) -> CampaignReport:
        """Run ``job`` over ``tasks``; results come back in task order.

        ``cache_accept`` lets a job widen cache reuse beyond exact matches
        (for example: a stored 100-completion batch satisfies a 30-completion
        request); ``cache_adapt`` then shapes the stored value to the request.
        """
        started = time.perf_counter()
        window_before = self.cache.reset_stats()
        accept = cache_accept or (lambda cached, task: True)
        adapt = cache_adapt or (lambda cached, task: cached)

        shard = self.config.resolved_shard()
        if shard is not None:
            tasks = [task for task in tasks if shard.contains(task.kernel)]
        resolved_target = target or self.config.resolved_target_name()

        store = self.store
        stored = store.load() if self.config.resume else {}

        def reusable(result: dict | None, task: KernelTask) -> bool:
            if result is None:
                return False
            if self.config.retry_errors and is_error_result(result):
                return False
            return accept(result, task)

        def shape(result: dict, task: KernelTask) -> dict:
            # Error records have no job-specific shape for ``cache_adapt`` to
            # slice; they pass through verbatim.
            return result if is_error_result(result) else adapt(result, task)

        records: dict[str, CampaignRecord] = {}
        pending: list[tuple[KernelTask, str]] = []
        resumed = 0
        for task in tasks:
            key = task.cache_key(label)
            cached = self.cache.get(key)
            if reusable(cached, task):
                records[key] = CampaignRecord(task.kernel, key, shape(cached, task), SOURCE_CACHE)
                continue
            if cached is not None:
                # An entry existed but cannot serve this request (e.g. too few
                # stored completions, or a retryable error record); count it
                # as the miss it effectively is.
                self.cache.stats.hits -= 1
                self.cache.stats.misses += 1
            from_store = stored.get(key)
            if reusable(from_store, task):
                resumed += 1
                self.cache.put(key, from_store)
                records[key] = CampaignRecord(task.kernel, key, shape(from_store, task), SOURCE_STORE)
                continue
            pending.append((task, key))

        stage_totals: dict[str, float] = {}

        def persist(task: KernelTask, key: str, result: dict) -> None:
            # The job's per-stage timings ride back on a sentinel key; pull
            # them into the campaign accumulator BEFORE the result is cached,
            # stored or recorded — results must stay timing-free so they are
            # byte-identical at any worker count and across re-runs.
            if isinstance(result, dict):
                merge_stage_seconds(stage_totals, result.pop(STAGE_SECONDS_KEY, None))
            # Persist as each task completes (not after the pool drains), so
            # a killed campaign keeps everything that actually finished.
            self.cache.put(key, result)
            store.append(label, task.kernel, key, result, target=resolved_target)
            records[key] = CampaignRecord(task.kernel, key, shape(result, task), SOURCE_RUN)

        if self.config.solve_cache_path is not None:
            from repro.smt import solvecache

            solvecache.load(self.config.solve_cache_path)

        executed = len(pending)
        execution = self._execute(job, pending, label, persist)
        if self.config.solve_cache_path is not None:
            from repro.smt import solvecache

            solvecache.save(self.config.solve_cache_path)
        # close() both fsyncs anything pending and releases the append
        # handle, so idle runners hold no file descriptors between runs
        # (the cache reopens lazily on the next put).
        self.cache.close()

        run_stats = self.cache.reset_stats()
        self.cache.stats = window_before
        self.cache.stats.merge(run_stats)

        ordered = [records[task.cache_key(label)] for task in tasks]
        summary = self._summarize(label, ordered, run_stats, resumed,
                                  executed, time.perf_counter() - started,
                                  target=resolved_target,
                                  shard=str(shard) if shard is not None else None,
                                  stage_seconds=stage_totals,
                                  execution=execution)
        store.append_summary(summary)
        self.summaries.append(summary)
        return CampaignReport(label=label, records=ordered, summary=summary)

    # -- the flagship campaign: vectorize-and-verify the suite ---------------------

    def run(self, names: list[str] | None = None, vectorizer_config=None, *,
            target: str | None = None) -> CampaignReport:
        """Run the full FSM -> checksum -> formal-verification pipeline per kernel.

        Per-kernel seeds derive from the synthetic LLM's seed (as in the
        experiment harnesses), so varying ``config.llm.seed`` varies the
        sampled completions and the cache keys coherently.  ``target``
        (default: the campaign config's target) selects the ISA; it is folded
        into both the vectorizer configuration and the cache fingerprint.
        The epilogue strategy resolves the same way: a vectorizer config
        requesting a non-default epilogue wins, else the campaign config's
        ``epilogue`` setting applies.
        """
        tasks, isa_name = self.vectorize_tasks(names, vectorizer_config,
                                               target=target)
        return self.run_tasks(vectorize_kernel_job, tasks, label="vectorize",
                              target=isa_name)

    def vectorize_tasks(self, names: list[str] | None = None, vectorizer_config=None,
                        *, target: str | None = None) -> tuple[list[KernelTask], str]:
        """The exact tasks (and resolved ISA name) :meth:`run` would execute.

        This is the content-addressing half of the flagship campaign split
        out from the execution half: every task's ``config_hash`` is the
        target-salted fingerprint of the fully-resolved vectorizer config,
        so incremental re-verification (:mod:`repro.pipeline.incremental`)
        can ask "which of these keys does a store already answer?" without
        running anything.
        """
        from repro.pipeline.runner import LLMVectorizerConfig

        # One resolution rule, most to least specific: the explicit argument,
        # then a vectorizer config with a set target, then the campaign
        # config, then the pipeline default.
        isa = resolve_target_setting(
            target,
            vectorizer_config.target if vectorizer_config is not None else None,
            self.config.target,
        )
        config = vectorizer_config or LLMVectorizerConfig()
        if config.target != isa.name:
            config = replace(config, target=isa.name)
        if config.epilogue == "scalar" and self.config.epilogue != "scalar":
            config = replace(config, epilogue=self.config.epilogue)
        if config.static_check == "advisory" and self.config.static_check != "advisory":
            config = replace(config, static_check=self.config.static_check)
        tasks = self.suite_tasks(names, payload=config,
                                 config_hash=config_fingerprint(
                                     config, target=isa.name,
                                     dtype=self.config.resolved_dtype()),
                                 base_seed=config.llm.seed)
        return tasks, isa.name

    def run_multi_target(self, names: list[str] | None = None, *, vectorizer_config=None,
                         targets: list[str] | None = None) -> dict[str, CampaignReport]:
        """Fan one suite run out as per-ISA campaigns sharing this runner's cache.

        Each target runs as its own campaign (its workers fan out over the
        process pool as usual) against the same content-addressed cache and
        JSONL store; the target-salted fingerprints keep their entries
        disjoint.  Returns an ordered mapping target name -> report, so
        per-target summaries can be compared side by side.
        """
        names_in_order = [get_target(t).name for t in (targets or target_names())]
        return {
            name: self.run(names, vectorizer_config=vectorizer_config, target=name)
            for name in names_in_order
        }

    def suite_tasks(
        self,
        names: list[str] | None,
        payload: Any,
        config_hash: str,
        candidates: dict[str, str] | None = None,
        base_seed: int | None = None,
    ) -> list[KernelTask]:
        """Build one task per suite kernel with the derived per-kernel seed.

        ``base_seed`` overrides the campaign seed as the derivation base —
        experiments use it so that e.g. a synthetic-LLM seed keeps selecting
        the same sampled completions regardless of campaign settings.
        """
        from repro.tsvc import load_suite

        seed = self.config.seed if base_seed is None else base_seed
        tasks = []
        for kernel in load_suite(names, dtype=self.config.resolved_dtype()):
            candidate = candidates.get(kernel.name) if candidates is not None else None
            if candidates is not None and candidate is None:
                continue
            tasks.append(
                KernelTask(
                    kernel=kernel.name,
                    scalar_code=kernel.source,
                    seed=derive_kernel_seed(seed, kernel.name),
                    config_hash=config_hash,
                    payload=payload,
                    candidate_code=candidate,
                )
            )
        return tasks

    # -- internals --------------------------------------------------------------

    def _execute(
        self,
        job: JobFn,
        pending: list[tuple[KernelTask, str]],
        label: str,
        on_result: Callable[[KernelTask, str, dict], None],
    ) -> ExecutionStats:
        """Run pending tasks, invoking ``on_result`` as each one completes.

        Parallel runs go through the work-stealing batch dispatcher
        (:mod:`repro.pipeline.scheduler`): workers claim adaptively-sized
        batches off one shared queue, so IPC amortizes over the batch and
        the tail balances across the fleet instead of straggling behind a
        static partition.  A broken worker pool orphans its unfinished
        batches; the orphans are resubmitted per task, bisecting to isolate
        a repeat offender — a task that still breaks its own singleton pool
        after ``max_pool_retries`` retries becomes an error record (or
        aborts the campaign under ``fail_fast``).  Returns what actually
        happened: workers used, batches dispatched, fleet plan-cache stats.
        """
        stats = ExecutionStats()
        if not pending:
            return stats
        fail_fast = self.config.fail_fast
        workers = min(self.config.effective_workers(), len(pending))
        if workers <= 1:
            from repro.smt import solvecache
            from repro.vectorizer import plancache

            stats.workers = 1
            before = plancache.stats.as_dict()
            solver_before = solvecache.stats.as_dict()
            for task, key in pending:
                on_result(task, key, _run_job(job, task, label, fail_fast))
            merge_counts(stats.plan_cache,
                         counter_delta(before, plancache.stats.as_dict()))
            merge_counts(stats.solver,
                         counter_delta(solver_before, solvecache.stats.as_dict()))
            return stats

        stats.workers = workers
        stats.batch_size = self.config.resolved_batch_size()
        warm_sources = None
        warm_solve_entries = None
        if self.config.warm_workers:
            from repro.smt import solvecache

            # Distinct scalar sources, first-seen order: the initializer
            # pre-parses each one once per worker.
            warm_sources = tuple(dict.fromkeys(
                task.scalar_code for task, _ in pending if task.scalar_code))
            # Ship every solved query the parent knows (loaded from the
            # persisted file and/or adopted from earlier campaigns) so
            # workers start with a warm solve cache too.
            warm_solve_entries = solvecache.export_entries()
        orphaned = dispatch_batches(
            job, pending, label=label, workers=workers,
            batch_setting=stats.batch_size, fail_fast=fail_fast,
            on_result=on_result, stats=stats, warm_sources=warm_sources,
            warm_solve_entries=warm_solve_entries)
        if not orphaned:
            return stats

        # Recovery by bisection, per task: a broken pool cancels everything
        # in flight, so one poison task (segfaulting its worker on every
        # attempt) orphans whole batches and a flat resubmit loop would burn
        # every task's retry budget as collateral.  Splitting the orphans
        # instead corners the culprit: halves without it complete, the half
        # with it shrinks to a singleton pool that only it can break, and
        # only that singleton consumes retries (``max_pool_retries``) before
        # erroring out.
        retries: dict[str, int] = {}

        def run_resilient(batch: list[tuple[KernelTask, str]]) -> None:
            remaining = self._execute_pool(job, batch, label, on_result, workers)
            if not remaining:
                return
            if len(remaining) > 1:
                mid = len(remaining) // 2
                run_resilient(remaining[:mid])
                run_resilient(remaining[mid:])
                return
            task, key = remaining[0]
            retries[key] = retries.get(key, 0) + 1
            if retries[key] <= self.config.max_pool_retries:
                run_resilient(remaining)
                return
            message = (f"worker pool broke {retries[key]} times with kernel "
                       f"{task.kernel!r} alone in flight; giving up on it")
            if fail_fast:
                raise RuntimeError(f"campaign {label!r}: {message}")
            on_result(task, key, error_result(task, label, BrokenProcessPool(message)))

        run_resilient(orphaned)
        return stats

    def _execute_pool(
        self,
        job: JobFn,
        pending: list[tuple[KernelTask, str]],
        label: str,
        on_result: Callable[[KernelTask, str, dict], None],
        workers: int,
    ) -> list[tuple[KernelTask, str]]:
        """One process-pool pass; returns the tasks a broken pool orphaned.

        The pool can break at any point — even while tasks are still being
        submitted (``submit`` itself raises then) — so the whole pass is
        guarded: every task that did not complete is reported back as
        orphaned, never lost.
        """
        completed: set[str] = set()
        # A pool broken mid-submission leaves everything not completed
        # orphaned; the caller re-dispatches those.
        with contextlib.suppress(BrokenProcessPool), \
                ProcessPoolExecutor(max_workers=min(workers, len(pending))) as pool:
            futures = {pool.submit(_run_job, job, task, label, self.config.fail_fast):
                       (task, key) for task, key in pending}
            outstanding = set(futures)
            while outstanding:
                done, outstanding = wait(outstanding, return_when=FIRST_COMPLETED)
                for future in done:
                    task, key = futures[future]
                    try:
                        result = future.result()
                    except BrokenProcessPool:
                        continue
                    completed.add(key)
                    on_result(task, key, result)
        return [(task, key) for task, key in pending if key not in completed]

    def _summarize(self, label: str, records: list[CampaignRecord], stats: CacheStats,
                   resumed: int, executed: int, wall_clock: float,
                   target: str | None = None, shard: str | None = None,
                   stage_seconds: dict[str, float] | None = None,
                   execution: ExecutionStats | None = None) -> CampaignSummary:
        execution = execution or ExecutionStats()
        static_flags: dict[str, int] = {}
        for record in records:
            merge_counts(static_flags, record.result.get("static_flags"))
        return CampaignSummary(
            label=label,
            kernels=len(records),
            executed=executed,
            cache_hits=stats.hits,
            cache_misses=stats.misses,
            resumed=resumed,
            wall_clock_seconds=wall_clock,
            workers=execution.workers,
            verdict_counts=count_verdicts(records),
            target=target or self.config.resolved_target_name(),
            dtype=self.config.resolved_dtype(),
            shard=shard,
            stage_seconds=dict(stage_seconds or {}),
            batch_size=execution.batch_size,
            batches=execution.batches,
            plan_cache=dict(execution.plan_cache),
            solver=dict(execution.solver),
            static_flags=static_flags,
        )


# ---------------------------------------------------------------------------
# the flagship per-kernel job
# ---------------------------------------------------------------------------


def kernel_result_record(result) -> dict:
    """Flatten a :class:`~repro.pipeline.runner.KernelRunResult` to JSON.

    The static vetter's accounting rides along only when it actually flagged
    something: ``static_flags`` sums per-rule *error* counts over every
    attempt, ``static_summary`` is the one-line report on the final attempt's
    candidate.  Records from vetter-free runs are byte-identical to before.
    """
    report = result.pipeline_report
    code = result.vectorized_code
    history = result.fsm_result.history
    static_flags: dict[str, int] = {}
    for attempt in history:
        for rule_id, count in attempt.static_flags.items():
            static_flags[rule_id] = static_flags.get(rule_id, 0) + count
    static_summary = history[-1].static_summary if history else None
    verdict = result.verdict
    deciding_stage = report.deciding_stage if report is not None else None
    if verdict is Verdict.STATIC_REJECT:
        deciding_stage = "staticcheck"
    return {
        "kernel": result.kernel.name,
        "verdict": verdict.value,
        "plausible": result.plausible,
        "attempts": result.fsm_result.attempts,
        "llm_invocations": result.fsm_result.llm_invocations,
        "deciding_stage": deciding_stage,
        "stage_outcomes": dict(report.stage_outcomes) if report is not None else {},
        "final_code": code,
        "final_code_sha": hashlib.sha256(code.encode()).hexdigest() if code else None,
        **({"static_flags": dict(sorted(static_flags.items()))} if static_flags else {}),
        **({"static_summary": static_summary}
           if static_summary and static_summary != "clean" else {}),
    }


def vectorize_kernel_job(task: KernelTask) -> dict:
    """Run the end-to-end tool on one kernel with its derived seed.

    The LLM is constructed fresh per kernel with the task seed, so the result
    depends only on (kernel, config, seed) — never on which worker ran it or
    what ran before it.
    """
    from repro.pipeline.runner import LLMVectorizer
    from repro.tsvc import load_kernel

    config = replace(task.payload, llm=replace(task.payload.llm, seed=task.seed))
    tool = LLMVectorizer(config)
    return kernel_result_record(tool.vectorize(load_kernel(task.kernel)))


# ---------------------------------------------------------------------------
# the JSONL result store
# ---------------------------------------------------------------------------


def _run_job(job: JobFn, task: KernelTask, label: str, fail_fast: bool = False) -> dict:
    from repro.perf import profile

    before = profile.snapshot()
    try:
        result = job(task)
    except Exception as error:
        if fail_fast:
            raise RuntimeError(
                f"campaign {label!r}: job failed on kernel {task.kernel!r}: {error}"
            ) from error
        result = error_result(task, label, error,
                              traceback_text=traceback_module.format_exc())
    return _attach_stage_seconds(result, before, profile.snapshot())


def _attach_stage_seconds(result: dict, before: dict[str, float],
                          after: dict[str, float]) -> dict:
    """Annotate ``result`` with the stage seconds this job accounted for.

    Snapshot deltas (not resets) so inline execution (``workers=1``) never
    clobbers profiling state accumulated outside the campaign engine.
    """
    if not isinstance(result, dict):
        return result
    delta = {name: round(seconds - before.get(name, 0.0), 6)
             for name, seconds in after.items()
             if seconds > before.get(name, 0.0)}
    if delta:
        result = dict(result)
        result[STAGE_SECONDS_KEY] = delta
    return result


class _ResultStore:
    """Append-only JSONL store of completed task results plus run summaries.

    The store parses its file at most once per instance: :meth:`load` caches
    the key -> result map and :meth:`append` updates it incrementally, so a
    runner making many ``run_tasks`` calls (``run_multi_target``, the
    experiment harnesses) re-reads nothing.  A *new* runner on the same path
    still sees everything previous runners appended.
    """

    def __init__(self, path: str | Path | None):
        self.path = Path(path) if path is not None else None
        self._loaded: dict[str, dict] | None = None

    def load(self) -> dict[str, dict]:
        """Map cache key -> result for every completed task on record."""
        if self._loaded is None:
            self._loaded = self._read()
        return self._loaded

    def _read(self) -> dict[str, dict]:
        if self.path is None or not self.path.exists():
            return {}
        from repro.pipeline.cache import iter_jsonl_dicts

        stored: dict[str, dict] = {}
        for entry in iter_jsonl_dicts(self.path):
            if entry.get("type") == "result":
                stored[str(entry["key"])] = entry["result"]
        return stored

    def append(self, label: str, kernel: str, key: str, result: dict,
               target: str | None = None) -> None:
        if self._loaded is not None:
            self._loaded[key] = result
        entry = {"type": "result", "campaign": label, "kernel": kernel,
                 "key": key, "result": result}
        if target is not None:
            entry["target"] = target
        self._write(entry)

    def append_summary(self, summary: CampaignSummary) -> None:
        self._write({"type": "summary", **summary.as_dict()})

    def _write(self, entry: dict) -> None:
        if self.path is None:
            return
        self.path.parent.mkdir(parents=True, exist_ok=True)
        with self.path.open("a", encoding="utf-8") as handle:
            handle.write(json.dumps(entry) + "\n")
