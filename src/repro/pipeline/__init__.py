"""End-to-end pipeline: Algorithm 1, per-kernel runners and the campaign engine."""

from repro.pipeline.verdict import Verdict
from repro.pipeline.equivalence import EquivalencePipeline, PipelineReport
from repro.pipeline.runner import KernelRunResult, LLMVectorizer, LLMVectorizerConfig
from repro.pipeline.cache import CacheStats, ResultCache, config_fingerprint, content_key
from repro.pipeline.campaign import (
    CampaignConfig,
    CampaignReport,
    CampaignRunner,
    CampaignSummary,
    KernelTask,
    ShardSpec,
    derive_kernel_seed,
    is_error_result,
    shard_of,
)
from repro.pipeline.shard import merge_caches, merge_stores, report_from_store, store_live_entries
from repro.pipeline.scheduler import ExecutionStats, next_batch_size, resolve_batch_setting
from repro.pipeline.incremental import (
    CompactionStats,
    IncrementalPlan,
    compact_store,
    plan_reverify,
    reverify,
)

__all__ = [
    "Verdict",
    "EquivalencePipeline",
    "PipelineReport",
    "KernelRunResult",
    "LLMVectorizer",
    "LLMVectorizerConfig",
    "CacheStats",
    "ResultCache",
    "config_fingerprint",
    "content_key",
    "CampaignConfig",
    "CampaignReport",
    "CampaignRunner",
    "CampaignSummary",
    "KernelTask",
    "ShardSpec",
    "derive_kernel_seed",
    "is_error_result",
    "shard_of",
    "merge_caches",
    "merge_stores",
    "report_from_store",
    "store_live_entries",
    "ExecutionStats",
    "next_batch_size",
    "resolve_batch_setting",
    "CompactionStats",
    "IncrementalPlan",
    "compact_store",
    "plan_reverify",
    "reverify",
]
