"""End-to-end pipeline: Algorithm 1 and per-kernel / whole-suite runners."""

from repro.pipeline.verdict import Verdict
from repro.pipeline.equivalence import EquivalencePipeline, PipelineReport
from repro.pipeline.runner import KernelRunResult, LLMVectorizer, LLMVectorizerConfig

__all__ = [
    "Verdict",
    "EquivalencePipeline",
    "PipelineReport",
    "KernelRunResult",
    "LLMVectorizer",
    "LLMVectorizerConfig",
]
