"""Verdict vocabulary shared by the testing and verification stages."""

from __future__ import annotations

import enum


class Verdict(enum.Enum):
    """The paper's four equivalence verdicts, plus the static screen's one."""

    PLAUSIBLE = "plausible"            # survived checksum testing (possibly correct)
    EQUIVALENT = "equivalent"          # formally verified (modulo bounded unrolling)
    NOT_EQUIVALENT = "not_equivalent"  # refuted by testing or verification
    INCONCLUSIVE = "inconclusive"      # resource limits / unsupported encodings
    STATIC_REJECT = "static_reject"    # every candidate refuted by static vetting alone

    @property
    def is_final(self) -> bool:
        return self in (Verdict.EQUIVALENT, Verdict.NOT_EQUIVALENT,
                        Verdict.STATIC_REJECT)
