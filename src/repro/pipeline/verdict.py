"""Verdict vocabulary shared by the testing and verification stages."""

from __future__ import annotations

import enum


class Verdict(enum.Enum):
    """The four verdicts of the paper's equivalence-checking methodology."""

    PLAUSIBLE = "plausible"            # survived checksum testing (possibly correct)
    EQUIVALENT = "equivalent"          # formally verified (modulo bounded unrolling)
    NOT_EQUIVALENT = "not_equivalent"  # refuted by testing or verification
    INCONCLUSIVE = "inconclusive"      # resource limits / unsupported encodings

    @property
    def is_final(self) -> bool:
        return self in (Verdict.EQUIVALENT, Verdict.NOT_EQUIVALENT)
