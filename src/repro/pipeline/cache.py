"""Content-addressed result cache for campaign runs.

Every expensive unit of campaign work — vectorizing a kernel, classifying a
sampled completion batch, running the verification funnel on a candidate —
is identified by a SHA-256 key derived from the *content* that determines
its outcome: the scalar kernel source, the candidate code (where one
exists), the configuration fingerprint and the derived per-kernel seed.
Because the key is content-addressed, a cache entry is valid forever: if any
input changes the key changes, so stale entries can never be returned.

The cache keeps everything in memory and can optionally persist to a JSONL
file (one ``{"key": ..., "value": ...}`` object per line, append-only).  A
crashed or interrupted campaign therefore loses at most the entry being
written; re-running resumes from the persisted entries.

Durability is a knob: by default every persisted entry is ``fsync``'d
(``flush_interval=1``), so even a machine crash loses at most one entry.
Suite-scale campaigns issue hundreds of puts, and one fsync per put
dominates the I/O cost; ``flush_interval=N`` batches the syncs (every N
entries plus an explicit :meth:`ResultCache.flush`, which the campaign
engine calls at the end of every run), and ``flush_interval=0`` syncs only
on :meth:`~ResultCache.flush`.  Entries are always flushed to the OS after
each put, so a crashed *process* (as opposed to a crashed machine) still
loses at most the final line.
"""

from __future__ import annotations

import contextlib
import hashlib
import json
import os
from dataclasses import dataclass
from pathlib import Path
from collections.abc import Iterator
from typing import Any


#: Sentinel distinguishing "key absent" from "stored value is None": a cached
#: ``None`` (or any falsy value) is a legitimate result that must persist and
#: resume like any other.
_MISSING = object()


def content_key(*parts: str) -> str:
    """SHA-256 key over length-prefixed parts (no separator ambiguity)."""
    digest = hashlib.sha256()
    for part in parts:
        encoded = part.encode()
        digest.update(str(len(encoded)).encode("ascii"))
        digest.update(b":")
        digest.update(encoded)
    return digest.hexdigest()


def config_fingerprint(obj: Any, target: str | None = None,
                       dtype: str | None = None) -> str:
    """A stable fingerprint of a (nested dataclass) configuration object.

    ``target`` salts the fingerprint with a target-ISA name.  Multi-target
    campaigns share one cache file, and several configuration objects (e.g.
    the performance-eval payload) do not themselves carry the target; salting
    the fingerprint guarantees that per-ISA verdicts can never collide on a
    cached entry even then.

    ``dtype`` salts it with the campaign's lane element type the same way.
    ``int32`` (and ``None``) add no salt, so every fingerprint minted before
    the dtype axis existed stays byte-identical and old cache files resume
    cleanly; int16/int64 campaigns get their own key space.
    """
    import dataclasses

    def normalize(value: Any) -> Any:
        if dataclasses.is_dataclass(value) and not isinstance(value, type):
            return {
                "__dataclass__": type(value).__name__,
                **{f.name: normalize(getattr(value, f.name)) for f in dataclasses.fields(value)},
            }
        if isinstance(value, dict):
            return {str(k): normalize(v) for k, v in sorted(value.items(), key=lambda kv: str(kv[0]))}
        if isinstance(value, (list, tuple)):
            return [normalize(v) for v in value]
        if isinstance(value, (str, int, float, bool)) or value is None:
            return value
        return repr(value)

    parts = [json.dumps(normalize(obj), sort_keys=True)]
    if target is not None:
        parts.append(f"target:{target}")
    if dtype is not None and dtype != "int32":
        parts.append(f"dtype:{dtype}")
    return content_key(*parts)


@dataclass
class CacheStats:
    """Hit/miss accounting for one cache (or one campaign run)."""

    hits: int = 0
    misses: int = 0

    @property
    def lookups(self) -> int:
        return self.hits + self.misses

    @property
    def hit_rate(self) -> float:
        if not self.lookups:
            return 0.0
        return self.hits / self.lookups

    def merge(self, other: "CacheStats") -> None:
        self.hits += other.hits
        self.misses += other.misses


class ResultCache:
    """In-memory content-addressed cache with optional JSONL persistence.

    ``flush_interval`` controls durability of the JSONL file: ``1`` (the
    default) fsyncs after every entry, ``N`` fsyncs every N entries, ``0``
    fsyncs only on an explicit :meth:`flush`.
    """

    def __init__(self, path: str | Path | None = None, flush_interval: int = 1):
        if flush_interval < 0:
            raise ValueError(f"flush_interval must be >= 0, got {flush_interval}")
        self.path = Path(path) if path is not None else None
        self.flush_interval = flush_interval
        self.stats = CacheStats()
        self._entries: dict[str, Any] = {}
        self._handle = None
        self._unsynced = 0
        if self.path is not None and self.path.exists():
            for key, value in _read_jsonl_entries(self.path):
                self._entries[key] = value

    def __len__(self) -> int:
        return len(self._entries)

    def __contains__(self, key: str) -> bool:
        return key in self._entries

    def get(self, key: str) -> Any | None:
        """Look the key up, recording a hit or a miss."""
        if key in self._entries:
            self.stats.hits += 1
            return self._entries[key]
        self.stats.misses += 1
        return None

    def peek(self, key: str) -> Any | None:
        """Look the key up without touching the hit/miss counters."""
        return self._entries.get(key)

    def put(self, key: str, value: Any) -> None:
        """Store a JSON-serializable value, appending to the JSONL file if any.

        The duplicate check uses a sentinel default: ``get(key) == value``
        would conflate "key absent" with "already stored ``None``", silently
        dropping a legitimately-``None`` value from the JSONL file and
        forcing a resumed run to re-execute that work.
        """
        already_stored = self._entries.get(key, _MISSING) == value
        self._entries[key] = value
        if self.path is None or already_stored:
            return
        handle = self._append_handle()
        handle.write(json.dumps({"key": key, "value": value}) + "\n")
        handle.flush()
        self._unsynced += 1
        if self.flush_interval and self._unsynced >= self.flush_interval:
            os.fsync(handle.fileno())
            self._unsynced = 0

    def compact(self) -> int:
        """Rewrite the JSONL file with one line per live key; returns lines dropped.

        The append-only file accumulates superseded lines over a cache's
        life (an error record retried into a real result appends a second
        line for the key); long-lived caches backing many campaigns reload
        every one of them on startup.  Compaction writes the in-memory
        entries — already the last-wins replay of the file, in first-seen
        key order — to a sibling temp file and atomically renames it over,
        so a crash mid-compaction leaves the original intact.
        """
        if self.path is None or not self.path.exists():
            return 0
        self.close()
        lines_before = sum(1 for _ in _read_jsonl_entries(self.path))
        temp = self.path.with_name(self.path.name + ".compact.tmp")
        with temp.open("w", encoding="utf-8") as handle:
            for key, value in self._entries.items():
                handle.write(json.dumps({"key": key, "value": value}) + "\n")
            handle.flush()
            os.fsync(handle.fileno())
        os.replace(temp, self.path)
        return lines_before - len(self._entries)

    def flush(self) -> None:
        """Force any entries not yet fsync'd onto stable storage."""
        if self._handle is not None and self._unsynced:
            self._handle.flush()
            os.fsync(self._handle.fileno())
            self._unsynced = 0

    def close(self) -> None:
        """Flush pending entries and release the append handle.

        Safe to call repeatedly; the handle reopens lazily on the next
        :meth:`put`.  The campaign engine closes after every run, so idle
        runners hold no file descriptors.
        """
        self.flush()
        if self._handle is not None:
            self._handle.close()
            self._handle = None

    def __del__(self):
        # Interpreter shutdown: the OS reclaims the handle anyway.
        with contextlib.suppress(Exception):
            self.close()

    def _append_handle(self):
        if self._handle is None or self._handle.closed:
            self.path.parent.mkdir(parents=True, exist_ok=True)
            self._handle = self.path.open("a", encoding="utf-8")
        return self._handle

    def reset_stats(self) -> CacheStats:
        """Return the current stats and start a fresh counting window."""
        window = self.stats
        self.stats = CacheStats()
        return window


def iter_jsonl_dicts(path: Path) -> Iterator[dict]:
    """Yield the JSON objects of a JSONL file, tolerating a truncated tail.

    The one tolerant JSONL reader behind the result cache, the campaign
    store and the shard merger: blank lines are skipped, a half-written
    line (the crash-mid-append case) is dropped, non-dict lines are ignored.
    """
    with path.open(encoding="utf-8") as handle:
        for line in handle:
            line = line.strip()
            if not line:
                continue
            try:
                entry = json.loads(line)
            except json.JSONDecodeError:
                continue  # half-written final line of an interrupted run
            if isinstance(entry, dict):
                yield entry


def _read_jsonl_entries(path: Path) -> Iterator[tuple[str, Any]]:
    """Yield (key, value) pairs, tolerating a truncated trailing line."""
    for entry in iter_jsonl_dicts(path):
        if "key" in entry:
            yield str(entry["key"]), entry.get("value")
