"""Content-addressed result cache for campaign runs.

Every expensive unit of campaign work — vectorizing a kernel, classifying a
sampled completion batch, running the verification funnel on a candidate —
is identified by a SHA-256 key derived from the *content* that determines
its outcome: the scalar kernel source, the candidate code (where one
exists), the configuration fingerprint and the derived per-kernel seed.
Because the key is content-addressed, a cache entry is valid forever: if any
input changes the key changes, so stale entries can never be returned.

The cache keeps everything in memory and can optionally persist to a JSONL
file (one ``{"key": ..., "value": ...}`` object per line, append-only).  A
crashed or interrupted campaign therefore loses at most the entry being
written; re-running resumes from the persisted entries.
"""

from __future__ import annotations

import hashlib
import json
import os
from dataclasses import dataclass
from pathlib import Path
from typing import Any, Iterator


def content_key(*parts: str) -> str:
    """SHA-256 key over length-prefixed parts (no separator ambiguity)."""
    digest = hashlib.sha256()
    for part in parts:
        encoded = part.encode("utf-8")
        digest.update(str(len(encoded)).encode("ascii"))
        digest.update(b":")
        digest.update(encoded)
    return digest.hexdigest()


def config_fingerprint(obj: Any, target: str | None = None) -> str:
    """A stable fingerprint of a (nested dataclass) configuration object.

    ``target`` salts the fingerprint with a target-ISA name.  Multi-target
    campaigns share one cache file, and several configuration objects (e.g.
    the performance-eval payload) do not themselves carry the target; salting
    the fingerprint guarantees that per-ISA verdicts can never collide on a
    cached entry even then.
    """
    import dataclasses

    def normalize(value: Any) -> Any:
        if dataclasses.is_dataclass(value) and not isinstance(value, type):
            return {
                "__dataclass__": type(value).__name__,
                **{f.name: normalize(getattr(value, f.name)) for f in dataclasses.fields(value)},
            }
        if isinstance(value, dict):
            return {str(k): normalize(v) for k, v in sorted(value.items(), key=lambda kv: str(kv[0]))}
        if isinstance(value, (list, tuple)):
            return [normalize(v) for v in value]
        if isinstance(value, (str, int, float, bool)) or value is None:
            return value
        return repr(value)

    parts = [json.dumps(normalize(obj), sort_keys=True)]
    if target is not None:
        parts.append(f"target:{target}")
    return content_key(*parts)


@dataclass
class CacheStats:
    """Hit/miss accounting for one cache (or one campaign run)."""

    hits: int = 0
    misses: int = 0

    @property
    def lookups(self) -> int:
        return self.hits + self.misses

    @property
    def hit_rate(self) -> float:
        if not self.lookups:
            return 0.0
        return self.hits / self.lookups

    def merge(self, other: "CacheStats") -> None:
        self.hits += other.hits
        self.misses += other.misses


class ResultCache:
    """In-memory content-addressed cache with optional JSONL persistence."""

    def __init__(self, path: str | Path | None = None):
        self.path = Path(path) if path is not None else None
        self.stats = CacheStats()
        self._entries: dict[str, Any] = {}
        if self.path is not None and self.path.exists():
            for key, value in _read_jsonl_entries(self.path):
                self._entries[key] = value

    def __len__(self) -> int:
        return len(self._entries)

    def __contains__(self, key: str) -> bool:
        return key in self._entries

    def get(self, key: str) -> Any | None:
        """Look the key up, recording a hit or a miss."""
        if key in self._entries:
            self.stats.hits += 1
            return self._entries[key]
        self.stats.misses += 1
        return None

    def peek(self, key: str) -> Any | None:
        """Look the key up without touching the hit/miss counters."""
        return self._entries.get(key)

    def put(self, key: str, value: Any) -> None:
        """Store a JSON-serializable value, appending to the JSONL file if any."""
        already_stored = self._entries.get(key) == value
        self._entries[key] = value
        if self.path is not None and not already_stored:
            self.path.parent.mkdir(parents=True, exist_ok=True)
            with self.path.open("a", encoding="utf-8") as handle:
                handle.write(json.dumps({"key": key, "value": value}) + "\n")
                handle.flush()
                os.fsync(handle.fileno())

    def reset_stats(self) -> CacheStats:
        """Return the current stats and start a fresh counting window."""
        window = self.stats
        self.stats = CacheStats()
        return window


def _read_jsonl_entries(path: Path) -> Iterator[tuple[str, Any]]:
    """Yield (key, value) pairs, tolerating a truncated trailing line."""
    with path.open("r", encoding="utf-8") as handle:
        for line in handle:
            line = line.strip()
            if not line:
                continue
            try:
                entry = json.loads(line)
            except json.JSONDecodeError:
                continue  # half-written final line of an interrupted run
            if isinstance(entry, dict) and "key" in entry:
                yield str(entry["key"]), entry.get("value")
