"""Work-stealing batched dispatch for campaign process pools.

PR 6 made one kernel's verification cheap (~milliseconds), which inverted
the parallel campaign's cost profile: with one pickled future per task, the
orchestration overhead — a pickle/IPC round-trip per kernel plus cold
per-process plan/SMT caches — rivals the work itself, and a slow kernel at
the tail of a static partition leaves every other worker idle.  This module
replaces per-task submission with **dynamic batched dispatch from a shared
queue**:

* **batching** — workers receive *batches* of kernel tasks, amortizing the
  per-dispatch pickle/IPC cost over the whole batch; one worker invocation
  runs the batch serially and ships all results (plus its per-batch cache
  accounting) back in one envelope;
* **work stealing** — batches are handed out on demand from one shared
  queue: a worker that finishes early immediately claims the next batch,
  so remaining work migrates to fast workers instead of being pinned to a
  static ``i/n`` partition behind a straggler;
* **guided sizing** — with ``batch_size="auto"`` each claimed batch takes
  ``remaining / (workers * STEAL_FACTOR)`` tasks (clamped to
  [1, ``MAX_AUTO_BATCH``]): early batches are large (amortization), late
  batches shrink toward single tasks (tail balance), the classic guided
  self-scheduling schedule;
* **warm workers** — a pool initializer pre-seeds each worker's
  process-local plan cache (:mod:`repro.vectorizer.plancache`) with the
  campaign's scalar sources and pre-interns the small SMT constants, so no
  worker pays the cold-cache cost on its first batch; and because one pool
  serves the whole campaign, caches keep warming batch over batch;
* **fleet accounting** — every batch envelope carries the worker's
  plan-cache counter *delta* for that batch; the campaign engine folds the
  deltas into a fleet-wide tally, so
  :class:`~repro.pipeline.campaign.CampaignSummary` reports true
  cross-process hit rates instead of the parent's (always-cold) zeros.

None of this can change a result: per-kernel seeds derive from kernel
names, so verdicts are bit-identical at any worker count, batch size and
completion order.  Fault tolerance is layered the same way as before: a
broken pool orphans the unfinished tasks (a mid-batch worker death orphans
the whole batch — its unsent results died with it), and the campaign
engine's per-task bisection recovery corners a poison task exactly as it
did with per-task dispatch.
"""

from __future__ import annotations

import contextlib
import math
from collections import deque
from concurrent.futures import FIRST_COMPLETED, ProcessPoolExecutor, wait
from concurrent.futures.process import BrokenProcessPool
from dataclasses import dataclass, field
from collections.abc import Callable
from typing import TYPE_CHECKING

from repro.perf.profile import counter_delta, merge_counts

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.pipeline.campaign import JobFn, KernelTask

#: The adaptive batch-size setting (the default): guided self-scheduling.
AUTO_BATCH = "auto"

#: Largest batch ``"auto"`` will hand out.  Caps the damage of one lost
#: batch (a broken pool re-executes its tasks through bisection recovery)
#: and keeps the queue deep enough that late joiners find work to steal.
MAX_AUTO_BATCH = 32

#: How many batches per worker the auto schedule aims to leave in the
#: queue: each claim takes ``remaining / (workers * STEAL_FACTOR)``.
STEAL_FACTOR = 2


def resolve_batch_setting(setting: "int | str") -> "int | str":
    """Validate a ``batch_size`` knob: a positive int or ``"auto"``."""
    if isinstance(setting, str):
        if setting != AUTO_BATCH:
            raise ValueError(
                f"batch_size must be a positive int or {AUTO_BATCH!r}, got {setting!r}")
        return AUTO_BATCH
    if not isinstance(setting, int) or isinstance(setting, bool) or setting < 1:
        raise ValueError(
            f"batch_size must be a positive int or {AUTO_BATCH!r}, got {setting!r}")
    return setting


def next_batch_size(remaining: int, workers: int, setting: "int | str") -> int:
    """How many tasks the next claimed batch takes off the shared queue."""
    if remaining <= 0:
        return 0
    if setting != AUTO_BATCH:
        return min(int(setting), remaining)
    guided = math.ceil(remaining / max(1, workers * STEAL_FACTOR))
    return max(1, min(MAX_AUTO_BATCH, guided, remaining))


@dataclass
class ExecutionStats:
    """What one ``_execute`` pass actually did (vs. what was configured)."""

    #: Workers actually used: 0 when nothing was pending, 1 on the serial
    #: path, else the pool width after clamping to the pending task count.
    workers: int = 0
    #: Batches dispatched (0 on the serial path — no dispatch happened).
    batches: int = 0
    #: The resolved batch-size setting (``"auto"`` or an int); None when no
    #: batched dispatch ran.
    batch_size: "int | str | None" = None
    #: Fleet-wide plan-cache counters, summed over every worker's per-batch
    #: deltas (and the parent's own delta on the serial path).
    plan_cache: dict[str, int] = field(default_factory=dict)
    #: Fleet-wide solver counters (solve-cache hits/misses/stores plus the
    #: raw CDCL work: decisions/propagations/conflicts/learned/restarts),
    #: summed the same way (:mod:`repro.smt.solvecache`).
    solver: dict[str, int] = field(default_factory=dict)


def warm_worker(sources: tuple[str, ...],
                solve_entries: "tuple | list" = ()) -> None:
    """Pool initializer: pre-seed the worker's process-local caches.

    Parses every distinct scalar source of the campaign into the plan
    cache's parse table, pre-interns the small SMT constants every symexec
    run begins with, and adopts the parent's solved-query cache entries
    (:mod:`repro.smt.solvecache`) so queries another campaign already
    solved — e.g. the other SVE vector length's — are hits on the worker's
    first batch.  Initializers run before the worker's first task, so no
    batch pays the cold-cache cost.  Failures are swallowed — an unparsable
    source will surface as that kernel's own error record, never as a
    broken pool.
    """
    # Warming is best-effort: a cold worker is merely slower, and an
    # unparsable source is the kernel's own job's to report.
    with contextlib.suppress(Exception):
        from repro.smt import solvecache
        from repro.smt.terms import bv_const
        from repro.vectorizer.plancache import cached_parse

        for value in range(-1, 65):
            bv_const(value)
        solvecache.seed_entries(solve_entries)
        for source in sources:
            with contextlib.suppress(Exception):
                cached_parse(source)


def run_task_batch(job: "JobFn", tasks: "list[KernelTask]", label: str,
                   fail_fast: bool) -> dict:
    """Worker entry point: run one batch serially, return one envelope.

    The envelope carries the per-task results (in batch order, each with
    its stage-seconds annotation), the worker's plan-cache and solver
    counter deltas for this batch, the solved-query cache entries the batch
    discovered (so the parent can adopt and persist them), and — under
    ``fail_fast`` — the first failure, after which the batch stops
    (completed results still ship, so the parent can persist them before
    aborting).
    """
    from repro.pipeline.campaign import _run_job
    from repro.smt import solvecache
    from repro.vectorizer import plancache

    before = plancache.stats.as_dict()
    solver_before = solvecache.stats.as_dict()
    journal_mark = solvecache.journal_position()
    results: list[dict] = []
    failure: dict | None = None
    for task in tasks:
        try:
            results.append(_run_job(job, task, label, fail_fast))
        except Exception as error:  # only reachable under fail_fast
            failure = {"kernel": task.kernel, "message": str(error)}
            break
    return {
        "results": results,
        "plan_cache": counter_delta(before, plancache.stats.as_dict()),
        "solver": counter_delta(solver_before, solvecache.stats.as_dict()),
        "solve_cache": solvecache.entries_since(journal_mark),
        "failure": failure,
    }


def dispatch_batches(
    job: "JobFn",
    pending: "list[tuple[KernelTask, str]]",
    *,
    label: str,
    workers: int,
    batch_setting: "int | str",
    fail_fast: bool,
    on_result: "Callable[[KernelTask, str, dict], None]",
    stats: ExecutionStats,
    warm_sources: tuple[str, ...] | None = None,
    warm_solve_entries: "list | None" = None,
) -> "list[tuple[KernelTask, str]]":
    """Run ``pending`` through one warm pool via dynamic batch claims.

    Returns the tasks a broken pool orphaned (empty on a clean pass).  The
    pool can break at any point — while submitting, between batches, mid
    batch — so the whole pass is guarded: any task whose result did not
    come back is reported as orphaned, never lost.  ``on_result`` fires in
    completion order as each batch envelope lands, so a killed campaign
    keeps every batch that finished.
    """
    from repro.smt import solvecache

    claimable = deque(pending)
    completed: set[str] = set()

    initializer = warm_worker if warm_sources is not None else None
    initargs = ((warm_sources, tuple(warm_solve_entries or ()))
                if warm_sources is not None else ())

    try:
        with ProcessPoolExecutor(max_workers=workers, initializer=initializer,
                                 initargs=initargs) as pool:
            inflight: dict = {}

            def claim_and_submit() -> None:
                size = next_batch_size(len(claimable), workers, batch_setting)
                if size <= 0:
                    return
                batch = [claimable.popleft() for _ in range(size)]
                future = pool.submit(run_task_batch, job,
                                     [task for task, _ in batch], label, fail_fast)
                inflight[future] = batch
                stats.batches += 1

            for _ in range(workers):
                claim_and_submit()
            while inflight:
                done, _ = wait(set(inflight), return_when=FIRST_COMPLETED)
                for future in done:
                    batch = inflight.pop(future)
                    try:
                        envelope = future.result()
                    except BrokenProcessPool:
                        continue  # the batch died with its worker: orphaned
                    merge_counts(stats.plan_cache, envelope.get("plan_cache"))
                    merge_counts(stats.solver, envelope.get("solver"))
                    # Adopt the batch's freshly solved queries: later
                    # campaigns (and the persisted solve-cache file) see
                    # them, and the next pool's initializer re-ships them.
                    solvecache.seed_entries(envelope.get("solve_cache") or ())
                    for (task, key), result in zip(batch, envelope["results"]):
                        completed.add(key)
                        on_result(task, key, result)
                    failure = envelope.get("failure")
                    if failure is not None:
                        # fail_fast: completed results (above) are already
                        # persisted; now honour the abort contract.
                        raise RuntimeError(failure["message"])
                    # The steal: this worker is free, hand it the next
                    # (adaptively smaller) slice of the shared queue.
                    claim_and_submit()
    except BrokenProcessPool:
        pass  # broke mid-submission; everything not completed is orphaned
    return [(task, key) for task, key in pending if key not in completed]
