"""Algorithm 1: the staged equivalence-checking pipeline.

``check_equivalence(S, V)``:

1. checksum-based testing — a refuted or uncompilable candidate stops here;
2. ``checkWithAlive2Unroll`` — out-of-the-box bounded translation validation;
3. ``checkWithCUnroll`` — C-level unrolling of the scalar program (Section 3.2);
4. ``checkWithSpatialSplitting`` — per-index queries for dependence-free
   kernels (Section 3.3).

Each stage only sees the cases the previous stages left inconclusive, exactly
as in the paper's Table 3, and the report records which stage settled the
candidate.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.alive.verifier import AliveVerifier, VerificationOutcome, VerifierConfig
from repro.interp.checksum import ChecksumOutcome, ChecksumReport, checksum_testing
from repro.pipeline.verdict import Verdict


@dataclass
class PipelineReport:
    """Result of running Algorithm 1 on one (scalar, vectorized) pair."""

    verdict: Verdict
    deciding_stage: str
    checksum: ChecksumReport | None = None
    stage_outcomes: dict[str, str] = field(default_factory=dict)
    detail: str = ""

    @property
    def checksum_plausible(self) -> bool:
        return self.checksum is not None and self.checksum.is_plausible


_OUTCOME_TO_VERDICT = {
    VerificationOutcome.EQUIVALENT: Verdict.EQUIVALENT,
    VerificationOutcome.NOT_EQUIVALENT: Verdict.NOT_EQUIVALENT,
    VerificationOutcome.INCONCLUSIVE: Verdict.INCONCLUSIVE,
}


class EquivalencePipeline:
    """Runs Algorithm 1; construct once and reuse across kernels."""

    def __init__(self, verifier_config: VerifierConfig | None = None,
                 checksum_seed: int = 0, checksum_trip_counts: list[int] | None = None):
        self.verifier = AliveVerifier(verifier_config)
        self.checksum_seed = checksum_seed
        self.checksum_trip_counts = checksum_trip_counts

    def check_equivalence(self, scalar_code: str, vectorized_code: str,
                          skip_checksum: bool = False) -> PipelineReport:
        """Run the staged check of Algorithm 1 on one candidate."""
        stage_outcomes: dict[str, str] = {}

        checksum_report = None
        if not skip_checksum:
            checksum_report = checksum_testing(
                scalar_code, vectorized_code,
                seed=self.checksum_seed, trip_counts=self.checksum_trip_counts,
            )
            stage_outcomes["checksum"] = checksum_report.outcome.value
            if checksum_report.outcome is ChecksumOutcome.CANNOT_COMPILE:
                return PipelineReport(
                    verdict=Verdict.NOT_EQUIVALENT, deciding_stage="checksum",
                    checksum=checksum_report, stage_outcomes=stage_outcomes,
                    detail=checksum_report.compile_error or "candidate does not compile",
                )
            if checksum_report.outcome is ChecksumOutcome.NOT_EQUIVALENT:
                return PipelineReport(
                    verdict=Verdict.NOT_EQUIVALENT, deciding_stage="checksum",
                    checksum=checksum_report, stage_outcomes=stage_outcomes,
                    detail="checksum testing found an output mismatch",
                )

        stages = [
            ("alive-unroll", self.verifier.check_with_alive_unroll),
            ("c-unroll", self.verifier.check_with_c_unroll),
            ("spatial-splitting", self.verifier.check_with_spatial_splitting),
        ]
        last_detail = ""
        for name, stage in stages:
            report = stage(scalar_code, vectorized_code)
            stage_outcomes[name] = report.outcome.value
            last_detail = report.detail
            if report.outcome is not VerificationOutcome.INCONCLUSIVE:
                return PipelineReport(
                    verdict=_OUTCOME_TO_VERDICT[report.outcome], deciding_stage=name,
                    checksum=checksum_report, stage_outcomes=stage_outcomes, detail=report.detail,
                )
        return PipelineReport(
            verdict=Verdict.INCONCLUSIVE, deciding_stage="none",
            checksum=checksum_report, stage_outcomes=stage_outcomes, detail=last_detail,
        )
