"""Symbolic execution of the C subset over bitvector terms.

The executor runs a kernel with

* a *concrete* trip count (loops are fully unrolled, the "bounded" part of
  bounded translation validation),
* *symbolic* array contents (each cell of each pointer parameter starts as a
  fresh bitvector variable ``<array>_<index>``),
* concrete values for the remaining scalar parameters, and
* per-parameter disjoint memory regions (the paper's non-aliasing setup).

Data-dependent control flow is handled by executing both branches and merging
states with ``ite`` terms, so no path explosion occurs; loops whose condition
does not fold to a constant (data-dependent trip counts, early exits) raise
:class:`SymbolicExecutionError`, which the verifier reports as Inconclusive —
the same bucket the paper uses for queries Alive2 cannot encode.
"""

from __future__ import annotations

import contextlib
from dataclasses import dataclass, field
from collections.abc import Mapping

from repro.cfront import ast_nodes as ast
from repro.intrinsics.lanemath import lane_active, whilelt_lanes
from repro.intrinsics.registry import is_intrinsic, lookup_intrinsic
from repro.intrinsics.values import ALL_VALID_WIDTHS
from repro.lanetypes import INT32, LaneType
from repro.smt.terms import (Term, TermKind, active_bits, bv_const, bv_var,
                             mk, modeled_bits, poison, to_signed)

MINUS_ONE = bv_const(-1)
ZERO = bv_const(0)
ONE = bv_const(1)


class SymbolicExecutionError(Exception):
    """The program cannot be executed symbolically (reported as Inconclusive)."""


@dataclass(frozen=True)
class SymPointer:
    """A pointer value: region name plus a concrete element offset."""

    region: str
    offset: int = 0

    def advanced(self, delta: int) -> "SymPointer":
        return SymPointer(self.region, self.offset + delta)


@dataclass
class SymVector:
    """A symbolic SIMD register: one bitvector term per lane.

    Lane terms are modelled at the kernel's element width (the
    :func:`~repro.smt.terms.modeled_bits` context active during execution);
    the register's lane *count* is all that is checked here.
    """

    lanes: list[Term]

    def __post_init__(self) -> None:
        if len(self.lanes) not in ALL_VALID_WIDTHS:
            raise SymbolicExecutionError(
                f"vector width {len(self.lanes)} is not one of {ALL_VALID_WIDTHS}"
            )

    @property
    def width(self) -> int:
        return len(self.lanes)


@dataclass
class SymPred:
    """A symbolic predicate register: one 0/1 bitvector term per lane.

    Every lane term is kept in boolean form (the constant 0 or 1, or an
    ``ite``/logical combination of such), so predicate logic composes with
    plain bitvector AND/OR and a lane is "active" exactly when its term is
    nonzero.
    """

    lanes: list[Term]

    def __post_init__(self) -> None:
        if len(self.lanes) not in ALL_VALID_WIDTHS:
            raise SymbolicExecutionError(
                f"predicate width {len(self.lanes)} is not one of {ALL_VALID_WIDTHS}"
            )

    @property
    def width(self) -> int:
        return len(self.lanes)


SymValue = Term | SymPointer | SymVector | SymPred


@dataclass
class SymRegion:
    """One array region with symbolic cells and an out-of-bounds log."""

    name: str
    size: int
    cells: dict[int, Term] = field(default_factory=dict)

    def cell(self, index: int) -> Term:
        if index not in self.cells:
            self.cells[index] = bv_var(f"{self.name}_{index}")
        return self.cells[index]


@dataclass
class SymbolicState:
    """Memory + scalar environment of a symbolic execution."""

    regions: dict[str, SymRegion] = field(default_factory=dict)
    scalars: dict[str, SymValue] = field(default_factory=dict)
    ub_events: list[str] = field(default_factory=list)

    def clone(self) -> "SymbolicState":
        new = SymbolicState()
        new.regions = {name: SymRegion(r.name, r.size, dict(r.cells)) for name, r in self.regions.items()}
        new.scalars = dict(self.scalars)
        new.ub_events = list(self.ub_events)
        return new

    # -- memory -------------------------------------------------------------------

    def load(self, region_name: str, index: int) -> Term:
        region = self.regions.get(region_name)
        if region is None:
            raise SymbolicExecutionError(f"load from unknown region {region_name!r}")
        if index < 0 or index >= region.size:
            self.ub_events.append(f"out-of-bounds read {region_name}[{index}]")
            return poison(f"oob:{region_name}[{index}]")
        return region.cell(index)

    def store(self, region_name: str, index: int, value: Term) -> None:
        region = self.regions.get(region_name)
        if region is None:
            raise SymbolicExecutionError(f"store to unknown region {region_name!r}")
        if index < 0 or index >= region.size:
            self.ub_events.append(f"out-of-bounds write {region_name}[{index}]")
            return
        if value.kind is TermKind.POISON:
            self.ub_events.append(f"poison stored to {region_name}[{index}]")
        region.cells[index] = value

    def final_cells(self) -> dict[str, dict[int, Term]]:
        return {name: {i: region.cell(i) for i in range(region.size)} for name, region in self.regions.items()}


def _as_concrete(value: SymValue, what: str) -> int:
    if isinstance(value, Term) and value.kind is TermKind.CONST:
        return to_signed(value.value, active_bits())
    raise SymbolicExecutionError(f"{what} is not a compile-time constant during symbolic execution")


class SymbolicExecutor:
    """Executes one function symbolically."""

    def __init__(self, func: ast.FunctionDef, state: SymbolicState, max_steps: int = 200_000,
                 dtype: LaneType = INT32):
        self.func = func
        self.state = state
        self.max_steps = max_steps
        self.steps = 0
        self.dtype = dtype

    # -- driver ---------------------------------------------------------------------

    def run(self) -> SymbolicState:
        with contextlib.suppress(_ReturnSignal):
            self._exec_block_like(self.func.body, self.state)
        return self.state

    def _tick(self) -> None:
        self.steps += 1
        if self.steps > self.max_steps:
            raise SymbolicExecutionError("symbolic execution step budget exceeded")

    # -- statements --------------------------------------------------------------------

    def _exec_block_like(self, stmt: ast.Stmt, state: SymbolicState) -> None:
        if isinstance(stmt, ast.Block):
            for inner in stmt.body:
                self._exec_stmt(inner, state)
            return
        self._exec_stmt(stmt, state)

    def _exec_stmt(self, stmt: ast.Stmt, state: SymbolicState) -> None:
        self._tick()
        if isinstance(stmt, ast.Block):
            self._exec_block_like(stmt, state)
        elif isinstance(stmt, ast.Decl):
            self._exec_decl(stmt, state)
        elif isinstance(stmt, ast.ExprStmt):
            self._eval(stmt.expr, state)
        elif isinstance(stmt, ast.If):
            self._exec_if(stmt, state)
        elif isinstance(stmt, ast.ForLoop):
            self._exec_for(stmt, state)
        elif isinstance(stmt, ast.WhileLoop):
            self._exec_while(stmt, state)
        elif isinstance(stmt, ast.Return):
            raise _ReturnSignal()
        elif isinstance(stmt, ast.Label):
            self._exec_stmt(stmt.stmt, state)
        elif isinstance(stmt, (ast.Goto, ast.Break, ast.Continue, ast.DoWhileLoop)):
            raise SymbolicExecutionError(
                f"statement {type(stmt).__name__} is not supported by the symbolic executor"
            )
        else:
            raise SymbolicExecutionError(f"cannot execute {type(stmt).__name__} symbolically")

    def _exec_decl(self, decl: ast.Decl, state: SymbolicState) -> None:
        if decl.array_size is not None:
            size = _as_concrete(self._eval(decl.array_size, state), "local array size")
            state.regions[decl.name] = SymRegion(decl.name, size, {i: ZERO for i in range(size)})
            state.scalars[decl.name] = SymPointer(decl.name, 0)
            return
        if decl.init is not None:
            state.scalars[decl.name] = self._eval(decl.init, state)
        elif decl.var_type.is_vector:
            lanes = decl.var_type.vector_lanes
            if not lanes:
                raise SymbolicExecutionError(
                    f"declaration of scalable vector {decl.name!r} needs an "
                    "initializer (the width travels with the intrinsics)"
                )
            state.scalars[decl.name] = SymVector([ZERO] * lanes)
        elif decl.var_type.is_predicate:
            raise SymbolicExecutionError(
                f"declaration of predicate {decl.name!r} needs an initializer "
                "(predicate widths travel with the intrinsics)"
            )
        else:
            state.scalars[decl.name] = ZERO

    def _exec_if(self, stmt: ast.If, state: SymbolicState) -> None:
        cond = self._eval(stmt.cond, state)
        cond_term = self._as_bool_term(cond)
        if cond_term.kind is TermKind.CONST:
            if cond_term.value != 0:
                self._exec_block_like(stmt.then, state)
            elif stmt.otherwise is not None:
                self._exec_block_like(stmt.otherwise, state)
            return
        # Data-dependent branch: execute both sides and merge with ite.
        then_state = state.clone()
        else_state = state.clone()
        self._exec_block_like(stmt.then, then_state)
        if stmt.otherwise is not None:
            self._exec_block_like(stmt.otherwise, else_state)
        self._merge_into(state, cond_term, then_state, else_state)

    def _merge_into(self, state: SymbolicState, cond: Term,
                    then_state: SymbolicState, else_state: SymbolicState) -> None:
        for name, region in state.regions.items():
            then_region = then_state.regions[name]
            else_region = else_state.regions[name]
            indices = set(region.cells) | set(then_region.cells) | set(else_region.cells)
            for index in indices:
                then_val = then_region.cell(index) if 0 <= index < then_region.size else ZERO
                else_val = else_region.cell(index) if 0 <= index < else_region.size else ZERO
                if then_val != else_val:
                    region.cells[index] = mk(TermKind.ITE, cond, then_val, else_val)
                else:
                    region.cells[index] = then_val
        for name in set(then_state.scalars) | set(else_state.scalars):
            then_val = then_state.scalars.get(name)
            else_val = else_state.scalars.get(name)
            if then_val is None or else_val is None:
                state.scalars[name] = then_val if then_val is not None else else_val
                continue
            if isinstance(then_val, Term) and isinstance(else_val, Term):
                state.scalars[name] = (
                    then_val if then_val == else_val else mk(TermKind.ITE, cond, then_val, else_val)
                )
            elif isinstance(then_val, SymVector) and isinstance(else_val, SymVector):
                state.scalars[name] = SymVector(
                    [mk(TermKind.ITE, cond, t, e) if t != e else t
                     for t, e in zip(then_val.lanes, else_val.lanes)]
                )
            elif isinstance(then_val, SymPred) and isinstance(else_val, SymPred):
                state.scalars[name] = SymPred(
                    [mk(TermKind.ITE, cond, t, e) if t != e else t
                     for t, e in zip(then_val.lanes, else_val.lanes)]
                )
            else:
                state.scalars[name] = then_val
        # UB in either branch is conservatively kept: a branch that may execute
        # under some input and has UB makes the whole program have potential UB.
        merged_events = then_state.ub_events + [e for e in else_state.ub_events
                                                if e not in then_state.ub_events]
        state.ub_events = merged_events

    def _exec_for(self, loop: ast.ForLoop, state: SymbolicState) -> None:
        if loop.init is not None:
            self._exec_stmt(loop.init, state)
        iterations = 0
        while True:
            self._tick()
            if loop.cond is not None:
                cond = self._as_bool_term(self._eval(loop.cond, state))
                if cond.kind is not TermKind.CONST:
                    raise SymbolicExecutionError("loop bound does not fold to a constant")
                if cond.value == 0:
                    break
            self._exec_block_like(loop.body, state)
            if loop.step is not None:
                self._eval(loop.step, state)
            iterations += 1
            if iterations > 4096:
                raise SymbolicExecutionError("loop unrolling exceeded the iteration budget")

    def _exec_while(self, loop: ast.WhileLoop, state: SymbolicState) -> None:
        iterations = 0
        while True:
            self._tick()
            cond = self._as_bool_term(self._eval(loop.cond, state))
            if cond.kind is not TermKind.CONST:
                raise SymbolicExecutionError("while condition does not fold to a constant")
            if cond.value == 0:
                break
            self._exec_block_like(loop.body, state)
            iterations += 1
            if iterations > 4096:
                raise SymbolicExecutionError("loop unrolling exceeded the iteration budget")

    # -- expressions ----------------------------------------------------------------------

    def _eval(self, expr: ast.Expr, state: SymbolicState) -> SymValue:
        self._tick()
        if isinstance(expr, ast.IntLiteral):
            return bv_const(expr.value)
        if isinstance(expr, ast.Identifier):
            if expr.name not in state.scalars:
                raise SymbolicExecutionError(f"use of undeclared identifier {expr.name!r}")
            return state.scalars[expr.name]
        if isinstance(expr, ast.ArrayRef):
            pointer, index = self._resolve(expr, state)
            return state.load(pointer.region, pointer.offset + index)
        if isinstance(expr, ast.BinOp):
            return self._eval_binop(expr, state)
        if isinstance(expr, ast.UnaryOp):
            return self._eval_unary(expr, state)
        if isinstance(expr, ast.PostfixOp):
            return self._apply_increment(expr.operand, 1 if expr.op == "++" else -1, state, return_new=False)
        if isinstance(expr, ast.TernaryOp):
            cond = self._as_bool_term(self._eval(expr.cond, state))
            then_val = self._eval(expr.then, state)
            else_val = self._eval(expr.otherwise, state)
            if isinstance(then_val, Term) and isinstance(else_val, Term):
                return mk(TermKind.ITE, cond, then_val, else_val)
            raise SymbolicExecutionError("ternary over non-scalar values")
        if isinstance(expr, ast.Assign):
            return self._eval_assign(expr, state)
        if isinstance(expr, ast.Cast):
            return self._eval(expr.operand, state)
        if isinstance(expr, ast.Call):
            return self._eval_call(expr, state)
        raise SymbolicExecutionError(f"cannot evaluate {type(expr).__name__} symbolically")

    def _resolve(self, expr: ast.ArrayRef, state: SymbolicState) -> tuple[SymPointer, int]:
        base = self._eval(expr.base, state)
        index = _as_concrete(self._eval(expr.index, state), "array subscript")
        if not isinstance(base, SymPointer):
            raise SymbolicExecutionError("array subscript on a non-pointer value")
        return base, index

    _BIN_TABLE = {
        "+": TermKind.ADD, "-": TermKind.SUB, "*": TermKind.MUL,
        "&": TermKind.AND, "|": TermKind.OR, "^": TermKind.XOR,
        "/": TermKind.DIV, "%": TermKind.REM,
        "<<": TermKind.SHL, ">>": TermKind.ASHR,
        "<": TermKind.LT, ">": TermKind.GT, "<=": TermKind.LE, ">=": TermKind.GE,
        "==": TermKind.EQ, "!=": TermKind.NE,
    }

    def _eval_binop(self, expr: ast.BinOp, state: SymbolicState) -> SymValue:
        if expr.op in ("&&", "||"):
            left = self._as_bool_term(self._eval(expr.left, state))
            right = self._as_bool_term(self._eval(expr.right, state))
            kind = TermKind.AND if expr.op == "&&" else TermKind.OR
            return mk(kind, left, right)
        left = self._eval(expr.left, state)
        right = self._eval(expr.right, state)
        if isinstance(left, SymPointer) or isinstance(right, SymPointer):
            return self._pointer_arith(expr.op, left, right)
        if isinstance(left, (SymVector, SymPred)) or isinstance(right, (SymVector, SymPred)):
            raise SymbolicExecutionError("scalar operator applied to a vector or predicate value")
        return mk(self._BIN_TABLE[expr.op], left, right)

    def _pointer_arith(self, op: str, left: SymValue, right: SymValue) -> SymValue:
        if isinstance(left, SymPointer) and isinstance(right, Term):
            delta = _as_concrete(right, "pointer offset")
            return left.advanced(delta if op == "+" else -delta)
        if isinstance(right, SymPointer) and isinstance(left, Term) and op == "+":
            return right.advanced(_as_concrete(left, "pointer offset"))
        raise SymbolicExecutionError(f"unsupported pointer arithmetic {op!r}")

    def _eval_unary(self, expr: ast.UnaryOp, state: SymbolicState) -> SymValue:
        if expr.op == "&":
            if isinstance(expr.operand, ast.ArrayRef):
                pointer, index = self._resolve(expr.operand, state)
                return pointer.advanced(index)
            if isinstance(expr.operand, ast.Identifier):
                value = state.scalars.get(expr.operand.name)
                if isinstance(value, SymPointer):
                    return value
            raise SymbolicExecutionError("unsupported address-of operand")
        if expr.op == "*":
            value = self._eval(expr.operand, state)
            if isinstance(value, SymPointer):
                return state.load(value.region, value.offset)
            raise SymbolicExecutionError("dereference of a non-pointer")
        if expr.op in ("++", "--"):
            return self._apply_increment(expr.operand, 1 if expr.op == "++" else -1, state, return_new=True)
        operand = self._eval(expr.operand, state)
        if not isinstance(operand, Term):
            raise SymbolicExecutionError("unary operator on a non-scalar value")
        if expr.op == "-":
            return mk(TermKind.NEG, operand)
        if expr.op == "+":
            return operand
        if expr.op == "~":
            return mk(TermKind.NOT, operand)
        if expr.op == "!":
            return mk(TermKind.EQ, operand, ZERO)
        raise SymbolicExecutionError(f"unsupported unary operator {expr.op!r}")

    def _apply_increment(self, target: ast.Expr, delta: int, state: SymbolicState,
                         return_new: bool) -> Term:
        old = self._read_lvalue(target, state)
        if not isinstance(old, Term):
            raise SymbolicExecutionError("increment of a non-scalar value")
        new = mk(TermKind.ADD, old, bv_const(delta))
        self._write_lvalue(target, new, state)
        return new if return_new else old

    def _eval_assign(self, expr: ast.Assign, state: SymbolicState) -> SymValue:
        if expr.op == "=":
            value = self._eval(expr.value, state)
            self._write_lvalue(expr.target, value, state)
            return value
        base_op = expr.op[:-1]
        current = self._read_lvalue(expr.target, state)
        rhs = self._eval(expr.value, state)
        if isinstance(current, Term) and isinstance(rhs, Term):
            value: SymValue = mk(self._BIN_TABLE[base_op], current, rhs)
        elif isinstance(current, SymPointer):
            value = self._pointer_arith(base_op, current, rhs)
        else:
            raise SymbolicExecutionError("unsupported compound assignment")
        self._write_lvalue(expr.target, value, state)
        return value

    def _read_lvalue(self, target: ast.Expr, state: SymbolicState) -> SymValue:
        if isinstance(target, ast.Identifier):
            if target.name not in state.scalars:
                raise SymbolicExecutionError(f"use of undeclared identifier {target.name!r}")
            return state.scalars[target.name]
        if isinstance(target, ast.ArrayRef):
            pointer, index = self._resolve(target, state)
            return state.load(pointer.region, pointer.offset + index)
        raise SymbolicExecutionError("unsupported lvalue")

    def _write_lvalue(self, target: ast.Expr, value: SymValue, state: SymbolicState) -> None:
        if isinstance(target, ast.Identifier):
            state.scalars[target.name] = value
            return
        if isinstance(target, ast.ArrayRef):
            pointer, index = self._resolve(target, state)
            if not isinstance(value, Term):
                raise SymbolicExecutionError("storing a non-scalar value to an array cell")
            state.store(pointer.region, pointer.offset + index, value)
            return
        raise SymbolicExecutionError("unsupported assignment target")

    def _as_bool_term(self, value: SymValue) -> Term:
        if isinstance(value, Term):
            if value.kind in (TermKind.LT, TermKind.LE, TermKind.GT, TermKind.GE,
                              TermKind.EQ, TermKind.NE):
                return value
            if value.kind is TermKind.CONST:
                return bv_const(1 if value.value != 0 else 0)
            return mk(TermKind.NE, value, ZERO)
        raise SymbolicExecutionError("condition is not a scalar value")

    # -- intrinsics ---------------------------------------------------------------------------

    def _eval_call(self, expr: ast.Call, state: SymbolicState) -> SymValue:
        name = expr.func
        if name == "abs":
            value = self._eval(expr.args[0], state)
            return mk(TermKind.ABS, value)
        if name in ("max", "min"):
            left = self._eval(expr.args[0], state)
            right = self._eval(expr.args[1], state)
            return mk(TermKind.MAX if name == "max" else TermKind.MIN, left, right)
        if not is_intrinsic(name):
            raise SymbolicExecutionError(f"call to unmodelled function {name!r}")
        spec = lookup_intrinsic(name, self.dtype)
        if spec.kind == "load":
            pointer = self._pointer_arg(expr.args[0], state)
            return SymVector([state.load(pointer.region, pointer.offset + lane)
                              for lane in range(spec.lanes)])
        if spec.kind == "store":
            pointer = self._pointer_arg(expr.args[0], state)
            vector = self._vector_arg(expr.args[1], state, spec.lanes)
            for lane in range(spec.lanes):
                state.store(pointer.region, pointer.offset + lane, vector.lanes[lane])
            return vector
        if spec.kind == "maskload":
            # A lane is enabled when its mask sign bit is set (matching the
            # interpreter and the hardware semantics).  Masked-off lanes read
            # as zero and, crucially, do not touch memory: a constant-false
            # mask lane must not record OOB UB.
            pointer = self._pointer_arg(expr.args[0], state)
            mask = self._vector_arg(expr.args[1], state, spec.lanes)
            region = state.regions.get(pointer.region)
            if region is None:
                raise SymbolicExecutionError(f"load from unknown region {pointer.region!r}")
            lanes = []
            for lane, m in enumerate(mask.lanes):
                index = pointer.offset + lane
                if m.kind is TermKind.CONST:
                    lanes.append(state.load(pointer.region, index)
                                 if lane_active(m.value, spec.lane_type) else ZERO)
                elif index < 0 or index >= region.size:
                    # Whether the out-of-bounds lane is read depends on a
                    # symbolic mask bit; neither "UB" nor "no UB" is sound,
                    # so report the query as Inconclusive.
                    raise SymbolicExecutionError(
                        "masked load with a data-dependent mask reaches the region boundary"
                    )
                else:
                    lanes.append(mk(TermKind.ITE, mk(TermKind.LT, m, ZERO),
                                    state.load(pointer.region, index), ZERO))
            return SymVector(lanes)
        if spec.kind == "maskstore":
            # Mirror image of the masked load: enabled lanes (mask sign bit
            # set) store, disabled lanes must not touch memory — a
            # constant-false lane at the region boundary records no UB.
            pointer = self._pointer_arg(expr.args[0], state)
            mask = self._vector_arg(expr.args[1], state, spec.lanes)
            vector = self._vector_arg(expr.args[2], state, spec.lanes)
            region = state.regions.get(pointer.region)
            if region is None:
                raise SymbolicExecutionError(f"store to unknown region {pointer.region!r}")
            for lane, m in enumerate(mask.lanes):
                index = pointer.offset + lane
                if m.kind is TermKind.CONST:
                    if lane_active(m.value, spec.lane_type):
                        state.store(pointer.region, index, vector.lanes[lane])
                elif index < 0 or index >= region.size:
                    # Whether the out-of-bounds lane is written depends on a
                    # symbolic mask bit; report the query as Inconclusive.
                    raise SymbolicExecutionError(
                        "masked store with a data-dependent mask reaches the region boundary"
                    )
                else:
                    old = state.load(pointer.region, index)
                    state.store(pointer.region, index,
                                mk(TermKind.ITE, mk(TermKind.LT, m, ZERO),
                                   vector.lanes[lane], old))
            return vector
        if spec.kind == "ptrue":
            return SymPred([ONE] * spec.lanes)
        if spec.kind == "whilelt":
            # Both operands are loop-control scalars, concrete during bounded
            # unrolling — which is exactly what lets the verifier prove a
            # predicated loop at an unaligned trip count: the final
            # iteration's tail predicate disables the out-of-bounds lanes
            # *concretely*, so no boundary access ever happens.
            base = _as_concrete(self._eval(expr.args[0], state), "whilelt base")
            bound = _as_concrete(self._eval(expr.args[1], state), "whilelt bound")
            return SymPred([ONE if active else ZERO
                            for active in whilelt_lanes(base, bound, spec.lanes)])
        if spec.kind == "ptest":
            pred = self._pred_arg(expr.args[0], state, spec.lanes)
            if all(lane.kind is TermKind.CONST for lane in pred.lanes):
                return bv_const(1 if any(lane.value != 0 for lane in pred.lanes) else 0)
            any_active = pred.lanes[0]
            for lane in pred.lanes[1:]:
                any_active = mk(TermKind.OR, any_active, lane)
            return any_active
        if spec.kind == "pred_unary":
            # Zeroing NOT: gov & !p, on 0/1 lane terms.
            gov = self._pred_arg(expr.args[0], state, spec.lanes)
            operand = self._pred_arg(expr.args[1], state, spec.lanes)
            return SymPred([
                mk(TermKind.ITE, mk(TermKind.EQ, p, ZERO), g, ZERO)
                for g, p in zip(gov.lanes, operand.lanes)
            ])
        if spec.kind == "pred_binary":
            gov = self._pred_arg(expr.args[0], state, spec.lanes)
            a = self._pred_arg(expr.args[1], state, spec.lanes)
            b = self._pred_arg(expr.args[2], state, spec.lanes)
            inner_kind = TermKind.AND if spec.op == "pand" else TermKind.OR
            return SymPred([
                mk(TermKind.AND, g, mk(inner_kind, x, y))
                for g, x, y in zip(gov.lanes, a.lanes, b.lanes)
            ])
        if spec.kind == "pred_cmp":
            gov = self._pred_arg(expr.args[0], state, spec.lanes)
            a = self._vector_arg(expr.args[1], state, spec.lanes)
            b = self._vector_arg(expr.args[2], state, spec.lanes)
            cmp_kind = TermKind.GT if spec.op == "pcmpgt" else TermKind.EQ
            return SymPred([
                mk(TermKind.AND, g,
                   mk(TermKind.ITE, mk(cmp_kind, x, y), ONE, ZERO))
                for g, x, y in zip(gov.lanes, a.lanes, b.lanes)
            ])
        if spec.kind == "psel":
            pred = self._pred_arg(expr.args[0], state, spec.lanes)
            a = self._vector_arg(expr.args[1], state, spec.lanes)
            b = self._vector_arg(expr.args[2], state, spec.lanes)
            return SymVector([
                mk(TermKind.ITE, mk(TermKind.NE, p, ZERO), x, y)
                for p, x, y in zip(pred.lanes, a.lanes, b.lanes)
            ])
        if spec.kind == "pred_merge_binary":
            pred = self._pred_arg(expr.args[0], state, spec.lanes)
            a = self._vector_arg(expr.args[1], state, spec.lanes)
            b = self._vector_arg(expr.args[2], state, spec.lanes)
            merge_kind = {"padd": TermKind.ADD}[spec.op]
            return SymVector([
                mk(TermKind.ITE, mk(TermKind.NE, p, ZERO),
                   mk(merge_kind, x, y), x)
                for p, x, y in zip(pred.lanes, a.lanes, b.lanes)
            ])
        if spec.kind == "index":
            base = self._eval(expr.args[0], state)
            if not isinstance(base, Term):
                raise SymbolicExecutionError("index base is not a scalar")
            step = _as_concrete(self._eval(expr.args[1], state), "index step")
            return SymVector([mk(TermKind.ADD, base, bv_const(step * lane))
                              for lane in range(spec.lanes)])
        if spec.kind == "pload":
            # A lane reads memory only where the predicate is active;
            # inactive lanes come back zero and never touch memory — an
            # inactive lane at the region boundary records no UB, which is
            # the soundness property the predicated tail rests on.
            pred = self._pred_arg(expr.args[0], state, spec.lanes)
            pointer = self._pointer_arg(expr.args[1], state)
            region = state.regions.get(pointer.region)
            if region is None:
                raise SymbolicExecutionError(f"load from unknown region {pointer.region!r}")
            lanes = []
            for lane, p in enumerate(pred.lanes):
                index = pointer.offset + lane
                if p.kind is TermKind.CONST:
                    lanes.append(state.load(pointer.region, index)
                                 if p.value != 0 else ZERO)
                elif index < 0 or index >= region.size:
                    # Whether the out-of-bounds lane is read depends on a
                    # symbolic predicate bit; neither "UB" nor "no UB" is
                    # sound, so report the query as Inconclusive.
                    raise SymbolicExecutionError(
                        "predicated load with a data-dependent predicate "
                        "reaches the region boundary"
                    )
                else:
                    lanes.append(mk(TermKind.ITE, mk(TermKind.NE, p, ZERO),
                                    state.load(pointer.region, index), ZERO))
            return SymVector(lanes)
        if spec.kind == "pstore":
            pred = self._pred_arg(expr.args[0], state, spec.lanes)
            pointer = self._pointer_arg(expr.args[1], state)
            vector = self._vector_arg(expr.args[2], state, spec.lanes)
            region = state.regions.get(pointer.region)
            if region is None:
                raise SymbolicExecutionError(f"store to unknown region {pointer.region!r}")
            for lane, p in enumerate(pred.lanes):
                index = pointer.offset + lane
                if p.kind is TermKind.CONST:
                    if p.value != 0:
                        state.store(pointer.region, index, vector.lanes[lane])
                elif index < 0 or index >= region.size:
                    raise SymbolicExecutionError(
                        "predicated store with a data-dependent predicate "
                        "reaches the region boundary"
                    )
                else:
                    old = state.load(pointer.region, index)
                    state.store(pointer.region, index,
                                mk(TermKind.ITE, mk(TermKind.NE, p, ZERO),
                                   vector.lanes[lane], old))
            return vector
        if spec.kind == "set1":
            value = self._eval(expr.args[0], state)
            if not isinstance(value, Term):
                raise SymbolicExecutionError("set1 argument is not a scalar")
            return SymVector([value] * spec.lanes)
        if spec.kind == "setzero":
            return SymVector([ZERO] * spec.lanes)
        if spec.kind in ("setr", "set"):
            if len(expr.args) != spec.lanes:
                raise SymbolicExecutionError(
                    f"{name} takes {spec.lanes} lane arguments, got {len(expr.args)}"
                )
            lanes = [self._eval(arg, state) for arg in expr.args]
            if spec.kind == "set":
                lanes = list(reversed(lanes))
            return SymVector(list(lanes))
        if spec.kind == "extract":
            vector = self._vector_arg(expr.args[0], state, spec.lanes)
            lane = _as_concrete(self._eval(expr.args[1], state), "extract lane") % spec.lanes
            return vector.lanes[lane]
        if spec.kind == "cast_low":
            # Low-register-half reinterpret: truncate to half the lanes
            # (see interpreter).
            vector = self._vector_arg(expr.args[0], state, spec.lanes)
            return SymVector(list(vector.lanes[: spec.lanes // 2]))
        if spec.kind == "pure_binary":
            left = self._vector_arg(expr.args[0], state, spec.lanes)
            right = self._vector_arg(expr.args[1], state, spec.lanes)
            return SymVector([self._lane_binary(spec.op, a, b) for a, b in zip(left.lanes, right.lanes)])
        if spec.kind == "pure_unary":
            operand = self._vector_arg(expr.args[0], state, spec.lanes)
            return SymVector([self._lane_unary(spec.op, lane) for lane in operand.lanes])
        if spec.kind == "pure_imm":
            vector = self._vector_arg(expr.args[0], state, spec.lanes)
            imm = _as_concrete(self._eval(expr.args[1], state), "intrinsic immediate")
            return self._imm_op(spec.op, vector, imm)
        if spec.kind == "pure_imm2" and spec.op == "permute_halves":
            a = self._vector_arg(expr.args[0], state, spec.lanes)
            b = self._vector_arg(expr.args[1], state, spec.lanes)
            imm = _as_concrete(self._eval(expr.args[2], state), "permute immediate")
            half = spec.lanes // 2
            halves = [a.lanes[:half], a.lanes[half:], b.lanes[:half], b.lanes[half:]]
            low = [ZERO] * half if imm & 0x08 else list(halves[imm & 0x3])
            high = [ZERO] * half if imm & 0x80 else list(halves[(imm >> 4) & 0x3])
            return SymVector(low + high)
        if spec.kind == "pure_vector" and spec.op == "select":
            a = self._vector_arg(expr.args[0], state, spec.lanes)
            b = self._vector_arg(expr.args[1], state, spec.lanes)
            mask = self._vector_arg(expr.args[2], state, spec.lanes)
            return SymVector([
                mk(TermKind.ITE, mk(TermKind.NE, m, ZERO), bv, av)
                for av, bv, m in zip(a.lanes, b.lanes, mask.lanes)
            ])
        if spec.kind == "pure_vector" and spec.op == "hadd":
            a = self._vector_arg(expr.args[0], state, spec.lanes)
            b = self._vector_arg(expr.args[1], state, spec.lanes)
            block_lanes = 128 // spec.lane_type.bits
            lanes = []
            for block in range(spec.lanes // block_lanes):
                base = block * block_lanes
                for src in (a, b):
                    for pair in range(block_lanes // 2):
                        i = base + 2 * pair
                        lanes.append(mk(TermKind.ADD, src.lanes[i], src.lanes[i + 1]))
            return SymVector(lanes)
        raise SymbolicExecutionError(f"intrinsic {name} is not modelled symbolically")

    def _imm_op(self, op: str, vector: SymVector, imm: int) -> SymVector:
        """Immediate-operand lane ops: shifts and in-block shuffles."""
        lane_bits = self.dtype.bits
        imm = int(imm)
        if op == "shuffle":
            selectors = [(imm >> (2 * i)) & 0x3 for i in range(4)]
            lanes = []
            for block in range(vector.width // 4):
                base = block * 4
                lanes += [vector.lanes[base + sel] for sel in selectors]
            return SymVector(lanes)
        if op in ("sll", "srl") and imm >= lane_bits:
            return SymVector([ZERO] * vector.width)
        if op == "sra" and imm >= lane_bits:
            imm = lane_bits - 1
        if imm == 0:
            return vector
        count = bv_const(imm)
        kind = {"sll": TermKind.SHL, "srl": TermKind.LSHR, "sra": TermKind.ASHR}.get(op)
        if kind is None:
            raise SymbolicExecutionError(f"immediate operation {op} is not modelled")
        return SymVector([mk(kind, lane, count) for lane in vector.lanes])

    #: Generic op -> term kind, shared by every target's intrinsic spelling.
    _LANE_BINARY = {
        "add": TermKind.ADD,
        "sub": TermKind.SUB,
        "mul": TermKind.MUL,
        "and": TermKind.AND,
        "or": TermKind.OR,
        "xor": TermKind.XOR,
        "max": TermKind.MAX,
        "min": TermKind.MIN,
    }

    def _lane_binary(self, op: str, a: Term, b: Term) -> Term:
        if op in self._LANE_BINARY:
            return mk(self._LANE_BINARY[op], a, b)
        if op == "cmpgt":
            return mk(TermKind.ITE, mk(TermKind.GT, a, b), MINUS_ONE, ZERO)
        if op == "cmpeq":
            return mk(TermKind.ITE, mk(TermKind.EQ, a, b), MINUS_ONE, ZERO)
        if op == "andnot":
            return mk(TermKind.AND, mk(TermKind.NOT, a), b)
        raise SymbolicExecutionError(f"lane operation {op} is not modelled")

    def _lane_unary(self, op: str, a: Term) -> Term:
        if op == "abs":
            return mk(TermKind.ABS, a)
        raise SymbolicExecutionError(f"lane operation {op} is not modelled")

    def _pointer_arg(self, expr: ast.Expr, state: SymbolicState) -> SymPointer:
        value = self._eval(expr, state)
        if not isinstance(value, SymPointer):
            raise SymbolicExecutionError("intrinsic memory operand is not a pointer")
        return value

    def _vector_arg(self, expr: ast.Expr, state: SymbolicState,
                    lanes: int | None = None) -> SymVector:
        value = self._eval(expr, state)
        if not isinstance(value, SymVector):
            raise SymbolicExecutionError("intrinsic vector operand is not a vector value")
        if lanes is not None and value.width != lanes:
            raise SymbolicExecutionError(
                f"intrinsic vector operand has {value.width} lanes, expected {lanes}"
            )
        return value

    def _pred_arg(self, expr: ast.Expr, state: SymbolicState,
                  lanes: int | None = None) -> SymPred:
        value = self._eval(expr, state)
        if not isinstance(value, SymPred):
            raise SymbolicExecutionError("intrinsic predicate operand is not a predicate value")
        if lanes is not None and value.width != lanes:
            raise SymbolicExecutionError(
                f"intrinsic predicate operand has {value.width} lanes, expected {lanes}"
            )
        return value


class _ReturnSignal(Exception):
    pass


def execute_symbolically(
    func: ast.FunctionDef,
    array_sizes: Mapping[str, int],
    scalar_values: Mapping[str, int],
    max_steps: int = 200_000,
) -> SymbolicState:
    """Run ``func`` symbolically with the given region sizes and concrete scalars.

    Array cells share variable names across calls (``a_0``, ``a_1``, ...), so
    executing the scalar and vectorized functions with the same sizes yields
    final states over the same symbolic inputs — exactly what the refinement
    check needs.
    """
    from repro.perf.profile import stage

    dtype = ast.kernel_dtype(func)
    with stage("symexec"), modeled_bits(dtype.bits):
        state = SymbolicState()
        for param in func.params:
            if param.param_type.is_pointer:
                size = array_sizes.get(param.name)
                if size is None:
                    raise SymbolicExecutionError(
                        f"no size provided for array parameter {param.name!r}"
                    )
                state.regions[param.name] = SymRegion(param.name, size)
                state.scalars[param.name] = SymPointer(param.name, 0)
            else:
                if param.name not in scalar_values:
                    raise SymbolicExecutionError(
                        f"no value provided for scalar parameter {param.name!r}"
                    )
                state.scalars[param.name] = bv_const(int(scalar_values[param.name]))
        executor = SymbolicExecutor(func, state, max_steps=max_steps, dtype=dtype)
        return executor.run()
