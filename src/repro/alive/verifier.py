"""The bounded translation validator (Alive2 substitute).

:class:`AliveVerifier` implements the three checking methods of the paper's
Algorithm 1 on top of the symbolic executor and the SMT substrate:

``check_with_alive_unroll``
    the out-of-the-box method: symbolically execute both functions with a
    vector-width-aligned trip count (loop alignment is implicit because both
    sides run to completion over the same bound — the paper's
    ``(end - start) % m == 0`` assumption is realized by choosing such a
    bound), then check refinement with a tight resource budget;

``check_with_c_unroll``
    first applies the C-level unrolling transform (Section 3.2) to the scalar
    program, removing per-iteration termination checks, and re-checks with a
    larger budget and a smaller bound;

``check_with_spatial_splitting``
    for kernels passing the conservative no-loop-carried-dependence check
    (Section 3.3), issues one equivalence query per written array index
    instead of a single monolithic query.

Every method returns EQUIVALENT / NOT_EQUIVALENT / INCONCLUSIVE; refinement
additionally refutes candidates that introduce undefined behaviour (out of
bounds accesses, stored poison) absent from the scalar program — that is the
mechanism by which checksum-surviving bugs like the paper's s124 example are
caught.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field

from repro.analysis.accesses import collect_accesses
from repro.analysis.loops import find_main_loop
from repro.cfront import ast_nodes as ast
from repro.errors import CompileError, ParseError, ReproError
from repro.alive.symexec import SymbolicExecutionError, SymbolicState, execute_symbolically
from repro.intrinsics.registry import INTRINSIC_REGISTRY, registry_for_dtype
from repro.lanetypes import INT32, LaneType
from repro.smt.equiv import EquivalenceChecker, EquivalenceOutcome, SolverBudget
from repro.smt.terms import Term, contains_poison
from repro.transforms.c_unroll import CUnrollError, unroll_scalar_function
from repro.transforms.spatial import spatial_access_summary
from repro.vectorizer.planner import VECTOR_WIDTH


class VerificationOutcome(enum.Enum):
    EQUIVALENT = "equivalent"
    NOT_EQUIVALENT = "not_equivalent"
    INCONCLUSIVE = "inconclusive"


@dataclass
class VerifierConfig:
    """Verification parameters.

    ``trip_count`` must be a multiple of the vectorization width (the paper's
    epilogue-elimination assumption); ``bitwidth`` is the reduced width used
    by the SAT stage.
    """

    trip_count: int = 16
    c_unroll_trip_count: int = 8
    bitwidth: int = 6
    alive_budget: SolverBudget = field(default_factory=lambda: SolverBudget(
        max_term_nodes=900, random_samples=24, sat_bitwidth=6,
        sat_conflict_budget=2_500, sat_propagation_budget=120_000))
    c_unroll_budget: SolverBudget = field(default_factory=lambda: SolverBudget(
        max_term_nodes=2600, random_samples=32, sat_bitwidth=6,
        sat_conflict_budget=8_000, sat_propagation_budget=400_000))
    splitting_budget: SolverBudget = field(default_factory=lambda: SolverBudget(
        max_term_nodes=1400, random_samples=32, sat_bitwidth=6,
        sat_conflict_budget=8_000, sat_propagation_budget=400_000))
    default_scalar_value: int = 3


@dataclass
class VerificationReport:
    outcome: VerificationOutcome
    method: str
    detail: str = ""
    counterexample: dict[str, int] | None = None


class AliveVerifier:
    """Checks a (scalar, vectorized) pair for refinement."""

    def __init__(self, config: VerifierConfig | None = None):
        self.config = config or VerifierConfig()

    # -- public methods, mirroring Algorithm 1 ----------------------------------------

    def check_with_alive_unroll(self, scalar_code: str | ast.FunctionDef,
                                vectorized_code: str | ast.FunctionDef) -> VerificationReport:
        """Out-of-the-box bounded translation validation."""
        return self._check(scalar_code, vectorized_code,
                           trip_count=self.config.trip_count,
                           budget=self.config.alive_budget,
                           method="alive-unroll",
                           transform_scalar=False,
                           split=False)

    def check_with_c_unroll(self, scalar_code: str | ast.FunctionDef,
                            vectorized_code: str | ast.FunctionDef) -> VerificationReport:
        """C-level unrolling of the scalar side before validation (Section 3.2)."""
        return self._check(scalar_code, vectorized_code,
                           trip_count=self.config.c_unroll_trip_count,
                           budget=self.config.c_unroll_budget,
                           method="c-unroll",
                           transform_scalar=True,
                           split=False)

    def check_with_spatial_splitting(self, scalar_code: str | ast.FunctionDef,
                                     vectorized_code: str | ast.FunctionDef) -> VerificationReport:
        """Per-index equivalence queries for dependence-free kernels (Section 3.3)."""
        return self._check(scalar_code, vectorized_code,
                           trip_count=self.config.c_unroll_trip_count,
                           budget=self.config.splitting_budget,
                           method="spatial-splitting",
                           transform_scalar=False,
                           split=True)

    # -- the shared machinery --------------------------------------------------------------

    def _check(self, scalar_code, vectorized_code, trip_count: int, budget: SolverBudget,
               method: str, transform_scalar: bool, split: bool) -> VerificationReport:
        try:
            scalar_func = self._as_function(scalar_code)
            vector_func = self._as_function(vectorized_code)
        except (ParseError, ReproError) as exc:
            return VerificationReport(VerificationOutcome.INCONCLUSIVE, method,
                                      detail=f"parse failure: {exc}")

        if split:
            summary = spatial_access_summary(scalar_func, vector_func)
            if not summary.splittable:
                return VerificationReport(VerificationOutcome.INCONCLUSIVE, method,
                                          detail=f"splitting precondition failed: {summary.reason}")

        # Both sides must model the same lane element type: refinement over
        # terms at two different widths is meaningless.
        try:
            scalar_dtype = ast.kernel_dtype(scalar_func)
            vector_dtype = ast.kernel_dtype(vector_func)
        except CompileError as exc:
            return VerificationReport(VerificationOutcome.INCONCLUSIVE, method,
                                      detail=f"element type inference failed: {exc}")
        if scalar_dtype is not vector_dtype:
            return VerificationReport(
                VerificationOutcome.INCONCLUSIVE, method,
                detail=f"element type mismatch: scalar models {scalar_dtype.name}, "
                       f"candidate models {vector_dtype.name}")
        dtype = vector_dtype

        # The unroll factor (and therefore the minimum trip count) follows the
        # candidate's vector width: an SSE4 candidate needs 4-way alignment,
        # an AVX-512 one 16-way.  Candidates without intrinsics (blocked
        # scalar rewrites) fall back to the default AVX2 width.
        lanes = _candidate_lanes(vector_func, dtype)
        trip_count = max(trip_count, lanes)

        executable_scalar = scalar_func
        if transform_scalar:
            try:
                executable_scalar = _cached_unroll(scalar_func, lanes)
            except CUnrollError as exc:
                return VerificationReport(VerificationOutcome.INCONCLUSIVE, method,
                                          detail=f"C-level unrolling failed: {exc}")

        array_sizes = self._array_sizes(scalar_func, trip_count)
        scalar_values = self._scalar_values(scalar_func, trip_count)
        vec_scalar_values = self._scalar_values(vector_func, trip_count)

        try:
            scalar_state = _cached_scalar_symexec(executable_scalar, array_sizes, scalar_values)
            vector_state = execute_symbolically(vector_func, array_sizes, vec_scalar_values)
        except SymbolicExecutionError as exc:
            return VerificationReport(VerificationOutcome.INCONCLUSIVE, method,
                                      detail=f"symbolic execution failed: {exc}")

        # Refinement part 1: the target must not introduce UB.
        new_ub = [event for event in vector_state.ub_events if event not in scalar_state.ub_events]
        if new_ub:
            return VerificationReport(
                VerificationOutcome.NOT_EQUIVALENT, method,
                detail="the vectorized code introduces undefined behaviour: " + "; ".join(new_ub[:3]),
            )

        # Refinement part 2: every observable array cell must agree.
        pairs = self._output_pairs(scalar_state, vector_state, scalar_func)
        poisoned = [name for name, (src, _tgt) in pairs.items() if contains_poison(src)]
        comparable = [(src, tgt) for name, (src, tgt) in pairs.items() if name not in poisoned]
        target_poison = [name for name, (src, tgt) in pairs.items()
                         if name not in poisoned and contains_poison(tgt)]
        if target_poison:
            return VerificationReport(
                VerificationOutcome.NOT_EQUIVALENT, method,
                detail="the vectorized code stores poison where the scalar code stores a value: "
                + ", ".join(target_poison[:4]),
            )

        checker = EquivalenceChecker(budget=budget, model_bits=dtype.bits)
        if split:
            worst: VerificationReport | None = None
            for source, target in comparable:
                result = checker.check_pair(source, target)
                if result.outcome is EquivalenceOutcome.NOT_EQUIVALENT:
                    return VerificationReport(VerificationOutcome.NOT_EQUIVALENT, method,
                                              detail=result.detail, counterexample=result.counterexample)
                if result.outcome is EquivalenceOutcome.INCONCLUSIVE and worst is None:
                    worst = VerificationReport(VerificationOutcome.INCONCLUSIVE, method,
                                               detail=result.detail)
            if worst is not None:
                return worst
            return VerificationReport(VerificationOutcome.EQUIVALENT, method,
                                      detail="all per-index queries discharged")
        result = checker.check_pairs(comparable)
        outcome = {
            EquivalenceOutcome.EQUIVALENT: VerificationOutcome.EQUIVALENT,
            EquivalenceOutcome.NOT_EQUIVALENT: VerificationOutcome.NOT_EQUIVALENT,
            EquivalenceOutcome.INCONCLUSIVE: VerificationOutcome.INCONCLUSIVE,
        }[result.outcome]
        return VerificationReport(outcome, method, detail=result.detail or result.method,
                                  counterexample=result.counterexample)

    # -- helpers -------------------------------------------------------------------------------

    @staticmethod
    def _as_function(code: str | ast.FunctionDef) -> ast.FunctionDef:
        if isinstance(code, ast.FunctionDef):
            return code
        # Shared-AST cache: the same scalar/candidate pair flows through
        # every verification stage, and the unroller deep-copies before it
        # mutates — so one parse per distinct source text suffices.
        from repro.vectorizer.plancache import cached_parse

        return cached_parse(code)

    def _array_sizes(self, scalar_func: ast.FunctionDef, trip_count: int) -> dict[str, int]:
        """Tight array sizes: trip count plus the scalar program's own overhang.

        Sizing regions by what the *scalar* program may legally touch gives
        the refinement check the power to catch vectorized code that reads or
        writes beyond that extent.
        """
        overhang = 0
        loop = find_main_loop(scalar_func)
        if loop is not None and loop.iterator is not None:
            for access in collect_accesses(loop.body, loop.iterator):
                affine = access.affine
                if affine.is_iterator_affine and affine.coefficient == 1 and affine.offset > overhang:
                    overhang = affine.offset
        size = trip_count + overhang
        return {p.name: size for p in scalar_func.params if p.param_type.is_pointer}

    def _scalar_values(self, func: ast.FunctionDef, trip_count: int) -> dict[str, int]:
        values: dict[str, int] = {}
        for param in func.params:
            if param.param_type.is_pointer:
                continue
            if param.name == "n":
                values[param.name] = trip_count
            else:
                values[param.name] = self.config.default_scalar_value
        return values

    @staticmethod
    def _output_pairs(scalar_state: SymbolicState, vector_state: SymbolicState,
                      scalar_func: ast.FunctionDef) -> dict[str, tuple[Term, Term]]:
        return _output_pairs(scalar_state, vector_state, scalar_func)


#: Unrolling the scalar side is deterministic in (function, factor), and the
#: c-unroll method re-runs for every candidate attempt against the *same*
#: (cache-shared) scalar reference.  The unrolled tree is only ever walked
#: read-only (symbolic execution); entries keep a strong reference to the
#: input function so an id can never be silently reused.
_UNROLL_MEMO: dict[tuple[int, int], tuple[ast.FunctionDef, ast.FunctionDef]] = {}
_UNROLL_MEMO_CAPACITY = 256


def _cached_unroll(scalar_func: ast.FunctionDef, lanes: int) -> ast.FunctionDef:
    key = (id(scalar_func), lanes)
    entry = _UNROLL_MEMO.get(key)
    if entry is not None and entry[0] is scalar_func:
        return entry[1]
    unrolled = unroll_scalar_function(scalar_func, factor=lanes)
    if len(_UNROLL_MEMO) >= _UNROLL_MEMO_CAPACITY:
        _UNROLL_MEMO.clear()
    _UNROLL_MEMO[key] = (scalar_func, unrolled)
    return unrolled


#: Scalar-side symbolic states repeat the same way: one kernel is verified
#: against several candidate attempts, and each attempt re-executes the same
#: scalar (or unrolled-scalar) tree over the same sizes and values.  States
#: are read downstream (output pairs, UB events) but never mutated, and the
#: hash-consed term graph makes sharing them cheap.
_SYMEXEC_MEMO: dict[
    tuple[int, tuple[tuple[str, int], ...], tuple[tuple[str, int], ...]],
    tuple[ast.FunctionDef, SymbolicState],
] = {}
_SYMEXEC_MEMO_CAPACITY = 256


def _cached_scalar_symexec(func: ast.FunctionDef, array_sizes: dict[str, int],
                           scalar_values: dict[str, int]) -> SymbolicState:
    key = (id(func), tuple(sorted(array_sizes.items())), tuple(sorted(scalar_values.items())))
    entry = _SYMEXEC_MEMO.get(key)
    if entry is not None and entry[0] is func:
        return entry[1]
    state = execute_symbolically(func, array_sizes, scalar_values)
    if len(_SYMEXEC_MEMO) >= _SYMEXEC_MEMO_CAPACITY:
        _SYMEXEC_MEMO.clear()
    _SYMEXEC_MEMO[key] = (func, state)
    return state


_LANES_MEMO: dict[tuple[int, str], tuple[ast.FunctionDef, int]] = {}
_LANES_MEMO_CAPACITY = 512


def _candidate_lanes(vector_func: ast.FunctionDef, dtype: LaneType = INT32) -> int:
    """Vector width of a candidate, inferred from the intrinsics it calls."""
    key = (id(vector_func), dtype.name)
    entry = _LANES_MEMO.get(key)
    if entry is not None and entry[0] is vector_func:
        return entry[1]
    merged = registry_for_dtype(dtype)
    lanes = 0
    for node in ast.walk(vector_func):
        if isinstance(node, ast.Call):
            spec = merged.get(node.func) or INTRINSIC_REGISTRY.get(node.func)
            if spec is not None:
                lanes = max(lanes, spec.lanes)
    lanes = lanes or VECTOR_WIDTH
    if len(_LANES_MEMO) >= _LANES_MEMO_CAPACITY:
        _LANES_MEMO.clear()
    _LANES_MEMO[key] = (vector_func, lanes)
    return lanes


def _output_pairs(scalar_state: SymbolicState, vector_state: SymbolicState,
                  scalar_func: ast.FunctionDef) -> dict[str, tuple[Term, Term]]:
    pairs: dict[str, tuple[Term, Term]] = {}
    for name, region in scalar_state.regions.items():
        vector_region = vector_state.regions.get(name)
        if vector_region is None:
            continue
        for index in range(region.size):
            pairs[f"{name}[{index}]"] = (region.cell(index), vector_region.cell(index))
    return pairs
