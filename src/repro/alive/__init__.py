"""Bounded translation validation (the Alive2 substitute).

The verifier symbolically executes the scalar and vectorized functions with a
concrete, vector-width-aligned trip count (the bounded-unrolling assumption
of the paper, Section 3.1), symbolic array contents, and disjoint memory
regions per pointer parameter (the non-aliasing assumption), then checks
refinement: the vectorized program must not introduce undefined behaviour and
must leave every array cell equal to the scalar program's result.
"""

from repro.alive.symexec import SymbolicExecutionError, SymbolicExecutor, SymbolicState, execute_symbolically
from repro.alive.verifier import (
    AliveVerifier,
    VerificationOutcome,
    VerificationReport,
    VerifierConfig,
)

__all__ = [
    "SymbolicExecutionError",
    "SymbolicExecutor",
    "SymbolicState",
    "execute_symbolically",
    "AliveVerifier",
    "VerificationOutcome",
    "VerificationReport",
    "VerifierConfig",
]
