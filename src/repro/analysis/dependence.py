"""Loop-carried dependence analysis over array accesses.

The analysis mirrors what the paper's prompt construction relies on: a
Clang-style report explaining *why* a loop could not be auto-vectorized —
read-after-write, write-after-read and write-after-write dependences across
iterations, scalar recurrences (reductions and induction variables), and the
aliasing that imprecise static analysis must assume for arbitrary pointer
parameters.

The dependence test is the classic single-subscript constant-distance test:
for two accesses ``x[c1*i + o1]`` and ``x[c2*i + o2]`` with equal
coefficients, a loop-carried dependence exists when ``(o1 - o2)`` is a
nonzero multiple of the coefficient (distance ``(o1 - o2) / c``).  Accesses
with symbolic or differing-coefficient subscripts are conservatively reported
as unknown dependences, which is exactly the imprecision that makes real
compilers give up (the paper's central motivation).
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field

from repro.analysis.accesses import AccessKind, ArrayAccess
from repro.cfront import ast_nodes as ast
from repro.cfront.printer import expr_to_c


class DependenceKind(enum.Enum):
    """Classification of a loop-carried dependence."""

    FLOW = "read-after-write"        # true dependence
    ANTI = "write-after-read"        # anti dependence
    OUTPUT = "write-after-write"     # output dependence
    UNKNOWN = "unknown"              # conservative / symbolic subscripts


@dataclass(frozen=True)
class Dependence:
    """A loop-carried dependence between two accesses to the same array."""

    array: str
    kind: DependenceKind
    source: ArrayAccess
    sink: ArrayAccess
    distance: int | None = None

    def describe(self) -> str:
        distance = f" (distance {self.distance})" if self.distance is not None else ""
        return (
            f"{self.kind.value} dependence on array '{self.array}' between "
            f"{self.source.describe()} and {self.sink.describe()}{distance}"
        )


@dataclass
class ScalarRecurrence:
    """A scalar updated across iterations (reduction or induction variable)."""

    name: str
    kind: str  # "reduction" or "induction" or "other"
    operation: str | None = None
    step: int | None = None

    def describe(self) -> str:
        if self.kind == "reduction":
            return f"scalar '{self.name}' is a reduction with operator '{self.operation}'"
        if self.kind == "induction":
            return f"scalar '{self.name}' is an induction variable updated by {self.step} each iteration"
        return f"scalar '{self.name}' is updated across loop iterations"


@dataclass
class DependenceReport:
    """Aggregate dependence information for one loop."""

    dependences: list[Dependence] = field(default_factory=list)
    recurrences: list[ScalarRecurrence] = field(default_factory=list)
    has_control_flow: bool = False
    has_goto: bool = False

    @property
    def loop_carried(self) -> list[Dependence]:
        return [d for d in self.dependences if d.distance is None or d.distance != 0]

    @property
    def has_loop_carried_dependence(self) -> bool:
        return bool(self.loop_carried)

    @property
    def reductions(self) -> list[ScalarRecurrence]:
        return [r for r in self.recurrences if r.kind == "reduction"]

    @property
    def inductions(self) -> list[ScalarRecurrence]:
        return [r for r in self.recurrences if r.kind == "induction"]

    def clang_style_remark(self, iterator: str = "i") -> str:
        """A "-Rpass-analysis=loop-vectorize"-style remark, used in prompts."""
        if not self.dependences and not self.recurrences:
            return "loop-vectorize: loop appears vectorizable; no loop-carried dependences detected."
        lines = []
        if self.has_loop_carried_dependence:
            lines.append("remark: loop not vectorized: unsafe dependent memory operations in loop.")
        for dep in self.dependences:
            lines.append(f"remark: {dep.describe()}")
        for rec in self.recurrences:
            lines.append(f"remark: {rec.describe()}")
        if self.has_goto:
            lines.append("remark: loop not vectorized: loop control flow is not understood by vectorizer (goto).")
        elif self.has_control_flow:
            lines.append("remark: loop contains conditional control flow; if-conversion required.")
        return "\n".join(lines)


def _pairwise_dependence(write: ArrayAccess, other: ArrayAccess) -> Dependence | None:
    """Dependence between a write and another access to the same array, if any."""
    if write.array != other.array:
        return None
    wa, oa = write.affine, other.affine
    kind = _classify(write, other)
    if wa.symbolic or oa.symbolic or not wa.is_iterator_affine or not oa.is_iterator_affine:
        # Loop-invariant subscripts (e.g. a[j] with j updated every iteration)
        # and symbolic subscripts are conservatively unknown dependences.
        return Dependence(array=write.array, kind=kind, source=write, sink=other, distance=None)
    if wa.coefficient != oa.coefficient or wa.coefficient == 0:
        return Dependence(array=write.array, kind=kind, source=write, sink=other, distance=None)
    delta = oa.offset - wa.offset
    if delta % wa.coefficient != 0:
        return None  # subscripts can never be equal across iterations
    distance = delta // wa.coefficient
    if distance == 0:
        return None  # same-iteration dependence only; not loop-carried
    return Dependence(array=write.array, kind=kind, source=write, sink=other, distance=distance)


def _classify(write: ArrayAccess, other: ArrayAccess) -> DependenceKind:
    if other.kind is AccessKind.WRITE:
        return DependenceKind.OUTPUT
    return DependenceKind.FLOW if _reads_later(write, other) else DependenceKind.ANTI


def _reads_later(write: ArrayAccess, read: ArrayAccess) -> bool:
    """Heuristic direction: positive-offset reads of a written array are flow deps.

    Because our accesses are collected without program-point ordering, the
    direction is derived from the subscript offsets: a read at a *lower*
    offset than the write (e.g. read ``a[i-1]`` against write ``a[i]``)
    consumes values produced by earlier iterations, i.e. a flow (RAW)
    dependence; a read at a *higher* offset (``a[i+1]``) is consumed before
    being overwritten, i.e. an anti (WAR) dependence.
    """
    if write.affine.is_iterator_affine and read.affine.is_iterator_affine:
        return read.affine.offset < write.affine.offset
    return True


def _find_scalar_recurrences(body: ast.Stmt, iterator: str | None) -> list[ScalarRecurrence]:
    """Find scalars assigned inside the loop from their own previous value."""
    recurrences: dict[str, ScalarRecurrence] = {}
    conditional_ids = set()
    for node in ast.walk(body):
        if isinstance(node, (ast.If, ast.TernaryOp)):
            conditional_ids.update(id(n) for n in ast.walk(node))
    for node in ast.walk(body):
        if isinstance(node, ast.Assign) and isinstance(node.target, ast.Identifier):
            name = node.target.name
            if name == iterator:
                continue
            if node.op in ("+=", "-=", "*=", "|=", "&=", "^="):
                if _is_constant(node.value):
                    recurrences[name] = ScalarRecurrence(
                        name=name, kind="induction", operation=node.op[:-1],
                        step=_constant_value(node.value) * (-1 if node.op == "-=" else 1),
                    )
                else:
                    recurrences[name] = ScalarRecurrence(name=name, kind="reduction", operation=node.op[:-1])
            elif node.op == "=" and _mentions_name(node.value, name):
                operation = node.value.op if isinstance(node.value, ast.BinOp) else None
                recurrences[name] = ScalarRecurrence(name=name, kind="reduction", operation=operation)
            elif (node.op == "=" and not _mentions_name(node.value, name)
                    and name not in recurrences and id(node) not in conditional_ids
                    and _read_before(body, name)):
                # Plain overwrite each iteration, *read* earlier in the body
                # than it is written: the read consumes the previous
                # iteration's value — a wrap-around scalar (s291's ``im1``),
                # which needs loop peeling to vectorize.  Guarded overwrites
                # (``if (a[i] > max) max = a[i]``) are conditional-reduction
                # idioms, not wrap-around scalars.
                recurrences[name] = ScalarRecurrence(name=name, kind="other")
        elif (isinstance(node, (ast.PostfixOp, ast.UnaryOp)) and node.op in ("++", "--")
                and isinstance(node.operand, ast.Identifier)
                and node.operand.name != iterator):
            recurrences[node.operand.name] = ScalarRecurrence(
                name=node.operand.name, kind="induction", operation="+",
                step=1 if node.op == "++" else -1,
            )
    return list(recurrences.values())


def _is_constant(expr: ast.Expr) -> bool:
    return isinstance(expr, ast.IntLiteral) or (
        isinstance(expr, ast.UnaryOp) and expr.op == "-" and isinstance(expr.operand, ast.IntLiteral)
    )


def _constant_value(expr: ast.Expr) -> int:
    if isinstance(expr, ast.IntLiteral):
        return expr.value
    if isinstance(expr, ast.UnaryOp) and expr.op == "-" and isinstance(expr.operand, ast.IntLiteral):
        return -expr.operand.value
    raise ValueError("not a constant expression")


def _mentions_name(expr: ast.Expr, name: str) -> bool:
    return any(isinstance(n, ast.Identifier) and n.name == name for n in ast.walk(expr))


def _read_before(body: ast.Stmt, name: str) -> bool:
    """Is ``name`` read at a source location before its *first* write?

    Only a read preceding every write consumes the previous iteration's
    value; a temp assigned, read, and reassigned within one iteration is
    not loop-carried.  Source order approximates execution order within the
    straight-line loop bodies of the supported C subset.
    """
    stores = set()
    first_write = None
    for node in ast.walk(body):
        target = None
        if isinstance(node, ast.Decl):
            # Declared inside the body: per-iteration lifetime, never
            # loop-carried.
            if node.name == name:
                return False
            continue
        if isinstance(node, ast.Assign) and isinstance(node.target, ast.Identifier):
            target = node.target
        elif (isinstance(node, (ast.PostfixOp, ast.UnaryOp)) and node.op in ("++", "--")
                and isinstance(node.operand, ast.Identifier)):
            target = node.operand
        if target is None:
            continue
        stores.add(id(target))
        if target.name == name:
            location = (target.location.line, target.location.column)
            if first_write is None or location < first_write:
                first_write = location
    if first_write is None:
        return False
    for node in ast.walk(body):
        if not isinstance(node, ast.Identifier) or node.name != name:
            continue
        if id(node) in stores:
            continue
        if (node.location.line, node.location.column) < first_write:
            return True
    return False


def _has_control_flow(body: ast.Stmt) -> tuple[bool, bool]:
    has_if = any(isinstance(n, (ast.If, ast.TernaryOp)) for n in ast.walk(body))
    has_goto = any(isinstance(n, ast.Goto) for n in ast.walk(body))
    return has_if, has_goto


def analyze_dependences(accesses: list[ArrayAccess], body: ast.Stmt,
                        iterator: str | None) -> DependenceReport:
    """Compute the dependence report for one loop body."""
    report = DependenceReport()
    report.has_control_flow, report.has_goto = _has_control_flow(body)
    report.recurrences = _find_scalar_recurrences(body, iterator)

    writes = [a for a in accesses if a.kind is AccessKind.WRITE]
    seen: set[tuple] = set()
    for write in writes:
        for other in accesses:
            if other is write:
                continue
            dependence = _pairwise_dependence(write, other)
            if dependence is None:
                continue
            key = (
                dependence.array,
                dependence.kind,
                expr_to_c(dependence.source.index_expr),
                expr_to_c(dependence.sink.index_expr),
                dependence.sink.kind,
            )
            if key in seen:
                continue
            seen.add(key)
            report.dependences.append(dependence)
    return report
