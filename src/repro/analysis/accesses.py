"""Array-access collection and affine index recognition.

Every ``base[index]`` occurrence inside a loop body is classified as a read
or a write, and its index expression is matched against the affine form
``coefficient * iterator + offset`` (plus "uses another scalar variable" as a
fallback).  The dependence analysis, the vectorizer's legality check, and the
spatial-splitting precondition all work over these access records.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass

from repro.cfront import ast_nodes as ast
from repro.cfront.printer import expr_to_c


class AccessKind(enum.Enum):
    READ = "read"
    WRITE = "write"


@dataclass(frozen=True)
class AffineIndex:
    """An index of the form ``coefficient * iterator + offset``.

    ``iterator`` is ``None`` for loop-invariant indices (constant or made of
    variables other than the loop iterator); in that case ``offset`` is only
    meaningful when ``symbolic`` is False.
    """

    iterator: str | None
    coefficient: int = 1
    offset: int = 0
    symbolic: bool = False

    @property
    def is_iterator_affine(self) -> bool:
        return self.iterator is not None and not self.symbolic


@dataclass(frozen=True)
class ArrayAccess:
    """One array access inside a loop body."""

    array: str
    kind: AccessKind
    index_expr: ast.Expr
    affine: AffineIndex
    conditional: bool = False

    def describe(self) -> str:
        mode = "write to" if self.kind is AccessKind.WRITE else "read of"
        guard = " (under a condition)" if self.conditional else ""
        return f"{mode} {self.array}[{expr_to_c(self.index_expr)}]{guard}"


def affine_index(expr: ast.Expr, iterator: str | None) -> AffineIndex:
    """Match ``expr`` against ``coefficient * iterator + offset``."""
    coefficient, offset, symbolic, uses_iterator = _affine_parts(expr, iterator)
    if symbolic:
        return AffineIndex(iterator=iterator if uses_iterator else None, coefficient=coefficient,
                           offset=offset, symbolic=True)
    if uses_iterator:
        return AffineIndex(iterator=iterator, coefficient=coefficient, offset=offset)
    return AffineIndex(iterator=None, coefficient=0, offset=offset)


def _affine_parts(expr: ast.Expr, iterator: str | None) -> tuple[int, int, bool, bool]:
    """Return (coefficient, offset, symbolic, uses_iterator)."""
    if isinstance(expr, ast.IntLiteral):
        return 0, expr.value, False, False
    if isinstance(expr, ast.Identifier):
        if iterator is not None and expr.name == iterator:
            return 1, 0, False, True
        return 0, 0, True, False
    if isinstance(expr, ast.UnaryOp) and expr.op == "-":
        coefficient, offset, symbolic, uses = _affine_parts(expr.operand, iterator)
        return -coefficient, -offset, symbolic, uses
    if isinstance(expr, ast.UnaryOp) and expr.op == "+":
        return _affine_parts(expr.operand, iterator)
    if isinstance(expr, ast.BinOp) and expr.op in ("+", "-"):
        lc, lo, ls, lu = _affine_parts(expr.left, iterator)
        rc, ro, rs, ru = _affine_parts(expr.right, iterator)
        sign = 1 if expr.op == "+" else -1
        return lc + sign * rc, lo + sign * ro, ls or rs, lu or ru
    if isinstance(expr, ast.BinOp) and expr.op == "*":
        lc, lo, ls, lu = _affine_parts(expr.left, iterator)
        rc, ro, rs, ru = _affine_parts(expr.right, iterator)
        # constant * affine or affine * constant
        if not lu and not ls:
            return lo * rc, lo * ro, rs, ru
        if not ru and not rs:
            return lc * ro, lo * ro, ls, lu
        return 0, 0, True, lu or ru
    # Anything else (division, shifts, nested subscripts) is symbolic.
    uses = _mentions(expr, iterator)
    return 0, 0, True, uses


def _mentions(expr: ast.Expr, name: str | None) -> bool:
    if name is None:
        return False
    return any(isinstance(n, ast.Identifier) and n.name == name for n in ast.walk(expr))


def collect_accesses(body: ast.Stmt, iterator: str | None) -> list[ArrayAccess]:
    """Collect every array access in ``body`` with read/write classification."""
    accesses: list[ArrayAccess] = []
    _collect_stmt(body, iterator, conditional=False, accesses=accesses)
    return accesses


def _collect_stmt(stmt: ast.Stmt, iterator: str | None, conditional: bool,
                  accesses: list[ArrayAccess]) -> None:
    if isinstance(stmt, ast.Block):
        for inner in stmt.body:
            _collect_stmt(inner, iterator, conditional, accesses)
    elif isinstance(stmt, ast.ExprStmt):
        _collect_expr(stmt.expr, iterator, conditional, accesses, as_write=False)
    elif isinstance(stmt, ast.Decl):
        if stmt.init is not None:
            _collect_expr(stmt.init, iterator, conditional, accesses, as_write=False)
    elif isinstance(stmt, ast.If):
        _collect_expr(stmt.cond, iterator, conditional, accesses, as_write=False)
        _collect_stmt(stmt.then, iterator, True, accesses)
        if stmt.otherwise is not None:
            _collect_stmt(stmt.otherwise, iterator, True, accesses)
    elif isinstance(stmt, (ast.ForLoop, ast.WhileLoop, ast.DoWhileLoop)):
        if isinstance(stmt, ast.ForLoop):
            if stmt.init is not None:
                _collect_stmt(stmt.init, iterator, conditional, accesses)
            if stmt.cond is not None:
                _collect_expr(stmt.cond, iterator, conditional, accesses, as_write=False)
            if stmt.step is not None:
                _collect_expr(stmt.step, iterator, conditional, accesses, as_write=False)
        else:
            _collect_expr(stmt.cond, iterator, conditional, accesses, as_write=False)
        _collect_stmt(stmt.body, iterator, conditional, accesses)
    elif isinstance(stmt, ast.Return):
        if stmt.value is not None:
            _collect_expr(stmt.value, iterator, conditional, accesses, as_write=False)
    elif isinstance(stmt, ast.Label):
        _collect_stmt(stmt.stmt, iterator, conditional, accesses)
    # Break/Continue/Goto carry no accesses.


def _collect_expr(expr: ast.Expr, iterator: str | None, conditional: bool,
                  accesses: list[ArrayAccess], as_write: bool) -> None:
    if isinstance(expr, ast.ArrayRef):
        base_name = _base_array_name(expr.base)
        if base_name is not None:
            accesses.append(
                ArrayAccess(
                    array=base_name,
                    kind=AccessKind.WRITE if as_write else AccessKind.READ,
                    index_expr=expr.index,
                    affine=affine_index(expr.index, iterator),
                    conditional=conditional,
                )
            )
        _collect_expr(expr.index, iterator, conditional, accesses, as_write=False)
        if not isinstance(expr.base, ast.Identifier):
            _collect_expr(expr.base, iterator, conditional, accesses, as_write=False)
        return
    if isinstance(expr, ast.Assign):
        _collect_expr(expr.target, iterator, conditional, accesses, as_write=True)
        if expr.op != "=":
            # Compound assignment also reads the target.
            _collect_expr(expr.target, iterator, conditional, accesses, as_write=False)
        _collect_expr(expr.value, iterator, conditional, accesses, as_write=False)
        return
    if isinstance(expr, (ast.UnaryOp, ast.PostfixOp)):
        if expr.op in ("++", "--"):
            _collect_expr(expr.operand, iterator, conditional, accesses, as_write=True)
            _collect_expr(expr.operand, iterator, conditional, accesses, as_write=False)
        else:
            _collect_expr(expr.operand, iterator, conditional, accesses, as_write=as_write)
        return
    if isinstance(expr, ast.BinOp):
        _collect_expr(expr.left, iterator, conditional, accesses, as_write=False)
        _collect_expr(expr.right, iterator, conditional, accesses, as_write=False)
        return
    if isinstance(expr, ast.TernaryOp):
        _collect_expr(expr.cond, iterator, conditional, accesses, as_write=False)
        _collect_expr(expr.then, iterator, True, accesses, as_write=False)
        _collect_expr(expr.otherwise, iterator, True, accesses, as_write=False)
        return
    if isinstance(expr, ast.Call):
        for arg in expr.args:
            _collect_expr(arg, iterator, conditional, accesses, as_write=False)
        return
    if isinstance(expr, ast.Cast):
        _collect_expr(expr.operand, iterator, conditional, accesses, as_write=as_write)
        return
    # IntLiteral / Identifier leaves: no array accesses.


def _base_array_name(expr: ast.Expr) -> str | None:
    if isinstance(expr, ast.Identifier):
        return expr.name
    if isinstance(expr, ast.Cast):
        return _base_array_name(expr.operand)
    if isinstance(expr, ast.UnaryOp) and expr.op in ("&", "*"):
        return _base_array_name(expr.operand)
    if isinstance(expr, ast.BinOp) and expr.op in ("+", "-"):
        return _base_array_name(expr.left) or _base_array_name(expr.right)
    return None
