"""Whole-kernel feature extraction and Figure-6 category assignment.

The paper's Figure 6 groups the verified TSVC kernels into six categories:
Control Flow, Dependence, Dependence+Control Flow, Naïvely Vectorizable,
Reduction and Reduction+Control Flow.  :func:`analyze_kernel` derives those
categories from the dependence report so the performance benchmark can group
its output exactly the same way.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.analysis.accesses import ArrayAccess, collect_accesses
from repro.analysis.dependence import DependenceReport, analyze_dependences
from repro.analysis.loops import LoopInfo, LoopNest, find_loops, find_main_loop
from repro.cfront import ast_nodes as ast

#: Figure 6 category names, in the order the paper lists them.
CATEGORY_CONTROL_FLOW = "Control Flow"
CATEGORY_DEPENDENCE = "Dependence"
CATEGORY_DEPENDENCE_CF = "Dependence+Control Flow"
CATEGORY_NAIVE = "Naively Vectorizable"
CATEGORY_REDUCTION = "Reduction"
CATEGORY_REDUCTION_CF = "Reduction+Control Flow"

ALL_CATEGORIES = [
    CATEGORY_CONTROL_FLOW,
    CATEGORY_DEPENDENCE,
    CATEGORY_DEPENDENCE_CF,
    CATEGORY_NAIVE,
    CATEGORY_REDUCTION,
    CATEGORY_REDUCTION_CF,
]


@dataclass
class KernelFeatures:
    """Everything the rest of the pipeline wants to know about one kernel."""

    function: ast.FunctionDef
    loop_nest: LoopNest
    main_loop: LoopInfo | None
    accesses: list[ArrayAccess] = field(default_factory=list)
    dependence: DependenceReport = field(default_factory=DependenceReport)
    category: str = CATEGORY_NAIVE

    @property
    def has_loop(self) -> bool:
        return self.main_loop is not None

    @property
    def is_nested(self) -> bool:
        return self.loop_nest.max_depth > 0

    @property
    def iterator(self) -> str | None:
        return self.main_loop.iterator if self.main_loop else None

    @property
    def step(self) -> int | None:
        return self.main_loop.step if self.main_loop else None

    @property
    def array_params(self) -> list[str]:
        return [p.name for p in self.function.params if p.param_type.is_pointer]

    @property
    def scalar_params(self) -> list[str]:
        return [p.name for p in self.function.params if not p.param_type.is_pointer]

    @property
    def written_arrays(self) -> list[str]:
        seen: list[str] = []
        for access in self.accesses:
            if access.kind.value == "write" and access.array not in seen:
                seen.append(access.array)
        return seen

    @property
    def read_arrays(self) -> list[str]:
        seen: list[str] = []
        for access in self.accesses:
            if access.kind.value == "read" and access.array not in seen:
                seen.append(access.array)
        return seen

    def dependence_summary(self) -> str:
        """Clang-style text used in the vectorizer agent's prompt."""
        iterator = self.iterator or "i"
        return self.dependence.clang_style_remark(iterator)


def categorize(report: DependenceReport) -> str:
    """Assign the Figure-6 category from a dependence report."""
    has_cf = report.has_control_flow or report.has_goto
    has_reduction = bool(report.reductions)
    has_dependence = report.has_loop_carried_dependence or bool(report.inductions)
    if has_reduction:
        return CATEGORY_REDUCTION_CF if has_cf else CATEGORY_REDUCTION
    if has_dependence and has_cf:
        return CATEGORY_DEPENDENCE_CF
    if has_dependence:
        return CATEGORY_DEPENDENCE
    if has_cf:
        return CATEGORY_CONTROL_FLOW
    return CATEGORY_NAIVE


#: Feature analysis is pure in the tree, and with parse results cache-shared
#: the same function object is re-analyzed once per completion (difficulty
#: scoring) and once per dialogue (the dependence report).  Entries keep a
#: strong reference to the analyzed function, so the id key cannot be reused.
_FEATURE_MEMO: dict[int, tuple[ast.FunctionDef, "KernelFeatures"]] = {}
_FEATURE_MEMO_CAPACITY = 512


def analyze_kernel(func: ast.FunctionDef) -> KernelFeatures:
    """Run loop discovery, access collection and dependence analysis on ``func``."""
    entry = _FEATURE_MEMO.get(id(func))
    if entry is not None and entry[0] is func:
        return entry[1]
    features = _analyze_kernel_uncached(func)
    if len(_FEATURE_MEMO) >= _FEATURE_MEMO_CAPACITY:
        _FEATURE_MEMO.clear()
    _FEATURE_MEMO[id(func)] = (func, features)
    return features


def _analyze_kernel_uncached(func: ast.FunctionDef) -> KernelFeatures:
    loop_nest = find_loops(func)
    main_loop = find_main_loop(func)
    features = KernelFeatures(function=func, loop_nest=loop_nest, main_loop=main_loop)
    if main_loop is None:
        return features
    features.accesses = collect_accesses(main_loop.body, main_loop.iterator)
    features.dependence = analyze_dependences(features.accesses, main_loop.body, main_loop.iterator)
    features.category = categorize(features.dependence)
    return features
