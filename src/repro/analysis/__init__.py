"""Loop and dependence analysis over the C AST.

This is the analysis substrate shared by the rule-based vectorizer, the
simulated GCC/Clang/ICC baselines, the spatial-splitting legality check and
the prompt construction (the paper feeds Clang's "why not vectorized"
dependence report to the LLM).
"""

from repro.analysis.loops import LoopNest, LoopInfo, find_loops, find_main_loop
from repro.analysis.accesses import ArrayAccess, AccessKind, collect_accesses, affine_index
from repro.analysis.dependence import (
    Dependence,
    DependenceKind,
    DependenceReport,
    analyze_dependences,
)
from repro.analysis.features import KernelFeatures, analyze_kernel

__all__ = [
    "LoopNest",
    "LoopInfo",
    "find_loops",
    "find_main_loop",
    "ArrayAccess",
    "AccessKind",
    "collect_accesses",
    "affine_index",
    "Dependence",
    "DependenceKind",
    "DependenceReport",
    "analyze_dependences",
    "KernelFeatures",
    "analyze_kernel",
]
