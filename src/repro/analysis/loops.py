"""Loop discovery and canonical-form extraction.

The paper (Section 3.1) assumes loops in the canonical form
``for (i = start; i < end; i += step) body`` (and the obvious variants
``<=``, ``!=``, decrementing iterators).  :class:`LoopInfo` captures exactly
that decomposition plus enough structure (nesting depth, parent loop) for the
nested-loop handling of Sections 3.1–3.2.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.cfront import ast_nodes as ast
from repro.cfront.printer import expr_to_c


@dataclass
class LoopInfo:
    """A single ``for`` loop in canonical form.

    ``iterator`` is the induction variable name; ``start``, ``end`` and
    ``step`` are expressions (``step`` may be negative for decrementing
    loops); ``end_op`` records the comparison (``<``, ``<=``, ``!=``, ``>``,
    ``>=``).  ``declares_iterator`` is True when the iterator is declared in
    the loop header (``for (int i = ...)``).
    """

    node: ast.ForLoop
    iterator: str | None
    start: ast.Expr | None
    end: ast.Expr | None
    end_op: str | None
    step: int | None
    step_expr: ast.Expr | None
    declares_iterator: bool
    depth: int = 0
    parent: "LoopInfo" | None = None
    children: list["LoopInfo"] = field(default_factory=list)

    @property
    def is_canonical(self) -> bool:
        """True when every canonical-form component was recognized."""
        return (
            self.iterator is not None
            and self.start is not None
            and self.end is not None
            and self.end_op in ("<", "<=", "!=", ">", ">=")
            and self.step is not None
        )

    @property
    def is_innermost(self) -> bool:
        return not self.children

    @property
    def body(self) -> ast.Stmt:
        return self.node.body

    def describe(self) -> str:
        """Render the canonical header, e.g. ``for (i = 0; i < n-1; i += 1)``."""
        if not self.is_canonical:
            return "<non-canonical loop>"
        start = expr_to_c(self.start)
        end = expr_to_c(self.end)
        return f"for ({self.iterator} = {start}; {self.iterator} {self.end_op} {end}; {self.iterator} += {self.step})"


@dataclass
class LoopNest:
    """All loops of a function, with nesting structure."""

    loops: list[LoopInfo]

    @property
    def top_level(self) -> list[LoopInfo]:
        return [loop for loop in self.loops if loop.parent is None]

    @property
    def innermost(self) -> list[LoopInfo]:
        return [loop for loop in self.loops if loop.is_innermost]

    @property
    def max_depth(self) -> int:
        return max((loop.depth for loop in self.loops), default=-1)


def _extract_init(init: ast.Stmt | None) -> tuple[str | None, ast.Expr | None, bool]:
    """Return (iterator name, start expression, declares_iterator)."""
    if init is None:
        return None, None, False
    if isinstance(init, ast.Decl) and init.init is not None:
        return init.name, init.init, True
    if isinstance(init, ast.ExprStmt) and isinstance(init.expr, ast.Assign) and init.expr.op == "=":
        target = init.expr.target
        if isinstance(target, ast.Identifier):
            return target.name, init.expr.value, False
    return None, None, False


def _extract_cond(cond: ast.Expr | None, iterator: str | None) -> tuple[ast.Expr | None, str | None]:
    """Return (end expression, comparison operator) if the condition bounds the iterator."""
    if cond is None or iterator is None:
        return None, None
    if isinstance(cond, ast.BinOp) and cond.op in ("<", "<=", "!=", ">", ">="):
        if isinstance(cond.left, ast.Identifier) and cond.left.name == iterator:
            return cond.right, cond.op
        if isinstance(cond.right, ast.Identifier) and cond.right.name == iterator:
            flipped = {"<": ">", "<=": ">=", ">": "<", ">=": "<=", "!=": "!="}
            return cond.left, flipped[cond.op]
    return None, None


def _extract_step(step: ast.Expr | None, iterator: str | None) -> tuple[int | None, ast.Expr | None]:
    """Return (constant step, step expression) for recognized step forms."""
    if step is None or iterator is None:
        return None, None
    if isinstance(step, (ast.PostfixOp, ast.UnaryOp)) and step.op in ("++", "--"):
        operand = step.operand
        if isinstance(operand, ast.Identifier) and operand.name == iterator:
            return (1 if step.op == "++" else -1), step
    if isinstance(step, ast.Assign) and isinstance(step.target, ast.Identifier) and step.target.name == iterator:
        if step.op == "+=" and isinstance(step.value, ast.IntLiteral):
            return step.value.value, step
        if step.op == "-=" and isinstance(step.value, ast.IntLiteral):
            return -step.value.value, step
        if step.op == "=" and isinstance(step.value, ast.BinOp):
            value = step.value
            if (
                value.op in ("+", "-")
                and isinstance(value.left, ast.Identifier)
                and value.left.name == iterator
                and isinstance(value.right, ast.IntLiteral)
            ):
                magnitude = value.right.value
                return (magnitude if value.op == "+" else -magnitude), step
        if step.op in ("+=", "-="):
            # Non-constant step (e.g. ``i += k``): canonical but unknown constant.
            return None, step
    return None, step


def _build_loop_info(node: ast.ForLoop, depth: int, parent: LoopInfo | None) -> LoopInfo:
    iterator, start, declares = _extract_init(node.init)
    end, end_op = _extract_cond(node.cond, iterator)
    step, step_expr = _extract_step(node.step, iterator)
    return LoopInfo(
        node=node,
        iterator=iterator,
        start=start,
        end=end,
        end_op=end_op,
        step=step,
        step_expr=step_expr,
        declares_iterator=declares,
        depth=depth,
        parent=parent,
    )


def _collect_loops(stmt: ast.Stmt, depth: int, parent: LoopInfo | None, out: list[LoopInfo]) -> None:
    if isinstance(stmt, ast.ForLoop):
        info = _build_loop_info(stmt, depth, parent)
        if parent is not None:
            parent.children.append(info)
        out.append(info)
        _collect_loops(stmt.body, depth + 1, info, out)
        return
    if isinstance(stmt, (ast.WhileLoop, ast.DoWhileLoop)):
        _collect_loops(stmt.body, depth, parent, out)
        return
    if isinstance(stmt, ast.Block):
        for inner in stmt.body:
            _collect_loops(inner, depth, parent, out)
        return
    if isinstance(stmt, ast.If):
        _collect_loops(stmt.then, depth, parent, out)
        if stmt.otherwise is not None:
            _collect_loops(stmt.otherwise, depth, parent, out)
        return
    if isinstance(stmt, ast.Label):
        _collect_loops(stmt.stmt, depth, parent, out)
        return
    # Leaf statements contain no loops.


def find_loops(func: ast.FunctionDef) -> LoopNest:
    """Discover every ``for`` loop in ``func`` and its nesting structure."""
    loops: list[LoopInfo] = []
    _collect_loops(func.body, 0, None, loops)
    return LoopNest(loops=loops)


def find_main_loop(func: ast.FunctionDef) -> LoopInfo | None:
    """Return the innermost loop of the first top-level loop nest.

    TSVC kernels contain one loop nest; vectorization targets its innermost
    loop (the paper's nested-loop handling keeps outer loops untouched).
    """
    nest = find_loops(func)
    if not nest.loops:
        return None
    current = nest.top_level[0]
    while current.children:
        current = current.children[0]
    return current
