"""Shared 32-bit lane arithmetic, scalar and bulk.

Every layer that models lane values — the intrinsic semantics, the concrete
interpreter, the memory model and the symbolic executor's constant folding —
agrees on one definition of 32-bit two's-complement wraparound, defined here
and nowhere else.

Beyond the scalar helpers, this module provides *bulk* kernels that evaluate
a whole register per call: lanes as ``numpy.int32`` arrays (whose arithmetic
wraps exactly like the scalar ``wrap32`` semantics), poison and predicate
lanes as boolean arrays.  When numpy is unavailable the kernels fall back to
:mod:`repro.intrinsics.purelanes`, the deliberately independent pure-Python
reference that the property tests also compare against.
"""

from __future__ import annotations

from typing import Sequence

from repro.intrinsics import purelanes

try:
    import numpy as _np
except ImportError:  # pragma: no cover - the image bakes numpy in
    _np = None

HAVE_NUMPY = _np is not None

LANE_BITS = 32
LANE_MASK = (1 << LANE_BITS) - 1
SIGN_BIT = 1 << (LANE_BITS - 1)


def wrap32(value: int) -> int:
    """Reduce ``value`` to signed 32-bit two's-complement range."""
    value &= LANE_MASK
    if value & SIGN_BIT:
        value -= 1 << LANE_BITS
    return value


def to_unsigned32(value: int) -> int:
    """Interpret a signed 32-bit value as unsigned."""
    return value & LANE_MASK


def lane_active(mask_value: int) -> bool:
    """Whether a data-vector mask lane enables its operation.

    One definition of "active" shared by the AVX-style masked memory ops and
    the select byte blends: the lane's sign bit is set (TSVC vectorizations
    only ever build full-lane 0 / -1 masks).
    """
    return wrap32(mask_value) < 0


def whilelt_lanes(base: int, bound: int, width: int) -> tuple[bool, ...]:
    """The SVE ``whilelt`` predicate pattern: lane ``k`` active iff
    ``base + k < bound``.

    Shared by the concrete interpreter and the symbolic executor so the two
    execution substrates can never disagree about which tail lanes a
    predicated loop's final iteration retires.
    """
    return tuple(base + lane < bound for lane in range(width))


# ---------------------------------------------------------------------------
# bulk kernels: one call per register instead of one call per lane
# ---------------------------------------------------------------------------

BINARY_OPS = purelanes.BINARY_OPS
UNARY_OPS = purelanes.UNARY_OPS
SHIFT_OPS = purelanes.SHIFT_OPS

if HAVE_NUMPY:
    _I32_NEG1 = _np.int32(-1)
    _I32_ZERO = _np.int32(0)

    _BINARY_KERNELS = {
        "add": _np.add,
        "sub": _np.subtract,
        "mul": _np.multiply,
        "and": _np.bitwise_and,
        "or": _np.bitwise_or,
        "xor": _np.bitwise_xor,
        "andnot": lambda a, b: _np.bitwise_and(_np.invert(a), b),
        "max": _np.maximum,
        "min": _np.minimum,
        "cmpgt": lambda a, b: _np.where(a > b, _I32_NEG1, _I32_ZERO),
        "cmpeq": lambda a, b: _np.where(a == b, _I32_NEG1, _I32_ZERO),
    }

    _UNARY_KERNELS = {
        "abs": _np.abs,
    }


def _i32(lanes: Sequence[int]) -> "_np.ndarray":
    return _np.array(lanes, dtype=_np.int32)


def _bools(flags: Sequence[bool]) -> "_np.ndarray":
    return _np.array(flags, dtype=_np.bool_)


def _lane_tuple(array: "_np.ndarray") -> tuple[int, ...]:
    return tuple(map(int, array))


def _flag_tuple(array: "_np.ndarray") -> tuple[bool, ...]:
    return tuple(map(bool, array))


def or_flags(*flag_sets: Sequence[bool]) -> tuple[bool, ...]:
    """Lane-wise OR of poison-flag vectors (with a no-poison fast path)."""
    if not any(map(any, flag_sets)):
        return (False,) * len(flag_sets[0])
    return purelanes.or_flags(*flag_sets)


def binary_lanes(op: str, a: Sequence[int], b: Sequence[int],
                 pa: Sequence[bool], pb: Sequence[bool],
                 ) -> tuple[tuple[int, ...], tuple[bool, ...]]:
    """Lane-wise binary op with wraparound; poison ORs lane-wise."""
    if not HAVE_NUMPY:
        return purelanes.binary_lanes(op, a, b, pa, pb)
    lanes = _lane_tuple(_BINARY_KERNELS[op](_i32(a), _i32(b)))
    return lanes, or_flags(pa, pb)


def unary_lanes(op: str, a: Sequence[int], pa: Sequence[bool],
                ) -> tuple[tuple[int, ...], tuple[bool, ...]]:
    if not HAVE_NUMPY:
        return purelanes.unary_lanes(op, a, pa)
    return _lane_tuple(_UNARY_KERNELS[op](_i32(a))), tuple(pa)


def shift_lanes(op: str, a: Sequence[int], count: int, pa: Sequence[bool],
                ) -> tuple[tuple[int, ...], tuple[bool, ...]]:
    """Whole-register shift by a scalar count (AVX-style immediate shifts)."""
    if not HAVE_NUMPY:
        return purelanes.shift_lanes(op, a, count, pa)
    count = int(count)
    poison = tuple(pa)
    if op == "srl":
        if count >= LANE_BITS:
            return (0,) * len(a), poison
        shifted = (_i32(a).view(_np.uint32) >> _np.uint32(count)).view(_np.int32)
    elif op == "sll":
        if count >= LANE_BITS:
            return (0,) * len(a), poison
        shifted = (_i32(a).view(_np.uint32) << _np.uint32(count)).view(_np.int32)
    elif op == "sra":
        shifted = _i32(a) >> _np.int32(min(count, LANE_BITS - 1))
    else:
        raise KeyError(op)
    return _lane_tuple(shifted), poison


def select_lanes(a: Sequence[int], b: Sequence[int], mask: Sequence[int],
                 pa: Sequence[bool], pb: Sequence[bool], pm: Sequence[bool],
                 ) -> tuple[tuple[int, ...], tuple[bool, ...]]:
    """Per-byte select: mask bytes with the sign bit set pick ``b``'s byte.

    Byte index ``k`` of each operand lane corresponds across ``a``/``b``/
    ``mask``, so the uint8 reinterpretation is endianness-agnostic.
    """
    if not HAVE_NUMPY:
        return purelanes.select_lanes(a, b, mask, pa, pb, pm)
    bytes_a = _i32(a).view(_np.uint8)
    bytes_b = _i32(b).view(_np.uint8)
    picks_b = (_i32(mask).view(_np.uint8) & 0x80).astype(_np.bool_)
    lanes = _lane_tuple(_np.where(picks_b, bytes_b, bytes_a).view(_np.int32))
    if not (any(pa) or any(pb) or any(pm)):
        return lanes, (False,) * len(lanes)
    per_lane = picks_b.reshape(len(lanes), LANE_BITS // 8)
    uses_b = per_lane.any(axis=1)
    uses_a = (~per_lane).any(axis=1)
    poison = _flag_tuple(
        _bools(pm)
        | (_bools(pa) & uses_a)
        | (_bools(pb) & uses_b)
    )
    return lanes, poison


# -- bulk predicate kernels (lanes are booleans) ----------------------------


def pred_not_lanes(gov: Sequence[bool], p: Sequence[bool],
                   pg: Sequence[bool], pp: Sequence[bool],
                   ) -> tuple[tuple[bool, ...], tuple[bool, ...]]:
    """Zeroing predicate NOT: active where ``gov`` is active and ``p`` isn't."""
    if not HAVE_NUMPY:
        return purelanes.pred_not_lanes(gov, p, pg, pp)
    lanes = _flag_tuple(_bools(gov) & ~_bools(p))
    return lanes, or_flags(pg, pp)


def pred_logic_lanes(op: str, gov: Sequence[bool],
                     a: Sequence[bool], b: Sequence[bool],
                     pg: Sequence[bool], pa: Sequence[bool],
                     pb: Sequence[bool],
                     ) -> tuple[tuple[bool, ...], tuple[bool, ...]]:
    """Zeroing predicate AND/OR, governed by ``gov``."""
    if not HAVE_NUMPY:
        return purelanes.pred_logic_lanes(op, gov, a, b, pg, pa, pb)
    xa, xb = _bools(a), _bools(b)
    combined = (xa & xb) if op == "and" else (xa | xb)
    if op not in ("and", "or"):
        raise KeyError(op)
    return _flag_tuple(_bools(gov) & combined), or_flags(pg, pa, pb)


def pred_cmp_lanes(op: str, gov: Sequence[bool],
                   a: Sequence[int], b: Sequence[int],
                   pg: Sequence[bool], pa: Sequence[bool],
                   pb: Sequence[bool],
                   ) -> tuple[tuple[bool, ...], tuple[bool, ...]]:
    """Predicate-producing comparison; inactive lanes come back false."""
    if not HAVE_NUMPY:
        return purelanes.pred_cmp_lanes(op, gov, a, b, pg, pa, pb)
    xa, xb = _i32(a), _i32(b)
    if op == "cmpgt":
        compared = xa > xb
    elif op == "cmpeq":
        compared = xa == xb
    else:
        raise KeyError(op)
    active = _bools(gov)
    lanes = _flag_tuple(active & compared)
    if not (any(pg) or any(pa) or any(pb)):
        return lanes, (False,) * len(lanes)
    # A predicate bit computed from poison data is itself unreliable — but
    # only where the governing predicate actually looked.
    poison = _flag_tuple(_bools(pg) | (active & (_bools(pa) | _bools(pb))))
    return lanes, poison


def psel_lanes(pred: Sequence[bool], a: Sequence[int], b: Sequence[int],
               pg: Sequence[bool], pa: Sequence[bool], pb: Sequence[bool],
               ) -> tuple[tuple[int, ...], tuple[bool, ...]]:
    """Predicate-selected blend: active lanes from ``a``, inactive from ``b``."""
    if not HAVE_NUMPY:
        return purelanes.psel_lanes(pred, a, b, pg, pa, pb)
    active = _bools(pred)
    lanes = _lane_tuple(_np.where(active, _i32(a), _i32(b)))
    if not (any(pg) or any(pa) or any(pb)):
        return lanes, (False,) * len(lanes)
    poison = _flag_tuple(_bools(pg) | _np.where(active, _bools(pa), _bools(pb)))
    return lanes, poison


def pred_merge_lanes(op: str, pred: Sequence[bool],
                     a: Sequence[int], b: Sequence[int],
                     pg: Sequence[bool], pa: Sequence[bool],
                     pb: Sequence[bool],
                     ) -> tuple[tuple[int, ...], tuple[bool, ...]]:
    """Merging predicated arithmetic: inactive lanes keep the first operand."""
    if not HAVE_NUMPY:
        return purelanes.pred_merge_lanes(op, pred, a, b, pg, pa, pb)
    active = _bools(pred)
    xa = _i32(a)
    computed = _BINARY_KERNELS[op](xa, _i32(b))
    lanes = _lane_tuple(_np.where(active, computed, xa))
    if not (any(pg) or any(pa) or any(pb)):
        return lanes, (False,) * len(lanes)
    fa, fb = _bools(pa), _bools(pb)
    poison = _flag_tuple(_bools(pg) | _np.where(active, fa | fb, fa))
    return lanes, poison
