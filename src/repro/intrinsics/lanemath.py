"""Shared 32-bit lane arithmetic.

Every layer that models lane values — the intrinsic semantics, the concrete
interpreter, the memory model and the symbolic executor's constant folding —
agrees on one definition of 32-bit two's-complement wraparound, defined here
and nowhere else.
"""

from __future__ import annotations

LANE_BITS = 32
LANE_MASK = (1 << LANE_BITS) - 1
SIGN_BIT = 1 << (LANE_BITS - 1)


def wrap32(value: int) -> int:
    """Reduce ``value`` to signed 32-bit two's-complement range."""
    value &= LANE_MASK
    if value & SIGN_BIT:
        value -= 1 << LANE_BITS
    return value


def to_unsigned32(value: int) -> int:
    """Interpret a signed 32-bit value as unsigned."""
    return value & LANE_MASK


def lane_active(mask_value: int) -> bool:
    """Whether a data-vector mask lane enables its operation.

    One definition of "active" shared by the AVX-style masked memory ops and
    the select byte blends: the lane's sign bit is set (TSVC vectorizations
    only ever build full-lane 0 / -1 masks).
    """
    return wrap32(mask_value) < 0


def whilelt_lanes(base: int, bound: int, width: int) -> tuple[bool, ...]:
    """The SVE ``whilelt`` predicate pattern: lane ``k`` active iff
    ``base + k < bound``.

    Shared by the concrete interpreter and the symbolic executor so the two
    execution substrates can never disagree about which tail lanes a
    predicated loop's final iteration retires.
    """
    return tuple(base + lane < bound for lane in range(width))
