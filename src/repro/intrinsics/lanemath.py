"""Shared lane arithmetic, scalar and bulk, parametric in the element type.

Every layer that models lane values — the intrinsic semantics, the concrete
interpreter, the memory model and the symbolic executor's constant folding —
agrees on one definition of two's-complement wraparound, owned by the
:class:`~repro.lanetypes.LaneType` descriptors and applied here
and nowhere else.  The historical 32-bit spellings (``wrap32``,
``to_unsigned32``, ``LANE_BITS``) remain as thin aliases of the default
:data:`~repro.lanetypes.INT32` descriptor.

Beyond the scalar helpers, this module provides *bulk* kernels that evaluate
a whole register per call: lanes as numpy arrays of the dtype's width (whose
arithmetic wraps exactly like the scalar ``LaneType.wrap`` semantics),
poison and predicate lanes as boolean arrays.  When numpy is unavailable the
kernels fall back to :mod:`repro.intrinsics.purelanes`, the deliberately
independent pure-Python reference that the property tests also compare
against.

Shift counts at or beyond the lane width are *defined* here — ``srl``/``sll``
produce 0 and ``sra`` clamps to ``bits - 1``, matching the scalar oracle —
rather than delegated to numpy's per-platform over-shift behaviour.
"""

from __future__ import annotations

from collections.abc import Sequence

from repro.intrinsics import purelanes
from repro.lanetypes import INT32, LaneType

try:
    import numpy as _np
except ImportError:  # pragma: no cover - the image bakes numpy in
    _np = None

HAVE_NUMPY = _np is not None

#: Legacy 32-bit spellings: the default element type's constants/helpers.
LANE_BITS = INT32.bits
LANE_MASK = INT32.mask
SIGN_BIT = INT32.sign_bit
wrap32 = INT32.wrap
to_unsigned32 = INT32.to_unsigned


def lane_active(mask_value: int, dtype: LaneType = INT32) -> bool:
    """Whether a data-vector mask lane enables its operation.

    One definition of "active" shared by the AVX-style masked memory ops and
    the select byte blends: the lane's sign bit is set (TSVC vectorizations
    only ever build full-lane 0 / -1 masks).
    """
    return dtype.wrap(mask_value) < 0


def whilelt_lanes(base: int, bound: int, width: int) -> tuple[bool, ...]:
    """The SVE ``whilelt`` predicate pattern: lane ``k`` active iff
    ``base + k < bound``.

    Shared by the concrete interpreter and the symbolic executor so the two
    execution substrates can never disagree about which tail lanes a
    predicated loop's final iteration retires.
    """
    return tuple(base + lane < bound for lane in range(width))


# ---------------------------------------------------------------------------
# bulk kernels: one call per register instead of one call per lane
# ---------------------------------------------------------------------------

BINARY_OPS = purelanes.BINARY_OPS
UNARY_OPS = purelanes.UNARY_OPS
SHIFT_OPS = purelanes.SHIFT_OPS

if HAVE_NUMPY:
    #: LaneType name -> (signed dtype, unsigned dtype, signed -1, signed 0).
    _NP_TYPES = {
        "int16": (_np.int16, _np.uint16, _np.int16(-1), _np.int16(0)),
        "int32": (_np.int32, _np.uint32, _np.int32(-1), _np.int32(0)),
        "int64": (_np.int64, _np.uint64, _np.int64(-1), _np.int64(0)),
    }

    def _binary_kernels(neg1, zero):
        return {
            "add": _np.add,
            "sub": _np.subtract,
            "mul": _np.multiply,
            "and": _np.bitwise_and,
            "or": _np.bitwise_or,
            "xor": _np.bitwise_xor,
            "andnot": lambda a, b: _np.bitwise_and(_np.invert(a), b),
            "max": _np.maximum,
            "min": _np.minimum,
            "cmpgt": lambda a, b: _np.where(a > b, neg1, zero),
            "cmpeq": lambda a, b: _np.where(a == b, neg1, zero),
        }

    #: LaneType name -> op -> numpy kernel (comparisons bake in the dtype's
    #: own -1/0 so the result array keeps the element width).
    _BINARY_KERNELS = {
        name: _binary_kernels(neg1, zero)
        for name, (_, _, neg1, zero) in _NP_TYPES.items()
    }

    _UNARY_KERNELS = {
        "abs": _np.abs,
    }


def _arr(lanes: Sequence[int], dtype: LaneType) -> "_np.ndarray":
    return _np.array(lanes, dtype=_NP_TYPES[dtype.name][0])


def _bools(flags: Sequence[bool]) -> "_np.ndarray":
    return _np.array(flags, dtype=_np.bool_)


def _lane_tuple(array: "_np.ndarray") -> tuple[int, ...]:
    return tuple(map(int, array))


def _flag_tuple(array: "_np.ndarray") -> tuple[bool, ...]:
    return tuple(map(bool, array))


def or_flags(*flag_sets: Sequence[bool]) -> tuple[bool, ...]:
    """Lane-wise OR of poison-flag vectors (with a no-poison fast path)."""
    if not any(map(any, flag_sets)):
        return (False,) * len(flag_sets[0])
    return purelanes.or_flags(*flag_sets)


def binary_lanes(op: str, a: Sequence[int], b: Sequence[int],
                 pa: Sequence[bool], pb: Sequence[bool],
                 dtype: LaneType = INT32,
                 ) -> tuple[tuple[int, ...], tuple[bool, ...]]:
    """Lane-wise binary op with wraparound; poison ORs lane-wise."""
    if not HAVE_NUMPY:
        return purelanes.binary_lanes(op, a, b, pa, pb, bits=dtype.bits)
    kernel = _BINARY_KERNELS[dtype.name][op]
    lanes = _lane_tuple(kernel(_arr(a, dtype), _arr(b, dtype)))
    return lanes, or_flags(pa, pb)


def unary_lanes(op: str, a: Sequence[int], pa: Sequence[bool],
                dtype: LaneType = INT32,
                ) -> tuple[tuple[int, ...], tuple[bool, ...]]:
    if not HAVE_NUMPY:
        return purelanes.unary_lanes(op, a, pa, bits=dtype.bits)
    return _lane_tuple(_UNARY_KERNELS[op](_arr(a, dtype))), tuple(pa)


def shift_lanes(op: str, a: Sequence[int], count: int, pa: Sequence[bool],
                dtype: LaneType = INT32,
                ) -> tuple[tuple[int, ...], tuple[bool, ...]]:
    """Whole-register shift by a scalar count (AVX-style immediate shifts).

    Over-shifts are defined, not platform-dependent: ``srl``/``sll`` with
    ``count >= dtype.bits`` produce 0 and ``sra`` clamps to ``bits - 1``,
    exactly like the scalar oracle.
    """
    if not HAVE_NUMPY:
        return purelanes.shift_lanes(op, a, count, pa, bits=dtype.bits)
    count = int(count)
    poison = tuple(pa)
    signed, unsigned = _NP_TYPES[dtype.name][:2]
    if op == "srl":
        if count >= dtype.bits:
            return (0,) * len(a), poison
        shifted = (_arr(a, dtype).view(unsigned) >> unsigned(count)).view(signed)
    elif op == "sll":
        if count >= dtype.bits:
            return (0,) * len(a), poison
        shifted = (_arr(a, dtype).view(unsigned) << unsigned(count)).view(signed)
    elif op == "sra":
        shifted = _arr(a, dtype) >> signed(min(count, dtype.bits - 1))
    else:
        raise KeyError(op)
    return _lane_tuple(shifted), poison


def select_lanes(a: Sequence[int], b: Sequence[int], mask: Sequence[int],
                 pa: Sequence[bool], pb: Sequence[bool], pm: Sequence[bool],
                 dtype: LaneType = INT32,
                 ) -> tuple[tuple[int, ...], tuple[bool, ...]]:
    """Per-byte select: mask bytes with the sign bit set pick ``b``'s byte.

    Byte index ``k`` of each operand lane corresponds across ``a``/``b``/
    ``mask``, so the uint8 reinterpretation is endianness-agnostic.
    """
    if not HAVE_NUMPY:
        return purelanes.select_lanes(a, b, mask, pa, pb, pm, bits=dtype.bits)
    signed = _NP_TYPES[dtype.name][0]
    bytes_a = _arr(a, dtype).view(_np.uint8)
    bytes_b = _arr(b, dtype).view(_np.uint8)
    picks_b = (_arr(mask, dtype).view(_np.uint8) & 0x80).astype(_np.bool_)
    lanes = _lane_tuple(_np.where(picks_b, bytes_b, bytes_a).view(signed))
    if not (any(pa) or any(pb) or any(pm)):
        return lanes, (False,) * len(lanes)
    per_lane = picks_b.reshape(len(lanes), dtype.bytes)
    uses_b = per_lane.any(axis=1)
    uses_a = (~per_lane).any(axis=1)
    poison = _flag_tuple(
        _bools(pm)
        | (_bools(pa) & uses_a)
        | (_bools(pb) & uses_b)
    )
    return lanes, poison


# -- bulk predicate kernels (lanes are booleans) ----------------------------


def pred_not_lanes(gov: Sequence[bool], p: Sequence[bool],
                   pg: Sequence[bool], pp: Sequence[bool],
                   ) -> tuple[tuple[bool, ...], tuple[bool, ...]]:
    """Zeroing predicate NOT: active where ``gov`` is active and ``p`` isn't."""
    if not HAVE_NUMPY:
        return purelanes.pred_not_lanes(gov, p, pg, pp)
    lanes = _flag_tuple(_bools(gov) & ~_bools(p))
    return lanes, or_flags(pg, pp)


def pred_logic_lanes(op: str, gov: Sequence[bool],
                     a: Sequence[bool], b: Sequence[bool],
                     pg: Sequence[bool], pa: Sequence[bool],
                     pb: Sequence[bool],
                     ) -> tuple[tuple[bool, ...], tuple[bool, ...]]:
    """Zeroing predicate AND/OR, governed by ``gov``."""
    if not HAVE_NUMPY:
        return purelanes.pred_logic_lanes(op, gov, a, b, pg, pa, pb)
    xa, xb = _bools(a), _bools(b)
    combined = (xa & xb) if op == "and" else (xa | xb)
    if op not in ("and", "or"):
        raise KeyError(op)
    return _flag_tuple(_bools(gov) & combined), or_flags(pg, pa, pb)


def pred_cmp_lanes(op: str, gov: Sequence[bool],
                   a: Sequence[int], b: Sequence[int],
                   pg: Sequence[bool], pa: Sequence[bool],
                   pb: Sequence[bool],
                   dtype: LaneType = INT32,
                   ) -> tuple[tuple[bool, ...], tuple[bool, ...]]:
    """Predicate-producing comparison; inactive lanes come back false."""
    if not HAVE_NUMPY:
        return purelanes.pred_cmp_lanes(op, gov, a, b, pg, pa, pb,
                                        bits=dtype.bits)
    xa, xb = _arr(a, dtype), _arr(b, dtype)
    if op == "cmpgt":
        compared = xa > xb
    elif op == "cmpeq":
        compared = xa == xb
    else:
        raise KeyError(op)
    active = _bools(gov)
    lanes = _flag_tuple(active & compared)
    if not (any(pg) or any(pa) or any(pb)):
        return lanes, (False,) * len(lanes)
    # A predicate bit computed from poison data is itself unreliable — but
    # only where the governing predicate actually looked.
    poison = _flag_tuple(_bools(pg) | (active & (_bools(pa) | _bools(pb))))
    return lanes, poison


def psel_lanes(pred: Sequence[bool], a: Sequence[int], b: Sequence[int],
               pg: Sequence[bool], pa: Sequence[bool], pb: Sequence[bool],
               dtype: LaneType = INT32,
               ) -> tuple[tuple[int, ...], tuple[bool, ...]]:
    """Predicate-selected blend: active lanes from ``a``, inactive from ``b``."""
    if not HAVE_NUMPY:
        return purelanes.psel_lanes(pred, a, b, pg, pa, pb, bits=dtype.bits)
    active = _bools(pred)
    lanes = _lane_tuple(_np.where(active, _arr(a, dtype), _arr(b, dtype)))
    if not (any(pg) or any(pa) or any(pb)):
        return lanes, (False,) * len(lanes)
    poison = _flag_tuple(_bools(pg) | _np.where(active, _bools(pa), _bools(pb)))
    return lanes, poison


def pred_merge_lanes(op: str, pred: Sequence[bool],
                     a: Sequence[int], b: Sequence[int],
                     pg: Sequence[bool], pa: Sequence[bool],
                     pb: Sequence[bool],
                     dtype: LaneType = INT32,
                     ) -> tuple[tuple[int, ...], tuple[bool, ...]]:
    """Merging predicated arithmetic: inactive lanes keep the first operand."""
    if not HAVE_NUMPY:
        return purelanes.pred_merge_lanes(op, pred, a, b, pg, pa, pb,
                                          bits=dtype.bits)
    active = _bools(pred)
    xa = _arr(a, dtype)
    computed = _BINARY_KERNELS[dtype.name][op](xa, _arr(b, dtype))
    lanes = _lane_tuple(_np.where(active, computed, xa))
    if not (any(pg) or any(pa) or any(pb)):
        return lanes, (False,) * len(lanes)
    fa, fb = _bools(pa), _bools(pb)
    poison = _flag_tuple(_bools(pg) | _np.where(active, fa | fb, fa))
    return lanes, poison
