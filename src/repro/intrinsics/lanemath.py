"""Shared 32-bit lane arithmetic.

Every layer that models lane values — the intrinsic semantics, the concrete
interpreter, the memory model and the symbolic executor's constant folding —
agrees on one definition of 32-bit two's-complement wraparound, defined here
and nowhere else.
"""

from __future__ import annotations

LANE_BITS = 32
LANE_MASK = (1 << LANE_BITS) - 1
SIGN_BIT = 1 << (LANE_BITS - 1)


def wrap32(value: int) -> int:
    """Reduce ``value`` to signed 32-bit two's-complement range."""
    value &= LANE_MASK
    if value & SIGN_BIT:
        value -= 1 << LANE_BITS
    return value


def to_unsigned32(value: int) -> int:
    """Interpret a signed 32-bit value as unsigned."""
    return value & LANE_MASK
