"""Width- and dtype-parametric vector and predicate values.

:class:`VecValue` models one SIMD register of any supported width and lane
element type: ``n`` lanes of ``dtype.bits``-bit signed integers stored as
Python ints in two's-complement signed form, plus a per-lane poison flag
used for undefined-behaviour propagation (a lane loaded from out-of-bounds
memory is poison; arithmetic on poison lanes yields poison; storing a poison
lane is a UB event the checker can observe).  The valid widths per dtype
derive from the registered targets' register sizes: a 256-bit register holds
8 int32 lanes, 16 int16 lanes or 4 int64 lanes.

:class:`PredValue` models one predicate register (SVE ``svbool_t``): a
per-lane active flag, again with poison flags — a predicate computed by
comparing poison data is itself unreliable, and a store governed by a poison
predicate lane is a UB event.  Predicates are first-class values alongside
vectors: the interpreter and the symbolic executor pass them through scopes,
assignments and intrinsic calls exactly like :class:`VecValue`.
"""

from __future__ import annotations

from dataclasses import dataclass
from collections.abc import Callable, Sequence
from typing import ClassVar

from repro.intrinsics import lanemath
from repro.intrinsics.lanemath import whilelt_lanes
from repro.lanetypes import ALL_LANE_TYPES, INT32, LaneType
from repro.targets import ALL_TARGETS

#: Register sizes with a registered target ISA, derived from the registry.
REGISTER_BITS = tuple(sorted({target.register_bits for target in ALL_TARGETS}))

#: Lane counts with a registered target ISA at the default (int32) element
#: type — the historical meaning of "valid width".
VALID_WIDTHS = tuple(sorted({bits // INT32.bits for bits in REGISTER_BITS}))

#: dtype name -> lane counts some registered register size can hold.
_WIDTHS_BY_DTYPE: dict[str, tuple[int, ...]] = {
    dtype.name: tuple(sorted({bits // dtype.bits for bits in REGISTER_BITS}))
    for dtype in ALL_LANE_TYPES
}

#: Union of the per-dtype width sets; predicates validate against this (the
#: dtype a predicate governs travels with the intrinsic that built it).
ALL_VALID_WIDTHS = tuple(sorted({
    width for widths in _WIDTHS_BY_DTYPE.values() for width in widths
}))


def valid_widths(dtype: "LaneType | None" = None) -> tuple[int, ...]:
    """Lane counts valid for one element type (default int32)."""
    return _WIDTHS_BY_DTYPE[(dtype or INT32).name]


@dataclass(frozen=True)
class VecValue:
    """An integer vector: ``width`` signed ``dtype.bits``-bit lanes with
    poison flags."""

    lanes: tuple[int, ...]
    poison: tuple[bool, ...] = ()
    dtype: LaneType = INT32

    #: Subclasses may pin a width so ``splat()``/``zero()`` work bare.
    default_width: ClassVar[int | None] = None

    def __post_init__(self) -> None:
        if not self.poison:
            object.__setattr__(self, "poison", (False,) * len(self.lanes))
        widths = _WIDTHS_BY_DTYPE[self.dtype.name]
        if len(self.lanes) not in widths:
            raise ValueError(
                f"vector width {len(self.lanes)} is not one of {widths} "
                f"for {self.dtype.name} lanes"
            )
        if len(self.poison) != len(self.lanes):
            raise ValueError("poison flags must match the lane count")

    # -- constructors -------------------------------------------------------

    @classmethod
    def _width(cls, width: int | None) -> int:
        resolved = width if width is not None else cls.default_width
        if resolved is None:
            raise ValueError("a vector width is required")
        return resolved

    @classmethod
    def from_lanes(cls, lanes: Sequence[int],
                   poison: Sequence[bool] | None = None,
                   dtype: LaneType = INT32) -> "VecValue":
        wrapped = tuple(dtype.wrap(int(v)) for v in lanes)
        flags = (
            tuple(bool(p) for p in poison)
            if poison is not None
            else (False,) * len(wrapped)
        )
        return cls(wrapped, flags, dtype)

    @classmethod
    def splat(cls, value: int, width: int | None = None,
              dtype: LaneType = INT32) -> "VecValue":
        return cls.from_lanes([value] * cls._width(width), dtype=dtype)

    @classmethod
    def zero(cls, width: int | None = None,
             dtype: LaneType = INT32) -> "VecValue":
        return cls.from_lanes([0] * cls._width(width), dtype=dtype)

    # -- queries ------------------------------------------------------------

    @property
    def width(self) -> int:
        return len(self.lanes)

    @property
    def any_poison(self) -> bool:
        return any(self.poison)

    def _check_compatible(self, other: "VecValue") -> None:
        if other.width != self.width:
            raise ValueError(
                f"width mismatch: {self.width} vs {other.width} lanes"
            )
        if other.dtype is not self.dtype:
            raise ValueError(
                f"dtype mismatch: {self.dtype.name} vs {other.dtype.name} lanes"
            )

    # -- lane-wise combinators ----------------------------------------------

    def map_binary(self, other: "VecValue", fn: Callable[[int, int], int]) -> "VecValue":
        self._check_compatible(other)
        wrap = self.dtype.wrap
        lanes = tuple(wrap(fn(a, b)) for a, b in zip(self.lanes, other.lanes))
        poison = tuple(pa or pb for pa, pb in zip(self.poison, other.poison))
        return VecValue(lanes, poison, self.dtype)

    def map_unary(self, fn: Callable[[int], int]) -> "VecValue":
        wrap = self.dtype.wrap
        lanes = tuple(wrap(fn(a)) for a in self.lanes)
        return VecValue(lanes, self.poison, self.dtype)

    # -- bulk combinators (whole-register numpy kernels) --------------------

    def bulk_binary(self, other: "VecValue", op: str) -> "VecValue":
        """Named lane-wise binary op evaluated one register at a time.

        Unlike :meth:`map_binary` (arbitrary Python lane function), the op is
        named so :mod:`repro.intrinsics.lanemath` can run its numpy kernel.
        """
        self._check_compatible(other)
        lanes, poison = lanemath.binary_lanes(
            op, self.lanes, other.lanes, self.poison, other.poison,
            dtype=self.dtype,
        )
        return VecValue(lanes, poison, self.dtype)

    def bulk_unary(self, op: str) -> "VecValue":
        lanes, poison = lanemath.unary_lanes(op, self.lanes, self.poison,
                                             dtype=self.dtype)
        return VecValue(lanes, poison, self.dtype)

    def bulk_shift(self, op: str, count: int) -> "VecValue":
        lanes, poison = lanemath.shift_lanes(op, self.lanes, count,
                                             self.poison, dtype=self.dtype)
        return VecValue(lanes, poison, self.dtype)

    def __str__(self) -> str:  # pragma: no cover - debugging aid
        return "<" + ", ".join(str(v) for v in self.lanes) + ">"


@dataclass(frozen=True)
class PredValue:
    """A predicate register: per-lane active flags with poison flags."""

    lanes: tuple[bool, ...]
    poison: tuple[bool, ...] = ()

    def __post_init__(self) -> None:
        if not self.poison:
            object.__setattr__(self, "poison", (False,) * len(self.lanes))
        if len(self.lanes) not in ALL_VALID_WIDTHS:
            raise ValueError(
                f"predicate width {len(self.lanes)} is not one of "
                f"{ALL_VALID_WIDTHS}"
            )
        if len(self.poison) != len(self.lanes):
            raise ValueError("poison flags must match the lane count")

    # -- constructors -------------------------------------------------------

    @classmethod
    def from_lanes(cls, lanes: Sequence[bool],
                   poison: Sequence[bool] | None = None) -> "PredValue":
        flags = (
            tuple(bool(p) for p in poison)
            if poison is not None
            else (False,) * len(lanes)
        )
        return cls(tuple(bool(lane) for lane in lanes), flags)

    @classmethod
    def all_true(cls, width: int) -> "PredValue":
        return cls((True,) * width)

    @classmethod
    def all_false(cls, width: int) -> "PredValue":
        return cls((False,) * width)

    @classmethod
    def whilelt(cls, base: int, bound: int, width: int) -> "PredValue":
        """The ``whilelt`` pattern: lane ``k`` active iff ``base + k < bound``."""
        return cls(whilelt_lanes(base, bound, width))

    # -- queries ------------------------------------------------------------

    @property
    def width(self) -> int:
        return len(self.lanes)

    @property
    def any_active(self) -> bool:
        return any(self.lanes)

    @property
    def any_poison(self) -> bool:
        return any(self.poison)

    def __str__(self) -> str:  # pragma: no cover - debugging aid
        return "<" + ", ".join("T" if lane else "." for lane in self.lanes) + ">"
