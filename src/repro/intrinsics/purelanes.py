"""Pure-Python reference semantics for the bulk lane kernels.

:mod:`repro.intrinsics.lanemath` evaluates whole registers at once with
numpy; this module is its deliberately independent oracle: the same bulk
operations, spelled as straight-line per-lane Python over plain ints and
bools.  The property tests drive both implementations with randomized
inputs and require bit-identical results — so this module must NOT import
the numpy kernels (or :mod:`repro.lanetypes`), and it keeps its
own wraparound helpers parameterized by a raw ``bits`` count rather than
sharing the :class:`LaneType` descriptors.

It also serves as the runtime fallback when numpy is unavailable.
"""

from __future__ import annotations

from collections.abc import Sequence

#: Element width of the default (historical) lane type.
_LANE_BITS = 32

Lanes = tuple[int, ...]
Flags = tuple[bool, ...]


def _wrap(value: int, bits: int) -> int:
    value &= (1 << bits) - 1
    if value & (1 << (bits - 1)):
        value -= 1 << bits
    return value


def _unsigned(value: int, bits: int) -> int:
    return value & ((1 << bits) - 1)


_BINARY = {
    "add": lambda a, b: a + b,
    "sub": lambda a, b: a - b,
    "mul": lambda a, b: a * b,
    "and": lambda a, b: a & b,
    "or": lambda a, b: a | b,
    "xor": lambda a, b: a ^ b,
    "andnot": lambda a, b: (~a) & b,
    "max": max,
    "min": min,
    "cmpgt": lambda a, b: -1 if a > b else 0,
    "cmpeq": lambda a, b: -1 if a == b else 0,
}

_UNARY = {
    "abs": abs,
}

BINARY_OPS = tuple(sorted(_BINARY))
UNARY_OPS = tuple(sorted(_UNARY))
SHIFT_OPS = ("sll", "sra", "srl")


def or_flags(*flag_sets: Sequence[bool]) -> Flags:
    """Lane-wise OR of poison-flag vectors."""
    return tuple(any(flags) for flags in zip(*flag_sets))


def binary_lanes(op: str, a: Sequence[int], b: Sequence[int],
                 pa: Sequence[bool], pb: Sequence[bool],
                 bits: int = _LANE_BITS) -> tuple[Lanes, Flags]:
    fn = _BINARY[op]
    lanes = tuple(_wrap(fn(x, y), bits) for x, y in zip(a, b))
    return lanes, or_flags(pa, pb)


def unary_lanes(op: str, a: Sequence[int], pa: Sequence[bool],
                bits: int = _LANE_BITS) -> tuple[Lanes, Flags]:
    fn = _UNARY[op]
    return tuple(_wrap(fn(x), bits) for x in a), tuple(bool(p) for p in pa)


def shift_lanes(op: str, a: Sequence[int], count: int, pa: Sequence[bool],
                bits: int = _LANE_BITS) -> tuple[Lanes, Flags]:
    count = int(count)
    poison = tuple(bool(p) for p in pa)
    if op == "srl":
        if count >= bits:
            return (0,) * len(a), poison
        return tuple(_wrap(_unsigned(v, bits) >> count, bits) for v in a), poison
    if op == "sll":
        if count >= bits:
            return (0,) * len(a), poison
        return tuple(_wrap(v << count, bits) for v in a), poison
    if op == "sra":
        count = min(count, bits - 1)
        return tuple(_wrap(v >> count, bits) for v in a), poison
    raise KeyError(op)


def select_lanes(a: Sequence[int], b: Sequence[int], mask: Sequence[int],
                 pa: Sequence[bool], pb: Sequence[bool],
                 pm: Sequence[bool], bits: int = _LANE_BITS) -> tuple[Lanes, Flags]:
    """Per-byte select: mask bytes with the sign bit set pick ``b``'s byte."""
    lanes = []
    poison = []
    for lane_a, lane_b, lane_m, fa, fb, fm in zip(a, b, mask, pa, pb, pm):
        ua = _unsigned(lane_a, bits)
        ub = _unsigned(lane_b, bits)
        um = _unsigned(lane_m, bits)
        out = 0
        selected_poison = fm
        for byte in range(bits // 8):
            shift = byte * 8
            if (um >> shift) & 0x80:
                out |= ((ub >> shift) & 0xFF) << shift
                selected_poison = selected_poison or fb
            else:
                out |= ((ua >> shift) & 0xFF) << shift
                selected_poison = selected_poison or fa
        lanes.append(_wrap(out, bits))
        poison.append(selected_poison)
    return tuple(lanes), tuple(poison)


# -- predicate kernels (lanes are booleans) ---------------------------------


def pred_not_lanes(gov: Sequence[bool], p: Sequence[bool],
                   pg: Sequence[bool], pp: Sequence[bool]) -> tuple[Flags, Flags]:
    lanes = tuple(g and not x for g, x in zip(gov, p))
    return lanes, or_flags(pg, pp)


def pred_logic_lanes(op: str, gov: Sequence[bool],
                     a: Sequence[bool], b: Sequence[bool],
                     pg: Sequence[bool], pa: Sequence[bool],
                     pb: Sequence[bool]) -> tuple[Flags, Flags]:
    if op == "and":
        lanes = tuple(g and x and y for g, x, y in zip(gov, a, b))
    elif op == "or":
        lanes = tuple(g and (x or y) for g, x, y in zip(gov, a, b))
    else:
        raise KeyError(op)
    return lanes, or_flags(pg, pa, pb)


def pred_cmp_lanes(op: str, gov: Sequence[bool],
                   a: Sequence[int], b: Sequence[int],
                   pg: Sequence[bool], pa: Sequence[bool],
                   pb: Sequence[bool],
                   bits: int = _LANE_BITS) -> tuple[Flags, Flags]:
    if op == "cmpgt":
        lanes = tuple(g and x > y for g, x, y in zip(gov, a, b))
    elif op == "cmpeq":
        lanes = tuple(g and x == y for g, x, y in zip(gov, a, b))
    else:
        raise KeyError(op)
    poison = tuple(
        fg or (g and (fa or fb))
        for fg, g, fa, fb in zip(pg, gov, pa, pb)
    )
    return lanes, poison


def psel_lanes(pred: Sequence[bool], a: Sequence[int], b: Sequence[int],
               pg: Sequence[bool], pa: Sequence[bool],
               pb: Sequence[bool], bits: int = _LANE_BITS) -> tuple[Lanes, Flags]:
    lanes = tuple(x if g else y for g, x, y in zip(pred, a, b))
    poison = tuple(
        fg or (fa if g else fb)
        for fg, g, fa, fb in zip(pg, pred, pa, pb)
    )
    return lanes, poison


def pred_merge_lanes(op: str, pred: Sequence[bool],
                     a: Sequence[int], b: Sequence[int],
                     pg: Sequence[bool], pa: Sequence[bool],
                     pb: Sequence[bool],
                     bits: int = _LANE_BITS) -> tuple[Lanes, Flags]:
    fn = _BINARY[op]
    lanes = tuple(
        _wrap(fn(x, y), bits) if g else x
        for g, x, y in zip(pred, a, b)
    )
    poison = tuple(
        fg or ((fa or fb) if g else fa)
        for fg, g, fa, fb in zip(pg, pred, pa, pb)
    )
    return lanes, poison
