"""Per-target intrinsic registries built from one generic operation table.

Each generic operation (``add``, ``select``, ``loadu`` ...) is defined once
— its lane semantics, arity and base cycle cost — and materialized per
:class:`~repro.targets.TargetISA` and lane element type under the target's
concrete spellings (``repro.targets`` owns the spelling; this module owns
the semantics).  The merged :data:`INTRINSIC_REGISTRY` spans every
registered target, so the interpreter and the symbolic executor can execute
candidates of any width and naming scheme without being told which backend
produced them: the width travels with the intrinsic name.  The element type
travels with the name too for dtype-suffixed spellings (``_epi16``,
``_s64`` ...); the x86 ``si``-typed spellings are element-type-free and
resolve through the kernel's declared element type
(:func:`lookup_intrinsic`'s ``dtype`` argument).
"""

from __future__ import annotations

from dataclasses import dataclass
from collections.abc import Callable

from repro.errors import CompileError
from repro.intrinsics import lanemath
from repro.intrinsics.lanemath import whilelt_lanes
from repro.intrinsics.values import PredValue, VecValue
from repro.lanetypes import (
    ALL_LANE_TYPES,
    DEFAULT_LANE_TYPE,
    LaneType,
    get_lane_type,
)
from repro.targets import ALL_TARGETS, TargetISA, get_target


@dataclass(frozen=True)
class IntrinsicSpec:
    """Description of one intrinsic: arity, kind, cost, width and generic op.

    ``kind`` is one of ``pure_binary``/``pure_unary`` (lane function in
    ``fn``), ``pure_vector`` (whole-vector function), ``pure_imm`` /
    ``pure_imm2`` (vector plus immediates), ``load``/``store``/``maskload``/
    ``maskstore`` (handled by the interpreter, which owns the memory model),
    ``set``/``setr``/``set1``/``setzero``/``index`` (vector construction),
    ``extract`` (vector to scalar) and ``cast_low`` (reinterpret of the low
    register half).  Predicate-first targets add ``ptrue``/``whilelt``
    (predicate construction), ``ptest`` (predicate to scalar),
    ``pred_unary``/``pred_binary`` (zeroing predicate logic, governed by the
    first operand), ``pred_cmp`` (vectors to predicate), ``psel``
    (predicate-selected blend), ``pred_merge_binary`` (merging predicated
    arithmetic) and ``pload``/``pstore`` (predicate-governed memory, handled
    by the interpreter).  ``cycle_cost`` is the rough reciprocal throughput
    fed to the registry consumers; ``lanes`` is the register width in lanes
    of the spec's element type; ``op`` is the generic operation name shared
    across targets; ``dtype`` names the lane element type the spec models.
    """

    name: str
    arity: int
    kind: str
    cycle_cost: float
    fn: Callable | None = None
    lanes: int = 8
    op: str = ""
    target: str = "avx2"
    dtype: str = "int32"

    @property
    def lane_type(self) -> LaneType:
        return get_lane_type(self.dtype)


# ---------------------------------------------------------------------------
# width- and dtype-agnostic lane semantics
# ---------------------------------------------------------------------------

# Raw per-lane reference functions.  They compute over unbounded Python ints;
# :func:`build_registry` wraps each one at the registry's lane element type,
# so the ``fn`` stored on a spec always wraps at that spec's width.


def _mul_lane(a: int, b: int) -> int:
    return a * b


def _cmpgt(a: int, b: int) -> int:
    return -1 if a > b else 0


def _cmpeq(a: int, b: int) -> int:
    return -1 if a == b else 0


def _abs_lane(a: int) -> int:
    return abs(a)


def _andnot(a: int, b: int) -> int:
    return (~a) & b


def _wrap_lane_fn(fn: Callable, lane_type: LaneType) -> Callable:
    def wrapped(*lanes: int) -> int:
        return lane_type.wrap(fn(*lanes))

    return wrapped


def _select(a: VecValue, b: VecValue, mask: VecValue) -> VecValue:
    """Per-byte select; TSVC vectorizations only use full-lane masks (0 / -1).

    The byte-accurate behaviour is modelled by selecting each byte of the
    lane according to the sign bit of the corresponding mask byte.  The same
    semantics serve the x86 byte blends, AVX-512's lane-masked blend (whose
    masks are full lanes by construction in this pipeline) and NEON's bit
    select (ditto).
    """
    lanes, poison = lanemath.select_lanes(
        a.lanes, b.lanes, mask.lanes, a.poison, b.poison, mask.poison,
        dtype=a.dtype,
    )
    return VecValue(lanes, poison, a.dtype)


def _srl(a: VecValue, count: int) -> VecValue:
    return a.bulk_shift("srl", count)


def _sll(a: VecValue, count: int) -> VecValue:
    return a.bulk_shift("sll", count)


def _sra(a: VecValue, count: int) -> VecValue:
    return a.bulk_shift("sra", count)


def _permute_halves(a: VecValue, b: VecValue, imm: int) -> VecValue:
    """Select register halves of ``a``/``b`` according to ``imm`` (AVX2 only)."""
    half = a.width // 2
    halves = [a.lanes[:half], a.lanes[half:], b.lanes[:half], b.lanes[half:]]
    half_poison = [a.poison[:half], a.poison[half:],
                   b.poison[:half], b.poison[half:]]
    imm = int(imm)
    low_sel = imm & 0x3
    high_sel = (imm >> 4) & 0x3
    low_zero = bool(imm & 0x08)
    high_zero = bool(imm & 0x80)
    low = (0,) * half if low_zero else halves[low_sel]
    high = (0,) * half if high_zero else halves[high_sel]
    low_p = (False,) * half if low_zero else half_poison[low_sel]
    high_p = (False,) * half if high_zero else half_poison[high_sel]
    return VecValue(tuple(low) + tuple(high), tuple(low_p) + tuple(high_p),
                    a.dtype)


def _shuffle_lanes(a: VecValue, imm: int) -> VecValue:
    """Shuffle 32-bit lanes within each 128-bit block, at any register width.

    The op only exists in the int32 tables (``_mm*_shuffle_epi32``), so the
    4-lane blocks are structural, not a dtype assumption.
    """
    imm = int(imm)
    selectors = [(imm >> (2 * i)) & 0x3 for i in range(4)]
    out_lanes = []
    out_poison = []
    for block in range(a.width // 4):
        base = block * 4
        for sel in selectors:
            out_lanes.append(a.lanes[base + sel])
            out_poison.append(a.poison[base + sel])
    return VecValue(tuple(out_lanes), tuple(out_poison), a.dtype)


def _hadd(a: VecValue, b: VecValue) -> VecValue:
    """Horizontal pairwise add within 128-bit blocks.

    Each block holds ``128 // dtype.bits`` lanes; the block's output is the
    adjacent-pair sums of ``a`` followed by those of ``b``, matching
    ``_mm*_hadd_epi16/epi32`` (and the pairwise-add shape of ``vpaddq``).
    """
    dtype = a.dtype
    block_lanes = 128 // dtype.bits
    out_lanes = []
    out_poison = []
    for block in range(a.width // block_lanes):
        base = block * block_lanes
        for src in (a, b):
            for pair in range(block_lanes // 2):
                i = base + 2 * pair
                out_lanes.append(dtype.wrap(src.lanes[i] + src.lanes[i + 1]))
                out_poison.append(src.poison[i] or src.poison[i + 1])
    return VecValue(tuple(out_lanes), tuple(out_poison), dtype)


def _require_pred(value, name: str) -> PredValue:
    if not isinstance(value, PredValue):
        raise CompileError(f"{name} operand is not a predicate value")
    return value


def _require_vec(value, name: str) -> VecValue:
    if not isinstance(value, VecValue):
        raise CompileError(f"{name} operand is not a vector value")
    return value


def _require_scalar(value, name: str) -> int:
    if isinstance(value, (VecValue, PredValue)):
        raise CompileError(f"{name} operand is not a scalar value")
    return int(value)


def _pred_not(gov: PredValue, p: PredValue) -> PredValue:
    """Zeroing predicate NOT: active where the governing predicate is active
    and ``p`` is not (ACLE ``svnot_b_z`` semantics)."""
    lanes, poison = lanemath.pred_not_lanes(
        gov.lanes, p.lanes, gov.poison, p.poison
    )
    return PredValue(lanes, poison)


def _pred_logic_fn(op: str):
    """Zeroing predicate AND/OR, governed by the first operand."""

    def logic(gov: PredValue, a: PredValue, b: PredValue) -> PredValue:
        lanes, poison = lanemath.pred_logic_lanes(
            op, gov.lanes, a.lanes, b.lanes, gov.poison, a.poison, b.poison
        )
        return PredValue(lanes, poison)

    return logic


def _pred_cmp_fn(op: str):
    """A predicate-producing comparison: active lanes of the governing
    predicate compare; inactive lanes come back false (zeroing)."""

    def compare(gov: PredValue, a: VecValue, b: VecValue) -> PredValue:
        lanes, poison = lanemath.pred_cmp_lanes(
            op, gov.lanes, a.lanes, b.lanes, gov.poison, a.poison, b.poison,
            dtype=a.dtype,
        )
        return PredValue(lanes, poison)

    return compare


def _psel(pred: PredValue, a: VecValue, b: VecValue) -> VecValue:
    """Predicate-selected blend: active lanes from ``a``, inactive from ``b``
    (ACLE ``svsel`` operand order — predicate first, then-value second)."""
    lanes, poison = lanemath.psel_lanes(
        pred.lanes, a.lanes, b.lanes, pred.poison, a.poison, b.poison,
        dtype=a.dtype,
    )
    return VecValue(lanes, poison, a.dtype)


def _pred_merge_fn(op: str):
    """Merging predicated arithmetic (``_m`` form): active lanes compute,
    inactive lanes keep the first data operand."""

    def merge(pred: PredValue, a: VecValue, b: VecValue) -> VecValue:
        lanes, poison = lanemath.pred_merge_lanes(
            op, pred.lanes, a.lanes, b.lanes, pred.poison, a.poison, b.poison,
            dtype=a.dtype,
        )
        return VecValue(lanes, poison, a.dtype)

    return merge


# ---------------------------------------------------------------------------
# the generic operation table
# ---------------------------------------------------------------------------

#: op -> (kind, arity, base cycle cost, function).  ``arity = -1`` means one
#: argument per lane (the set/setr constructors).  Costs are the AVX2 base
#: figures; targets override per op via ``intrinsic_cost_overrides``.
_GENERIC_OPS: dict[str, tuple[str, int, float, Callable | None]] = {
    "add": ("pure_binary", 2, 0.5, lambda a, b: a + b),
    "sub": ("pure_binary", 2, 0.5, lambda a, b: a - b),
    "mul": ("pure_binary", 2, 2.0, _mul_lane),
    "cmpgt": ("pure_binary", 2, 0.5, _cmpgt),
    "cmpeq": ("pure_binary", 2, 0.5, _cmpeq),
    "max": ("pure_binary", 2, 0.5, max),
    "min": ("pure_binary", 2, 0.5, min),
    "and": ("pure_binary", 2, 0.33, lambda a, b: a & b),
    "or": ("pure_binary", 2, 0.33, lambda a, b: a | b),
    "xor": ("pure_binary", 2, 0.33, lambda a, b: a ^ b),
    "andnot": ("pure_binary", 2, 0.33, _andnot),
    "abs": ("pure_unary", 1, 0.5, _abs_lane),
    "select": ("pure_vector", 3, 1.0, _select),
    "hadd": ("pure_vector", 2, 2.0, _hadd),
    "srl": ("pure_imm", 2, 0.5, _srl),
    "sll": ("pure_imm", 2, 0.5, _sll),
    "sra": ("pure_imm", 2, 0.5, _sra),
    "shuffle": ("pure_imm", 2, 1.0, _shuffle_lanes),
    "permute_halves": ("pure_imm2", 3, 3.0, _permute_halves),
    "loadu": ("load", 1, 3.0, None),
    "storeu": ("store", 2, 3.0, None),
    "maskload": ("maskload", 2, 4.0, None),
    "maskstore": ("maskstore", 3, 4.0, None),
    "set1": ("set1", 1, 1.0, None),
    "setzero": ("setzero", 0, 0.33, None),
    "setr": ("setr", -1, 1.0, None),
    "set": ("set", -1, 1.0, None),
    "extract": ("extract", 2, 2.0, None),
    # Reduction tails historically extract through the low register half;
    # the cast is a free reinterpret, modelled as a width truncation.
    "cast_low": ("cast_low", 1, 0.0, None),
    # SVE's ramp constructor: lanes[k] = base + step * k.
    "index": ("index", 2, 1.0, None),
    # predicate construction, queries and logic (predicate-first targets)
    "ptrue": ("ptrue", 0, 0.5, None),
    "whilelt": ("whilelt", 2, 1.0, None),
    "ptest_any": ("ptest", 1, 1.0, None),
    "pnot": ("pred_unary", 2, 0.5, _pred_not),
    "pand": ("pred_binary", 3, 0.5, _pred_logic_fn("and")),
    "por": ("pred_binary", 3, 0.5, _pred_logic_fn("or")),
    # predicate-producing comparisons, predicate-consuming data ops
    "pcmpgt": ("pred_cmp", 3, 0.5, _pred_cmp_fn("cmpgt")),
    "pcmpeq": ("pred_cmp", 3, 0.5, _pred_cmp_fn("cmpeq")),
    "psel": ("psel", 3, 1.0, _psel),
    "padd": ("pred_merge_binary", 3, 0.5, _pred_merge_fn("add")),
    # predicate-governed memory (the interpreter owns the memory model)
    "pload": ("pload", 2, 3.5, None),
    "pstore": ("pstore", 3, 3.5, None),
}


def build_registry(target: TargetISA,
                   dtype: "LaneType | str | None" = None,
                   ) -> dict[str, IntrinsicSpec]:
    """Materialize the generic operation table for one target and dtype."""
    lane_type = get_lane_type(dtype)
    if not target.supports_dtype(lane_type):
        return {}
    lanes = target.lanes_for(lane_type)
    registry: dict[str, IntrinsicSpec] = {}
    for op, (kind, arity, base_cost, fn) in _GENERIC_OPS.items():
        if not target.supports(op, lane_type):
            continue
        name = target.intrinsic(op, lane_type)
        if kind in ("pure_binary", "pure_unary") and fn is not None:
            fn = _wrap_lane_fn(fn, lane_type)
        cost = target.intrinsic_cost_overrides.get(op, base_cost)
        registry[name] = IntrinsicSpec(
            name=name,
            arity=arity if arity >= 0 else lanes,
            kind=kind,
            cycle_cost=cost,
            fn=fn,
            lanes=lanes,
            op=op,
            target=target.name,
            dtype=lane_type.name,
        )
    return registry


def _build_merged_registry(lane_type: LaneType) -> dict[str, IntrinsicSpec]:
    merged: dict[str, IntrinsicSpec] = {}
    for target in ALL_TARGETS:
        for name, spec in build_registry(target, lane_type).items():
            existing = merged.get(name)
            if existing is not None and existing.op != spec.op:
                raise RuntimeError(
                    f"intrinsic name collision across targets: {name}"
                )
            merged[name] = spec
    return merged


#: (target name, dtype name) -> registry; one entry per supported pairing.
_TARGET_REGISTRIES_BY_DTYPE: dict[tuple[str, str], dict[str, IntrinsicSpec]] = {
    (target.name, lane_type.name): build_registry(target, lane_type)
    for target in ALL_TARGETS
    for lane_type in ALL_LANE_TYPES
    if target.supports_dtype(lane_type)
}

#: Per-target int32 registries — the historical (default-dtype) view.
TARGET_REGISTRIES: dict[str, dict[str, IntrinsicSpec]] = {
    target.name: _TARGET_REGISTRIES_BY_DTYPE[
        (target.name, DEFAULT_LANE_TYPE.name)
    ]
    for target in ALL_TARGETS
}

#: dtype name -> cross-target merged registry.  Shared (element-type-free)
#: x86 spellings appear in several of these with dtype-appropriate specs;
#: dtype-suffixed spellings appear in exactly one.
_MERGED_BY_DTYPE: dict[str, dict[str, IntrinsicSpec]] = {
    lane_type.name: _build_merged_registry(lane_type)
    for lane_type in ALL_LANE_TYPES
}

#: The historical merged view: every intrinsic at the default (int32) dtype.
INTRINSIC_REGISTRY: dict[str, IntrinsicSpec] = _MERGED_BY_DTYPE[
    DEFAULT_LANE_TYPE.name
]


def registry_for(target: "TargetISA | str | None",
                 dtype: "LaneType | str | None" = None,
                 ) -> dict[str, IntrinsicSpec]:
    """The registry restricted to one target's intrinsics at one dtype."""
    key = (get_target(target).name, get_lane_type(dtype).name)
    try:
        return _TARGET_REGISTRIES_BY_DTYPE[key]
    except KeyError:
        raise KeyError(
            f"target {key[0]!r} does not support lane type {key[1]!r}"
        ) from None


def registry_for_dtype(dtype: "LaneType | str | None",
                       ) -> dict[str, IntrinsicSpec]:
    """The cross-target merged registry at one lane element type."""
    return _MERGED_BY_DTYPE[get_lane_type(dtype).name]


def is_intrinsic(name: str) -> bool:
    """Return True if ``name`` is a modelled SIMD intrinsic (any target,
    any lane element type)."""
    return any(name in registry for registry in _MERGED_BY_DTYPE.values())


def lookup_intrinsic(name: str,
                     dtype: "LaneType | str | None" = None,
                     ) -> IntrinsicSpec:
    """Return the spec for ``name``; raises ``KeyError`` for unknown intrinsics.

    ``dtype`` is the kernel's element-type context: it decides how the x86
    ``si``-typed (element-type-free) spellings are modelled.  Spellings that
    carry their own dtype suffix resolve regardless of the context, so a
    lookup never needs the context to be right to find a suffixed name.
    """
    if dtype is not None:
        spec = _MERGED_BY_DTYPE[get_lane_type(dtype).name].get(name)
        if spec is not None:
            return spec
    spec = INTRINSIC_REGISTRY.get(name)
    if spec is not None:
        return spec
    for registry in _MERGED_BY_DTYPE.values():
        spec = registry.get(name)
        if spec is not None:
            return spec
    raise KeyError(name)


def apply_pure_intrinsic(name: str, args: list,
                         dtype: "LaneType | str | None" = None,
                         ) -> "VecValue | PredValue | int":
    """Apply a pure (non-memory) intrinsic to already-evaluated arguments.

    ``args`` holds :class:`VecValue` / :class:`PredValue` operands and Python
    ints for scalar / immediate operands, in call order.  Memory intrinsics
    are handled by the interpreter, which owns the memory model.  ``dtype``
    is the kernel's element-type context for the element-type-free x86
    spellings (see :func:`lookup_intrinsic`).

    Operand widths are validated against the intrinsic's register width (and
    ``setr``/``set`` argument counts against the lane count) up front, so a
    candidate mixing register widths is rejected like a C compiler would
    reject it rather than silently truncated by the lane-wise zips below.
    """
    spec = lookup_intrinsic(name, dtype)
    if spec.kind in ("setr", "set"):
        if len(args) != spec.lanes:
            raise CompileError(
                f"{name} takes {spec.lanes} lane arguments, got {len(args)}"
            )
    else:
        for arg in args:
            if isinstance(arg, (VecValue, PredValue)) and arg.width != spec.lanes:
                raise CompileError(
                    f"{name} operand has {arg.width} lanes, expected {spec.lanes}"
                )
            if isinstance(arg, VecValue) and arg.dtype.name != spec.dtype:
                raise CompileError(
                    f"{name} operand has {arg.dtype.name} lanes, "
                    f"expected {spec.dtype}"
                )
    if spec.kind == "ptrue":
        return PredValue.all_true(spec.lanes)
    if spec.kind == "whilelt":
        return PredValue(whilelt_lanes(_require_scalar(args[0], name),
                                       _require_scalar(args[1], name),
                                       spec.lanes))
    if spec.kind == "ptest":
        # Scalar results drop poison, like ``extract``: the concrete model
        # keeps poison on register lanes only (the symbolic executor is the
        # sound substrate and reports a poison-fed ptest as Inconclusive).
        return 1 if _require_pred(args[0], name).any_active else 0
    if spec.kind == "pred_unary":
        return spec.fn(_require_pred(args[0], name), _require_pred(args[1], name))
    if spec.kind == "pred_binary":
        return spec.fn(_require_pred(args[0], name),
                       _require_pred(args[1], name),
                       _require_pred(args[2], name))
    if spec.kind == "pred_cmp":
        return spec.fn(_require_pred(args[0], name),
                       _require_vec(args[1], name),
                       _require_vec(args[2], name))
    if spec.kind in ("psel", "pred_merge_binary"):
        return spec.fn(_require_pred(args[0], name),
                       _require_vec(args[1], name),
                       _require_vec(args[2], name))
    if spec.kind == "index":
        base = _require_scalar(args[0], name)
        step = _require_scalar(args[1], name)
        return VecValue.from_lanes(
            [base + step * lane for lane in range(spec.lanes)],
            dtype=spec.lane_type,
        )
    if spec.kind == "pure_binary":
        # Bulk numpy kernel keyed by the generic op name; ``spec.fn`` keeps
        # the per-lane reference semantics for callers that want them.
        return _require_vec(args[0], name).bulk_binary(
            _require_vec(args[1], name), spec.op
        )
    if spec.kind == "pure_unary":
        return _require_vec(args[0], name).bulk_unary(spec.op)
    if spec.kind == "pure_vector":
        return spec.fn(*args)
    if spec.kind == "pure_imm":
        return spec.fn(args[0], args[1])
    if spec.kind == "pure_imm2":
        return spec.fn(args[0], args[1], args[2])
    if spec.kind == "set1":
        return VecValue.splat(int(args[0]), spec.lanes, dtype=spec.lane_type)
    if spec.kind == "setzero":
        return VecValue.zero(spec.lanes, dtype=spec.lane_type)
    if spec.kind == "setr":
        return VecValue.from_lanes([int(a) for a in args],
                                   dtype=spec.lane_type)
    if spec.kind == "set":
        return VecValue.from_lanes([int(a) for a in reversed(args)],
                                   dtype=spec.lane_type)
    raise ValueError(f"intrinsic {name} is not pure; the interpreter must handle it")
