"""Backwards-compatible AVX2 spelling of the intrinsic layer.

Historically this module *was* the intrinsic model: eight hardwired lanes
of AVX2 semantics.  The model now lives in width-parametric form in
:mod:`repro.intrinsics.registry` (semantics per generic op, materialized per
:class:`~repro.targets.TargetISA`) and :mod:`repro.intrinsics.values`
(:class:`VecValue`); this module re-exports the AVX2 view so existing
imports — ``LANES``, ``wrap32`` and the registry helpers — keep working
unchanged.
"""

from __future__ import annotations

from repro.intrinsics.lanemath import (
    LANE_BITS,
    LANE_MASK as _LANE_MASK,
    SIGN_BIT as _SIGN_BIT,
    to_unsigned32,
    wrap32,
)
from repro.intrinsics.registry import (
    INTRINSIC_REGISTRY,
    IntrinsicSpec,
    apply_pure_intrinsic,
    is_intrinsic,
    lookup_intrinsic,
    registry_for,
)
from repro.intrinsics.values import VecValue
from repro.targets import AVX2

#: Lane count of the historical (AVX2) target.
LANES = AVX2.lanes

#: The AVX2 slice of the merged registry (name -> spec).
AVX2_REGISTRY = registry_for(AVX2)

__all__ = [
    "AVX2_REGISTRY",
    "INTRINSIC_REGISTRY",
    "IntrinsicSpec",
    "LANES",
    "LANE_BITS",
    "VecValue",
    "apply_pure_intrinsic",
    "is_intrinsic",
    "lookup_intrinsic",
    "to_unsigned32",
    "wrap32",
    "_LANE_MASK",
    "_SIGN_BIT",
]
