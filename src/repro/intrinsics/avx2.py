"""Lane-level semantics for the AVX2 integer intrinsics used by TSVC code.

The model covers every intrinsic that appears either in the paper's examples
(`_mm256_loadu_si256`, `_mm256_storeu_si256`, `_mm256_set1_epi32`,
`_mm256_setr_epi32`, `_mm256_add_epi32`, `_mm256_mullo_epi32`,
`_mm256_cmpgt_epi32`, `_mm256_blendv_epi8`, `_mm256_setzero_si256`) or in the
vectorizations our rule-based vectorizer emits (min/max/abs/sub/and/or/xor,
shifts, horizontal reduction helpers, masked loads and element extraction).

Values of type ``__m256i`` are represented by :class:`M256Value`: eight 32-bit
lanes stored as Python ints in two's-complement signed form, plus a per-lane
poison flag used for undefined-behaviour propagation (a lane loaded from
out-of-bounds memory is poison; arithmetic on poison lanes yields poison;
storing a poison lane is a UB event the checker can observe).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Sequence

LANES = 8
LANE_BITS = 32
_LANE_MASK = (1 << LANE_BITS) - 1
_SIGN_BIT = 1 << (LANE_BITS - 1)


def wrap32(value: int) -> int:
    """Reduce ``value`` to signed 32-bit two's-complement range."""
    value &= _LANE_MASK
    if value & _SIGN_BIT:
        value -= 1 << LANE_BITS
    return value


def to_unsigned32(value: int) -> int:
    """Interpret a signed 32-bit value as unsigned."""
    return value & _LANE_MASK


@dataclass(frozen=True)
class M256Value:
    """A 256-bit integer vector: eight signed 32-bit lanes with poison flags."""

    lanes: tuple[int, ...]
    poison: tuple[bool, ...] = field(default=(False,) * LANES)

    def __post_init__(self) -> None:
        if len(self.lanes) != LANES or len(self.poison) != LANES:
            raise ValueError("__m256i requires exactly 8 lanes")

    @staticmethod
    def from_lanes(lanes: Sequence[int], poison: Sequence[bool] | None = None) -> "M256Value":
        wrapped = tuple(wrap32(int(v)) for v in lanes)
        flags = tuple(bool(p) for p in poison) if poison is not None else (False,) * LANES
        return M256Value(wrapped, flags)

    @staticmethod
    def splat(value: int) -> "M256Value":
        return M256Value.from_lanes([value] * LANES)

    @staticmethod
    def zero() -> "M256Value":
        return M256Value.from_lanes([0] * LANES)

    @property
    def any_poison(self) -> bool:
        return any(self.poison)

    def map_binary(self, other: "M256Value", fn: Callable[[int, int], int]) -> "M256Value":
        lanes = tuple(wrap32(fn(a, b)) for a, b in zip(self.lanes, other.lanes))
        poison = tuple(pa or pb for pa, pb in zip(self.poison, other.poison))
        return M256Value(lanes, poison)

    def map_unary(self, fn: Callable[[int], int]) -> "M256Value":
        lanes = tuple(wrap32(fn(a)) for a in self.lanes)
        return M256Value(lanes, self.poison)

    def __str__(self) -> str:  # pragma: no cover - debugging aid
        return "<" + ", ".join(str(v) for v in self.lanes) + ">"


@dataclass(frozen=True)
class IntrinsicSpec:
    """Description of one intrinsic: arity, whether it touches memory, and cost.

    ``kind`` is one of ``pure`` (lanes in, lanes out), ``load``, ``store``,
    ``set`` (builds a vector from scalar arguments) or ``extract`` (vector to
    scalar).  ``cycle_cost`` feeds the performance model (rough reciprocal
    throughput on Haswell-class AVX2 hardware).
    """

    name: str
    arity: int
    kind: str
    cycle_cost: float
    fn: Callable | None = None


def _mullo(a: int, b: int) -> int:
    return wrap32(a * b)


def _cmpgt(a: int, b: int) -> int:
    return -1 if a > b else 0


def _cmpeq(a: int, b: int) -> int:
    return -1 if a == b else 0


def _blendv_epi8(a: M256Value, b: M256Value, mask: M256Value) -> M256Value:
    """Per-byte blend; TSVC vectorizations only use full-lane masks (0 / -1).

    The byte-accurate behaviour is modelled by selecting each byte of the lane
    according to the sign bit of the corresponding mask byte.
    """
    lanes = []
    poison = []
    for lane_a, lane_b, lane_m, pa, pb, pm in zip(
        a.lanes, b.lanes, mask.lanes, a.poison, b.poison, mask.poison
    ):
        ua, ub, um = to_unsigned32(lane_a), to_unsigned32(lane_b), to_unsigned32(lane_m)
        out = 0
        selected_poison = pm
        for byte in range(4):
            shift = byte * 8
            mask_byte = (um >> shift) & 0xFF
            if mask_byte & 0x80:
                out |= ((ub >> shift) & 0xFF) << shift
                selected_poison = selected_poison or pb
            else:
                out |= ((ua >> shift) & 0xFF) << shift
                selected_poison = selected_poison or pa
        lanes.append(wrap32(out))
        poison.append(selected_poison)
    return M256Value(tuple(lanes), tuple(poison))


def _srli(a: M256Value, count: int) -> M256Value:
    count = int(count)
    if count >= LANE_BITS:
        return M256Value.from_lanes([0] * LANES, a.poison)
    return M256Value(
        tuple(wrap32(to_unsigned32(v) >> count) for v in a.lanes), a.poison
    )


def _slli(a: M256Value, count: int) -> M256Value:
    count = int(count)
    if count >= LANE_BITS:
        return M256Value.from_lanes([0] * LANES, a.poison)
    return M256Value(tuple(wrap32(v << count) for v in a.lanes), a.poison)


def _srai(a: M256Value, count: int) -> M256Value:
    count = int(count)
    if count >= LANE_BITS:
        count = LANE_BITS - 1
    return M256Value(tuple(wrap32(v >> count) for v in a.lanes), a.poison)


def _permute2x128(a: M256Value, b: M256Value, imm: int) -> M256Value:
    """Select 128-bit halves of ``a``/``b`` according to ``imm``."""
    halves = [a.lanes[0:4], a.lanes[4:8], b.lanes[0:4], b.lanes[4:8]]
    half_poison = [a.poison[0:4], a.poison[4:8], b.poison[0:4], b.poison[4:8]]
    imm = int(imm)
    low_sel = imm & 0x3
    high_sel = (imm >> 4) & 0x3
    low_zero = bool(imm & 0x08)
    high_zero = bool(imm & 0x80)
    low = (0, 0, 0, 0) if low_zero else halves[low_sel]
    high = (0, 0, 0, 0) if high_zero else halves[high_sel]
    low_p = (False,) * 4 if low_zero else half_poison[low_sel]
    high_p = (False,) * 4 if high_zero else half_poison[high_sel]
    return M256Value(tuple(low) + tuple(high), tuple(low_p) + tuple(high_p))


def _shuffle_epi32(a: M256Value, imm: int) -> M256Value:
    """Shuffle 32-bit lanes within each 128-bit half."""
    imm = int(imm)
    selectors = [(imm >> (2 * i)) & 0x3 for i in range(4)]
    lanes = list(a.lanes)
    poison = list(a.poison)
    out_lanes = []
    out_poison = []
    for half in range(2):
        base = half * 4
        for sel in selectors:
            out_lanes.append(lanes[base + sel])
            out_poison.append(poison[base + sel])
    return M256Value(tuple(out_lanes), tuple(out_poison))


def _hadd_epi32(a: M256Value, b: M256Value) -> M256Value:
    """Horizontal pairwise add within 128-bit halves (matches _mm256_hadd_epi32)."""
    def half(src_a, src_b, pa, pb):
        lanes = [
            wrap32(src_a[0] + src_a[1]),
            wrap32(src_a[2] + src_a[3]),
            wrap32(src_b[0] + src_b[1]),
            wrap32(src_b[2] + src_b[3]),
        ]
        poison = [
            pa[0] or pa[1],
            pa[2] or pa[3],
            pb[0] or pb[1],
            pb[2] or pb[3],
        ]
        return lanes, poison

    low_lanes, low_poison = half(a.lanes[0:4], b.lanes[0:4], a.poison[0:4], b.poison[0:4])
    high_lanes, high_poison = half(a.lanes[4:8], b.lanes[4:8], a.poison[4:8], b.poison[4:8])
    return M256Value(tuple(low_lanes + high_lanes), tuple(low_poison + high_poison))


def _abs_lane(a: int) -> int:
    return wrap32(abs(a))


def _andnot(a: int, b: int) -> int:
    return wrap32((~a) & b)


#: Pure per-lane binary intrinsics: name -> (lane function, cycle cost).
_PURE_BINARY: dict[str, tuple[Callable[[int, int], int], float]] = {
    "_mm256_add_epi32": (lambda a, b: a + b, 0.5),
    "_mm256_sub_epi32": (lambda a, b: a - b, 0.5),
    "_mm256_mullo_epi32": (_mullo, 2.0),
    "_mm256_cmpgt_epi32": (_cmpgt, 0.5),
    "_mm256_cmpeq_epi32": (_cmpeq, 0.5),
    "_mm256_max_epi32": (max, 0.5),
    "_mm256_min_epi32": (min, 0.5),
    "_mm256_and_si256": (lambda a, b: a & b, 0.33),
    "_mm256_or_si256": (lambda a, b: a | b, 0.33),
    "_mm256_xor_si256": (lambda a, b: a ^ b, 0.33),
    "_mm256_andnot_si256": (_andnot, 0.33),
}

#: Pure per-lane unary intrinsics.
_PURE_UNARY: dict[str, tuple[Callable[[int], int], float]] = {
    "_mm256_abs_epi32": (_abs_lane, 0.5),
}


def _build_registry() -> dict[str, IntrinsicSpec]:
    registry: dict[str, IntrinsicSpec] = {}

    def add(name: str, arity: int, kind: str, cost: float, fn: Callable | None = None) -> None:
        registry[name] = IntrinsicSpec(name=name, arity=arity, kind=kind, cycle_cost=cost, fn=fn)

    for name, (fn, cost) in _PURE_BINARY.items():
        add(name, 2, "pure_binary", cost, fn)
    for name, (fn, cost) in _PURE_UNARY.items():
        add(name, 1, "pure_unary", cost, fn)

    add("_mm256_blendv_epi8", 3, "pure_vector", 1.0, _blendv_epi8)
    add("_mm256_srli_epi32", 2, "pure_imm", 0.5, _srli)
    add("_mm256_slli_epi32", 2, "pure_imm", 0.5, _slli)
    add("_mm256_srai_epi32", 2, "pure_imm", 0.5, _srai)
    add("_mm256_permute2x128_si256", 3, "pure_imm2", 3.0, _permute2x128)
    add("_mm256_shuffle_epi32", 2, "pure_imm", 1.0, _shuffle_epi32)
    add("_mm256_hadd_epi32", 2, "pure_vector", 2.0, _hadd_epi32)

    add("_mm256_loadu_si256", 1, "load", 3.0)
    add("_mm256_storeu_si256", 2, "store", 3.0)
    add("_mm256_maskload_epi32", 2, "maskload", 4.0)
    add("_mm256_maskstore_epi32", 3, "maskstore", 4.0)

    add("_mm256_set1_epi32", 1, "set1", 1.0)
    add("_mm256_setzero_si256", 0, "setzero", 0.33)
    add("_mm256_setr_epi32", 8, "setr", 1.0)
    add("_mm256_set_epi32", 8, "set", 1.0)

    add("_mm256_extract_epi32", 2, "extract", 2.0)
    add("_mm256_castsi256_si128", 1, "cast128", 0.0)
    add("_mm_extract_epi32", 2, "extract128", 2.0)
    return registry


INTRINSIC_REGISTRY: dict[str, IntrinsicSpec] = _build_registry()


def is_intrinsic(name: str) -> bool:
    """Return True if ``name`` is a modelled SIMD intrinsic."""
    return name in INTRINSIC_REGISTRY


def lookup_intrinsic(name: str) -> IntrinsicSpec:
    """Return the spec for ``name``; raises ``KeyError`` for unknown intrinsics."""
    return INTRINSIC_REGISTRY[name]


def apply_pure_intrinsic(name: str, args: list) -> M256Value:
    """Apply a pure (non-memory) intrinsic to already-evaluated arguments.

    ``args`` holds :class:`M256Value` operands and Python ints for scalar /
    immediate operands, in call order.  Memory intrinsics are handled by the
    interpreter, which owns the memory model.
    """
    spec = lookup_intrinsic(name)
    if spec.kind == "pure_binary":
        return args[0].map_binary(args[1], spec.fn)
    if spec.kind == "pure_unary":
        return args[0].map_unary(spec.fn)
    if spec.kind == "pure_vector":
        return spec.fn(*args)
    if spec.kind == "pure_imm":
        return spec.fn(args[0], args[1])
    if spec.kind == "pure_imm2":
        return spec.fn(args[0], args[1], args[2])
    if spec.kind == "set1":
        return M256Value.splat(int(args[0]))
    if spec.kind == "setzero":
        return M256Value.zero()
    if spec.kind == "setr":
        return M256Value.from_lanes([int(a) for a in args])
    if spec.kind == "set":
        return M256Value.from_lanes([int(a) for a in reversed(args)])
    raise ValueError(f"intrinsic {name} is not pure; the interpreter must handle it")
