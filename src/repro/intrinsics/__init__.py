"""Semantic models of the SIMD intrinsics used by TSVC vectorizations.

Each intrinsic is modelled at lane level over Python integers with 32-bit
wraparound semantics, so the interpreter and the symbolic encoder share one
source of truth for what every target's vector-multiply and friends mean.
The model is width-parametric: one generic operation table is materialized
per registered target ISA under that target's own spellings, and the merged
registry lets execution layers handle candidates of any width and naming
scheme — the lane count travels with the intrinsic name.
"""

from repro.intrinsics.lanemath import LANE_BITS, to_unsigned32, wrap32
from repro.intrinsics.registry import (
    INTRINSIC_REGISTRY,
    TARGET_REGISTRIES,
    IntrinsicSpec,
    apply_pure_intrinsic,
    build_registry,
    is_intrinsic,
    lookup_intrinsic,
    registry_for,
)
from repro.intrinsics.values import M256Value, PredValue, VecValue

__all__ = [
    "INTRINSIC_REGISTRY",
    "TARGET_REGISTRIES",
    "IntrinsicSpec",
    "LANE_BITS",
    "M256Value",
    "PredValue",
    "VecValue",
    "apply_pure_intrinsic",
    "build_registry",
    "is_intrinsic",
    "lookup_intrinsic",
    "registry_for",
    "to_unsigned32",
    "wrap32",
]
