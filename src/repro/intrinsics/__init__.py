"""Semantic models of the AVX2 intrinsics used by TSVC vectorizations.

Each intrinsic is modelled at lane level over Python integers with 32-bit
wraparound semantics, so the interpreter and the symbolic encoder share one
source of truth for what ``_mm256_mullo_epi32`` and friends mean.
"""

from repro.intrinsics.avx2 import (
    INTRINSIC_REGISTRY,
    IntrinsicSpec,
    M256Value,
    is_intrinsic,
    lookup_intrinsic,
)

__all__ = [
    "INTRINSIC_REGISTRY",
    "IntrinsicSpec",
    "M256Value",
    "is_intrinsic",
    "lookup_intrinsic",
]
