"""Semantic models of the SIMD intrinsics used by TSVC vectorizations.

Each intrinsic is modelled at lane level over Python integers with
two's-complement wraparound semantics at the lane element type's width, so
the interpreter and the symbolic encoder share one source of truth for what
every target's vector-multiply and friends mean.  The model is width- and
dtype-parametric: one generic operation table is materialized per registered
target ISA and element type under that target's own spellings, and the
merged registry lets execution layers handle candidates of any width and
naming scheme — the lane count and element type travel with the intrinsic
name (or, for the dtype-free x86 ``si``-typed spellings, with the kernel's
declared element type).
"""

from repro.intrinsics.lanemath import LANE_BITS, to_unsigned32, wrap32
from repro.lanetypes import (
    ALL_LANE_TYPES,
    DEFAULT_LANE_TYPE,
    INT16,
    INT32,
    INT64,
    LaneType,
    get_lane_type,
)
from repro.intrinsics.registry import (
    INTRINSIC_REGISTRY,
    TARGET_REGISTRIES,
    IntrinsicSpec,
    apply_pure_intrinsic,
    build_registry,
    is_intrinsic,
    lookup_intrinsic,
    registry_for,
    registry_for_dtype,
)
from repro.intrinsics.values import PredValue, VecValue

__all__ = [
    "ALL_LANE_TYPES",
    "DEFAULT_LANE_TYPE",
    "INT16",
    "INT32",
    "INT64",
    "INTRINSIC_REGISTRY",
    "TARGET_REGISTRIES",
    "IntrinsicSpec",
    "LANE_BITS",
    "LaneType",
    "PredValue",
    "VecValue",
    "apply_pure_intrinsic",
    "build_registry",
    "get_lane_type",
    "is_intrinsic",
    "lookup_intrinsic",
    "registry_for",
    "registry_for_dtype",
    "to_unsigned32",
    "wrap32",
]
