"""Control-flow normalization used before vectorization planning.

The only transformation performed here is rewriting the TSVC "goto diamond"
pattern into structured ``if``/``else`` so the if-conversion strategy can
handle kernels such as s278 and s443 (the paper notes these need select
instructions and are where GPT-4 gains the most over compilers):

.. code-block:: c

    if (cond) goto L20;        if (cond) { B } else { A }
    A ...                 -->  C ...
    goto L30;
    L20:
    B ...
    L30:
    C ...

The rewrite is purely syntactic and only fires when the pattern matches
exactly (single forward gotos, labels used once); anything else is left
untouched and the planner will reject the kernel.
"""

from __future__ import annotations

import copy

from repro.cfront import ast_nodes as ast


def normalize_body(body: ast.Stmt) -> ast.Stmt:
    """Return a copy of ``body`` with recognizable goto diamonds structured."""
    body = copy.deepcopy(body)
    return _normalize_stmt(body)


def _normalize_stmt(stmt: ast.Stmt) -> ast.Stmt:
    if isinstance(stmt, ast.Block):
        stmt.body = _normalize_sequence(stmt.body)
        return stmt
    if isinstance(stmt, ast.If):
        stmt.then = _normalize_stmt(stmt.then)
        if stmt.otherwise is not None:
            stmt.otherwise = _normalize_stmt(stmt.otherwise)
        return stmt
    if isinstance(stmt, (ast.ForLoop, ast.WhileLoop, ast.DoWhileLoop)):
        stmt.body = _normalize_stmt(stmt.body)
        return stmt
    if isinstance(stmt, ast.Label):
        stmt.stmt = _normalize_stmt(stmt.stmt)
        return stmt
    return stmt


def _normalize_sequence(stmts: list[ast.Stmt]) -> list[ast.Stmt]:
    stmts = [_normalize_stmt(s) for s in stmts]
    changed = True
    while changed:
        stmts, changed = _rewrite_one_diamond(stmts)
    return stmts


def _rewrite_one_diamond(stmts: list[ast.Stmt]) -> tuple[list[ast.Stmt], bool]:
    for start, stmt in enumerate(stmts):
        if not (isinstance(stmt, ast.If) and stmt.otherwise is None):
            continue
        then = stmt.then
        if isinstance(then, ast.Block) and len(then.body) == 1:
            then = then.body[0]
        if not isinstance(then, ast.Goto):
            continue
        then_label = then.label
        # Find ``goto join`` followed by ``then_label:`` and later ``join:``.
        goto_join_pos = None
        then_label_pos = None
        for pos in range(start + 1, len(stmts)):
            candidate = stmts[pos]
            if isinstance(candidate, ast.Goto) and goto_join_pos is None and then_label_pos is None:
                goto_join_pos = pos
            elif isinstance(candidate, ast.Label) and candidate.name == then_label:
                then_label_pos = pos
                break
        if goto_join_pos is None or then_label_pos is None or then_label_pos != goto_join_pos + 1:
            continue
        join_label = stmts[goto_join_pos].label
        join_pos = None
        for pos in range(then_label_pos, len(stmts)):
            candidate = stmts[pos]
            if isinstance(candidate, ast.Label) and candidate.name == join_label:
                join_pos = pos
                break
        if join_pos is None:
            continue
        else_body = stmts[start + 1 : goto_join_pos]
        then_body = [stmts[then_label_pos].stmt] + stmts[then_label_pos + 1 : join_pos]
        then_body = [s for s in then_body if not _is_empty(s)]
        else_body = [s for s in else_body if not _is_empty(s)]
        if _contains_goto(then_body) or _contains_goto(else_body):
            continue
        new_if = ast.If(
            cond=stmt.cond,
            then=ast.Block(body=then_body),
            otherwise=ast.Block(body=else_body) if else_body else None,
            location=stmt.location,
        )
        join_stmt = stmts[join_pos].stmt
        tail = [] if _is_empty(join_stmt) else [join_stmt]
        rewritten = stmts[:start] + [new_if] + tail + stmts[join_pos + 1 :]
        return rewritten, True
    return stmts, False


def _contains_goto(stmts: list[ast.Stmt]) -> bool:
    return any(isinstance(node, (ast.Goto, ast.Label))
               for stmt in stmts for node in ast.walk(stmt))


def _is_empty(stmt: ast.Stmt) -> bool:
    return isinstance(stmt, ast.Block) and not stmt.body
