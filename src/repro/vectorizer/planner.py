"""Vectorization planning: legality analysis and strategy selection.

The planner decides whether (and how) the rule-based vectorizer can rewrite
the innermost loop of a kernel with the intrinsics of a given target ISA
(AVX2, the paper's setup, is the default).  Its rejection reasons mirror
the failure categories the paper reports for GPT-4 (Section 4.1.3):
loop-carried dependences, packing/one-time dependences, prefix sums,
non-unit strides, gathers/scatters, wrap-around scalars, and unsupported
operations (integer division has no SIMD counterpart on any modelled
target).

Legality is target-dependent in three ways: the dependence-distance window
scales with the target's lane count (a flow dependence of distance 5 blocks
8-lane AVX2 but not a 4-lane target), each operation is checked against the
target's per-op availability table, and masked-tail plans additionally need
masked memory operations, which NEON-class targets cannot express (their
masking is select-based and purely in-register).
"""

from __future__ import annotations

import enum
import warnings
from dataclasses import dataclass, field

from repro.analysis.accesses import affine_index
from repro.analysis.features import KernelFeatures, analyze_kernel
from repro.cfront import ast_nodes as ast
from repro.errors import CompileError
from repro.lanetypes import DEFAULT_LANE_TYPE, INT32, LaneType
from repro.targets import DEFAULT_TARGET, TargetISA, get_target
from repro.vectorizer.normalize import normalize_body

#: Lane count of the default (AVX2) target, kept for backwards compatibility;
#: target-aware code should use ``plan.target.lanes`` instead.
VECTOR_WIDTH = DEFAULT_TARGET.lanes

#: The three epilogue strategies: the default scalar remainder loop, one
#: masked tail iteration (``"masked"``), or a ``whilelt``-governed predicated
#: main loop that subsumes every tail (``"predicated"``).
EPILOGUE_STRATEGIES = ("scalar", "masked", "predicated")


def resolve_epilogue(epilogue: str | None = None,
                     masked_epilogue: bool | None = None,
                     predicated_loop: bool | None = None,
                     _stacklevel: int = 3) -> str:
    """Resolve the requested epilogue strategy, honouring the deprecated flags.

    The old mutually-exclusive booleans (``masked_epilogue=True`` /
    ``predicated_loop=True``) warn and forward to the ``epilogue=`` spelling;
    conflicting requests raise ``ValueError`` exactly as they always did.
    """
    if masked_epilogue is not None or predicated_loop is not None:
        warnings.warn(
            "masked_epilogue=/predicated_loop= are deprecated; use "
            "epilogue='masked' or epilogue='predicated' instead",
            DeprecationWarning, stacklevel=_stacklevel)
    if masked_epilogue and predicated_loop:
        raise ValueError("masked_epilogue and predicated_loop are mutually "
                         "exclusive epilogue strategies")
    legacy = ("masked" if masked_epilogue
              else "predicated" if predicated_loop else None)
    if epilogue is None:
        epilogue = legacy if legacy is not None else "scalar"
    elif legacy is not None and legacy != epilogue:
        raise ValueError(f"conflicting epilogue requests: epilogue="
                         f"{epilogue!r} vs the deprecated {legacy} flag")
    if epilogue not in EPILOGUE_STRATEGIES:
        raise ValueError(f"unknown epilogue strategy {epilogue!r}; expected "
                         f"one of {EPILOGUE_STRATEGIES}")
    return epilogue


class RejectionReason(enum.Enum):
    """Why the rule-based vectorizer declined to vectorize a kernel."""

    NO_LOOP = "no for loop found"
    NON_CANONICAL_LOOP = "loop is not in canonical form"
    NON_UNIT_STEP = "loop step is not +1"
    LOOP_CARRIED_FLOW = "loop-carried flow dependence with short distance"
    SCALAR_RECURRENCE = "scalar value carried across iterations"
    WRAPAROUND_SCALAR = "wrap-around scalar needs loop peeling"
    PREFIX_SUM = "running (prefix) value stored every iteration"
    PACKING = "conditional induction update (packing pattern)"
    GATHER_SCATTER = "indirect (gather/scatter) addressing"
    NON_AFFINE_SUBSCRIPT = "array subscript is not affine in the loop iterator"
    STRIDED_SUBSCRIPT = "array subscript has a non-unit coefficient"
    INVARIANT_WRITE = "write to a loop-invariant location inside the loop"
    INVARIANT_READ_OF_WRITTEN = "read of a fixed element of an array that the loop writes"
    UNSUPPORTED_OPERATION = "operation has no {isa} integer equivalent"
    MASKED_MEMORY = ("epilogue='masked' needs masked loads/stores, which {isa} "
                     "cannot express (no masked memory operations; select-based "
                     "masking covers in-register blends only — keep "
                     "epilogue='scalar')")
    MASKED_TAIL_SHAPE = ("epilogue='masked' code generation supports only plain "
                         "and if-converted loops (no reductions, inductions or "
                         "inclusive bounds)")
    MASKED_TAIL_ON_PREDICATED = ("epilogue='masked' is subsumed on {isa}: "
                                 "predicate-governed loops retire the remainder "
                                 "without a separate tail iteration — request "
                                 "epilogue='predicated' (formerly "
                                 "predicated_loop=True) instead")
    PREDICATED_LOOP_UNSUPPORTED = ("epilogue='predicated' needs predicate "
                                   "registers governing memory and loop exit "
                                   "(whilelt / ptest / predicated loads and "
                                   "stores), which {isa} cannot express — keep "
                                   "epilogue='scalar' or request "
                                   "epilogue='masked'")
    PREDICATED_LOOP_SHAPE = ("epilogue='predicated' code generation supports "
                             "only plain and if-converted loops (no reductions, "
                             "inductions or inclusive bounds)")
    UNSUPPORTED_CONTROL_FLOW = "control flow too complex for if-conversion"
    EARLY_EXIT = "loop contains an early exit (break/return)"
    NESTED_LOOP_BODY = "inner loop body itself contains a loop"
    UNSUPPORTED_STATEMENT = "statement form not supported by the vectorizer"
    UNSUPPORTED_DTYPE = "kernel element type has no {isa} vector support"
    MIXED_ELEMENT_TYPES = "kernel mixes sized element types; one kernel models one lane element type"


class Strategy(enum.Enum):
    """High-level code-generation strategy."""

    PLAIN = "plain"              # straight-line loads/compute/stores
    BLEND = "blend"              # if-converted with cmp/blendv masks
    REDUCTION = "reduction"      # vector accumulator + horizontal reduction
    INDUCTION = "induction"      # scalar induction variables materialized as vectors


@dataclass
class ReductionInfo:
    """A scalar reduction recognized in the loop body."""

    name: str
    operation: str              # "+", "*", "max", "min"
    initial_scalar: str         # the C name holding the running value


@dataclass
class InductionInfo:
    """A scalar induction variable with a constant per-iteration step."""

    name: str
    step: int


@dataclass
class VectorizationPlan:
    """Everything code generation needs to rewrite the loop."""

    feasible: bool
    strategy: Strategy | None = None
    reason: RejectionReason | None = None
    features: KernelFeatures | None = None
    normalized_body: ast.Stmt | None = None
    reductions: list[ReductionInfo] = field(default_factory=list)
    inductions: list[InductionInfo] = field(default_factory=list)
    has_conditionals: bool = False
    #: local int temporaries declared inside the body (scalar expansion targets)
    local_temporaries: list[str] = field(default_factory=list)
    #: The ISA this plan was made for (lane count, intrinsic naming, op set).
    target: TargetISA = DEFAULT_TARGET
    #: The lane element type the kernel declares (``int16_t``/``int``/
    #: ``int64_t``); lane counts, op availability and intrinsic spellings
    #: all follow it.
    dtype: LaneType = DEFAULT_LANE_TYPE
    #: The epilogue strategy this plan carries: ``"scalar"`` (the default
    #: remainder loop), ``"masked"`` (one masked tail iteration — needs the
    #: target's masked loads/stores) or ``"predicated"`` (a ``whilelt``-
    #: governed predicated loop replacing the vector loop *and* every
    #: epilogue).  Legality is checked at planning time.
    epilogue: str = "scalar"

    @property
    def masked_epilogue(self) -> bool:
        """Deprecated spelling: True when ``epilogue == "masked"``."""
        return self.epilogue == "masked"

    @property
    def predicated_loop(self) -> bool:
        """Deprecated spelling: True when ``epilogue == "predicated"``."""
        return self.epilogue == "predicated"

    @property
    def rejection_text(self) -> str:
        if self.reason is None:
            return ""
        text = self.reason.value.format(isa=self.target.display_name)
        if (self.reason is RejectionReason.UNSUPPORTED_OPERATION
                and self.dtype is not INT32):
            # Name the element type when the gap is dtype-specific (AVX2 has
            # int32 mul but no int64 one, say); the int32 wording is pinned.
            text = text.replace("integer equivalent",
                                f"{self.dtype.name} equivalent")
        return text


def _reject(reason: RejectionReason, features: KernelFeatures | None = None,
            target: TargetISA = DEFAULT_TARGET,
            dtype: LaneType = DEFAULT_LANE_TYPE) -> VectorizationPlan:
    return VectorizationPlan(feasible=False, reason=reason, features=features,
                             target=target, dtype=dtype)


def plan_vectorization(func: ast.FunctionDef,
                       target: TargetISA | str | None = None,
                       *,
                       epilogue: str | None = None,
                       masked_epilogue: bool | None = None,
                       predicated_loop: bool | None = None) -> VectorizationPlan:
    """Analyze ``func`` and return a vectorization plan or a rejection.

    ``target`` selects the ISA whose lane count and operation set legality is
    judged against; the default is the paper's AVX2 setup.  ``epilogue`` is
    one of three strategies: ``"scalar"`` (the default remainder loop),
    ``"masked"`` (one masked tail iteration — targets with masked memory
    operations only), or ``"predicated"`` (a ``whilelt``-governed main loop
    that subsumes both the vector-loop bound adjustment and every tail —
    predicate-register targets only).  Both non-default strategies support
    plain/if-converted loop shapes only.  The boolean ``masked_epilogue`` /
    ``predicated_loop`` flags are deprecated shims that warn and forward.
    """
    from repro.perf.profile import stage

    with stage("plan"):
        return _plan_vectorization(
            func, target,
            epilogue=resolve_epilogue(epilogue, masked_epilogue, predicated_loop),
        )


def _plan_vectorization(func: ast.FunctionDef,
                        target: TargetISA | str | None = None,
                        *, epilogue: str) -> VectorizationPlan:
    isa = get_target(target)
    try:
        dtype = ast.kernel_dtype(func)
    except CompileError:
        return _reject(RejectionReason.MIXED_ELEMENT_TYPES, None, isa)
    if not isa.supports_dtype(dtype):
        return _reject(RejectionReason.UNSUPPORTED_DTYPE, None, isa, dtype)
    features = analyze_kernel(func)
    loop = features.main_loop
    if loop is None:
        return _reject(RejectionReason.NO_LOOP, features, isa, dtype)
    if not loop.is_canonical:
        return _reject(RejectionReason.NON_CANONICAL_LOOP, features, isa, dtype)
    if loop.step != 1 or loop.end_op not in ("<", "<="):
        return _reject(RejectionReason.NON_UNIT_STEP, features, isa, dtype)

    body = normalize_body(loop.body)
    checker = _BodyChecker(loop.iterator, func, isa, dtype)
    plan = checker.check(body, features)
    if plan.feasible and epilogue == "masked":
        return _check_masked_epilogue(plan, loop)
    if plan.feasible and epilogue == "predicated":
        return _check_predicated_loop(plan, loop)
    return plan


def _check_masked_epilogue(plan: VectorizationPlan, loop) -> VectorizationPlan:
    """Validate that the feasible ``plan`` can also carry a masked tail.

    The tail trades the scalar epilogue for masked loads/stores over the
    final partial block, so the target must be able to express masked memory
    at all — on NEON-class targets the rejection names that gap explicitly,
    and on predicate-first targets it points at the strictly stronger
    ``predicated_loop`` strategy instead — and the loop shape must be one
    the tail generator handles (reductions and induction vectors would need
    masked accumulator merges).
    """
    isa = plan.target
    if isa.has_predicated_loops:
        return _reject(RejectionReason.MASKED_TAIL_ON_PREDICATED, plan.features, isa, plan.dtype)
    if not (isa.has_masked_memory
            and isa.supports("maskload", plan.dtype)
            and isa.supports("maskstore", plan.dtype)):
        return _reject(RejectionReason.MASKED_MEMORY, plan.features, isa, plan.dtype)
    if plan.reductions or plan.inductions or loop.end_op != "<":
        return _reject(RejectionReason.MASKED_TAIL_SHAPE, plan.features, isa, plan.dtype)
    plan.epilogue = "masked"
    return plan


def _check_predicated_loop(plan: VectorizationPlan, loop) -> VectorizationPlan:
    """Validate that the feasible ``plan`` can run as one predicated loop.

    A ``whilelt``-governed loop needs predicate registers end to end —
    predicate construction, a ``ptest`` loop exit, and predicate-governed
    loads and stores; targets whose masking is data-vector based (x86, NEON)
    are rejected with a message naming the gap.  The shape restriction
    matches the masked tail's: reductions and induction vectors would need
    predicated accumulator merges the generator does not emit.
    """
    isa = plan.target
    if not isa.has_predicated_loops:
        return _reject(RejectionReason.PREDICATED_LOOP_UNSUPPORTED, plan.features, isa, plan.dtype)
    if plan.reductions or plan.inductions or loop.end_op != "<":
        return _reject(RejectionReason.PREDICATED_LOOP_SHAPE, plan.features, isa, plan.dtype)
    plan.epilogue = "predicated"
    return plan


class _BodyChecker:
    """Walks the (normalized) loop body and validates it statement by statement."""

    def __init__(self, iterator: str, func: ast.FunctionDef,
                 target: TargetISA = DEFAULT_TARGET,
                 dtype: LaneType = DEFAULT_LANE_TYPE):
        self.iterator = iterator
        self.func = func
        self.target = target
        self.dtype = dtype
        self.width = target.lanes_for(dtype)
        self.outer_scalars = self._collect_outer_scalars(func)
        self.local_temporaries: list[str] = []
        self.reductions: dict[str, ReductionInfo] = {}
        self.inductions: dict[str, InductionInfo] = {}
        self.has_conditionals = False
        self.writes: list[tuple[str, int]] = []      # (array, offset)
        self.reads: list[tuple[str, int]] = []       # (array, offset), affine only
        self.invariant_reads: dict[str, bool] = {}   # array -> read at invariant index
        self.rejection: RejectionReason | None = None

    # -- public -----------------------------------------------------------------

    def check(self, body: ast.Stmt, features: KernelFeatures) -> VectorizationPlan:
        self._check_stmt(body, conditional=False)
        if self.rejection is None:
            self._check_dependences()
        if self.rejection is not None:
            return _reject(self.rejection, features, self.target, self.dtype)

        strategy = Strategy.PLAIN
        if self.reductions:
            strategy = Strategy.REDUCTION
        elif self.inductions:
            strategy = Strategy.INDUCTION
        elif self.has_conditionals:
            strategy = Strategy.BLEND
        return VectorizationPlan(
            feasible=True,
            strategy=strategy,
            features=features,
            normalized_body=body,
            reductions=list(self.reductions.values()),
            inductions=list(self.inductions.values()),
            has_conditionals=self.has_conditionals,
            local_temporaries=list(self.local_temporaries),
            target=self.target,
            dtype=self.dtype,
        )

    # -- helpers ------------------------------------------------------------------

    @staticmethod
    def _collect_outer_scalars(func: ast.FunctionDef) -> set[str]:
        """Names of integer scalars declared outside the main loop (including params)."""
        names = {p.name for p in func.params if not p.param_type.is_pointer}
        for stmt in func.body.body:
            if isinstance(stmt, ast.Decl) and not stmt.var_type.is_pointer and stmt.array_size is None:
                names.add(stmt.name)
        return names

    def _fail(self, reason: RejectionReason) -> None:
        if self.rejection is None:
            self.rejection = reason

    def _require_ops(self, *ops: str) -> bool:
        """Check the target can express every generic op; fail otherwise."""
        for op in ops:
            if not self.target.supports(op, self.dtype):
                self._fail(RejectionReason.UNSUPPORTED_OPERATION)
                return False
        return True

    def _require_mask_ops(self) -> bool:
        """If-conversion needs compares and a select — either the data-vector
        flavour (cmp masks + blend) or the predicate-first flavour
        (predicate-producing compares + predicate-selected blend)."""
        if all(self.target.supports(op, self.dtype)
               for op in ("pcmpgt", "pcmpeq", "psel")):
            return True
        return self._require_ops("cmpgt", "cmpeq", "select")

    # -- statement checking ----------------------------------------------------------

    def _check_stmt(self, stmt: ast.Stmt, conditional: bool) -> None:
        if self.rejection is not None:
            return
        if isinstance(stmt, ast.Block):
            for inner in stmt.body:
                self._check_stmt(inner, conditional)
            return
        if isinstance(stmt, ast.Decl):
            if stmt.var_type.is_pointer or stmt.array_size is not None or stmt.var_type.is_vector:
                self._fail(RejectionReason.UNSUPPORTED_STATEMENT)
                return
            self.local_temporaries.append(stmt.name)
            if stmt.init is not None:
                self._check_value_expr(stmt.init)
            return
        if isinstance(stmt, ast.ExprStmt):
            self._check_top_expr(stmt.expr, conditional)
            return
        if isinstance(stmt, ast.If):
            self.has_conditionals = True
            # If-conversion needs compare masks and a select on the target.
            if not self._require_mask_ops():
                return
            self._check_condition(stmt.cond)
            self._check_stmt(stmt.then, conditional=True)
            if stmt.otherwise is not None:
                self._check_stmt(stmt.otherwise, conditional=True)
            return
        if isinstance(stmt, (ast.Break, ast.Return)):
            self._fail(RejectionReason.EARLY_EXIT)
            return
        if isinstance(stmt, (ast.Goto, ast.Label)):
            self._fail(RejectionReason.UNSUPPORTED_CONTROL_FLOW)
            return
        if isinstance(stmt, (ast.ForLoop, ast.WhileLoop, ast.DoWhileLoop)):
            self._fail(RejectionReason.NESTED_LOOP_BODY)
            return
        if isinstance(stmt, ast.Continue):
            self._fail(RejectionReason.UNSUPPORTED_CONTROL_FLOW)
            return
        self._fail(RejectionReason.UNSUPPORTED_STATEMENT)

    def _check_top_expr(self, expr: ast.Expr, conditional: bool) -> None:
        """A statement-level expression: assignment or increment."""
        if isinstance(expr, ast.Assign):
            self._check_assignment(expr, conditional)
            return
        if isinstance(expr, (ast.PostfixOp, ast.UnaryOp)) and expr.op in ("++", "--"):
            target = expr.operand
            if isinstance(target, ast.Identifier):
                self._record_scalar_update(target.name, 1 if expr.op == "++" else -1, conditional)
                return
        self._fail(RejectionReason.UNSUPPORTED_STATEMENT)

    def _check_assignment(self, expr: ast.Assign, conditional: bool) -> None:
        target = expr.target
        if isinstance(target, ast.Identifier):
            self._check_scalar_assignment(target.name, expr, conditional)
            return
        if isinstance(target, ast.ArrayRef):
            self._check_array_write(target)
            self._check_value_expr(expr.value)
            return
        self._fail(RejectionReason.UNSUPPORTED_STATEMENT)

    def _check_scalar_assignment(self, name: str, expr: ast.Assign, conditional: bool) -> None:
        if name in self.local_temporaries:
            # Scalar expansion target; any vectorizable value is fine.
            self._check_value_expr(expr.value)
            if expr.op != "=":
                pass  # compound update of a per-iteration temporary is still per-iteration
            return
        if name not in self.outer_scalars:
            # A scalar that was never declared: treat as unsupported.
            self._fail(RejectionReason.UNSUPPORTED_STATEMENT)
            return
        # A scalar declared outside the loop is being updated inside it.
        if expr.op in ("+=", "-="):
            step = _constant_of(expr.value)
            if step is not None:
                self._record_scalar_update(name, step if expr.op == "+=" else -step, conditional)
                return
            if expr.op == "+=" and not _mentions(expr.value, name):
                self._record_reduction(name, "+", conditional, expr.value)
                return
            self._fail(RejectionReason.SCALAR_RECURRENCE)
            return
        if expr.op == "*=":
            if not _mentions(expr.value, name):
                self._record_reduction(name, "*", conditional, expr.value)
                return
            self._fail(RejectionReason.SCALAR_RECURRENCE)
            return
        if expr.op == "=":
            # ``x = a[i]``-style overwrite under a max/min guard is handled by
            # the caller (_check_stmt sees the If); a bare overwrite of an
            # outer scalar is a wrap-around/recurrence pattern we reject.
            if _mentions(expr.value, name):
                self._record_reduction(name, "+", conditional, expr.value)
                if not _is_simple_accumulation(expr.value, name):
                    self._fail(RejectionReason.SCALAR_RECURRENCE)
                return
            if self._looks_like_minmax_update(name, expr):
                return
            self._fail(RejectionReason.WRAPAROUND_SCALAR)
            return
        self._fail(RejectionReason.SCALAR_RECURRENCE)

    def _looks_like_minmax_update(self, name: str, expr: ast.Assign) -> bool:
        """Recognize the body of ``if (v > x) x = v;`` min/max reductions."""
        # The If wrapper has already set has_conditionals; here we only see
        # the assignment.  We record a max/min reduction optimistically; the
        # code generator re-validates the guard shape and the planner's
        # dependence check still applies.
        if not self.has_conditionals:
            return False
        self.reductions[name] = ReductionInfo(name=name, operation="max", initial_scalar=name)
        return True

    def _record_scalar_update(self, name: str, step: int, conditional: bool) -> None:
        if name == self.iterator:
            return
        if name not in self.outer_scalars and name not in self.local_temporaries:
            self._fail(RejectionReason.UNSUPPORTED_STATEMENT)
            return
        if conditional:
            self._fail(RejectionReason.PACKING)
            return
        existing = self.inductions.get(name)
        if existing is not None:
            self._fail(RejectionReason.SCALAR_RECURRENCE)
            return
        self.inductions[name] = InductionInfo(name=name, step=step)

    def _record_reduction(self, name: str, operation: str, conditional: bool, value: ast.Expr) -> None:
        self._check_value_expr(value)
        existing = self.reductions.get(name)
        if existing is not None and existing.operation != operation:
            self._fail(RejectionReason.SCALAR_RECURRENCE)
            return
        self.reductions[name] = ReductionInfo(name=name, operation=operation, initial_scalar=name)

    # -- expression checking -------------------------------------------------------------

    def _check_array_write(self, target: ast.ArrayRef) -> None:
        array = _array_name(target.base)
        if array is None:
            self._fail(RejectionReason.UNSUPPORTED_STATEMENT)
            return
        index = affine_index(target.index, self.iterator)
        if index.symbolic:
            induction = self._induction_index(target.index)
            if induction is not None:
                self.writes.append((array, 0))
                return
            if _contains_array_ref(target.index):
                self._fail(RejectionReason.GATHER_SCATTER)
            else:
                self._fail(RejectionReason.NON_AFFINE_SUBSCRIPT)
            return
        if not index.is_iterator_affine:
            self._fail(RejectionReason.INVARIANT_WRITE)
            return
        if index.coefficient != 1:
            self._fail(RejectionReason.STRIDED_SUBSCRIPT)
            return
        self.writes.append((array, index.offset))

    def _check_value_expr(self, expr: ast.Expr) -> None:
        if self.rejection is not None:
            return
        if isinstance(expr, ast.IntLiteral):
            return
        if isinstance(expr, ast.Identifier):
            return
        if isinstance(expr, ast.ArrayRef):
            array = _array_name(expr.base)
            if array is None:
                self._fail(RejectionReason.UNSUPPORTED_STATEMENT)
                return
            index = affine_index(expr.index, self.iterator)
            if index.symbolic:
                if self._induction_index(expr.index) is not None:
                    self.reads.append((array, 0))
                    return
                if _contains_array_ref(expr.index):
                    self._fail(RejectionReason.GATHER_SCATTER)
                else:
                    # Loop-invariant symbolic index (e.g. c[k]): fine for reads.
                    self.invariant_reads[array] = True
                return
            if not index.is_iterator_affine:
                self.invariant_reads[array] = True
                return
            if index.coefficient != 1:
                self._fail(RejectionReason.STRIDED_SUBSCRIPT)
                return
            self.reads.append((array, index.offset))
            return
        if isinstance(expr, ast.BinOp):
            if expr.op in ("/", "%", "<<", ">>"):
                if expr.op == "/" and isinstance(expr.right, ast.IntLiteral):
                    self._fail(RejectionReason.UNSUPPORTED_OPERATION)
                    return
                self._fail(RejectionReason.UNSUPPORTED_OPERATION)
                return
            if expr.op in ("&&", "||", "<", ">", "<=", ">=", "==", "!="):
                self._check_condition(expr)
                return
            if expr.op == "*" and not self._require_ops("mul"):
                return
            self._check_value_expr(expr.left)
            self._check_value_expr(expr.right)
            return
        if isinstance(expr, ast.UnaryOp):
            if expr.op in ("-", "+", "~"):
                self._check_value_expr(expr.operand)
                return
            self._fail(RejectionReason.UNSUPPORTED_OPERATION)
            return
        if isinstance(expr, ast.TernaryOp):
            self.has_conditionals = True
            if not self._require_mask_ops():
                return
            self._check_condition(expr.cond)
            self._check_value_expr(expr.then)
            self._check_value_expr(expr.otherwise)
            return
        if isinstance(expr, ast.Call):
            if expr.func in ("abs", "max", "min"):
                if not self._require_ops(expr.func):
                    return
                for arg in expr.args:
                    self._check_value_expr(arg)
                return
            self._fail(RejectionReason.UNSUPPORTED_OPERATION)
            return
        if isinstance(expr, ast.Assign):
            self._fail(RejectionReason.UNSUPPORTED_STATEMENT)
            return
        self._fail(RejectionReason.UNSUPPORTED_STATEMENT)

    def _check_condition(self, expr: ast.Expr) -> None:
        if isinstance(expr, ast.BinOp) and expr.op in ("<", ">", "<=", ">=", "==", "!="):
            self._check_value_expr(expr.left)
            self._check_value_expr(expr.right)
            return
        if isinstance(expr, ast.BinOp) and expr.op in ("&&", "||"):
            self._fail(RejectionReason.UNSUPPORTED_CONTROL_FLOW)
            return
        # A bare value used as a condition (``if (b[i])``).
        self._check_value_expr(expr)

    def _induction_index(self, expr: ast.Expr) -> str | None:
        """Return the induction variable name if ``expr`` is ``var`` or ``var +/- const``."""
        if isinstance(expr, ast.Identifier) and expr.name in self.inductions:
            return expr.name
        if (
            isinstance(expr, ast.BinOp)
            and expr.op in ("+", "-")
            and isinstance(expr.left, ast.Identifier)
            and expr.left.name in self.inductions
            and isinstance(expr.right, ast.IntLiteral)
        ):
            return expr.left.name
        return None

    # -- dependence legality -----------------------------------------------------------------

    def _check_dependences(self) -> None:
        """Reject loop-carried flow dependences with distance below the lane count.

        The window scales with the target: a distance-5 dependence blocks
        8-lane AVX2 and 16-lane AVX-512 but is legal for 4-lane SSE4.
        """
        written_arrays = {array for array, _ in self.writes}
        for array, read_offset in self.reads:
            if array not in written_arrays:
                continue
            for write_array, write_offset in self.writes:
                if write_array != array:
                    continue
                distance = write_offset - read_offset
                if 1 <= distance < self.width:
                    self._fail(RejectionReason.LOOP_CARRIED_FLOW)
                    return
        # Overlapping writes across iterations (write-after-write with a short
        # distance, e.g. s244's stores to a[i] and a[i+1]) change which store
        # lands last once a lane-count block of iterations is issued as block
        # stores.
        for index, (array_a, offset_a) in enumerate(self.writes):
            for array_b, offset_b in self.writes[index + 1 :]:
                if array_a != array_b:
                    continue
                if 0 < abs(offset_a - offset_b) < self.width:
                    self._fail(RejectionReason.LOOP_CARRIED_FLOW)
                    return
        for array in self.invariant_reads:
            if array in written_arrays:
                self._fail(RejectionReason.INVARIANT_READ_OF_WRITTEN)
                return
        # Conditional induction updates were already rejected as PACKING; an
        # induction variable together with conditionals is only supported when
        # the induction update is unconditional (checked at record time).


def _constant_of(expr: ast.Expr) -> int | None:
    if isinstance(expr, ast.IntLiteral):
        return expr.value
    if isinstance(expr, ast.UnaryOp) and expr.op == "-" and isinstance(expr.operand, ast.IntLiteral):
        return -expr.operand.value
    return None


def _mentions(expr: ast.Expr, name: str) -> bool:
    return any(isinstance(n, ast.Identifier) and n.name == name for n in ast.walk(expr))


def _is_simple_accumulation(expr: ast.Expr, name: str) -> bool:
    """True for ``name + <expr-not-mentioning-name>`` shapes."""
    if isinstance(expr, ast.BinOp) and expr.op == "+":
        left_is_name = isinstance(expr.left, ast.Identifier) and expr.left.name == name
        right_is_name = isinstance(expr.right, ast.Identifier) and expr.right.name == name
        if left_is_name and not _mentions(expr.right, name):
            return True
        if right_is_name and not _mentions(expr.left, name):
            return True
    return False


def _array_name(expr: ast.Expr) -> str | None:
    if isinstance(expr, ast.Identifier):
        return expr.name
    return None


def _contains_array_ref(expr: ast.Expr) -> bool:
    return any(isinstance(n, ast.ArrayRef) for n in ast.walk(expr))
