"""SIMD code generation from a vectorization plan, for any target ISA.

The generator rewrites the innermost loop of a kernel into

* a *vector loop* processing one lane-count block of iterations per trip
  with the target's own intrinsic spellings (loads hoisted above stores,
  if-conversion through compare/select masks, vector accumulators for
  reductions, ``setr`` ramps for induction variables), followed by
* reduction finalization (horizontal combine back into the scalar), and
* a scalar *epilogue loop* that finishes the remaining ``n mod lanes``
  iterations with the original loop body — or, when the plan carries
  ``masked_epilogue``, one masked tail iteration that retires the remainder
  with the target's masked loads/stores instead of a scalar loop,

which is exactly the shape of the GPT-4 generated code in the paper's
Figures 1 and Section 4.4 (there for AVX2, the default target here).
Every intrinsic is requested by its generic op name through the target's
spelling table; anything the generator cannot express raises
:class:`InfeasibleVectorization`, and callers treat that like a planner
rejection.
"""

from __future__ import annotations

import copy
from dataclasses import dataclass

from repro.cfront import ast_nodes as ast
from repro.cfront.ctypes import CType, INT
from repro.cfront.printer import expr_to_c, function_to_c
from repro.lanetypes import INT32, LaneType
from repro.targets import TargetISA, get_target
from repro.vectorizer.planner import (
    ReductionInfo,
    VectorizationPlan,
    VECTOR_WIDTH,  # noqa: F401  (re-exported for backwards compatibility)
    plan_vectorization,
    resolve_epilogue,
)


class InfeasibleVectorization(Exception):
    """Raised when code generation cannot express the kernel on the target."""


@dataclass
class VectorizationResult:
    """Successful output of the vectorizer."""

    function: ast.FunctionDef
    source: str
    strategy: str
    plan: VectorizationPlan

    @property
    def target(self) -> TargetISA:
        return self.plan.target


# ---------------------------------------------------------------------------
# small AST construction helpers
# ---------------------------------------------------------------------------


def _ident(name: str) -> ast.Identifier:
    return ast.Identifier(name=name)


def _lit(value: int) -> ast.Expr:
    if value < 0:
        return ast.UnaryOp(op="-", operand=ast.IntLiteral(value=-value))
    return ast.IntLiteral(value=value)


def _call(func: str, *args: ast.Expr) -> ast.Call:
    return ast.Call(func=func, args=list(args))


def _add_expr(left: ast.Expr, right: ast.Expr) -> ast.Expr:
    return ast.BinOp(op="+", left=left, right=right)


def _index_expr(base: str, offset: int) -> ast.Expr:
    if offset == 0:
        return _ident(base)
    op = "+" if offset > 0 else "-"
    return ast.BinOp(op=op, left=_ident(base), right=ast.IntLiteral(value=abs(offset)))


# ---------------------------------------------------------------------------
# the body builder
# ---------------------------------------------------------------------------


@dataclass
class _MaskContext:
    """The currently active if-conversion mask register (None = unconditional)."""

    register: str | None = None


class _VectorBodyBuilder:
    """Builds the statements of the vector loop body for one kernel."""

    def __init__(self, plan: VectorizationPlan, iterator: str, existing_names: set[str]):
        self.plan = plan
        self.target = plan.target
        self.dtype = plan.dtype
        self.lanes = plan.target.lanes_for(plan.dtype)
        self.iterator = iterator
        self.existing_names = existing_names
        #: When set, the builder is emitting a masked tail: every memory
        #: access goes through maskload/maskstore with this mask register.
        self.tail_mask: str | None = None
        #: Predicate-first targets (SVE): masks live in predicate registers,
        #: comparisons produce them, selects and *all* memory consume them.
        self.predicated: bool = plan.target.has_predicates
        #: The ``whilelt`` loop-governing predicate register of a predicated
        #: loop; None outside that strategy (plain predicated code is
        #: governed by an all-true ``ptrue`` materialized on demand).
        self.loop_pred: str | None = None
        self.counter = 0
        self.preload_stmts: list[ast.Stmt] = []
        self.body_stmts: list[ast.Stmt] = []
        self.registers: dict[tuple, str] = {}
        self.reductions = {r.name: r for r in plan.reductions}
        self.inductions = {i.name: i for i in plan.inductions}
        self.induction_updates_seen: dict[str, int] = {name: 0 for name in self.inductions}
        self.accumulators: dict[str, str] = {}
        self.reduction_ops: dict[str, str] = {r.name: r.operation for r in plan.reductions}
        self.local_temporaries = set(plan.local_temporaries)

    # -- target plumbing ------------------------------------------------------

    def _op(self, op: str) -> str:
        """Concrete intrinsic name of a generic op on the active target,
        at the kernel's lane element type."""
        if not self.target.supports(op, self.dtype):
            if op in ("maskload", "maskstore"):
                raise InfeasibleVectorization(
                    f"masked memory operation {op!r} has no "
                    f"{self.target.display_name} equivalent (no masked "
                    f"loads/stores on this target; select-based masking "
                    f"covers in-register blends only)"
                )
            detail = "" if self.dtype is INT32 else f" at {self.dtype.name}"
            raise InfeasibleVectorization(
                f"operation {op!r} has no {self.target.display_name} equivalent{detail}"
            )
        return self.target.intrinsic(op, self.dtype)

    def _binop_intrinsic(self, op: str) -> str | None:
        table = {"+": "add", "-": "sub", "*": "mul",
                 "&": "and", "|": "or", "^": "xor"}
        generic = table.get(op)
        return self._op(generic) if generic is not None else None

    def _vector_pointer(self, array: str, index: ast.Expr) -> ast.Expr:
        address = ast.UnaryOp(op="&", operand=ast.ArrayRef(base=_ident(array), index=index))
        return ast.Cast(target_type=self.target.vector_pointer_ctype_for(self.dtype),
                        operand=address)

    def _vec_decl(self, name: str, init: ast.Expr) -> ast.Decl:
        return ast.Decl(var_type=self.target.vector_ctype_for(self.dtype), name=name, init=init)

    def _pred_decl(self, name: str, init: ast.Expr) -> ast.Decl:
        return ast.Decl(var_type=self.target.predicate_ctype, name=name, init=init)

    def _governing_pred(self) -> str:
        """The predicate governing memory/compares: the loop's ``whilelt``
        register inside a predicated loop, else an all-true ``ptrue``
        materialized once in the preheader of the loop body."""
        if self.loop_pred is not None:
            return self.loop_pred
        key = ("ptrue",)
        if key not in self.registers:
            name = self._fresh("pg_all")
            self.preload_stmts.insert(
                0, self._pred_decl(name, _call(self._op("ptrue")))
            )
            self.registers[key] = name
        return self.registers[key]

    def _load_call(self, pointer: ast.Expr) -> ast.Call:
        """A full-width load: masked in a tail, predicate-governed on
        predicate-first targets (which have no unpredicated loads), plain
        ``loadu`` otherwise."""
        if self.tail_mask is not None:
            return _call(self._op("maskload"), pointer, _ident(self.tail_mask))
        if self.predicated:
            return _call(self._op("pload"),
                         _ident(self._governing_pred()), pointer)
        return _call(self._op("loadu"), pointer)

    def _store_call(self, address: ast.Expr, value: str) -> ast.Call:
        if self.tail_mask is not None:
            return _call(self._op("maskstore"), address,
                         _ident(self.tail_mask), _ident(value))
        if self.predicated:
            return _call(self._op("pstore"),
                         _ident(self._governing_pred()), address, _ident(value))
        return _call(self._op("storeu"), address, _ident(value))

    # -- naming ---------------------------------------------------------------

    def _fresh(self, hint: str) -> str:
        hint = hint.replace("-", "m").replace("+", "p")
        name = f"v{hint}_{self.counter}"
        self.counter += 1
        while name in self.existing_names:
            name = name + "_"
        self.existing_names.add(name)
        return name

    # -- register helpers --------------------------------------------------------

    def _emit(self, stmt: ast.Stmt) -> None:
        self.body_stmts.append(stmt)

    def _emit_value(self, hint: str, init: ast.Expr) -> str:
        name = self._fresh(hint)
        self._emit(self._vec_decl(name, init))
        return name

    def _emit_pred(self, hint: str, init: ast.Expr) -> str:
        name = self._fresh(hint)
        self._emit(self._pred_decl(name, init))
        return name

    def _constant_vector(self, value: int) -> str:
        key = ("const", value)
        if key not in self.registers:
            self.registers[key] = self._emit_value(f"c{value}", _call(self._op("set1"), _lit(value)))
        return self.registers[key]

    def _zero_vector(self) -> str:
        key = ("zero",)
        if key not in self.registers:
            # x86 has a dedicated zero idiom; NEON-class targets broadcast 0.
            name, args = self.target.zero_call(self.dtype)
            self.registers[key] = self._emit_value(
                "zero", _call(name, *[_lit(arg) for arg in args])
            )
        return self.registers[key]

    def _splat_expr(self, expr: ast.Expr, hint: str) -> str:
        return self._emit_value(hint, _call(self._op("set1"), expr))

    def _read_location(self, array: str, offset: int) -> str:
        current = self.registers.get(("cur", array, offset))
        if current is not None:
            return current
        key = ("load", array, offset)
        if key not in self.registers:
            name = self._fresh(f"{array}_{offset}")
            pointer = self._vector_pointer(array, _index_expr(self.iterator, offset))
            self.preload_stmts.append(self._vec_decl(name, self._load_call(pointer)))
            self.registers[key] = name
        return self.registers[key]

    def _iterator_vector(self) -> str:
        key = ("itervec",)
        if key not in self.registers:
            if self.target.supports("index", self.dtype):
                # SVE's ramp constructor: svindex(i, 1) is the iterator
                # vector in one instruction.
                self.registers[key] = self._emit_value(
                    "ivec", _call(self._op("index"), _ident(self.iterator), _lit(1))
                )
            else:
                ramp = _call(self._op("setr"), *[_lit(k) for k in range(self.lanes)])
                base = _call(self._op("set1"), _ident(self.iterator))
                ramp_reg = self._emit_value("ramp", ramp)
                base_reg = self._emit_value("ibase", base)
                self.registers[key] = self._emit_value(
                    "ivec", _call(self._op("add"), _ident(base_reg), _ident(ramp_reg))
                )
        return self.registers[key]

    def _induction_vector(self, name: str) -> str:
        """Vector of the induction variable's values for the current 8 lanes."""
        info = self.inductions[name]
        updates_seen = self.induction_updates_seen[name]
        key = ("ind", name, updates_seen)
        if key not in self.registers:
            if self.target.supports("index", self.dtype):
                base = _index_expr(name, info.step * updates_seen)
                self.registers[key] = self._emit_value(
                    f"{name}_vec", _call(self._op("index"), base, _lit(info.step))
                )
            else:
                lanes = [_lit(info.step * (lane + updates_seen)) for lane in range(self.lanes)]
                ramp_reg = self._emit_value(f"{name}_ramp", _call(self._op("setr"), *lanes))
                base_reg = self._emit_value(f"{name}_base", _call(self._op("set1"), _ident(name)))
                self.registers[key] = self._emit_value(
                    f"{name}_vec", _call(self._op("add"), _ident(base_reg), _ident(ramp_reg))
                )
        return self.registers[key]

    def _accumulator(self, name: str) -> str:
        if name not in self.accumulators:
            raise InfeasibleVectorization(f"reduction accumulator for {name!r} was not initialized")
        return self.accumulators[name]

    # -- condition handling ------------------------------------------------------------

    def _all_ones(self) -> str:
        key = ("ones",)
        if key not in self.registers:
            self.registers[key] = self._constant_vector(-1)
        return self.registers[key]

    def _invert(self, mask: str) -> str:
        if self.predicated:
            return self._emit_pred("pnot", _call(
                self._op("pnot"), _ident(self._governing_pred()), _ident(mask)))
        return self._emit_value("nmask", _call(self._op("xor"), _ident(mask), _ident(self._all_ones())))

    def _and_masks(self, left: str | None, right: str) -> str:
        if left is None:
            return right
        if self.predicated:
            return self._emit_pred("pmask", _call(
                self._op("pand"), _ident(self._governing_pred()),
                _ident(left), _ident(right)))
        return self._emit_value("mask", _call(self._op("and"), _ident(left), _ident(right)))

    def _emit_select(self, else_reg: str, then_reg: str, mask: str,
                     hint: str = "sel") -> str:
        """Blend two vectors under a mask.

        On predicate-first targets the mask is a predicate and the spelling
        is ACLE's ``svsel(pred, then, else)``; elsewhere it is the shared
        data-vector ``select(else, then, mask)`` shape.
        """
        if self.predicated:
            return self._emit_value(hint, _call(
                self._op("psel"), _ident(mask), _ident(then_reg), _ident(else_reg)))
        return self._emit_value(hint, _call(
            self._op("select"), _ident(else_reg), _ident(then_reg), _ident(mask)))

    def _emit_cmp(self, kind: str, left: str, right: str, hint: str) -> str:
        """Emit one greater-than/equality compare of two vector registers.

        On predicate-first targets the compare writes a predicate register
        (``svcmpgt``/``svcmpeq`` governed by the active predicate); elsewhere
        it writes an all-ones-per-lane data-vector mask.  This is the single
        primitive behind every condition shape, so the two mask flavours
        cannot diverge per operator.
        """
        if self.predicated:
            op = "pcmpgt" if kind == "gt" else "pcmpeq"
            return self._emit_pred("p" + hint, _call(
                self._op(op), _ident(self._governing_pred()),
                _ident(left), _ident(right)))
        op = "cmpgt" if kind == "gt" else "cmpeq"
        return self._emit_value(hint, _call(self._op(op), _ident(left), _ident(right)))

    def _condition_mask(self, cond: ast.Expr) -> str:
        """Return a register holding an all-ones-per-lane mask (or, on
        predicate-first targets, a predicate register) where ``cond`` is true."""
        if isinstance(cond, ast.BinOp) and cond.op in ("<", ">", "<=", ">=", "==", "!="):
            left = self._vectorize_value(cond.left)
            right = self._vectorize_value(cond.right)
            if cond.op == ">":
                return self._emit_cmp("gt", left, right, "gt")
            if cond.op == "<":
                return self._emit_cmp("gt", right, left, "lt")
            if cond.op == "==":
                return self._emit_cmp("eq", left, right, "eq")
            if cond.op == "!=":
                return self._invert(self._emit_cmp("eq", left, right, "eq"))
            if cond.op == ">=":
                return self._invert(self._emit_cmp("gt", right, left, "lt"))
            # cond.op == "<="
            return self._invert(self._emit_cmp("gt", left, right, "gt"))
        # Bare value used as a condition: true when != 0.
        value = self._vectorize_value(cond)
        return self._invert(self._emit_cmp("eq", value, self._zero_vector(), "eqz"))

    # -- value vectorization ---------------------------------------------------------------

    def _vectorize_value(self, expr: ast.Expr) -> str:
        if isinstance(expr, ast.IntLiteral):
            return self._constant_vector(expr.value)
        if isinstance(expr, ast.UnaryOp) and expr.op == "-" and isinstance(expr.operand, ast.IntLiteral):
            return self._constant_vector(-expr.operand.value)
        if isinstance(expr, ast.Identifier):
            name = expr.name
            if name == self.iterator:
                return self._iterator_vector()
            if name in self.inductions:
                return self._induction_vector(name)
            if name in self.reductions:
                raise InfeasibleVectorization(
                    f"reduction variable {name!r} is read outside its accumulation"
                )
            if ("temp", name) in self.registers:
                return self.registers[("temp", name)]
            if name in self.local_temporaries:
                raise InfeasibleVectorization(f"temporary {name!r} read before being assigned")
            # Loop-invariant outer scalar or parameter: broadcast it.
            key = ("splat", name)
            if key not in self.registers:
                self.registers[key] = self._splat_expr(_ident(name), name)
            return self.registers[key]
        if isinstance(expr, ast.ArrayRef):
            return self._vectorize_array_read(expr)
        if isinstance(expr, ast.BinOp):
            return self._vectorize_binop(expr)
        if isinstance(expr, ast.UnaryOp):
            if expr.op == "-":
                operand = self._vectorize_value(expr.operand)
                return self._emit_value("neg", _call(self._op("sub"), _ident(self._zero_vector()), _ident(operand)))
            if expr.op == "+":
                return self._vectorize_value(expr.operand)
            if expr.op == "~":
                operand = self._vectorize_value(expr.operand)
                return self._invert(operand)
            raise InfeasibleVectorization(
                f"unary operator {expr.op!r} has no {self.target.display_name} equivalent"
            )
        if isinstance(expr, ast.TernaryOp):
            mask = self._condition_mask(expr.cond)
            then_reg = self._vectorize_value(expr.then)
            else_reg = self._vectorize_value(expr.otherwise)
            return self._emit_select(else_reg, then_reg, mask)
        if isinstance(expr, ast.Call):
            if expr.func == "abs":
                operand = self._vectorize_value(expr.args[0])
                return self._emit_value("abs", _call(self._op("abs"), _ident(operand)))
            if expr.func in ("max", "min"):
                left = self._vectorize_value(expr.args[0])
                right = self._vectorize_value(expr.args[1])
                intrinsic = self._op("max") if expr.func == "max" else self._op("min")
                return self._emit_value(expr.func, _call(intrinsic, _ident(left), _ident(right)))
            raise InfeasibleVectorization(f"call to {expr.func!r} cannot be vectorized")
        raise InfeasibleVectorization(f"expression {type(expr).__name__} cannot be vectorized")

    def _vectorize_array_read(self, expr: ast.ArrayRef) -> str:
        array = expr.base.name if isinstance(expr.base, ast.Identifier) else None
        if array is None:
            raise InfeasibleVectorization("array read through a computed base pointer")
        offset = self._affine_offset(expr.index)
        if offset is not None:
            return self._read_location(array, offset)
        induction = self._induction_offset(expr.index)
        if induction is not None:
            name, const = induction
            info = self.inductions[name]
            if abs(info.step) != 1:
                raise InfeasibleVectorization("induction-indexed access with non-unit step")
            updates_seen = self.induction_updates_seen[name]
            total = const + info.step * updates_seen
            index = _index_expr(name, total)
            load = self._load_call(self._vector_pointer(array, index))
            return self._emit_value(f"{array}_{name}", load)
        if self._is_loop_invariant(expr.index):
            return self._splat_expr(copy.deepcopy(expr), f"{array}_inv")
        raise InfeasibleVectorization("array subscript is neither affine nor loop-invariant")

    def _vectorize_binop(self, expr: ast.BinOp) -> str:
        intrinsic = self._binop_intrinsic(expr.op)
        if intrinsic is not None:
            left = self._vectorize_value(expr.left)
            right = self._vectorize_value(expr.right)
            return self._emit_value("t", _call(intrinsic, _ident(left), _ident(right)))
        if expr.op in ("<", ">", "<=", ">=", "==", "!="):
            mask = self._condition_mask(expr)
            one = self._constant_vector(1)
            if self.predicated:
                # Predicate registers have no bitwise view; a C boolean value
                # is a predicate-selected blend of 1 and 0.
                return self._emit_select(self._zero_vector(), one, mask, hint="bool")
            return self._emit_value("bool", _call(self._op("and"), _ident(mask), _ident(one)))
        raise InfeasibleVectorization(
            f"binary operator {expr.op!r} has no {self.target.display_name} integer equivalent"
        )

    # -- affine helpers ------------------------------------------------------------------------

    def _affine_offset(self, index: ast.Expr) -> int | None:
        """Offset o when ``index`` is ``iterator + o`` (coefficient 1), else None."""
        from repro.analysis.accesses import affine_index

        affine = affine_index(index, self.iterator)
        if affine.is_iterator_affine and affine.coefficient == 1:
            return affine.offset
        return None

    def _induction_offset(self, index: ast.Expr) -> tuple[str, int] | None:
        if isinstance(index, ast.Identifier) and index.name in self.inductions:
            return index.name, 0
        if (
            isinstance(index, ast.BinOp)
            and index.op in ("+", "-")
            and isinstance(index.left, ast.Identifier)
            and index.left.name in self.inductions
            and isinstance(index.right, ast.IntLiteral)
        ):
            sign = 1 if index.op == "+" else -1
            return index.left.name, sign * index.right.value
        return None

    def _is_loop_invariant(self, expr: ast.Expr) -> bool:
        for node in ast.walk(expr):
            if isinstance(node, ast.Identifier):
                if node.name == self.iterator or node.name in self.inductions:
                    return False
                if node.name in self.local_temporaries or node.name in self.reductions:
                    return False
            if isinstance(node, (ast.Assign, ast.Call)):
                return False
        return True

    # -- statement emission -------------------------------------------------------------------------

    def build(self, body: ast.Stmt) -> None:
        self._init_accumulators()
        self._emit_stmt(body, mask=None)
        self._emit_induction_advances()

    def _init_accumulators(self) -> None:
        for reduction in self.plan.reductions:
            if reduction.operation == "+":
                zero_name, zero_args = self.target.zero_call(self.dtype)
                init: ast.Expr = _call(zero_name, *[_lit(arg) for arg in zero_args])
            elif reduction.operation == "*":
                init = _call(self._op("set1"), _lit(1))
            else:  # max / min start from the current scalar value
                init = _call(self._op("set1"), _ident(reduction.name))
            name = self._fresh(f"acc_{reduction.name}")
            # Accumulators are declared in the preheader, before the vector loop.
            self.accumulators[reduction.name] = name
            self.accumulator_decls = getattr(self, "accumulator_decls", [])
            self.accumulator_decls.append(self._vec_decl(name, init))

    def _emit_induction_advances(self) -> None:
        for name, info in self.inductions.items():
            advance = ast.Assign(
                op="+=" if info.step * self.lanes >= 0 else "-=",
                target=_ident(name),
                value=ast.IntLiteral(value=abs(info.step * self.lanes)),
            )
            self._emit(ast.ExprStmt(expr=advance))

    def _emit_stmt(self, stmt: ast.Stmt, mask: str | None) -> None:
        if isinstance(stmt, ast.Block):
            for inner in stmt.body:
                self._emit_stmt(inner, mask)
            return
        if isinstance(stmt, ast.Decl):
            if stmt.init is None:
                self.registers[("temp", stmt.name)] = self._zero_vector()
                return
            value = self._vectorize_value(stmt.init)
            self.registers[("temp", stmt.name)] = value
            return
        if isinstance(stmt, ast.ExprStmt):
            self._emit_expr_stmt(stmt.expr, mask)
            return
        if isinstance(stmt, ast.If):
            self._emit_if(stmt, mask)
            return
        raise InfeasibleVectorization(f"statement {type(stmt).__name__} cannot be vectorized")

    def _emit_if(self, stmt: ast.If, mask: str | None) -> None:
        minmax = self._try_minmax_reduction(stmt, mask)
        if minmax:
            return
        cond_mask = self._condition_mask(stmt.cond)
        then_mask = self._and_masks(mask, cond_mask)
        self._emit_stmt(stmt.then, then_mask)
        if stmt.otherwise is not None:
            inverted = self._invert(cond_mask)
            else_mask = self._and_masks(mask, inverted)
            self._emit_stmt(stmt.otherwise, else_mask)

    def _try_minmax_reduction(self, stmt: ast.If, mask: str | None) -> bool:
        """Recognize ``if (expr CMP x) x = expr;`` and emit a max/min accumulate."""
        if stmt.otherwise is not None or mask is not None:
            return False
        cond = stmt.cond
        if not (isinstance(cond, ast.BinOp) and cond.op in ("<", ">")):
            return False
        body = stmt.then
        if isinstance(body, ast.Block):
            if len(body.body) != 1:
                return False
            body = body.body[0]
        if not (isinstance(body, ast.ExprStmt) and isinstance(body.expr, ast.Assign)):
            return False
        assign = body.expr
        if assign.op != "=" or not isinstance(assign.target, ast.Identifier):
            return False
        scalar = assign.target.name
        if scalar not in self.reductions:
            return False
        # Identify which side of the comparison is the scalar.
        left_text, right_text = expr_to_c(cond.left), expr_to_c(cond.right)
        value_text = expr_to_c(assign.value)
        if right_text == scalar and left_text == value_text:
            operation = "max" if cond.op == ">" else "min"
        elif left_text == scalar and right_text == value_text:
            operation = "min" if cond.op == ">" else "max"
        else:
            return False
        self.reduction_ops[scalar] = operation
        self.reductions[scalar] = ReductionInfo(name=scalar, operation=operation, initial_scalar=scalar)
        value_reg = self._vectorize_value(assign.value)
        acc = self._accumulator(scalar)
        intrinsic = self._op("max") if operation == "max" else self._op("min")
        self._emit(ast.ExprStmt(expr=ast.Assign(
            op="=", target=_ident(acc), value=_call(intrinsic, _ident(acc), _ident(value_reg))
        )))
        return True

    def _emit_expr_stmt(self, expr: ast.Expr, mask: str | None) -> None:
        if isinstance(expr, ast.Assign):
            self._emit_assign(expr, mask)
            return
        if isinstance(expr, (ast.PostfixOp, ast.UnaryOp)) and expr.op in ("++", "--"):
            target = expr.operand
            if isinstance(target, ast.Identifier) and target.name in self.inductions:
                if mask is not None:
                    raise InfeasibleVectorization("conditional induction update (packing)")
                self.induction_updates_seen[target.name] += 1
                return
            raise InfeasibleVectorization("unsupported increment statement")
        raise InfeasibleVectorization("unsupported expression statement")

    def _emit_assign(self, expr: ast.Assign, mask: str | None) -> None:
        target = expr.target
        if isinstance(target, ast.Identifier):
            self._emit_scalar_assign(target.name, expr, mask)
            return
        if isinstance(target, ast.ArrayRef):
            self._emit_array_assign(target, expr, mask)
            return
        raise InfeasibleVectorization("unsupported assignment target")

    def _emit_scalar_assign(self, name: str, expr: ast.Assign, mask: str | None) -> None:
        if name in self.inductions:
            if mask is not None:
                raise InfeasibleVectorization("conditional induction update (packing)")
            if expr.op in ("+=", "-="):
                self.induction_updates_seen[name] += 1
                return
            raise InfeasibleVectorization("unsupported induction update form")
        if name in self.reductions:
            self._emit_reduction_update(name, expr, mask)
            return
        if name in self.local_temporaries:
            value = self._compute_assigned_value(("temp", name), expr)
            if mask is not None:
                old = self.registers.get(("temp", name), self._zero_vector())
                value = self._emit_select(old, value, mask)
            self.registers[("temp", name)] = value
            return
        raise InfeasibleVectorization(f"assignment to unsupported scalar {name!r}")

    def _emit_reduction_update(self, name: str, expr: ast.Assign, mask: str | None) -> None:
        operation = self.reduction_ops[name]
        acc = self._accumulator(name)
        if operation == "+" and expr.op in ("+=",):
            value = self._vectorize_value(expr.value)
        elif operation == "+" and expr.op == "=":
            value_expr = self._strip_self_accumulation(expr.value, name)
            value = self._vectorize_value(value_expr)
        elif operation == "*" and expr.op == "*=":
            value = self._vectorize_value(expr.value)
        else:
            raise InfeasibleVectorization(f"unsupported reduction update for {name!r}")
        if mask is not None:
            neutral = self._zero_vector() if operation == "+" else self._constant_vector(1)
            value = self._emit_select(neutral, value, mask)
        intrinsic = self._op("add") if operation == "+" else self._op("mul")
        self._emit(ast.ExprStmt(expr=ast.Assign(
            op="=", target=_ident(acc), value=_call(intrinsic, _ident(acc), _ident(value))
        )))

    @staticmethod
    def _strip_self_accumulation(expr: ast.Expr, name: str) -> ast.Expr:
        """Turn ``name + rest`` / ``rest + name`` into ``rest``."""
        if isinstance(expr, ast.BinOp) and expr.op == "+":
            if isinstance(expr.left, ast.Identifier) and expr.left.name == name:
                return expr.right
            if isinstance(expr.right, ast.Identifier) and expr.right.name == name:
                return expr.left
        raise InfeasibleVectorization("reduction update is not a simple accumulation")

    def _compute_assigned_value(self, current_key: tuple, expr: ast.Assign) -> str:
        if expr.op == "=":
            return self._vectorize_value(expr.value)
        base_op = expr.op[:-1]
        intrinsic = self._binop_intrinsic(base_op)
        if intrinsic is None:
            raise InfeasibleVectorization(
                f"compound operator {expr.op!r} has no {self.target.display_name} equivalent"
            )
        current = self.registers.get(current_key)
        if current is None:
            raise InfeasibleVectorization("compound assignment to a value that was never loaded")
        value = self._vectorize_value(expr.value)
        return self._emit_value("t", _call(intrinsic, _ident(current), _ident(value)))

    def _emit_array_assign(self, target: ast.ArrayRef, expr: ast.Assign, mask: str | None) -> None:
        array = target.base.name if isinstance(target.base, ast.Identifier) else None
        if array is None:
            raise InfeasibleVectorization("store through a computed base pointer")
        offset = self._affine_offset(target.index)
        induction_target = None
        if offset is None:
            induction_target = self._induction_offset(target.index)
            if induction_target is None:
                raise InfeasibleVectorization("store subscript is not affine in the iterator")

        if offset is not None:
            current_key = ("cur", array, offset)
            read_current = lambda: self._read_location(array, offset)  # noqa: E731
            address = self._vector_pointer(array, _index_expr(self.iterator, offset))
        else:
            name, const = induction_target
            info = self.inductions[name]
            if abs(info.step) != 1:
                raise InfeasibleVectorization("induction-indexed store with non-unit step")
            updates_seen = self.induction_updates_seen[name]
            total = const + info.step * updates_seen
            current_key = ("cur-ind", array, name, total)
            address = self._vector_pointer(array, _index_expr(name, total))

            def read_current() -> str:
                load = self._load_call(copy.deepcopy(address))
                return self._emit_value(f"{array}_{name}_old", load)

        if expr.op == "=":
            value = self._vectorize_value(expr.value)
        else:
            base_op = expr.op[:-1]
            intrinsic = self._binop_intrinsic(base_op)
            if intrinsic is None:
                raise InfeasibleVectorization(
                    f"compound operator {expr.op!r} has no {self.target.display_name} equivalent"
                )
            current = self.registers.get(current_key)
            if current is None:
                current = read_current()
            rhs = self._vectorize_value(expr.value)
            value = self._emit_value("t", _call(intrinsic, _ident(current), _ident(rhs)))

        if mask is not None:
            old = self.registers.get(current_key)
            if old is None:
                old = read_current()
            value = self._emit_select(old, value, mask)
        self._emit(ast.ExprStmt(expr=self._store_call(address, value)))
        self.registers[current_key] = value


# ---------------------------------------------------------------------------
# reduction finalization and top-level assembly
# ---------------------------------------------------------------------------


def _scalar_ctype(dtype: LaneType) -> CType:
    """The C scalar type matching one lane element type (plain ``int`` for
    the default 32-bit lanes, the sized spelling otherwise)."""
    return INT if dtype is INT32 else CType(dtype.c_name)


def _reduction_finalize(builder: _VectorBodyBuilder) -> list[ast.Stmt]:
    """Horizontal reduction of each accumulator back into its scalar."""
    statements: list[ast.Stmt] = []
    extract = builder.target.intrinsic("extract", builder.dtype)
    for name, acc in builder.accumulators.items():
        operation = builder.reduction_ops[name]
        extracts = [
            _call(extract, _ident(acc), ast.IntLiteral(value=lane))
            for lane in range(builder.lanes)
        ]
        if operation == "+":
            combined: ast.Expr = _ident(name)
            for extract in extracts:
                combined = ast.BinOp(op="+", left=combined, right=extract)
            statements.append(ast.ExprStmt(expr=ast.Assign(op="=", target=_ident(name), value=combined)))
        elif operation == "*":
            combined = _ident(name)
            for extract in extracts:
                combined = ast.BinOp(op="*", left=combined, right=extract)
            statements.append(ast.ExprStmt(expr=ast.Assign(op="=", target=_ident(name), value=combined)))
        else:  # max / min
            comparison = ">" if operation == "max" else "<"
            for lane, extract in enumerate(extracts):
                lane_var = f"vred_{name}_{lane}"
                statements.append(ast.Decl(var_type=_scalar_ctype(builder.dtype),
                                           name=lane_var, init=extract))
                update = ast.If(
                    cond=ast.BinOp(op=comparison, left=_ident(lane_var), right=_ident(name)),
                    then=ast.Block(body=[ast.ExprStmt(expr=ast.Assign(op="=", target=_ident(name), value=_ident(lane_var)))]),
                    otherwise=None,
                )
                statements.append(update)
    return statements


def _collect_identifier_names(func: ast.FunctionDef) -> set[str]:
    names: set[str] = set()
    for node in ast.walk(func):
        if isinstance(node, ast.Identifier):
            names.add(node.name)
        elif isinstance(node, ast.Decl):
            names.add(node.name)
        elif isinstance(node, ast.Parameter):
            names.add(node.name)
    return names


def _build_masked_tail(plan: VectorizationPlan, iterator: str,
                       existing_names: set[str], loop) -> ast.Stmt:
    """One masked tail iteration retiring the final ``n mod lanes`` elements.

    Builds a per-lane bound mask (lane ``k`` enabled when ``i + k`` is still
    inside the iteration space) and re-emits the loop body with every memory
    access routed through the target's masked loads/stores.  The planner has
    already checked the target can express masked memory; on NEON-class
    targets the request is rejected there with a message naming the gap.
    """
    builder = _VectorBodyBuilder(plan, iterator, existing_names)
    builder.accumulator_decls = []
    lanes = builder.lanes
    ramp = builder._fresh("tail_ramp")
    idx = builder._fresh("tail_idx")
    bound = builder._fresh("tail_bound")
    mask = builder._fresh("tail_mask")
    builder.preload_stmts += [
        builder._vec_decl(ramp, _call(builder._op("setr"),
                                      *[_lit(k) for k in range(lanes)])),
        builder._vec_decl(idx, _call(builder._op("add"),
                                     _call(builder._op("set1"), _ident(iterator)),
                                     _ident(ramp))),
        builder._vec_decl(bound, _call(builder._op("set1"), copy.deepcopy(loop.end))),
        builder._vec_decl(mask, _call(builder._op("cmpgt"),
                                      _ident(bound), _ident(idx))),
    ]
    builder.tail_mask = mask
    builder.build(plan.normalized_body)
    tail_stmts = list(builder.preload_stmts) + list(builder.body_stmts)
    # The scalar epilogue would have left the iterator at the loop bound.
    tail_stmts.append(ast.ExprStmt(expr=ast.Assign(
        op="=", target=_ident(iterator), value=copy.deepcopy(loop.end))))
    guard = ast.BinOp(op="<", left=_ident(iterator), right=copy.deepcopy(loop.end))
    return ast.If(cond=guard, then=ast.Block(body=tail_stmts), otherwise=None)


def _build_predicated_loop_region(func: ast.FunctionDef,
                                  plan: VectorizationPlan) -> ast.Block:
    """The ``predicated_loop`` epilogue strategy: one ``whilelt``-governed
    loop replaces the vector loop, the scalar epilogue *and* the masked
    tail.

    The loop predicate ``pg = whilelt(i, n)`` enables exactly the lanes
    still inside the iteration space; every load, store, comparison and
    select in the body is governed by it, so the final partial iteration
    retires the remainder with no separate tail and no trip-count alignment
    assumption — the loop exits when a ``ptest`` finds no active lane left.
    """
    loop = plan.features.main_loop
    iterator = loop.iterator
    builder = _VectorBodyBuilder(plan, iterator, _collect_identifier_names(func))
    lanes = builder.lanes
    builder.accumulator_decls = []
    pg = builder._fresh("pg")
    builder.loop_pred = pg
    builder.build(plan.normalized_body)

    def whilelt_call() -> ast.Call:
        return _call(builder._op("whilelt"), _ident(iterator),
                     copy.deepcopy(loop.end))

    advance = ast.ExprStmt(expr=ast.Assign(
        op="+=", target=_ident(iterator), value=ast.IntLiteral(value=lanes)))
    refresh = ast.ExprStmt(expr=ast.Assign(
        op="=", target=_ident(pg), value=whilelt_call()))
    body = ast.Block(body=list(builder.preload_stmts) + list(builder.body_stmts)
                     + [advance, refresh])

    region: list[ast.Stmt] = []
    if loop.declares_iterator:
        region.append(ast.Decl(var_type=INT, name=iterator,
                               init=copy.deepcopy(loop.start)))
    else:
        region.append(ast.ExprStmt(expr=ast.Assign(
            op="=", target=_ident(iterator), value=copy.deepcopy(loop.start))))
    region.append(builder._pred_decl(pg, whilelt_call()))
    region.append(ast.WhileLoop(
        cond=_call(builder._op("ptest_any"), _ident(pg)), body=body))
    return ast.Block(body=region)


def _build_vector_loop_region(func: ast.FunctionDef, plan: VectorizationPlan) -> ast.Block:
    """Build the block that replaces the original main loop."""
    if plan.predicated_loop:
        return _build_predicated_loop_region(func, plan)
    loop = plan.features.main_loop
    iterator = loop.iterator
    builder = _VectorBodyBuilder(plan, iterator, _collect_identifier_names(func))
    lanes = builder.lanes
    builder.accumulator_decls = []
    builder.build(plan.normalized_body)

    vector_body = ast.Block(body=list(builder.preload_stmts) + list(builder.body_stmts))

    end_minus = ast.BinOp(op="-", left=copy.deepcopy(loop.end), right=ast.IntLiteral(value=lanes - 1))
    vector_cond = ast.BinOp(op=loop.end_op, left=_ident(iterator), right=end_minus)
    vector_step = ast.Assign(op="+=", target=_ident(iterator), value=ast.IntLiteral(value=lanes))
    vector_loop = ast.ForLoop(init=None, cond=vector_cond, step=vector_step, body=vector_body)

    region: list[ast.Stmt] = []
    if loop.declares_iterator:
        region.append(ast.Decl(var_type=INT, name=iterator, init=copy.deepcopy(loop.start)))
    else:
        region.append(ast.ExprStmt(expr=ast.Assign(op="=", target=_ident(iterator),
                                                   value=copy.deepcopy(loop.start))))
    region.extend(builder.accumulator_decls)
    region.append(vector_loop)
    region.extend(_reduction_finalize(builder))
    if plan.masked_epilogue:
        region.append(_build_masked_tail(plan, iterator, builder.existing_names, loop))
    else:
        epilogue_cond = ast.BinOp(op=loop.end_op, left=_ident(iterator),
                                  right=copy.deepcopy(loop.end))
        epilogue_step = copy.deepcopy(loop.node.step)
        region.append(ast.ForLoop(init=None, cond=epilogue_cond, step=epilogue_step,
                                  body=copy.deepcopy(loop.node.body)))
    return ast.Block(body=region)


def _replace_loop(stmt: ast.Stmt, target: ast.ForLoop, replacement: ast.Block) -> ast.Stmt:
    """Return ``stmt`` with the statement ``target`` replaced by ``replacement``."""
    if stmt is target:
        return replacement
    if isinstance(stmt, ast.Block):
        stmt.body = [_replace_loop(s, target, replacement) for s in stmt.body]
        return stmt
    if isinstance(stmt, ast.If):
        stmt.then = _replace_loop(stmt.then, target, replacement)
        if stmt.otherwise is not None:
            stmt.otherwise = _replace_loop(stmt.otherwise, target, replacement)
        return stmt
    if isinstance(stmt, (ast.ForLoop, ast.WhileLoop, ast.DoWhileLoop)):
        stmt.body = _replace_loop(stmt.body, target, replacement)
        return stmt
    if isinstance(stmt, ast.Label):
        stmt.stmt = _replace_loop(stmt.stmt, target, replacement)
        return stmt
    return stmt


def generate_vectorized_function(func: ast.FunctionDef, plan: VectorizationPlan) -> ast.FunctionDef:
    """Generate the vectorized counterpart of ``func`` according to ``plan``.

    Raises :class:`InfeasibleVectorization` when the plan turns out not to be
    realizable (the planner is optimistic about a few patterns, e.g. min/max
    reductions, that only code generation can fully validate).
    """
    from repro.perf.profile import stage

    if not plan.feasible or plan.features is None or plan.features.main_loop is None:
        raise InfeasibleVectorization(plan.rejection_text or "no feasible plan")
    with stage("codegen"):
        region = _build_vector_loop_region(func, plan)
        # Work on a copy of the original function: the original loop node
        # identity is preserved inside the copy via a parallel walk.
        new_func = copy.deepcopy(func)
        original_loop = plan.features.main_loop.node
        target = _find_matching_loop(new_func, func, original_loop)
        new_func.body = _replace_loop(new_func.body, target, region)
        return new_func


def _find_matching_loop(new_func: ast.FunctionDef, old_func: ast.FunctionDef,
                        target: ast.ForLoop) -> ast.ForLoop:
    """Locate, in the deep copy, the loop node corresponding to ``target``."""
    old_loops = [n for n in ast.walk(old_func) if isinstance(n, ast.ForLoop)]
    new_loops = [n for n in ast.walk(new_func) if isinstance(n, ast.ForLoop)]
    for old, new in zip(old_loops, new_loops):
        if old is target:
            return new
    raise InfeasibleVectorization("could not locate the loop to replace")


def vectorize_kernel(func: ast.FunctionDef,
                     target: "TargetISA | str | None" = None,
                     *,
                     epilogue: str | None = None,
                     masked_epilogue: bool | None = None,
                     predicated_loop: bool | None = None) -> VectorizationResult | None:
    """Plan and generate SIMD code for ``func`` on ``target`` (default AVX2);
    returns None when infeasible.  ``epilogue`` selects the tail strategy:
    ``"scalar"`` (the default remainder loop), ``"masked"`` (one masked tail
    iteration — targets with masked memory operations only) or
    ``"predicated"`` (a ``whilelt``-governed predicated main loop with no
    epilogue at all — predicate-register targets only).  The boolean
    ``masked_epilogue`` / ``predicated_loop`` flags are deprecated shims
    that warn and forward."""
    epilogue = resolve_epilogue(epilogue, masked_epilogue, predicated_loop)
    plan = plan_vectorization(func, get_target(target), epilogue=epilogue)
    if not plan.feasible:
        return None
    try:
        vectorized = generate_vectorized_function(func, plan)
    except InfeasibleVectorization:
        return None
    source = function_to_c(vectorized, include_header=True)
    # Downstream consumers (checksum tester, verifier) re-parse this source;
    # hand them the generated tree directly.
    from repro.vectorizer.plancache import seed_parse

    seed_parse(source, vectorized)
    return VectorizationResult(
        function=vectorized,
        source=source,
        strategy=plan.strategy.value if plan.strategy else "plain",
        plan=plan,
    )
