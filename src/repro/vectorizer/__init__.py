"""Rule-based source-to-source AVX2 vectorizer.

This is the "capability core" behind the synthetic LLM: given a scalar TSVC
kernel it plans a vectorization strategy (plain, if-converted, reduction,
induction) and emits C code using AVX2 intrinsics, including the epilogue
scalar loop.  The planner's rejection reasons correspond to the failure
categories the paper reports for GPT-4 (loop-carried dependences, gather /
packing patterns, prefix sums, non-unit strides, wrap-around scalars).
"""

from repro.vectorizer.planner import (
    EPILOGUE_STRATEGIES,
    RejectionReason,
    VectorizationPlan,
    plan_vectorization,
    resolve_epilogue,
)
from repro.vectorizer.codegen import generate_vectorized_function, vectorize_kernel

__all__ = [
    "EPILOGUE_STRATEGIES",
    "RejectionReason",
    "VectorizationPlan",
    "plan_vectorization",
    "resolve_epilogue",
    "generate_vectorized_function",
    "vectorize_kernel",
]
