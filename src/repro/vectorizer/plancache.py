"""Content-addressed parse + plan cache for the verification hot path.

The campaign layer's :class:`~repro.pipeline.cache.ResultCache` deduplicates
whole per-kernel *results*; this module is its in-process counterpart one
level down: N candidates × M attempts × K pipeline stages that share one
piece of source text reuse a single parse, and every completion the
synthetic LLM produces for one (kernel, target, epilogue) triple reuses a
single vectorization plan + generated function.  Profiling showed repeated
parsing alone accounted for half the serial campaign's wall clock — the FSM
re-parses the scalar kernel per completion, the tester per attempt, and the
verifier per stage.

Sharing parsed ASTs across consumers is safe by construction: every AST
mutator in the tree (``normalize_body``, ``unroll_scalar_function``,
``generate_vectorized_function``, the synthetic LLM's candidate builders)
deep-copies before mutating, and the interpreter and symbolic executor are
read-only walkers.

Caches are process-local (each campaign worker builds its own), keyed on
content SHAs salted with the target name and epilogue strategy, and
size-capped; :func:`clear_caches` resets everything (tests use it to measure
hits/misses deterministically).
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass, field
from typing import TYPE_CHECKING

from repro.cfront.cparser import parse_function
from repro.targets import TargetISA, get_target

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.cfront import ast_nodes as ast
    from repro.vectorizer.codegen import VectorizationResult
    from repro.vectorizer.planner import VectorizationPlan

#: Entry cap per cache; hitting it clears the cache (same policy as the SMT
#: normalization cache — a full reset is simpler than LRU bookkeeping and
#: the working set of one campaign is far below the cap).
DEFAULT_CAPACITY = 1024


@dataclass
class PlanCacheStats:
    """Hit/miss counters for the parse and vectorize caches."""

    parse_hits: int = 0
    parse_misses: int = 0
    plan_hits: int = 0
    plan_misses: int = 0
    vectorize_hits: int = 0
    vectorize_misses: int = 0

    def as_dict(self) -> dict[str, int]:
        return {
            "parse_hits": self.parse_hits,
            "parse_misses": self.parse_misses,
            "plan_hits": self.plan_hits,
            "plan_misses": self.plan_misses,
            "vectorize_hits": self.vectorize_hits,
            "vectorize_misses": self.vectorize_misses,
        }


stats = PlanCacheStats()

_capacity = DEFAULT_CAPACITY
_PARSE_CACHE: dict[str, "ast.FunctionDef"] = {}
_PARSE_FAIL_CACHE: dict[str, Exception] = {}
_PLAN_CACHE: dict[tuple[str, str, str], "VectorizationPlan"] = {}
_VECTORIZE_CACHE: dict[tuple[str, str, str], "VectorizationResult | None"] = {}


def source_key(source: str) -> str:
    """The content address of one piece of C source text."""
    return hashlib.sha256(source.encode()).hexdigest()


def plan_fingerprint(source: str, target: "TargetISA | str | None",
                     epilogue: str = "scalar") -> tuple[str, str, str]:
    """The vectorize-cache key: source SHA salted with target and epilogue.

    The salt mirrors the campaign cache's target-salted config fingerprints:
    two targets (or two epilogue strategies) planning the same kernel source
    must never share an entry.
    """
    return (source_key(source), get_target(target).name, epilogue)


def set_capacity(capacity: int) -> None:
    """Adjust the per-cache entry cap (a knob for long-lived services)."""
    global _capacity
    if capacity < 1:
        raise ValueError(f"cache capacity must be >= 1, got {capacity}")
    _capacity = capacity


def clear_caches() -> None:
    """Drop every cached parse/plan and reset the hit/miss counters."""
    _PARSE_CACHE.clear()
    _PARSE_FAIL_CACHE.clear()
    _PLAN_CACHE.clear()
    _VECTORIZE_CACHE.clear()
    stats.parse_hits = stats.parse_misses = 0
    stats.plan_hits = stats.plan_misses = 0
    stats.vectorize_hits = stats.vectorize_misses = 0


def cached_parse(source: str) -> "ast.FunctionDef":
    """Parse ``source`` at most once per process; returns a *shared* AST.

    Callers must treat the result as read-only (or deep-copy before
    mutating) — which every existing consumer already does, see the module
    docstring.  Parse *failures* are cached too (the same uncompilable
    candidate is re-tested on every retry of a hard kernel); the original
    exception instance is re-raised, so messages stay identical.
    """
    key = source_key(source)
    func = _PARSE_CACHE.get(key)
    if func is not None:
        stats.parse_hits += 1
        return func
    failure = _PARSE_FAIL_CACHE.get(key)
    if failure is not None:
        stats.parse_hits += 1
        raise failure
    stats.parse_misses += 1
    try:
        func = parse_function(source)
    except Exception as exc:
        if len(_PARSE_FAIL_CACHE) >= _capacity:
            _PARSE_FAIL_CACHE.clear()
        _PARSE_FAIL_CACHE[key] = exc
        raise
    if len(_PARSE_CACHE) >= _capacity:
        _PARSE_CACHE.clear()
    _PARSE_CACHE[key] = func
    return func


def seed_parse(source: str, func: "ast.FunctionDef") -> None:
    """Pre-populate the parse cache with a rendered AST.

    Call sites that *render* an AST to C source (the code generator, the
    synthetic LLM's candidate builders, the fault injector) already hold the
    exact tree the downstream tester/verifier would recover by re-parsing
    that source — the printer/parser round trip is what the whole pipeline
    is built on.  Seeding turns every one of those re-parses into a hit.
    """
    key = source_key(source)
    if key in _PARSE_CACHE:
        return
    if len(_PARSE_CACHE) >= _capacity:
        _PARSE_CACHE.clear()
    _PARSE_CACHE[key] = func


def cached_plan(source: str, func: "ast.FunctionDef | None" = None,
                target: "TargetISA | str | None" = None,
                epilogue: str = "scalar") -> "VectorizationPlan":
    """Plan at most once per (source, target, epilogue) triple.

    Rejection plans are the hot case: the synthetic LLM re-plans a hard
    kernel on *every* completion just to quote the rejection text.  The
    shared :class:`~repro.vectorizer.planner.VectorizationPlan` must be
    treated as read-only, which every consumer already does.
    """
    from repro.vectorizer.planner import plan_vectorization

    key = plan_fingerprint(source, target, epilogue)
    plan = _PLAN_CACHE.get(key)
    if plan is not None:
        stats.plan_hits += 1
        return plan
    stats.plan_misses += 1
    if func is None:
        func = cached_parse(source)
    plan = plan_vectorization(func, get_target(target), epilogue=epilogue)
    if len(_PLAN_CACHE) >= _capacity:
        _PLAN_CACHE.clear()
    _PLAN_CACHE[key] = plan
    return plan


def cached_vectorize(source: str, func: "ast.FunctionDef | None" = None,
                     target: "TargetISA | str | None" = None,
                     epilogue: str = "scalar") -> "VectorizationResult | None":
    """Plan + generate at most once per (source, target, epilogue) triple.

    ``func`` is the already-parsed AST of ``source`` when the caller has one
    (it must be the :func:`cached_parse` result for that source); omitted, it
    is resolved through the parse cache.  Returns the shared
    :class:`~repro.vectorizer.codegen.VectorizationResult` — or ``None``,
    which is cached too: an infeasible (kernel, target, epilogue) stays
    infeasible, and hard kernels are re-planned per completion otherwise.
    """
    # Imported lazily so low-level consumers (the checksum tester, the
    # verifier) can import the parse cache without pulling the vectorizer in.
    from repro.vectorizer.codegen import vectorize_kernel

    key = plan_fingerprint(source, target, epilogue)
    if key in _VECTORIZE_CACHE:
        stats.vectorize_hits += 1
        return _VECTORIZE_CACHE[key]
    stats.vectorize_misses += 1
    if func is None:
        func = cached_parse(source)
    result = vectorize_kernel(func, get_target(target), epilogue=epilogue)
    if len(_VECTORIZE_CACHE) >= _capacity:
        _VECTORIZE_CACHE.clear()
    _VECTORIZE_CACHE[key] = result
    return result
