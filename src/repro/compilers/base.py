"""The simulated auto-vectorizing compiler model.

A :class:`SimulatedCompiler` makes a per-loop vectorization *decision* from
the kernel's dependence report, mimicking how production compilers decide:

* a loop-carried flow dependence (or an unknown/symbolic dependence that the
  compiler's analysis precision cannot disprove) disables vectorization;
* conditional control flow is vectorized through if-conversion when the
  compiler supports it, at an efficiency cost;
* reductions are recognized and vectorized by all three baselines (the paper
  notes reduction support is robust everywhere);
* wrap-around scalars and similar peeling-required patterns are only handled
  by the most aggressive baseline (ICC);
* a conservative profitability cost model may still reject short bodies.

The decision plus a vectorization-efficiency factor feed the cycle cost model
in :mod:`repro.perf`, which is what ultimately produces the Figure 1(c) and
Figure 6 speedup numbers.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.analysis.features import KernelFeatures
from repro.analysis.dependence import DependenceKind


@dataclass(frozen=True)
class CompilerDecision:
    """The outcome of a baseline compiler's vectorization analysis for one loop."""

    compiler: str
    vectorized: bool
    reason: str
    #: Fraction of the ideal 8-lane speedup this compiler's generated vector
    #: code achieves for this loop (models if-conversion overhead, peeling
    #: quality, gather emulation and similar codegen quality differences).
    efficiency: float = 1.0


@dataclass(frozen=True)
class SimulatedCompiler:
    """One baseline compiler's vectorization personality."""

    name: str
    version: str
    #: Probability-like precision of dependence analysis, expressed as which
    #: dependence kinds the compiler can disprove.  "precise" disproves
    #: spurious anti-dependences (the s212 pattern); "conservative" gives up
    #: on any dependence touching the same array.
    disproves_spurious_anti_deps: bool
    #: Whether unknown (symbolic-subscript) dependences disable vectorization.
    gives_up_on_unknown_deps: bool
    #: If-conversion support and its efficiency factor.
    supports_if_conversion: bool
    if_conversion_efficiency: float
    #: Reduction vectorization efficiency (all baselines support reductions).
    reduction_efficiency: float
    #: Handles wrap-around scalars / loop peeling patterns (ICC).
    supports_peeling: bool
    #: Handles goto-based control flow inside loops.
    supports_goto_control_flow: bool
    #: Plain-loop vector efficiency.
    plain_efficiency: float
    #: Quality of the *scalar* code this compiler emits relative to a naive
    #: baseline (unrolling, scheduling, strength reduction).  ICC's strong
    #: scalar code is why the paper's speedups over it are the smallest even
    #: when it does not vectorize a loop.
    scalar_efficiency: float = 1.0
    #: Minimum number of array accesses for vectorization to be deemed profitable.
    profitability_threshold: int = 1

    # -- the decision procedure ---------------------------------------------------

    def decide(self, features: KernelFeatures) -> CompilerDecision:
        """Decide whether this compiler auto-vectorizes the kernel's main loop."""
        if features.main_loop is None:
            return self._no("no loop to vectorize")
        loop = features.main_loop
        if not loop.is_canonical or loop.step is None:
            return self._no("loop bounds are not analyzable")
        if abs(loop.step) != 1:
            return self._no("non-unit stride")
        report = features.dependence

        if report.has_goto and not self.supports_goto_control_flow:
            return self._no("control flow not understood (goto)")

        has_reduction = bool(report.reductions)
        has_cf = report.has_control_flow or report.has_goto

        for dependence in report.loop_carried:
            if dependence.kind is DependenceKind.UNKNOWN:
                if self.gives_up_on_unknown_deps:
                    return self._no(f"possible dependence on '{dependence.array}' cannot be disproved")
                continue
            if dependence.kind is DependenceKind.FLOW:
                if dependence.distance is not None and abs(dependence.distance) >= 8:
                    continue
                return self._no(f"loop-carried flow dependence on '{dependence.array}'")
            # Anti and output dependences: a precise compiler recognizes that
            # preloading makes them harmless; a conservative one gives up.
            if not self.disproves_spurious_anti_deps:
                return self._no(f"assumed unsafe dependence on '{dependence.array}'")

        # Non-trivial induction variables (s453-style) need idiom recognition;
        # only the aggressive baseline re-materializes them.
        if report.inductions and not has_reduction and not self.supports_peeling:
            return self._no("unrecognized scalar induction variable")

        wraparound = [r for r in report.recurrences if r.kind == "other"]
        if wraparound and not self.supports_peeling:
            return self._no("wrap-around scalar requires loop peeling")

        if has_cf and not self.supports_if_conversion:
            return self._no("conditional control flow")

        if len(features.accesses) < self.profitability_threshold:
            return self._no("vectorization deemed unprofitable")

        efficiency = self.plain_efficiency
        if has_reduction:
            efficiency = min(efficiency, self.reduction_efficiency)
        if has_cf:
            efficiency = min(efficiency, self.if_conversion_efficiency)
        reason = "vectorized"
        if has_reduction:
            reason = "vectorized (reduction idiom)"
        elif has_cf:
            reason = "vectorized (if-conversion)"
        return CompilerDecision(compiler=self.name, vectorized=True, reason=reason,
                                efficiency=efficiency)

    def _no(self, reason: str) -> CompilerDecision:
        return CompilerDecision(compiler=self.name, vectorized=False,
                                reason=f"not vectorized: {reason}", efficiency=0.0)
