"""The three baseline compiler personalities.

Calibration follows the qualitative picture in the paper's RQ3 discussion:

* **ICC** performs a sophisticated dependence analysis tightly integrated
  with its vectorizer, handles wrap-around scalars via peeling, and produces
  fast vector code — it is the hardest baseline to beat.
* **GCC** and **Clang** frequently disable vectorization entirely when any
  potential dependence is present, though both apply if-conversion to loops
  with simple control flow and vectorize reductions robustly.
"""

from __future__ import annotations

from repro.compilers.base import SimulatedCompiler

GCC = SimulatedCompiler(
    name="GCC",
    version="10.5.0",
    disproves_spurious_anti_deps=False,
    gives_up_on_unknown_deps=True,
    supports_if_conversion=True,
    if_conversion_efficiency=0.62,
    reduction_efficiency=0.80,
    supports_peeling=False,
    supports_goto_control_flow=False,
    plain_efficiency=0.88,
    scalar_efficiency=1.0,
)

CLANG = SimulatedCompiler(
    name="Clang",
    version="19.0.0",
    disproves_spurious_anti_deps=False,
    gives_up_on_unknown_deps=True,
    supports_if_conversion=True,
    if_conversion_efficiency=0.68,
    reduction_efficiency=0.85,
    supports_peeling=False,
    supports_goto_control_flow=False,
    plain_efficiency=0.92,
    scalar_efficiency=1.1,
)

ICC = SimulatedCompiler(
    name="ICC",
    version="2021.10.0",
    disproves_spurious_anti_deps=False,
    gives_up_on_unknown_deps=False,
    supports_if_conversion=True,
    if_conversion_efficiency=0.85,
    reduction_efficiency=0.95,
    supports_peeling=True,
    supports_goto_control_flow=False,
    plain_efficiency=1.0,
    scalar_efficiency=2.3,
)


def all_compilers() -> list[SimulatedCompiler]:
    return [GCC, CLANG, ICC]


def compiler_by_name(name: str) -> SimulatedCompiler:
    for compiler in all_compilers():
        if compiler.name.lower() == name.lower():
            return compiler
    raise KeyError(f"unknown compiler {name!r}")
