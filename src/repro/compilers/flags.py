"""Compiler versions and flags (paper Table 1).

The table is configuration data in the paper; reproducing it means printing
the same rows from the baseline definitions, so the flag strings live here as
structured data used by both the simulated compilers and the Table 1
benchmark target.
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True)
class CompilerFlags:
    name: str
    version: str
    unvectorized_flags: str
    vectorized_flags: str


COMPILER_FLAG_TABLE: list[CompilerFlags] = [
    CompilerFlags(
        name="GCC",
        version="10.5.0",
        unvectorized_flags="-O3 -mavx2 -lm -W",
        vectorized_flags=(
            "-O3 -mavx2 -lm -ftree-vectorizer-verbose=3 "
            "-ftree-vectorize -fopt-info-vec-optimized"
        ),
    ),
    CompilerFlags(
        name="Clang",
        version="19.0.0",
        unvectorized_flags="-O3 -mavx2 -lm -fno-tree-vectorize",
        vectorized_flags=(
            "-O3 -mavx2 -fstrict-aliasing -fvectorize "
            "-fslp-vectorize-aggressive -Rpass-analysis=loop-vectorize -lm"
        ),
    ),
    CompilerFlags(
        name="ICC",
        version="2021.10.0",
        unvectorized_flags="-restrict -std=c99 -O3 -ip -no-vec",
        vectorized_flags="-restrict -std=c99 -O3 -ip -vec -xAVX2",
    ),
]


def flags_for(compiler_name: str) -> CompilerFlags:
    for entry in COMPILER_FLAG_TABLE:
        if entry.name.lower() == compiler_name.lower():
            return entry
    raise KeyError(f"unknown compiler {compiler_name!r}")
