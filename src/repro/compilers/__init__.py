"""Simulated auto-vectorizing compiler baselines (GCC / Clang / ICC stand-ins).

The paper compares LLM-generated vector code against three production
compilers.  Here each baseline is modelled as an auto-vectorization *decision
procedure* (built on the shared dependence analysis, with per-compiler
precision and aggressiveness knobs) plus the shared cycle cost model in
:mod:`repro.perf`: a baseline that decides it can vectorize a loop gets
vector-cost execution, otherwise scalar-cost execution.  The decision knobs
are calibrated to the qualitative behaviour the paper reports — ICC's
dependence analysis is the most precise and also handles wrap-around scalars
via peeling, GCC and Clang frequently give up in the presence of potential
dependences or complex control flow.
"""

from repro.compilers.base import CompilerDecision, SimulatedCompiler
from repro.compilers.suites import CLANG, GCC, ICC, all_compilers, compiler_by_name
from repro.compilers.flags import COMPILER_FLAG_TABLE, CompilerFlags

__all__ = [
    "CompilerDecision",
    "SimulatedCompiler",
    "CLANG",
    "GCC",
    "ICC",
    "all_compilers",
    "compiler_by_name",
    "COMPILER_FLAG_TABLE",
    "CompilerFlags",
]
