"""Lane element types: the dtype axis of the pipeline.

A :class:`LaneType` describes one integer element type a vector register can
be carved into — its bit width, its C spelling, and its numpy dtype name.
Everything that used to be hardwired to 32 bits (``wrap32``, ``LANE_BITS``,
``numpy.int32`` kernels, ``_epi32``/``_s32`` spellings, 32-bit symexec
terms) is parameterized by these descriptors instead, the same way
:class:`repro.targets.TargetISA` made vector *width* a data axis.

Three types ship: :data:`INT16`, :data:`INT32` (the default — the paper's
universe) and :data:`INT64`.  Lane counts are never stored here: a target's
lane count for a dtype is ``register_bits // dtype.bits``, owned by
:meth:`repro.targets.TargetISA.lanes_for`.
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True)
class LaneType:
    """One integer element type, described entirely as data."""

    #: Canonical identifier used in configs, caches, suffixes and reports.
    name: str
    #: Element width in bits; every wraparound reduces modulo ``2**bits``.
    bits: int
    #: The C scalar spelling kernels declare (``int`` for the default type,
    #: the ``<stdint.h>`` fixed-width names otherwise).
    c_name: str
    #: numpy dtype name for the bulk lane kernels.
    np_name: str

    @property
    def mask(self) -> int:
        return (1 << self.bits) - 1

    @property
    def sign_bit(self) -> int:
        return 1 << (self.bits - 1)

    @property
    def bytes(self) -> int:
        return self.bits // 8

    def wrap(self, value: int) -> int:
        """Reduce ``value`` to this type's signed two's-complement range."""
        value &= self.mask
        if value & self.sign_bit:
            value -= 1 << self.bits
        return value

    def to_unsigned(self, value: int) -> int:
        """Interpret a signed value of this type as unsigned."""
        return value & self.mask

    def __str__(self) -> str:  # pragma: no cover - debugging aid
        return self.name


INT16 = LaneType(name="int16", bits=16, c_name="int16_t", np_name="int16")
INT32 = LaneType(name="int32", bits=32, c_name="int", np_name="int32")
INT64 = LaneType(name="int64", bits=64, c_name="int64_t", np_name="int64")

#: Every supported element type, narrow to wide.
ALL_LANE_TYPES: tuple[LaneType, ...] = (INT16, INT32, INT64)

DEFAULT_LANE_TYPE = INT32

_BY_NAME = {t.name: t for t in ALL_LANE_TYPES}

_ALIASES = {
    **{t.name: t.name for t in ALL_LANE_TYPES},
    **{t.c_name: t.name for t in ALL_LANE_TYPES},
    "int32_t": "int32",
    "i16": "int16", "i32": "int32", "i64": "int64",
}


def lane_type_names() -> list[str]:
    """Canonical names of all supported element types, narrow to wide."""
    return [t.name for t in ALL_LANE_TYPES]


def get_lane_type(dtype: "LaneType | str | None") -> LaneType:
    """Resolve a dtype spec (instance, name/alias, or None -> default)."""
    if dtype is None:
        return DEFAULT_LANE_TYPE
    if isinstance(dtype, LaneType):
        return dtype
    canonical = _ALIASES.get(str(dtype).strip().lower())
    if canonical is None:
        known = ", ".join(sorted(_BY_NAME))
        raise ValueError(f"unknown lane element type {dtype!r} (known: {known})")
    return _BY_NAME[canonical]
