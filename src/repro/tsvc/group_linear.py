"""TSVC kernels: linear dependence testing, induction variables, strides, and global data flow.

These are the s1xx / s2xx-series loops whose vectorizability hinges on how
precisely the compiler can reason about loop-carried dependences and
induction variables.  All kernels operate on ``int`` arrays (the paper's 149
integer loops) and are expressed in the supported C subset: where the
original TSVC kernel uses a 2-D array it has been re-expressed over 1-D
arrays with equivalent dependence structure.
"""

from repro.tsvc.registry import KernelSpec

KERNELS = [
    KernelSpec(
        name="s000",
        tsvc_class="linear dependence",
        description="simple copy with an add; trivially vectorizable",
        source="""
void s000(int n, int *a, int *b) {
    for (int i = 0; i < n; i++) {
        a[i] = b[i] + 1;
    }
}
""",
    ),
    KernelSpec(
        name="s111",
        tsvc_class="linear dependence",
        description="stride-2 update from neighbouring element",
        source="""
void s111(int n, int *a, int *b) {
    for (int i = 1; i < n; i += 2) {
        a[i] = a[i - 1] + b[i];
    }
}
""",
    ),
    KernelSpec(
        name="s1111",
        tsvc_class="linear dependence",
        description="stride-2 gather into packed output",
        source="""
void s1111(int n, int *a, int *b, int *c, int *d) {
    for (int i = 0; i < n / 2; i++) {
        a[2 * i] = c[i] * b[i] + d[i] * b[i] + c[i] * c[i] + d[i] * b[i] + d[i] * c[i];
    }
}
""",
    ),
    KernelSpec(
        name="s112",
        tsvc_class="linear dependence",
        description="backward loop with forward dependence distance 1",
        source="""
void s112(int n, int *a, int *b) {
    for (int i = n - 2; i >= 0; i--) {
        a[i + 1] = a[i] + b[i];
    }
}
""",
    ),
    KernelSpec(
        name="s1112",
        tsvc_class="linear dependence",
        description="backward iteration, independent updates",
        source="""
void s1112(int n, int *a, int *b) {
    for (int i = n - 1; i >= 0; i--) {
        a[i] = b[i] + 1;
    }
}
""",
    ),
    KernelSpec(
        name="s113",
        tsvc_class="linear dependence",
        description="all iterations read element 0 written before the loop body",
        source="""
void s113(int n, int *a, int *b) {
    for (int i = 1; i < n; i++) {
        a[i] = a[0] + b[i];
    }
}
""",
    ),
    KernelSpec(
        name="s1113",
        tsvc_class="linear dependence",
        description="read of the middle element that one iteration overwrites",
        source="""
void s1113(int n, int *a, int *b) {
    for (int i = 0; i < n; i++) {
        a[i] = a[n / 2] + b[i];
    }
}
""",
    ),
    KernelSpec(
        name="s114",
        tsvc_class="linear dependence",
        description="triangular access re-expressed over 1-D arrays",
        source="""
void s114(int n, int *a, int *b, int *c) {
    for (int i = 0; i < n; i++) {
        a[i] = b[n - 1 - i] + c[i];
    }
}
""",
    ),
    KernelSpec(
        name="s115",
        tsvc_class="linear dependence",
        description="saxpy-like update against a fixed earlier element",
        source="""
void s115(int n, int *a, int *b, int *c) {
    for (int i = 1; i < n; i++) {
        a[i] = a[i] - b[i] * a[i - 1];
    }
}
""",
    ),
    KernelSpec(
        name="s116",
        tsvc_class="linear dependence",
        description="five-point unrolled copy chain with stride 5",
        source="""
void s116(int n, int *a) {
    for (int i = 0; i < n - 5; i += 5) {
        a[i] = a[i + 1] * a[i];
        a[i + 1] = a[i + 2] * a[i + 1];
        a[i + 2] = a[i + 3] * a[i + 2];
        a[i + 3] = a[i + 4] * a[i + 3];
        a[i + 4] = a[i + 5] * a[i + 4];
    }
}
""",
    ),
    KernelSpec(
        name="s118",
        tsvc_class="linear dependence",
        description="prefix-style accumulation from earlier elements",
        source="""
void s118(int n, int *a, int *b) {
    for (int i = 1; i < n; i++) {
        a[i] = a[i - 1] + b[i - 1];
    }
}
""",
    ),
    KernelSpec(
        name="s119",
        tsvc_class="linear dependence",
        description="update using the previous output element and two inputs",
        source="""
void s119(int n, int *a, int *b, int *c) {
    for (int i = 1; i < n; i++) {
        a[i] = a[i - 1] + b[i] * c[i];
    }
}
""",
    ),
    KernelSpec(
        name="s121",
        tsvc_class="induction variable",
        description="read one ahead of the element being written",
        source="""
void s121(int n, int *a, int *b) {
    for (int i = 0; i < n - 1; i++) {
        int j = i + 1;
        a[i] = a[j] + b[i];
    }
}
""",
    ),
    KernelSpec(
        name="s122",
        tsvc_class="induction variable",
        description="induction variable driven by two parameters with backward access",
        source="""
void s122(int n, int n1, int n3, int *a, int *b) {
    int j = 1;
    int k = 0;
    for (int i = n1 - 1; i < n; i += n3) {
        k += j;
        a[i] += b[n - k];
    }
}
""",
    ),
    KernelSpec(
        name="s123",
        tsvc_class="induction variable",
        description="conditional extra increment of the output index",
        source="""
void s123(int n, int *a, int *b, int *c, int *d, int *e) {
    int j = -1;
    for (int i = 0; i < n / 2; i++) {
        j++;
        a[j] = b[i] + d[i] * e[i];
        if (c[i] > 0) {
            j++;
            a[j] = c[i] + d[i] * e[i];
        }
    }
}
""",
    ),
    KernelSpec(
        name="s124",
        tsvc_class="induction variable",
        description="induction index incremented in both branches (paper Figure 4)",
        source="""
void s124(int *a, int *b, int *c, int *d, int *e, int n) {
    int j = -1;
    for (int i = 0; i < n; i++) {
        if (b[i] > 0) {
            j++;
            a[j] = b[i] + d[i] * e[i];
        } else {
            j++;
            a[j] = c[i] + d[i] * e[i];
        }
    }
}
""",
    ),
    KernelSpec(
        name="s125",
        tsvc_class="induction variable",
        description="flattened 2-D update with a running output index",
        source="""
void s125(int n, int *a, int *b, int *c) {
    int k = -1;
    for (int i = 0; i < n; i++) {
        k++;
        a[k] = b[i] + c[i] * c[i];
    }
}
""",
    ),
    KernelSpec(
        name="s126",
        tsvc_class="induction variable",
        description="running index advanced by a non-unit amount each iteration",
        source="""
void s126(int n, int *a, int *b) {
    int k = 1;
    for (int i = 0; i < n / 2; i++) {
        a[k] = a[k - 1] + b[i];
        k += 2;
    }
}
""",
    ),
    KernelSpec(
        name="s127",
        tsvc_class="induction variable",
        description="induction variable with two increments per iteration",
        source="""
void s127(int n, int *a, int *b, int *c, int *d, int *e) {
    int j = -1;
    for (int i = 0; i < n / 2; i++) {
        j++;
        a[j] = b[i] + c[i] * d[i];
        j++;
        a[j] = b[i] + d[i] * e[i];
    }
}
""",
    ),
    KernelSpec(
        name="s128",
        tsvc_class="induction variable",
        description="coupled induction variables with stride-2 writes",
        source="""
void s128(int n, int *a, int *b, int *c, int *d) {
    int j = -1;
    for (int i = 0; i < n / 2; i++) {
        int k = j + 1;
        a[i] = b[k] - d[i];
        j = k + 1;
        b[k] = a[i] + c[k];
    }
}
""",
    ),
    KernelSpec(
        name="s131",
        tsvc_class="global data flow",
        description="offset read via a loop-invariant variable",
        source="""
void s131(int n, int *a, int *b) {
    int m = 1;
    for (int i = 0; i < n - 1; i++) {
        a[i] = a[i + m] + b[i];
    }
}
""",
    ),
    KernelSpec(
        name="s132",
        tsvc_class="global data flow",
        description="write one ahead using two invariant offsets",
        source="""
void s132(int n, int *a, int *b, int *c) {
    int m = 0;
    int j = m;
    int k = m + 1;
    for (int i = 1; i < n; i++) {
        a[i] = a[i - j] * b[i] + c[k];
    }
}
""",
    ),
    KernelSpec(
        name="s141",
        tsvc_class="global data flow",
        description="packed lower-triangle style accumulation",
        source="""
void s141(int n, int *a, int *b) {
    for (int i = 0; i < n; i++) {
        a[i] = a[i] + b[i] * b[i];
    }
}
""",
    ),
    KernelSpec(
        name="s151",
        tsvc_class="interprocedural data flow",
        description="simple add of neighbouring element (inlined helper)",
        source="""
void s151(int n, int *a, int *b) {
    for (int i = 0; i < n - 1; i++) {
        a[i] = a[i + 1] + b[i];
    }
}
""",
    ),
    KernelSpec(
        name="s152",
        tsvc_class="interprocedural data flow",
        description="update through an inlined helper touching three arrays",
        source="""
void s152(int n, int *a, int *b, int *c, int *d, int *e) {
    for (int i = 0; i < n; i++) {
        b[i] = d[i] * e[i];
        a[i] = a[i] + b[i] * c[i];
    }
}
""",
    ),
    KernelSpec(
        name="s161",
        tsvc_class="control flow",
        description="branch selecting between two outputs with a forward write",
        source="""
void s161(int n, int *a, int *b, int *c, int *d) {
    for (int i = 0; i < n - 1; i++) {
        if (b[i] < 0) {
            c[i + 1] = a[i] + d[i] * d[i];
        } else {
            a[i] = c[i] + d[i] * b[i];
        }
    }
}
""",
    ),
    KernelSpec(
        name="s162",
        tsvc_class="control flow",
        description="guarded loop body behind a scalar condition",
        source="""
void s162(int n, int k, int *a, int *b, int *c) {
    if (k > 0) {
        for (int i = 0; i < n - 1; i++) {
            a[i] = a[i + k] + b[i] * c[i];
        }
    }
}
""",
    ),
    KernelSpec(
        name="s171",
        tsvc_class="symbolics",
        description="strided store with a symbolic stride",
        source="""
void s171(int n, int inc, int *a, int *b) {
    for (int i = 0; i < n; i++) {
        a[i * inc] += b[i];
    }
}
""",
    ),
    KernelSpec(
        name="s172",
        tsvc_class="symbolics",
        description="symbolic lower bound and stride",
        source="""
void s172(int n, int n1, int n3, int *a, int *b) {
    for (int i = n1 - 1; i < n; i += n3) {
        a[i] += b[i];
    }
}
""",
    ),
    KernelSpec(
        name="s173",
        tsvc_class="symbolics",
        description="write offset by a symbolic half-length",
        source="""
void s173(int n, int *a, int *b) {
    int k = n / 2;
    for (int i = 0; i < n / 2; i++) {
        a[i + k] = a[i] + b[i];
    }
}
""",
    ),
    KernelSpec(
        name="s174",
        tsvc_class="symbolics",
        description="same as s173 but the offset arrives as a parameter",
        source="""
void s174(int n, int m, int *a, int *b) {
    for (int i = 0; i < m; i++) {
        a[i + m] = a[i] + b[i];
    }
}
""",
    ),
    KernelSpec(
        name="s175",
        tsvc_class="symbolics",
        description="symbolic stride with read one stride ahead",
        source="""
void s175(int n, int inc, int *a, int *b) {
    for (int i = 0; i < n - 1; i += inc) {
        a[i] = a[i + inc] + b[i];
    }
}
""",
    ),
    KernelSpec(
        name="s176",
        tsvc_class="symbolics",
        description="convolution-style doubly indexed access flattened to 1-D",
        source="""
void s176(int n, int *a, int *b, int *c) {
    int m = n / 2;
    for (int i = 0; i < m; i++) {
        a[i] += b[i + m - 1] * c[m - 1];
    }
}
""",
    ),
    KernelSpec(
        name="s211",
        tsvc_class="statement reordering",
        description="forward and backward neighbour reads around two statements",
        source="""
void s211(int n, int *a, int *b, int *c, int *d, int *e) {
    for (int i = 1; i < n - 1; i++) {
        a[i] = b[i - 1] + c[i] * d[i];
        b[i] = b[i + 1] - e[i] * d[i];
    }
}
""",
    ),
    KernelSpec(
        name="s212",
        tsvc_class="statement reordering",
        description="spurious backward dependence (paper Figure 1 motivating example)",
        source="""
void s212(int n, int *a, int *b, int *c, int *d) {
    for (int i = 0; i < n - 1; i++) {
        a[i] *= c[i];
        b[i] += a[i + 1] * d[i];
    }
}
""",
    ),
    KernelSpec(
        name="s1213",
        tsvc_class="statement reordering",
        description="write then read of neighbouring elements across two arrays",
        source="""
void s1213(int n, int *a, int *b, int *c, int *d) {
    for (int i = 1; i < n - 1; i++) {
        a[i] = b[i - 1] + c[i];
        b[i] = a[i + 1] * d[i];
    }
}
""",
    ),
    KernelSpec(
        name="s221",
        tsvc_class="loop distribution",
        description="partially recurrent loop: one statement recurrent, one not",
        source="""
void s221(int n, int *a, int *b, int *c, int *d) {
    for (int i = 1; i < n; i++) {
        a[i] += c[i] * d[i];
        b[i] = b[i - 1] + a[i] + d[i];
    }
}
""",
    ),
    KernelSpec(
        name="s222",
        tsvc_class="loop distribution",
        description="recurrence sandwiched between two independent updates",
        source="""
void s222(int n, int *a, int *b, int *c, int *e) {
    for (int i = 1; i < n; i++) {
        a[i] += b[i] * c[i];
        e[i] = e[i - 1] * e[i - 1];
        a[i] -= b[i] * c[i];
    }
}
""",
    ),
    KernelSpec(
        name="s231",
        tsvc_class="loop interchange",
        description="column-sweep recurrence flattened to 1-D",
        source="""
void s231(int n, int *a, int *b) {
    for (int i = 1; i < n; i++) {
        a[i] = a[i - 1] + b[i];
    }
}
""",
    ),
    KernelSpec(
        name="s232",
        tsvc_class="loop interchange",
        description="triangular product recurrence flattened to 1-D",
        source="""
void s232(int n, int *a, int *b) {
    for (int i = 1; i < n; i++) {
        a[i] = a[i - 1] * b[i] + b[i];
    }
}
""",
    ),
]
