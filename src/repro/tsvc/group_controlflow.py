"""TSVC kernels: control flow, node splitting, crossing thresholds, and if-conversion.

The s2xx-series loops mix conditionals (and occasionally ``goto``) with array
updates; they are the kernels the paper's Figure 6 places in the
"Control Flow" and "Dependence+Control Flow" categories.
"""

from repro.tsvc.registry import KernelSpec

KERNELS = [
    KernelSpec(
        name="s233",
        tsvc_class="loop interchange",
        description="two coupled recurrences over separate arrays",
        source="""
void s233(int n, int *a, int *b, int *c) {
    for (int i = 1; i < n; i++) {
        a[i] = a[i - 1] + c[i];
        b[i] = b[i - 1] + c[i];
    }
}
""",
    ),
    KernelSpec(
        name="s235",
        tsvc_class="loop interchange",
        description="independent update followed by a recurrence on another array",
        source="""
void s235(int n, int *a, int *b, int *c, int *d) {
    for (int i = 1; i < n; i++) {
        a[i] += b[i] * c[i];
        d[i] = d[i - 1] * d[i - 1] + a[i];
    }
}
""",
    ),
    KernelSpec(
        name="s241",
        tsvc_class="node splitting",
        description="write of a then read of the next element of a",
        source="""
void s241(int n, int *a, int *b, int *c, int *d) {
    for (int i = 0; i < n - 1; i++) {
        a[i] = b[i] * c[i] * d[i];
        b[i] = a[i] * a[i + 1] * d[i];
    }
}
""",
    ),
    KernelSpec(
        name="s242",
        tsvc_class="node splitting",
        description="recurrence with two scalar addends",
        source="""
void s242(int n, int s1, int s2, int *a, int *b, int *c, int *d) {
    for (int i = 1; i < n; i++) {
        a[i] = a[i - 1] + s1 + s2 + b[i] + c[i] + d[i];
    }
}
""",
    ),
    KernelSpec(
        name="s243",
        tsvc_class="node splitting",
        description="forward read of a[i+1] between two updates",
        source="""
void s243(int n, int *a, int *b, int *c, int *d, int *e) {
    for (int i = 0; i < n - 1; i++) {
        a[i] = b[i] + c[i] * d[i];
        b[i] = a[i] + d[i] * e[i];
        a[i] = b[i] + a[i + 1] * d[i];
    }
}
""",
    ),
    KernelSpec(
        name="s244",
        tsvc_class="node splitting",
        description="write a[i] then a[i+1]; next iteration overwrites a[i+1]",
        source="""
void s244(int n, int *a, int *b, int *c, int *d) {
    for (int i = 0; i < n - 1; i++) {
        a[i] = b[i] + c[i] * d[i];
        b[i] = c[i] + b[i];
        a[i + 1] = b[i] + a[i + 1] * d[i];
    }
}
""",
    ),
    KernelSpec(
        name="s1244",
        tsvc_class="node splitting",
        description="sum written to one array, difference of neighbours to another",
        source="""
void s1244(int n, int *a, int *b, int *c, int *d) {
    for (int i = 0; i < n - 1; i++) {
        a[i] = b[i] + c[i] * c[i] + b[i] * b[i] + c[i];
        d[i] = a[i] + a[i + 1];
    }
}
""",
    ),
    KernelSpec(
        name="s251",
        tsvc_class="scalar expansion",
        description="scalar temporary defined and used in the same iteration",
        source="""
void s251(int n, int *a, int *b, int *c, int *d) {
    for (int i = 0; i < n; i++) {
        int s = b[i] + c[i] * d[i];
        a[i] = s * s;
    }
}
""",
    ),
    KernelSpec(
        name="s1251",
        tsvc_class="scalar expansion",
        description="scalar temporary reused for two outputs",
        source="""
void s1251(int n, int *a, int *b, int *c, int *d, int *e) {
    for (int i = 0; i < n; i++) {
        int s = b[i] + c[i];
        b[i] = a[i] + d[i];
        a[i] = s * e[i];
    }
}
""",
    ),
    KernelSpec(
        name="s252",
        tsvc_class="scalar expansion",
        description="scalar carried from the previous iteration",
        source="""
void s252(int n, int *a, int *b, int *c) {
    int t = 0;
    for (int i = 0; i < n; i++) {
        int s = b[i] * c[i];
        a[i] = s + t;
        t = s;
    }
}
""",
    ),
    KernelSpec(
        name="s253",
        tsvc_class="scalar expansion",
        description="conditionally defined scalar stored to a second array",
        source="""
void s253(int n, int *a, int *b, int *c, int *d) {
    for (int i = 0; i < n; i++) {
        if (a[i] > b[i]) {
            int s = a[i] - b[i] * d[i];
            c[i] += s;
            a[i] = s;
        }
    }
}
""",
    ),
    KernelSpec(
        name="s254",
        tsvc_class="scalar expansion",
        description="scalar initialized from the last array element before the loop",
        source="""
void s254(int n, int *a, int *b) {
    int x = b[n - 1];
    for (int i = 0; i < n; i++) {
        a[i] = (b[i] + x) / 2;
        x = b[i];
    }
}
""",
    ),
    KernelSpec(
        name="s255",
        tsvc_class="scalar expansion",
        description="two carried scalars from the last two array elements",
        source="""
void s255(int n, int *a, int *b) {
    int x = b[n - 1];
    int y = b[n - 2];
    for (int i = 0; i < n; i++) {
        a[i] = (b[i] + x + y) / 3;
        y = x;
        x = b[i];
    }
}
""",
    ),
    KernelSpec(
        name="s256",
        tsvc_class="scalar expansion",
        description="flattened 2-D sweep with a scalar carrying the previous column",
        source="""
void s256(int n, int *a, int *b, int *c) {
    for (int i = 1; i < n; i++) {
        a[i] = 1 - a[i - 1];
        b[i] = a[i] + c[i];
    }
}
""",
    ),
    KernelSpec(
        name="s257",
        tsvc_class="scalar expansion",
        description="recurrence through a scalar copied from another array",
        source="""
void s257(int n, int *a, int *b, int *c) {
    for (int i = 1; i < n; i++) {
        a[i] = a[i - 1] * b[i];
        b[i] = a[i] + c[i];
    }
}
""",
    ),
    KernelSpec(
        name="s258",
        tsvc_class="scalar expansion",
        description="conditionally updated carried scalar used by every iteration",
        source="""
void s258(int n, int *a, int *b, int *c, int *d, int *e) {
    int s = 0;
    for (int i = 0; i < n; i++) {
        if (a[i] > 0) {
            s = d[i] * d[i];
        }
        b[i] = s * c[i] + d[i];
        e[i] = (s + 1) * a[i] + b[i];
    }
}
""",
    ),
    KernelSpec(
        name="s261",
        tsvc_class="scalar renaming",
        description="scalar temporary redefined between its two uses",
        source="""
void s261(int n, int *a, int *b, int *c, int *d) {
    for (int i = 1; i < n; i++) {
        int t = a[i] + b[i];
        a[i] = t + c[i - 1];
        t = c[i] * d[i];
        c[i] = t;
    }
}
""",
    ),
    KernelSpec(
        name="s271",
        tsvc_class="control flow",
        description="single guarded update, classic if-conversion target",
        source="""
void s271(int n, int *a, int *b, int *c) {
    for (int i = 0; i < n; i++) {
        if (b[i] > 0) {
            a[i] += b[i] * c[i];
        }
    }
}
""",
    ),
    KernelSpec(
        name="s272",
        tsvc_class="control flow",
        description="two updates under one data-dependent guard",
        source="""
void s272(int n, int t, int *a, int *b, int *c, int *d, int *e) {
    for (int i = 0; i < n; i++) {
        if (e[i] >= t) {
            a[i] += c[i] * d[i];
            b[i] += c[i] * c[i];
        }
    }
}
""",
    ),
    KernelSpec(
        name="s273",
        tsvc_class="control flow",
        description="guarded update between two unconditional updates",
        source="""
void s273(int n, int *a, int *b, int *c, int *d, int *e) {
    for (int i = 0; i < n; i++) {
        a[i] += d[i] * e[i];
        if (a[i] < 0) {
            b[i] += d[i] * e[i];
        }
        c[i] += a[i] * d[i];
    }
}
""",
    ),
    KernelSpec(
        name="s274",
        tsvc_class="control flow",
        description="guard depends on a value computed in the same iteration (paper RQ3 example)",
        source="""
void s274(int n, int *a, int *b, int *c, int *d, int *e) {
    for (int i = 0; i < n; i++) {
        a[i] = c[i] + e[i] * d[i];
        if (a[i] > 0) {
            b[i] = a[i] + b[i];
        } else {
            a[i] = d[i] * e[i];
        }
    }
}
""",
    ),
    KernelSpec(
        name="s275",
        tsvc_class="control flow",
        description="whole inner computation guarded by the first element",
        source="""
void s275(int n, int *a, int *b, int *c) {
    for (int i = 0; i < n; i++) {
        if (a[i] > 0) {
            a[i] = b[i] + c[i] * c[i];
        }
    }
}
""",
    ),
    KernelSpec(
        name="s2275",
        tsvc_class="control flow",
        description="unvectorizable guarded recurrence next to a plain update",
        source="""
void s2275(int n, int *a, int *b, int *c, int *d) {
    for (int i = 1; i < n; i++) {
        if (c[i] > 0) {
            a[i] = a[i - 1] + b[i];
        }
        d[i] = b[i] * c[i];
    }
}
""",
    ),
    KernelSpec(
        name="s276",
        tsvc_class="control flow",
        description="guard on the loop index against a mid-point",
        source="""
void s276(int n, int *a, int *b, int *c, int *d) {
    int mid = n / 2;
    for (int i = 0; i < n; i++) {
        if (i + 1 < mid) {
            a[i] += b[i] * c[i];
        } else {
            a[i] += b[i] * d[i];
        }
    }
}
""",
    ),
    KernelSpec(
        name="s277",
        tsvc_class="control flow",
        description="nested guards with a dependent second condition",
        source="""
void s277(int n, int *a, int *b, int *c, int *d, int *e) {
    for (int i = 0; i < n - 1; i++) {
        if (a[i] >= 0) {
            if (b[i] >= 0) {
                a[i] += c[i] * d[i];
            }
            b[i + 1] = c[i] + d[i] * e[i];
        }
    }
}
""",
    ),
    KernelSpec(
        name="s278",
        tsvc_class="control flow",
        description="goto-based control flow needing select instructions (paper RQ3 example)",
        source="""
void s278(int n, int *a, int *b, int *c, int *d, int *e) {
    for (int i = 0; i < n; i++) {
        if (a[i] > 0) {
            goto L20;
        }
        b[i] = -b[i] + d[i] * e[i];
        goto L30;
        L20:
        c[i] = -c[i] + d[i] * e[i];
        L30:
        a[i] = b[i] + c[i] * d[i];
    }
}
""",
    ),
    KernelSpec(
        name="s279",
        tsvc_class="control flow",
        description="goto control flow with an extra dependent update",
        source="""
void s279(int n, int *a, int *b, int *c, int *d, int *e) {
    for (int i = 0; i < n; i++) {
        if (a[i] > 0) {
            goto L20;
        }
        b[i] = -b[i] + d[i] * d[i];
        if (b[i] <= a[i]) {
            goto L30;
        }
        c[i] += d[i] * e[i];
        goto L30;
        L20:
        c[i] = -c[i] + e[i] * e[i];
        L30:
        a[i] = b[i] + c[i] * d[i];
    }
}
""",
    ),
    KernelSpec(
        name="s1279",
        tsvc_class="control flow",
        description="two independent guards writing the same output",
        source="""
void s1279(int n, int *a, int *b, int *c, int *d, int *e) {
    for (int i = 0; i < n; i++) {
        if (a[i] < 0) {
            if (b[i] > a[i]) {
                c[i] += d[i] * e[i];
            }
        }
    }
}
""",
    ),
    KernelSpec(
        name="s2710",
        tsvc_class="control flow",
        description="guard selecting among three different updates",
        source="""
void s2710(int n, int x, int *a, int *b, int *c, int *d, int *e) {
    for (int i = 0; i < n; i++) {
        if (a[i] > b[i]) {
            a[i] += b[i] * d[i];
            if (n > 10) {
                c[i] += d[i] * d[i];
            } else {
                c[i] = d[i] * e[i] + 1;
            }
        } else {
            b[i] = a[i] + e[i] * e[i];
            if (x > 0) {
                c[i] = a[i] + d[i] * d[i];
            } else {
                c[i] += e[i] * e[i];
            }
        }
    }
}
""",
    ),
    KernelSpec(
        name="s2711",
        tsvc_class="control flow",
        description="guard against zero before accumulating",
        source="""
void s2711(int n, int *a, int *b, int *c) {
    for (int i = 0; i < n; i++) {
        if (b[i] != 0) {
            a[i] += b[i] * c[i];
        }
    }
}
""",
    ),
    KernelSpec(
        name="s2712",
        tsvc_class="control flow",
        description="relational guard between two arrays before accumulating",
        source="""
void s2712(int n, int *a, int *b, int *c) {
    for (int i = 0; i < n; i++) {
        if (a[i] > b[i]) {
            a[i] += b[i] * c[i];
        }
    }
}
""",
    ),
    KernelSpec(
        name="s281",
        tsvc_class="crossing thresholds",
        description="mirror-image read of the output array",
        source="""
void s281(int n, int *a, int *b, int *c) {
    for (int i = 0; i < n; i++) {
        int x = a[n - i - 1] + b[i] * c[i];
        a[i] = x - 1;
        b[i] = x;
    }
}
""",
    ),
    KernelSpec(
        name="s1281",
        tsvc_class="crossing thresholds",
        description="output overwrites input used for its own computation",
        source="""
void s1281(int n, int *a, int *b, int *c, int *d, int *e) {
    for (int i = 0; i < n; i++) {
        int x = b[i] * c[i] + a[i] * d[i] + e[i];
        a[i] = x - 1;
        b[i] = x;
    }
}
""",
    ),
    KernelSpec(
        name="s291",
        tsvc_class="loop peeling",
        description="wrap-around scalar carrying the previous index (paper RQ3 example)",
        source="""
void s291(int n, int *a, int *b) {
    int im1 = n - 1;
    for (int i = 0; i < n; i++) {
        a[i] = (b[i] + b[im1]) * 2;
        im1 = i;
    }
}
""",
    ),
    KernelSpec(
        name="s292",
        tsvc_class="loop peeling",
        description="two wrap-around scalars carrying the previous two indices",
        source="""
void s292(int n, int *a, int *b) {
    int im1 = n - 1;
    int im2 = n - 2;
    for (int i = 0; i < n; i++) {
        a[i] = (b[i] + b[im1] + b[im2]) * 2;
        im2 = im1;
        im1 = i;
    }
}
""",
    ),
    KernelSpec(
        name="s293",
        tsvc_class="loop peeling",
        description="every element set from the first element of the same array",
        source="""
void s293(int n, int *a) {
    for (int i = 0; i < n; i++) {
        a[i] = a[0];
    }
}
""",
    ),
    KernelSpec(
        name="s2101",
        tsvc_class="diagonals",
        description="diagonal update flattened to stride n+1, expressed with a product index",
        source="""
void s2101(int n, int *a, int *b) {
    for (int i = 0; i < n; i++) {
        a[i] += b[i] * b[i];
    }
}
""",
    ),
    KernelSpec(
        name="s2102",
        tsvc_class="diagonals",
        description="identity-matrix style initialization flattened to 1-D",
        source="""
void s2102(int n, int *a) {
    for (int i = 0; i < n; i++) {
        a[i] = 0;
        a[i] = a[i] + 1;
    }
}
""",
    ),
    KernelSpec(
        name="s2111",
        tsvc_class="wavefronts",
        description="wavefront recurrence flattened to 1-D",
        source="""
void s2111(int n, int *a) {
    for (int i = 1; i < n; i++) {
        a[i] = (a[i] + a[i - 1]) / 2;
    }
}
""",
    ),
]
