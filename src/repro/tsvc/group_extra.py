"""TSVC kernels: additional loops completing the 149-kernel suite.

These five kernels round the re-expressed suite out to the paper's count of
149 integer test programs: loop-invariant code motion, equivalence-class
style aliasing patterns re-expressed over disjoint arrays, and two more
control-flow variants.
"""

from repro.tsvc.registry import KernelSpec

KERNELS = [
    KernelSpec(
        name="s1119",
        tsvc_class="linear dependence",
        description="sum of the previous output row flattened to 1-D",
        source="""
void s1119(int n, int *a, int *b) {
    for (int i = 1; i < n; i++) {
        a[i] = a[i - 1] + b[i] * b[i];
    }
}
""",
    ),
    KernelSpec(
        name="s2251",
        tsvc_class="scalar expansion",
        description="scalar temporary carried between two statements in one iteration",
        source="""
void s2251(int n, int *a, int *b, int *c, int *e) {
    for (int i = 0; i < n; i++) {
        int s = b[i] + c[i];
        b[i] = a[i] + e[i];
        a[i] = s * e[i];
    }
}
""",
    ),
    KernelSpec(
        name="s13110",
        tsvc_class="reductions",
        description="sum of products of three arrays",
        source="""
void s13110(int n, int *a, int *b, int *c, int *out) {
    int sum = 0;
    for (int i = 0; i < n; i++) {
        sum += a[i] * b[i] * c[i];
    }
    out[0] = sum;
}
""",
    ),
    KernelSpec(
        name="s2712b",
        tsvc_class="control flow",
        description="guarded scaled accumulation with an extra unconditional store",
        source="""
void s2712b(int n, int *a, int *b, int *c, int *d) {
    for (int i = 0; i < n; i++) {
        d[i] = b[i] + c[i];
        if (a[i] > b[i]) {
            a[i] += c[i] * d[i];
        }
    }
}
""",
    ),
    KernelSpec(
        name="vneg",
        tsvc_class="vector idioms",
        description="elementwise negation",
        source="""
void vneg(int n, int *a, int *b) {
    for (int i = 0; i < n; i++) {
        a[i] = -b[i];
    }
}
""",
    ),
]
