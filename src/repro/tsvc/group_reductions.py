"""TSVC kernels: reductions, recurrences, searches, and packing.

The s3xx-series loops carry a value across iterations (sums, dot products,
min/max searches, prefix counts).  Vectorizing them needs the reduction
patterns that mainstream compilers support well, which is why the paper's
Figure 6 reports only small LLM speedups in the "Reduction" categories.
"""

from repro.tsvc.registry import KernelSpec

KERNELS = [
    KernelSpec(
        name="s311",
        tsvc_class="reductions",
        description="plain sum reduction",
        source="""
void s311(int n, int *a, int *out) {
    int sum = 0;
    for (int i = 0; i < n; i++) {
        sum += a[i];
    }
    out[0] = sum;
}
""",
    ),
    KernelSpec(
        name="s3110",
        tsvc_class="reductions",
        description="max reduction also recording the position",
        source="""
void s3110(int n, int *a, int *out) {
    int max = a[0];
    int index = 0;
    for (int i = 0; i < n; i++) {
        if (a[i] > max) {
            max = a[i];
            index = i;
        }
    }
    out[0] = max;
    out[1] = index;
}
""",
    ),
    KernelSpec(
        name="s3111",
        tsvc_class="reductions",
        description="conditional sum of the positive elements",
        source="""
void s3111(int n, int *a, int *out) {
    int sum = 0;
    for (int i = 0; i < n; i++) {
        if (a[i] > 0) {
            sum += a[i];
        }
    }
    out[0] = sum;
}
""",
    ),
    KernelSpec(
        name="s3112",
        tsvc_class="reductions",
        description="running (prefix) sum stored to an output array",
        source="""
void s3112(int n, int *a, int *b, int *out) {
    int sum = 0;
    for (int i = 0; i < n; i++) {
        sum += a[i];
        b[i] = sum;
    }
    out[0] = sum;
}
""",
    ),
    KernelSpec(
        name="s3113",
        tsvc_class="reductions",
        description="max of absolute values",
        source="""
void s3113(int n, int *a, int *out) {
    int max = abs(a[0]);
    for (int i = 0; i < n; i++) {
        if (abs(a[i]) > max) {
            max = abs(a[i]);
        }
    }
    out[0] = max;
}
""",
    ),
    KernelSpec(
        name="s312",
        tsvc_class="reductions",
        description="product reduction",
        source="""
void s312(int n, int *a, int *out) {
    int prod = 1;
    for (int i = 0; i < n; i++) {
        prod *= a[i];
    }
    out[0] = prod;
}
""",
    ),
    KernelSpec(
        name="s313",
        tsvc_class="reductions",
        description="dot-product reduction",
        source="""
void s313(int n, int *a, int *b, int *out) {
    int dot = 0;
    for (int i = 0; i < n; i++) {
        dot += a[i] * b[i];
    }
    out[0] = dot;
}
""",
    ),
    KernelSpec(
        name="s314",
        tsvc_class="reductions",
        description="max-value search",
        source="""
void s314(int n, int *a, int *out) {
    int x = a[0];
    for (int i = 0; i < n; i++) {
        if (a[i] > x) {
            x = a[i];
        }
    }
    out[0] = x;
}
""",
    ),
    KernelSpec(
        name="s315",
        tsvc_class="reductions",
        description="max-value search also tracking the index",
        source="""
void s315(int n, int *a, int *out) {
    int x = a[0];
    int index = 0;
    for (int i = 0; i < n; i++) {
        if (a[i] > x) {
            x = a[i];
            index = i;
        }
    }
    out[0] = x + index + 1;
}
""",
    ),
    KernelSpec(
        name="s316",
        tsvc_class="reductions",
        description="min-value search",
        source="""
void s316(int n, int *a, int *out) {
    int x = a[0];
    for (int i = 1; i < n; i++) {
        if (a[i] < x) {
            x = a[i];
        }
    }
    out[0] = x;
}
""",
    ),
    KernelSpec(
        name="s317",
        tsvc_class="reductions",
        description="repeated halving product (loop-invariant recurrence)",
        source="""
void s317(int n, int *out) {
    int q = 1;
    for (int i = 0; i < n / 2; i++) {
        q *= 2;
    }
    out[0] = q;
}
""",
    ),
    KernelSpec(
        name="s318",
        tsvc_class="reductions",
        description="max of absolute values with a stride parameter",
        source="""
void s318(int n, int inc, int *a, int *out) {
    int k = 0;
    int index = 0;
    int max = abs(a[0]);
    k += inc;
    for (int i = 1; i < n; i++) {
        if (abs(a[k]) > max) {
            index = i;
            max = abs(a[k]);
        }
        k += inc;
    }
    out[0] = max + index + 1;
}
""",
    ),
    KernelSpec(
        name="s319",
        tsvc_class="reductions",
        description="coupled sum reduction over two freshly written arrays",
        source="""
void s319(int n, int *a, int *b, int *c, int *d, int *e, int *out) {
    int sum = 0;
    for (int i = 0; i < n; i++) {
        a[i] = c[i] + d[i];
        sum += a[i];
        b[i] = c[i] + e[i];
        sum += b[i];
    }
    out[0] = sum;
}
""",
    ),
    KernelSpec(
        name="s321",
        tsvc_class="recurrences",
        description="first-order linear recurrence",
        source="""
void s321(int n, int *a, int *b) {
    for (int i = 1; i < n; i++) {
        a[i] += a[i - 1] * b[i];
    }
}
""",
    ),
    KernelSpec(
        name="s322",
        tsvc_class="recurrences",
        description="second-order linear recurrence",
        source="""
void s322(int n, int *a, int *b, int *c) {
    for (int i = 2; i < n; i++) {
        a[i] = a[i] + a[i - 1] * b[i] + a[i - 2] * c[i];
    }
}
""",
    ),
    KernelSpec(
        name="s323",
        tsvc_class="recurrences",
        description="coupled recurrence across two arrays",
        source="""
void s323(int n, int *a, int *b, int *c, int *d, int *e) {
    for (int i = 1; i < n; i++) {
        a[i] = b[i - 1] + c[i] * d[i];
        b[i] = a[i] + c[i] * e[i];
    }
}
""",
    ),
    KernelSpec(
        name="s331",
        tsvc_class="search loops",
        description="remember the index of the last negative element",
        source="""
void s331(int n, int *a, int *out) {
    int j = -1;
    for (int i = 0; i < n; i++) {
        if (a[i] < 0) {
            j = i;
        }
    }
    out[0] = j;
}
""",
    ),
    KernelSpec(
        name="s332",
        tsvc_class="search loops",
        description="first value greater than a threshold (early exit)",
        source="""
void s332(int n, int t, int *a, int *out) {
    int index = -2;
    int value = -1;
    for (int i = 0; i < n; i++) {
        if (a[i] > t) {
            index = i;
            value = a[i];
            break;
        }
    }
    out[0] = value + index;
}
""",
    ),
    KernelSpec(
        name="s341",
        tsvc_class="packing",
        description="pack the positive elements into the front of the output",
        source="""
void s341(int n, int *a, int *b) {
    int j = -1;
    for (int i = 0; i < n; i++) {
        if (b[i] > 0) {
            j++;
            a[j] = b[i];
        }
    }
}
""",
    ),
    KernelSpec(
        name="s342",
        tsvc_class="packing",
        description="unpack into positions selected by a predicate",
        source="""
void s342(int n, int *a, int *b) {
    int j = -1;
    for (int i = 0; i < n; i++) {
        if (a[i] > 0) {
            j++;
            a[i] = b[j];
        }
    }
}
""",
    ),
    KernelSpec(
        name="s343",
        tsvc_class="packing",
        description="pack of products guarded by a mask array",
        source="""
void s343(int n, int *a, int *b, int *c) {
    int k = -1;
    for (int i = 0; i < n; i++) {
        if (b[i] > 0) {
            k++;
            c[k] = a[i] * b[i];
        }
    }
}
""",
    ),
    KernelSpec(
        name="s351",
        tsvc_class="loop rerolling",
        description="manually unrolled scaled accumulation (stride 5)",
        source="""
void s351(int n, int *a, int *b, int *c) {
    int alpha = c[0];
    for (int i = 0; i < n - 5; i += 5) {
        a[i] += alpha * b[i];
        a[i + 1] += alpha * b[i + 1];
        a[i + 2] += alpha * b[i + 2];
        a[i + 3] += alpha * b[i + 3];
        a[i + 4] += alpha * b[i + 4];
    }
}
""",
    ),
    KernelSpec(
        name="s1351",
        tsvc_class="loop rerolling",
        description="plain element-wise add written with explicit pointers",
        source="""
void s1351(int n, int *a, int *b, int *c) {
    for (int i = 0; i < n; i++) {
        a[i] = b[i] + c[i];
    }
}
""",
    ),
    KernelSpec(
        name="s352",
        tsvc_class="loop rerolling",
        description="manually unrolled dot product (stride 5)",
        source="""
void s352(int n, int *a, int *b, int *out) {
    int dot = 0;
    for (int i = 0; i < n - 5; i += 5) {
        dot = dot + a[i] * b[i] + a[i + 1] * b[i + 1] + a[i + 2] * b[i + 2]
            + a[i + 3] * b[i + 3] + a[i + 4] * b[i + 4];
    }
    out[0] = dot;
}
""",
    ),
    KernelSpec(
        name="s353",
        tsvc_class="loop rerolling",
        description="unrolled scaled add through an index array re-expressed densely",
        source="""
void s353(int n, int *a, int *b, int *c) {
    int alpha = c[0];
    for (int i = 0; i < n - 5; i += 5) {
        a[i] += alpha * b[i];
        a[i + 1] += alpha * b[i + 2];
        a[i + 2] += alpha * b[i + 4];
        a[i + 3] += alpha * b[i + 1];
        a[i + 4] += alpha * b[i + 3];
    }
}
""",
    ),
    KernelSpec(
        name="vsumr",
        tsvc_class="reductions",
        description="straight-forward sum reduction (paper RQ3 example)",
        source="""
void vsumr(int n, int *a, int *out) {
    int sum = 0;
    for (int i = 0; i < n; i++) {
        sum += a[i];
    }
    out[0] = sum;
}
""",
    ),
    KernelSpec(
        name="vdotr",
        tsvc_class="reductions",
        description="dot-product reduction over two arrays",
        source="""
void vdotr(int n, int *a, int *b, int *out) {
    int dot = 0;
    for (int i = 0; i < n; i++) {
        dot += a[i] * b[i];
    }
    out[0] = dot;
}
""",
    ),
    KernelSpec(
        name="vbor",
        tsvc_class="reductions",
        description="wide expression feeding a per-element product accumulation",
        source="""
void vbor(int n, int *a, int *b, int *c, int *d, int *e, int *x) {
    for (int i = 0; i < n; i++) {
        int s1 = b[i] + c[i] + d[i];
        int s2 = b[i] * c[i] + d[i] * e[i];
        x[i] = s1 * s2 + a[i];
    }
}
""",
    ),
]
