"""TSVC kernels: loop bound recognition, storage classes, pointer forms, and vector idioms.

The s4xx-series and the v* idiom loops.  Several of the originals exercise
equivalenced/overlapping storage or indirect addressing; they are
re-expressed here with the same dependence structure over disjoint 1-D
arrays (documented per kernel), which keeps them meaningful for the
vectorization and verification pipeline while staying inside the C subset.
"""

from repro.tsvc.registry import KernelSpec

KERNELS = [
    KernelSpec(
        name="s421",
        tsvc_class="storage classes",
        description="copy shifted by one through a second name for the same data",
        source="""
void s421(int n, int *a, int *b) {
    for (int i = 0; i < n - 1; i++) {
        a[i] = a[i + 1] + b[i];
    }
}
""",
    ),
    KernelSpec(
        name="s1421",
        tsvc_class="storage classes",
        description="add the upper half of an array into the lower half",
        source="""
void s1421(int n, int *a, int *b) {
    int m = n / 2;
    for (int i = 0; i < m; i++) {
        b[i] = b[i + m] + a[i];
    }
}
""",
    ),
    KernelSpec(
        name="s422",
        tsvc_class="storage classes",
        description="read four ahead of the element being written",
        source="""
void s422(int n, int *a, int *b) {
    for (int i = 0; i < n - 4; i++) {
        a[i] = a[i + 4] + b[i];
    }
}
""",
    ),
    KernelSpec(
        name="s423",
        tsvc_class="storage classes",
        description="write one ahead of the element being read",
        source="""
void s423(int n, int *a, int *b) {
    for (int i = 0; i < n - 1; i++) {
        a[i + 1] = a[i] + b[i];
    }
}
""",
    ),
    KernelSpec(
        name="s424",
        tsvc_class="storage classes",
        description="offset copy with a positive distance below the vector length",
        source="""
void s424(int n, int *a, int *b) {
    for (int i = 0; i < n - 3; i++) {
        a[i + 3] = a[i] + b[i];
    }
}
""",
    ),
    KernelSpec(
        name="s431",
        tsvc_class="parameters",
        description="loop bound computed from parameters known only at run time",
        source="""
void s431(int n, int *a, int *b) {
    int k = 2 * n - n;
    k = k - n;
    for (int i = 0; i < n; i++) {
        a[i] = a[i + k] + b[i];
    }
}
""",
    ),
    KernelSpec(
        name="s441",
        tsvc_class="non-logical ifs",
        description="three-way select via the sign of a control array",
        source="""
void s441(int n, int *a, int *b, int *c, int *d) {
    for (int i = 0; i < n; i++) {
        if (d[i] < 0) {
            a[i] += b[i] * c[i];
        } else {
            if (d[i] == 0) {
                a[i] += b[i] * b[i];
            } else {
                a[i] += c[i] * c[i];
            }
        }
    }
}
""",
    ),
    KernelSpec(
        name="s442",
        tsvc_class="non-logical ifs",
        description="four-way dispatch on a control value (switch re-expressed with ifs)",
        source="""
void s442(int n, int *a, int *b, int *c, int *d, int *e, int *indx) {
    for (int i = 0; i < n; i++) {
        int sel = indx[i] & 3;
        if (sel == 0) {
            a[i] += b[i] * b[i];
        } else {
            if (sel == 1) {
                a[i] += c[i] * c[i];
            } else {
                if (sel == 2) {
                    a[i] += d[i] * d[i];
                } else {
                    a[i] += e[i] * e[i];
                }
            }
        }
    }
}
""",
    ),
    KernelSpec(
        name="s443",
        tsvc_class="non-logical ifs",
        description="two-way arithmetic select written with goto",
        source="""
void s443(int n, int *a, int *b, int *c, int *d) {
    for (int i = 0; i < n; i++) {
        if (d[i] <= 0) {
            goto L20;
        }
        a[i] += b[i] * c[i];
        goto L30;
        L20:
        a[i] += b[i] * b[i];
        L30:
        ;
    }
}
""",
    ),
    KernelSpec(
        name="s451",
        tsvc_class="intrinsic functions",
        description="elementwise polynomial (intrinsic-heavy original reduced to integer ops)",
        source="""
void s451(int n, int *a, int *b, int *c) {
    for (int i = 0; i < n; i++) {
        a[i] = b[i] * b[i] + c[i] * b[i] + c[i];
    }
}
""",
    ),
    KernelSpec(
        name="s452",
        tsvc_class="intrinsic functions",
        description="add a linear ramp of the loop index",
        source="""
void s452(int n, int *a, int *b, int *c) {
    for (int i = 0; i < n; i++) {
        a[i] = b[i] + c[i] * (i + 1);
    }
}
""",
    ),
    KernelSpec(
        name="s453",
        tsvc_class="induction variable",
        description="scalar induction variable scaling each element (paper Section 4.4 example)",
        source="""
void s453(int *a, int *b, int n) {
    int s = 0;
    for (int i = 0; i < n; i++) {
        s += 2;
        a[i] = s * b[i];
    }
}
""",
    ),
    KernelSpec(
        name="s471",
        tsvc_class="call statements",
        description="two updates with the original call site removed",
        source="""
void s471(int n, int *a, int *b, int *c, int *d, int *e, int *x) {
    int m = n;
    for (int i = 0; i < m; i++) {
        x[i] = b[i] + d[i] * d[i];
        b[i] = c[i] + d[i] * e[i];
    }
}
""",
    ),
    KernelSpec(
        name="s481",
        tsvc_class="non-local gotos",
        description="early function exit guarded by a data-dependent test",
        source="""
void s481(int n, int *a, int *b, int *c, int *d) {
    for (int i = 0; i < n; i++) {
        if (d[i] < 0) {
            return;
        }
        a[i] += b[i] * c[i];
    }
}
""",
    ),
    KernelSpec(
        name="s482",
        tsvc_class="non-local gotos",
        description="loop exit via break under a data-dependent test",
        source="""
void s482(int n, int *a, int *b, int *c) {
    for (int i = 0; i < n; i++) {
        a[i] += b[i] * c[i];
        if (c[i] > b[i]) {
            break;
        }
    }
}
""",
    ),
    KernelSpec(
        name="s491",
        tsvc_class="vector semantics",
        description="scatter through an index array",
        source="""
void s491(int n, int *a, int *b, int *c, int *d, int *indx) {
    for (int i = 0; i < n; i++) {
        a[indx[i]] = b[i] + c[i] * d[i];
    }
}
""",
    ),
    KernelSpec(
        name="s4112",
        tsvc_class="indirect addressing",
        description="gather through an index array into a dense update",
        source="""
void s4112(int n, int s, int *a, int *b, int *indx) {
    for (int i = 0; i < n; i++) {
        a[i] += b[indx[i]] * s;
    }
}
""",
    ),
    KernelSpec(
        name="s4113",
        tsvc_class="indirect addressing",
        description="both gather and scatter through the same index array",
        source="""
void s4113(int n, int *a, int *b, int *c, int *indx) {
    for (int i = 0; i < n; i++) {
        a[indx[i]] = b[indx[i]] + c[i];
    }
}
""",
    ),
    KernelSpec(
        name="s4114",
        tsvc_class="indirect addressing",
        description="gather with a reversed dense index",
        source="""
void s4114(int n, int n1, int *a, int *b, int *c, int *d, int *indx) {
    for (int i = n1 - 1; i < n; i++) {
        int k = indx[i];
        a[i] = b[i] + c[n - k - 1] * d[i];
    }
}
""",
    ),
    KernelSpec(
        name="s4115",
        tsvc_class="indirect addressing",
        description="sparse dot product through an index array",
        source="""
void s4115(int n, int *a, int *b, int *indx, int *out) {
    int sum = 0;
    for (int i = 0; i < n; i++) {
        sum += a[i] * b[indx[i]];
    }
    out[0] = sum;
}
""",
    ),
    KernelSpec(
        name="s4116",
        tsvc_class="indirect addressing",
        description="sparse reduction with a strided index stream",
        source="""
void s4116(int n, int inc, int j, int *a, int *b, int *indx, int *out) {
    int sum = 0;
    int off = inc + 1;
    for (int i = 0; i < n - 1; i++) {
        int k = indx[i] + off;
        sum += a[i] * b[k];
    }
    out[0] = sum;
}
""",
    ),
    KernelSpec(
        name="s4117",
        tsvc_class="indirect addressing",
        description="dense update with a shifted read window",
        source="""
void s4117(int n, int *a, int *b, int *c, int *d) {
    for (int i = 0; i < n - 1; i++) {
        a[i] = b[i] + c[i + 1] * d[i];
    }
}
""",
    ),
    KernelSpec(
        name="s4121",
        tsvc_class="statement functions",
        description="update through an inlined helper expression",
        source="""
void s4121(int n, int *a, int *b, int *c) {
    for (int i = 0; i < n; i++) {
        a[i] += b[i] * c[i];
    }
}
""",
    ),
    KernelSpec(
        name="va",
        tsvc_class="vector idioms",
        description="vector assignment",
        source="""
void va(int n, int *a, int *b) {
    for (int i = 0; i < n; i++) {
        a[i] = b[i];
    }
}
""",
    ),
    KernelSpec(
        name="vag",
        tsvc_class="vector idioms",
        description="vector assignment gathered through an index array",
        source="""
void vag(int n, int *a, int *b, int *indx) {
    for (int i = 0; i < n; i++) {
        a[i] = b[indx[i]];
    }
}
""",
    ),
    KernelSpec(
        name="vas",
        tsvc_class="vector idioms",
        description="vector assignment scattered through an index array",
        source="""
void vas(int n, int *a, int *b, int *indx) {
    for (int i = 0; i < n; i++) {
        a[indx[i]] = b[i];
    }
}
""",
    ),
    KernelSpec(
        name="vif",
        tsvc_class="vector idioms",
        description="vector assignment under a data-dependent guard",
        source="""
void vif(int n, int *a, int *b) {
    for (int i = 0; i < n; i++) {
        if (b[i] > 0) {
            a[i] = b[i];
        }
    }
}
""",
    ),
    KernelSpec(
        name="vpv",
        tsvc_class="vector idioms",
        description="vector plus vector",
        source="""
void vpv(int n, int *a, int *b) {
    for (int i = 0; i < n; i++) {
        a[i] += b[i];
    }
}
""",
    ),
    KernelSpec(
        name="vtv",
        tsvc_class="vector idioms",
        description="vector times vector",
        source="""
void vtv(int n, int *a, int *b) {
    for (int i = 0; i < n; i++) {
        a[i] *= b[i];
    }
}
""",
    ),
    KernelSpec(
        name="vpvtv",
        tsvc_class="vector idioms",
        description="vector plus vector times vector",
        source="""
void vpvtv(int n, int *a, int *b, int *c) {
    for (int i = 0; i < n; i++) {
        a[i] += b[i] * c[i];
    }
}
""",
    ),
    KernelSpec(
        name="vpvts",
        tsvc_class="vector idioms",
        description="vector plus vector times scalar",
        source="""
void vpvts(int n, int s, int *a, int *b) {
    for (int i = 0; i < n; i++) {
        a[i] += b[i] * s;
    }
}
""",
    ),
    KernelSpec(
        name="vpvpv",
        tsvc_class="vector idioms",
        description="vector plus vector plus vector",
        source="""
void vpvpv(int n, int *a, int *b, int *c) {
    for (int i = 0; i < n; i++) {
        a[i] += b[i] + c[i];
    }
}
""",
    ),
    KernelSpec(
        name="vtvtv",
        tsvc_class="vector idioms",
        description="vector times vector times vector",
        source="""
void vtvtv(int n, int *a, int *b, int *c) {
    for (int i = 0; i < n; i++) {
        a[i] = a[i] * b[i] * c[i];
    }
}
""",
    ),
    KernelSpec(
        name="s176b",
        tsvc_class="symbolics",
        description="inner-product style accumulation with a reversed read",
        source="""
void s176b(int n, int *a, int *b, int *c) {
    for (int i = 0; i < n; i++) {
        a[i] += b[n - i - 1] * c[i];
    }
}
""",
    ),
    KernelSpec(
        name="s2233",
        tsvc_class="loop interchange",
        description="pair of recurrences where only one direction vectorizes",
        source="""
void s2233(int n, int *a, int *b, int *c) {
    for (int i = 1; i < n; i++) {
        a[i] = a[i - 1] + c[i];
        b[i] = b[i] + c[i];
    }
}
""",
    ),
    KernelSpec(
        name="s1161",
        tsvc_class="control flow",
        description="two outputs selected by a sign test with a forward write",
        source="""
void s1161(int n, int *a, int *b, int *c, int *d) {
    for (int i = 0; i < n - 1; i++) {
        if (c[i] < 0) {
            goto L20;
        }
        a[i] = c[i] + d[i] * d[i];
        goto L10;
        L20:
        b[i] = a[i] + d[i] * d[i];
        L10:
        ;
    }
}
""",
    ),
    KernelSpec(
        name="s253b",
        tsvc_class="scalar expansion",
        description="conditional difference accumulated into a second output",
        source="""
void s253b(int n, int *a, int *b, int *c, int *d) {
    for (int i = 0; i < n; i++) {
        if (a[i] > b[i]) {
            int s = a[i] - b[i] * d[i];
            c[i] += s;
            a[i] = s;
        } else {
            c[i] += 1;
        }
    }
}
""",
    ),
]
