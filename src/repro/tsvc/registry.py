"""Kernel registry: collects every TSVC kernel group into one lookup table."""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True)
class KernelSpec:
    """One TSVC test program.

    ``tsvc_class`` is the coarse TSVC family (linear dependence, induction,
    control flow, reductions, ...), kept for reporting; the Figure-6 category
    is computed by :mod:`repro.analysis.features` from the code itself.
    """

    name: str
    source: str
    description: str
    tsvc_class: str


def _build_registry() -> dict[str, KernelSpec]:
    # Imported lazily to keep module import order simple and cycle-free.
    from repro.tsvc import group_linear, group_controlflow, group_reductions, group_misc, group_extra

    registry: dict[str, KernelSpec] = {}
    for module in (group_linear, group_controlflow, group_reductions, group_misc, group_extra):
        for spec in module.KERNELS:
            if spec.name in registry:
                raise ValueError(f"duplicate TSVC kernel name {spec.name!r}")
            registry[spec.name] = spec
    return registry


_REGISTRY: dict[str, KernelSpec] | None = None


def _registry() -> dict[str, KernelSpec]:
    global _REGISTRY
    if _REGISTRY is None:
        _REGISTRY = _build_registry()
    return _REGISTRY


def get_kernel(name: str) -> KernelSpec:
    """Return the kernel named ``name``; raises ``KeyError`` if unknown."""
    return _registry()[name]


def all_kernels() -> list[KernelSpec]:
    """Every kernel, sorted by name."""
    return [spec for _, spec in sorted(_registry().items())]


def all_kernel_names() -> list[str]:
    return sorted(_registry())


def kernel_count() -> int:
    return len(_registry())


def kernels_by_class(tsvc_class: str) -> list[KernelSpec]:
    return [spec for spec in all_kernels() if spec.tsvc_class == tsvc_class]
