"""TSVC benchmark suite (integer kernels), re-expressed in the supported C subset.

The paper evaluates on the 149 integer ``for`` loops of the Test Suite for
Vectorizing Compilers (Maleki et al.); each loop is treated as an individual
test program.  This package provides the kernels as C source strings plus
per-kernel metadata, and a loader that parses and analyzes them on demand.
"""

from repro.tsvc.registry import (
    KernelSpec,
    all_kernel_names,
    all_kernels,
    get_kernel,
    kernel_count,
    kernels_by_class,
)
from repro.tsvc.loader import LoadedKernel, load_kernel, load_suite

__all__ = [
    "KernelSpec",
    "all_kernel_names",
    "all_kernels",
    "get_kernel",
    "kernel_count",
    "kernels_by_class",
    "LoadedKernel",
    "load_kernel",
    "load_suite",
]
