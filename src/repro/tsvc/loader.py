"""Load TSVC kernels: parse, analyze and cache them for the pipeline.

The registry stores each kernel once, spelled with plain ``int`` elements
(the paper's universe).  The loader owns the dtype axis on top of that: a
kernel can be loaded retargeted to any supported lane element type, which
respells the one ``int`` token as the sized ``<stdint.h>`` name and renames
the kernel with a dtype suffix (``s000`` → ``s000_i16``) so caches, result
stores and reports can never confuse two widths of the same loop.  Derived
names are first-class: ``load_kernel("s000_i16")`` resolves without the
caller knowing about the suffix scheme, which is exactly what a campaign
worker handed a task name needs.
"""

from __future__ import annotations

import re
from dataclasses import dataclass
from functools import lru_cache

from repro.analysis.features import KernelFeatures, analyze_kernel
from repro.cfront import ast_nodes as ast
from repro.cfront.cparser import parse_function
from repro.lanetypes import get_lane_type
from repro.tsvc.registry import KernelSpec, all_kernel_names, get_kernel

#: Name suffix per non-default dtype; int32 kernels keep their bare name so
#: every pre-dtype cache key, store record and golden table stays valid.
_DTYPE_SUFFIX = {"int16": "_i16", "int64": "_i64"}
_SUFFIX_DTYPE = {suffix: dtype for dtype, suffix in _DTYPE_SUFFIX.items()}


@dataclass(frozen=True)
class LoadedKernel:
    """A parsed and analyzed TSVC kernel ready for the pipeline."""

    spec: KernelSpec
    function: ast.FunctionDef
    features: KernelFeatures

    @property
    def name(self) -> str:
        return self.spec.name

    @property
    def source(self) -> str:
        return self.spec.source

    @property
    def category(self) -> str:
        """Figure-6 category computed from the code."""
        return self.features.category


def dtype_kernel_name(name: str, dtype: "str | None") -> str:
    """The registry-distinct name of ``name`` retargeted to ``dtype``."""
    return name + _DTYPE_SUFFIX.get(get_lane_type(dtype).name, "")


def split_kernel_name(name: str) -> tuple[str, str]:
    """Split a possibly dtype-suffixed kernel name into (base, dtype)."""
    for suffix, dtype in _SUFFIX_DTYPE.items():
        if name.endswith(suffix):
            return name[: -len(suffix)], dtype
    return name, "int32"


def retarget_spec(spec: KernelSpec, dtype: str) -> KernelSpec:
    """``spec`` with every plain ``int`` respelled as the sized lane type.

    A textual retarget is the honest one here: the derived source is what
    the scalar reference really is for that campaign — it feeds the content
    cache, the LLM prompt and the verifier identically, so an int64 kernel
    can never silently reuse an int32 verdict.
    """
    lane = get_lane_type(dtype)
    new_name = dtype_kernel_name(spec.name, lane)
    source = re.sub(r"\bint\b", lane.c_name, spec.source)
    source = re.sub(rf"\b{re.escape(spec.name)}\b", new_name, source)
    return KernelSpec(
        name=new_name,
        source=source,
        description=f"{spec.description} [{lane.name} lanes]",
        tsvc_class=spec.tsvc_class,
    )


@lru_cache(maxsize=None)
def load_kernel(name: str, dtype: str = "int32") -> LoadedKernel:
    """Parse and analyze the kernel named ``name`` at ``dtype`` (cached).

    ``name`` may be a bare registry name (``s000``) with ``dtype`` chosen
    separately, or an already-suffixed derived name (``s000_i16``), whose
    suffix wins over the ``dtype`` argument.
    """
    base, suffix_dtype = split_kernel_name(name)
    lane = get_lane_type(suffix_dtype if suffix_dtype != "int32" else dtype)
    spec = get_kernel(base)
    if lane.name != "int32":
        spec = retarget_spec(spec, lane.name)
    function = parse_function(spec.source)
    features = analyze_kernel(function)
    return LoadedKernel(spec=spec, function=function, features=features)


def load_suite(names: list[str] | None = None,
               dtype: str = "int32") -> list[LoadedKernel]:
    """Load the full suite (or the subset ``names``), sorted by kernel name."""
    if names is None:
        names = all_kernel_names()
    return [load_kernel(name, dtype) for name in names]
