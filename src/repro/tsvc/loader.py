"""Load TSVC kernels: parse, analyze and cache them for the pipeline."""

from __future__ import annotations

from dataclasses import dataclass
from functools import lru_cache

from repro.analysis.features import KernelFeatures, analyze_kernel
from repro.cfront import ast_nodes as ast
from repro.cfront.cparser import parse_function
from repro.tsvc.registry import KernelSpec, all_kernel_names, get_kernel


@dataclass(frozen=True)
class LoadedKernel:
    """A parsed and analyzed TSVC kernel ready for the pipeline."""

    spec: KernelSpec
    function: ast.FunctionDef
    features: KernelFeatures

    @property
    def name(self) -> str:
        return self.spec.name

    @property
    def source(self) -> str:
        return self.spec.source

    @property
    def category(self) -> str:
        """Figure-6 category computed from the code."""
        return self.features.category


@lru_cache(maxsize=None)
def load_kernel(name: str) -> LoadedKernel:
    """Parse and analyze the kernel named ``name`` (cached)."""
    spec = get_kernel(name)
    function = parse_function(spec.source)
    features = analyze_kernel(function)
    return LoadedKernel(spec=spec, function=function, features=features)


def load_suite(names: list[str] | None = None) -> list[LoadedKernel]:
    """Load the full suite (or the subset ``names``), sorted by kernel name."""
    if names is None:
        names = all_kernel_names()
    return [load_kernel(name) for name in names]
