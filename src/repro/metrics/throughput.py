"""Throughput metrics for suite-scale campaign runs.

The ROADMAP's scaling work is steered by one number: how many kernels per
second the pipeline sustains end to end.  The helpers here turn raw
(completed, wall-clock) measurements into that rate and into simple
projections ("how long would the full TSVC suite take at this rate?") used
by the campaign summaries.
"""

from __future__ import annotations

from dataclasses import dataclass


def kernels_per_second(completed: int, wall_clock_seconds: float) -> float:
    """Sustained throughput of a campaign; 0.0 for an empty or instant run."""
    if completed <= 0 or wall_clock_seconds <= 0:
        return 0.0
    return completed / wall_clock_seconds


@dataclass(frozen=True)
class ThroughputReport:
    """Throughput of one campaign run, split by where results came from."""

    total_kernels: int
    executed_kernels: int
    wall_clock_seconds: float

    @property
    def effective_rate(self) -> float:
        """Kernels per second including cached/resumed results."""
        return kernels_per_second(self.total_kernels, self.wall_clock_seconds)

    @property
    def executed_rate(self) -> float:
        """Kernels per second over freshly executed work only."""
        return kernels_per_second(self.executed_kernels, self.wall_clock_seconds)

    def projected_seconds(self, kernels: int) -> float:
        """Projected wall clock for ``kernels`` fresh kernels at the executed rate."""
        rate = self.executed_rate
        if rate <= 0:
            return float("inf") if kernels > 0 else 0.0
        return kernels / rate
