"""Evaluation metrics (pass@k)."""

from repro.metrics.passk import pass_at_k, pass_at_k_curve

__all__ = ["pass_at_k", "pass_at_k_curve"]
