"""Evaluation metrics (pass@k, campaign throughput)."""

from repro.metrics.passk import pass_at_k, pass_at_k_curve
from repro.metrics.throughput import ThroughputReport, kernels_per_second

__all__ = ["pass_at_k", "pass_at_k_curve", "ThroughputReport", "kernels_per_second"]
