"""The pass@k metric (Chen et al. 2021), adapted to checksum plausibility.

``pass@k`` is the expected probability that a sample of ``k`` completions
(out of ``n`` generated) contains at least one correct one; the paper adapts
"correct" to "labelled Plausible by checksum-based testing" and reports the
average over the 149 TSVC kernels for k = 1..100 (Figure 5).

The unbiased estimator is ``1 - C(n - c, k) / C(n, k)`` for a kernel with
``c`` correct completions out of ``n``.
"""

from __future__ import annotations

from math import comb


def pass_at_k(n: int, c: int, k: int) -> float:
    """Unbiased pass@k estimate for one problem (n samples, c correct)."""
    if n < 0 or c < 0 or c > n:
        raise ValueError("need 0 <= c <= n")
    if k <= 0:
        raise ValueError("k must be positive")
    if k > n:
        k = n
    if c == 0:
        return 0.0
    if n - c < k:
        return 1.0
    return 1.0 - comb(n - c, k) / comb(n, k)


def pass_at_k_curve(per_problem_counts: list[tuple[int, int]], ks: list[int]) -> dict[int, float]:
    """Average pass@k over problems.

    ``per_problem_counts`` holds ``(n, c)`` per problem; the result maps each
    ``k`` to the mean estimate — the quantity plotted in Figure 5.
    """
    if not per_problem_counts:
        return {k: 0.0 for k in ks}
    curve: dict[int, float] = {}
    for k in ks:
        total = sum(pass_at_k(n, c, k) for n, c in per_problem_counts)
        curve[k] = total / len(per_problem_counts)
    return curve
