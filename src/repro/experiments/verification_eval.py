"""RQ2 experiment: the equivalence-checking funnel (Table 3).

Starting from one checksum-plausible candidate per kernel, the three
verification techniques are applied as a funnel: each technique only sees the
cases the previous ones left inconclusive.  The result reproduces the
structure of the paper's Table 3, including the "All" summary row and the
contribution of the domain-specific optimizations.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.alive.verifier import AliveVerifier, VerificationOutcome, VerifierConfig


@dataclass
class FunnelStage:
    """One row of Table 3."""

    name: str
    total: int = 0
    equivalent: int = 0
    not_equivalent: int = 0
    inconclusive: int = 0

    def as_row(self) -> dict[str, int | str]:
        return {
            "Techniques": self.name,
            "Total": self.total,
            "Equiv": self.equivalent,
            "Not Equiv": self.not_equivalent,
            "Inconcl": self.inconclusive,
        }


@dataclass
class VerificationFunnel:
    """The whole Table 3: per-stage rows plus per-kernel final verdicts."""

    stages: list[FunnelStage] = field(default_factory=list)
    verdict_by_kernel: dict[str, str] = field(default_factory=dict)
    verified_kernels: list[str] = field(default_factory=list)
    refuted_kernels: list[str] = field(default_factory=list)
    inconclusive_kernels: list[str] = field(default_factory=list)
    checksum_refuted: int = 0
    total_tests: int = 0

    def summary_row(self) -> dict[str, int | str]:
        return {
            "Techniques": "All",
            "Total": self.total_tests,
            "Equiv": len(self.verified_kernels),
            "Not Equiv": len(self.refuted_kernels) + self.checksum_refuted,
            "Inconcl": len(self.inconclusive_kernels),
        }

    def rows(self) -> list[dict[str, int | str]]:
        checksum_row = {
            "Techniques": "Checksum",
            "Total": self.total_tests,
            "Equiv": 0,
            "Not Equiv": self.checksum_refuted,
            "Inconcl": self.total_tests - self.checksum_refuted,
        }
        return [checksum_row] + [stage.as_row() for stage in self.stages] + [self.summary_row()]


def run_verification_funnel(
    plausible_candidates: dict[str, str],
    scalar_sources: dict[str, str],
    total_tests: int | None = None,
    verifier_config: VerifierConfig | None = None,
) -> VerificationFunnel:
    """Run the three-stage funnel over checksum-plausible candidates.

    ``plausible_candidates`` maps kernel name to the plausible vectorized
    source; ``scalar_sources`` maps kernel name to the scalar source.
    ``total_tests`` is the size of the full dataset (for the Checksum row);
    kernels without a plausible candidate count as refuted by checksum.
    """
    verifier = AliveVerifier(verifier_config)
    total = total_tests if total_tests is not None else len(plausible_candidates)
    funnel = VerificationFunnel(
        total_tests=total,
        checksum_refuted=total - len(plausible_candidates),
    )

    stages = [
        ("Alive2", verifier.check_with_alive_unroll),
        ("C-Unroll", verifier.check_with_c_unroll),
        ("Splitting", verifier.check_with_spatial_splitting),
    ]

    pending = dict(plausible_candidates)
    for stage_name, check in stages:
        stage = FunnelStage(name=stage_name, total=len(pending))
        still_pending: dict[str, str] = {}
        for kernel_name, candidate in pending.items():
            scalar = scalar_sources[kernel_name]
            report = check(scalar, candidate)
            if report.outcome is VerificationOutcome.EQUIVALENT:
                stage.equivalent += 1
                funnel.verdict_by_kernel[kernel_name] = "equivalent"
                funnel.verified_kernels.append(kernel_name)
            elif report.outcome is VerificationOutcome.NOT_EQUIVALENT:
                stage.not_equivalent += 1
                funnel.verdict_by_kernel[kernel_name] = "not_equivalent"
                funnel.refuted_kernels.append(kernel_name)
            else:
                stage.inconclusive += 1
                still_pending[kernel_name] = candidate
        funnel.stages.append(stage)
        pending = still_pending

    for kernel_name in pending:
        funnel.verdict_by_kernel[kernel_name] = "inconclusive"
        funnel.inconclusive_kernels.append(kernel_name)
    return funnel
