"""RQ2 experiment: the equivalence-checking funnel (Table 3).

Starting from one checksum-plausible candidate per kernel, the three
verification techniques are applied as a funnel: each technique only sees the
cases the previous ones left inconclusive.  The result reproduces the
structure of the paper's Table 3, including the "All" summary row and the
contribution of the domain-specific optimizations.

Kernels are independent, so the funnel runs per kernel through the campaign
engine: one job pushes one (scalar, candidate) pair through the stages until
a technique settles it.  The cache key covers the scalar source, the
candidate code and the verifier configuration, so a re-run (or a pass@k
re-estimation feeding the same candidates) skips already-verified candidates
entirely.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.alive.verifier import AliveVerifier, VerificationOutcome, VerifierConfig
from repro.pipeline.campaign import (
    CampaignConfig,
    CampaignRunner,
    CampaignSummary,
    KernelTask,
    as_campaign_runner,
    is_error_result,
)
from repro.pipeline.cache import config_fingerprint

#: Funnel stages in Algorithm 1 order: (row name, AliveVerifier method name).
FUNNEL_STAGES = [
    ("Alive2", "check_with_alive_unroll"),
    ("C-Unroll", "check_with_c_unroll"),
    ("Splitting", "check_with_spatial_splitting"),
]


@dataclass
class FunnelStage:
    """One row of Table 3."""

    name: str
    total: int = 0
    equivalent: int = 0
    not_equivalent: int = 0
    inconclusive: int = 0

    def as_row(self) -> dict[str, int | str]:
        return {
            "Techniques": self.name,
            "Total": self.total,
            "Equiv": self.equivalent,
            "Not Equiv": self.not_equivalent,
            "Inconcl": self.inconclusive,
        }


@dataclass
class VerificationFunnel:
    """The whole Table 3: per-stage rows plus per-kernel final verdicts."""

    stages: list[FunnelStage] = field(default_factory=list)
    verdict_by_kernel: dict[str, str] = field(default_factory=dict)
    verified_kernels: list[str] = field(default_factory=list)
    refuted_kernels: list[str] = field(default_factory=list)
    inconclusive_kernels: list[str] = field(default_factory=list)
    checksum_refuted: int = 0
    total_tests: int = 0
    campaign_summary: "CampaignSummary | None" = None

    def summary_row(self) -> dict[str, int | str]:
        return {
            "Techniques": "All",
            "Total": self.total_tests,
            "Equiv": len(self.verified_kernels),
            "Not Equiv": len(self.refuted_kernels) + self.checksum_refuted,
            "Inconcl": len(self.inconclusive_kernels),
        }

    def rows(self) -> list[dict[str, int | str]]:
        checksum_row = {
            "Techniques": "Checksum",
            "Total": self.total_tests,
            "Equiv": 0,
            "Not Equiv": self.checksum_refuted,
            "Inconcl": self.total_tests - self.checksum_refuted,
        }
        return [checksum_row] + [stage.as_row() for stage in self.stages] + [self.summary_row()]


def funnel_kernel_job(task: KernelTask) -> dict:
    """Campaign job: push one candidate through the funnel until settled."""
    verifier = AliveVerifier(task.payload["verifier_config"])
    stage_outcomes: dict[str, str] = {}
    for stage_name, method_name in FUNNEL_STAGES:
        report = getattr(verifier, method_name)(task.scalar_code, task.candidate_code)
        stage_outcomes[stage_name] = report.outcome.value
        if report.outcome is not VerificationOutcome.INCONCLUSIVE:
            return {
                "kernel": task.kernel,
                "verdict": report.outcome.value,
                "deciding_stage": stage_name,
                "stage_outcomes": stage_outcomes,
            }
    return {
        "kernel": task.kernel,
        "verdict": VerificationOutcome.INCONCLUSIVE.value,
        "deciding_stage": None,
        "stage_outcomes": stage_outcomes,
    }


def run_verification_funnel(
    plausible_candidates: dict[str, str],
    scalar_sources: dict[str, str],
    total_tests: int | None = None,
    verifier_config: VerifierConfig | None = None,
    campaign: CampaignRunner | CampaignConfig | None = None,
) -> VerificationFunnel:
    """Run the three-stage funnel over checksum-plausible candidates.

    ``plausible_candidates`` maps kernel name to the plausible vectorized
    source; ``scalar_sources`` maps kernel name to the scalar source.
    ``total_tests`` is the size of the full dataset (for the Checksum row);
    kernels without a plausible candidate count as refuted by checksum.
    """
    config = verifier_config or VerifierConfig()
    payload = {"verifier_config": config}
    config_hash = config_fingerprint(config)
    # The verifier is deterministic, so the seed plays no role here; pinning
    # it keeps the content-addressed key purely (scalar, candidate, config).
    tasks = [
        KernelTask(
            kernel=kernel_name,
            scalar_code=scalar_sources[kernel_name],
            seed=0,
            config_hash=config_hash,
            payload=payload,
            candidate_code=candidate,
        )
        for kernel_name, candidate in plausible_candidates.items()
    ]
    # The funnel has no target knob of its own — each candidate carries its
    # width and the verifier adapts — so label the summary with the ISA the
    # candidates actually use rather than inheriting the campaign default.
    from repro.targets import contains_known_intrinsics, detect_target

    candidate_isas = {detect_target(code).name for code in plausible_candidates.values()
                      if contains_known_intrinsics(code)}
    if len(candidate_isas) == 1:
        summary_target = candidate_isas.pop()
    else:
        summary_target = "mixed" if candidate_isas else "avx2"
    runner = as_campaign_runner(campaign)
    report = runner.run_tasks(funnel_kernel_job, tasks, label="verification-funnel",
                              target=summary_target)

    total = total_tests if total_tests is not None else len(plausible_candidates)
    funnel = VerificationFunnel(
        total_tests=total,
        checksum_refuted=total - len(plausible_candidates),
        campaign_summary=report.summary,
    )
    # Error records settle in no funnel stage; the campaign summary still
    # counts them, so a partial funnel yields partial (not crashed) rows.
    results = [result for result in report.results() if not is_error_result(result)]
    pending = list(results)
    for stage_name, _ in FUNNEL_STAGES:
        stage = FunnelStage(name=stage_name, total=len(pending))
        still_pending = []
        for result in pending:
            kernel_name = result["kernel"]
            if result["deciding_stage"] == stage_name:
                if result["verdict"] == VerificationOutcome.EQUIVALENT.value:
                    stage.equivalent += 1
                    funnel.verdict_by_kernel[kernel_name] = "equivalent"
                    funnel.verified_kernels.append(kernel_name)
                else:
                    stage.not_equivalent += 1
                    funnel.verdict_by_kernel[kernel_name] = "not_equivalent"
                    funnel.refuted_kernels.append(kernel_name)
            else:
                stage.inconclusive += 1
                still_pending.append(result)
        funnel.stages.append(stage)
        pending = still_pending

    for result in pending:
        funnel.verdict_by_kernel[result["kernel"]] = "inconclusive"
        funnel.inconclusive_kernels.append(result["kernel"])
    return funnel
