"""RQ1 experiment: checksum-based evaluation of LLM completions (Table 2, Figure 5).

For every TSVC kernel the synthetic LLM produces ``n`` code completions; each
is classified by checksum-based testing as plausible / not-equivalent /
cannot-compile.  Table 2 reports, for k in {1, 10, 100}, how many kernels
have at least one plausible completion among their first k; Figure 5 reports
the averaged unbiased pass@k estimate.

The evaluation goes through the campaign engine: kernels fan out over the
worker pool, each with a seed derived from (LLM seed, kernel name), so the
sampled completions are identical at any parallelism level.  Completion
batches are prefix-consistent in ``n`` — completion ``i`` of an ``n=100``
batch equals completion ``i`` of an ``n=30`` batch — so a cached larger
batch satisfies any smaller re-estimation request (pass@k re-runs are pure
cache hits).  Identical completions within a batch are checksum-tested once
(they are frequent — the model often regenerates the same correct program),
which keeps the full 149 x 100 evaluation tractable.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass, field, replace

from repro.interp.checksum import ChecksumOutcome, checksum_testing
from repro.llm.client import CompletionRequest, LLMClient
from repro.llm.prompts import build_vectorization_prompt
from repro.llm.synthetic import SyntheticLLM, SyntheticLLMConfig
from repro.metrics.passk import pass_at_k_curve
from repro.pipeline.campaign import (
    CampaignConfig,
    CampaignRunner,
    CampaignSummary,
    KernelTask,
    as_campaign_runner,
    is_error_result,
)
from repro.pipeline.cache import config_fingerprint
from repro.tsvc import LoadedKernel, load_suite


@dataclass
class KernelChecksumRecord:
    """Per-kernel record: outcome of each completion, in generation order."""

    kernel: str
    outcomes: list[ChecksumOutcome] = field(default_factory=list)
    first_plausible_code: str | None = None

    def plausible_within(self, k: int) -> bool:
        return any(o is ChecksumOutcome.PLAUSIBLE for o in self.outcomes[:k])

    def all_cannot_compile_within(self, k: int) -> bool:
        prefix = self.outcomes[:k]
        return bool(prefix) and all(o is ChecksumOutcome.CANNOT_COMPILE for o in prefix)

    @property
    def plausible_count(self) -> int:
        return sum(1 for o in self.outcomes if o is ChecksumOutcome.PLAUSIBLE)


@dataclass
class ChecksumEvaluation:
    """The full RQ1 evaluation result."""

    records: list[KernelChecksumRecord]
    num_completions: int
    #: Campaign accounting (cache hit-rate, wall clock, throughput); None on
    #: the serial fallback path.
    campaign_summary: "CampaignSummary | None" = None

    def table2_row(self, k: int) -> dict[str, int]:
        """The Table 2 column for a given k: plausible / not equivalent / cannot compile."""
        plausible = sum(1 for r in self.records if r.plausible_within(k))
        cannot_compile = sum(1 for r in self.records if r.all_cannot_compile_within(k))
        not_equivalent = len(self.records) - plausible - cannot_compile
        return {
            "Plausible": plausible,
            "Not equivalent": not_equivalent,
            "Cannot compile": cannot_compile,
        }

    def pass_at_k(self, ks: list[int]) -> dict[int, float]:
        counts = [(len(r.outcomes), r.plausible_count) for r in self.records]
        return pass_at_k_curve(counts, ks)

    def plausible_kernels(self, k: int | None = None) -> list[str]:
        limit = k if k is not None else self.num_completions
        return [r.kernel for r in self.records if r.plausible_within(limit)]

    def first_plausible_codes(self) -> dict[str, str]:
        return {r.kernel: r.first_plausible_code for r in self.records
                if r.first_plausible_code is not None}


def classify_completions(scalar_code: str, codes: list[str],
                         checksum_seed: int = 0) -> tuple[list[ChecksumOutcome], int | None]:
    """Classify completions by checksum testing, deduplicating identical code.

    Returns the per-completion outcomes plus the index of the first plausible
    completion (or None).
    """
    outcomes: list[ChecksumOutcome] = []
    first_plausible: int | None = None
    cache: dict[str, ChecksumOutcome] = {}
    for index, code in enumerate(codes):
        digest = hashlib.sha256(code.encode()).hexdigest()
        outcome = cache.get(digest)
        if outcome is None:
            outcome = checksum_testing(scalar_code, code, seed=checksum_seed).outcome
            cache[digest] = outcome
        outcomes.append(outcome)
        if outcome is ChecksumOutcome.PLAUSIBLE and first_plausible is None:
            first_plausible = index
    return outcomes, first_plausible


def checksum_kernel_job(task: KernelTask) -> dict:
    """Campaign job: sample ``n`` completions for one kernel and classify each."""
    payload = task.payload
    model = SyntheticLLM(replace(payload["llm_config"], seed=task.seed))
    target = payload.get("target", "avx2")
    request = CompletionRequest(
        prompt=build_vectorization_prompt(task.scalar_code, target=target),
        kernel_name=task.kernel,
        scalar_code=task.scalar_code,
        num_completions=payload["num_completions"],
        temperature=payload["temperature"],
        target=target,
    )
    completions = model.complete(request)
    outcomes, first_plausible = classify_completions(
        task.scalar_code, [c.code for c in completions], payload["checksum_seed"]
    )
    return {
        "kernel": task.kernel,
        "num_completions": len(completions),
        "outcomes": [outcome.value for outcome in outcomes],
        "first_plausible_index": first_plausible,
        "first_plausible_code": completions[first_plausible].code if first_plausible is not None else None,
    }


def _accept_batch(cached: dict, task: KernelTask) -> bool:
    """A stored batch serves any request for the same or fewer completions."""
    return cached.get("num_completions", 0) >= task.payload["num_completions"]


def _slice_batch(cached: dict, task: KernelTask) -> dict:
    """Restrict a (possibly larger) stored batch to the requested prefix."""
    n = task.payload["num_completions"]
    first = cached.get("first_plausible_index")
    within = first is not None and first < n
    return {
        "kernel": cached["kernel"],
        "num_completions": n,
        "outcomes": cached["outcomes"][:n],
        "first_plausible_index": first if within else None,
        "first_plausible_code": cached.get("first_plausible_code") if within else None,
    }


def run_checksum_evaluation(
    num_completions: int = 100,
    kernels: list[str] | None = None,
    llm: LLMClient | None = None,
    checksum_seed: int = 0,
    temperature: float = 1.0,
    campaign: CampaignRunner | CampaignConfig | None = None,
    target: str = "avx2",
) -> ChecksumEvaluation:
    """Generate ``num_completions`` per kernel and classify each by checksum testing.

    With a :class:`SyntheticLLM` (or None), kernels run through the campaign
    engine with per-kernel derived seeds.  An arbitrary :class:`LLMClient`
    instance cannot be shipped to worker processes, so it falls back to the
    serial in-process path with shared client state.  ``target`` selects the
    ISA the completions are requested for; it is salted into the cache
    fingerprint.
    """
    from repro.targets import get_target

    target = get_target(target).name
    if llm is not None and not isinstance(llm, SyntheticLLM):
        return _run_serial_with_instance(llm, num_completions, kernels, checksum_seed,
                                         temperature, target)

    llm_config = llm.config if isinstance(llm, SyntheticLLM) else SyntheticLLMConfig()
    payload = {
        "llm_config": llm_config,
        "num_completions": num_completions,
        "checksum_seed": checksum_seed,
        "temperature": temperature,
        "target": target,
    }
    # The fingerprint excludes ``num_completions`` so that a larger stored
    # batch is *found* for a smaller request and sliced to its prefix.
    config_hash = config_fingerprint(
        {"llm": llm_config, "checksum_seed": checksum_seed, "temperature": temperature},
        target=target,
    )
    runner = as_campaign_runner(campaign)
    tasks = runner.suite_tasks(kernels, payload, config_hash, base_seed=llm_config.seed)
    report = runner.run_tasks(
        checksum_kernel_job, tasks, label="checksum-eval",
        cache_accept=_accept_batch, cache_adapt=_slice_batch, target=target,
    )
    # Error records (a kernel whose job raised) carry no outcomes; the
    # campaign summary still counts them, so they are reported, not silent.
    records = [
        KernelChecksumRecord(
            kernel=result["kernel"],
            outcomes=[ChecksumOutcome(value) for value in result["outcomes"]],
            first_plausible_code=result["first_plausible_code"],
        )
        for result in report.results()
        if not is_error_result(result)
    ]
    return ChecksumEvaluation(
        records=records, num_completions=num_completions, campaign_summary=report.summary
    )


def _run_serial_with_instance(
    llm: LLMClient,
    num_completions: int,
    kernels: list[str] | None,
    checksum_seed: int,
    temperature: float,
    target: str = "avx2",
) -> ChecksumEvaluation:
    """Serial fallback for LLM clients that cannot be reconstructed per worker."""
    suite: list[LoadedKernel] = load_suite(kernels)
    records: list[KernelChecksumRecord] = []
    for kernel in suite:
        request = CompletionRequest(
            prompt=build_vectorization_prompt(kernel.source, target=target),
            kernel_name=kernel.name,
            scalar_code=kernel.source,
            num_completions=num_completions,
            temperature=temperature,
            target=target,
        )
        completions = llm.complete(request)
        outcomes, first_plausible = classify_completions(
            kernel.source, [c.code for c in completions], checksum_seed
        )
        records.append(
            KernelChecksumRecord(
                kernel=kernel.name,
                outcomes=outcomes,
                first_plausible_code=(
                    completions[first_plausible].code if first_plausible is not None else None
                ),
            )
        )
    return ChecksumEvaluation(records=records, num_completions=num_completions)
