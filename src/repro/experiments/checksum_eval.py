"""RQ1 experiment: checksum-based evaluation of LLM completions (Table 2, Figure 5).

For every TSVC kernel the synthetic LLM produces ``n`` code completions; each
is classified by checksum-based testing as plausible / not-equivalent /
cannot-compile.  Table 2 reports, for k in {1, 10, 100}, how many kernels
have at least one plausible completion among their first k; Figure 5 reports
the averaged unbiased pass@k estimate.

Identical completions are checksum-tested once (they are frequent — the model
often regenerates the same correct program), which keeps the full 149 x 100
evaluation tractable.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass, field

from repro.interp.checksum import ChecksumOutcome, checksum_testing
from repro.llm.client import CompletionRequest, LLMClient
from repro.llm.prompts import build_vectorization_prompt
from repro.llm.synthetic import SyntheticLLM
from repro.metrics.passk import pass_at_k_curve
from repro.tsvc import LoadedKernel, load_suite


@dataclass
class KernelChecksumRecord:
    """Per-kernel record: outcome of each completion, in generation order."""

    kernel: str
    outcomes: list[ChecksumOutcome] = field(default_factory=list)
    first_plausible_code: str | None = None

    def plausible_within(self, k: int) -> bool:
        return any(o is ChecksumOutcome.PLAUSIBLE for o in self.outcomes[:k])

    def all_cannot_compile_within(self, k: int) -> bool:
        prefix = self.outcomes[:k]
        return bool(prefix) and all(o is ChecksumOutcome.CANNOT_COMPILE for o in prefix)

    @property
    def plausible_count(self) -> int:
        return sum(1 for o in self.outcomes if o is ChecksumOutcome.PLAUSIBLE)


@dataclass
class ChecksumEvaluation:
    """The full RQ1 evaluation result."""

    records: list[KernelChecksumRecord]
    num_completions: int

    def table2_row(self, k: int) -> dict[str, int]:
        """The Table 2 column for a given k: plausible / not equivalent / cannot compile."""
        plausible = sum(1 for r in self.records if r.plausible_within(k))
        cannot_compile = sum(1 for r in self.records if r.all_cannot_compile_within(k))
        not_equivalent = len(self.records) - plausible - cannot_compile
        return {
            "Plausible": plausible,
            "Not equivalent": not_equivalent,
            "Cannot compile": cannot_compile,
        }

    def pass_at_k(self, ks: list[int]) -> dict[int, float]:
        counts = [(len(r.outcomes), r.plausible_count) for r in self.records]
        return pass_at_k_curve(counts, ks)

    def plausible_kernels(self, k: int | None = None) -> list[str]:
        limit = k if k is not None else self.num_completions
        return [r.kernel for r in self.records if r.plausible_within(limit)]

    def first_plausible_codes(self) -> dict[str, str]:
        return {r.kernel: r.first_plausible_code for r in self.records
                if r.first_plausible_code is not None}


def run_checksum_evaluation(
    num_completions: int = 100,
    kernels: list[str] | None = None,
    llm: LLMClient | None = None,
    checksum_seed: int = 0,
    temperature: float = 1.0,
) -> ChecksumEvaluation:
    """Generate ``num_completions`` per kernel and classify each by checksum testing."""
    model = llm or SyntheticLLM()
    suite: list[LoadedKernel] = load_suite(kernels)
    records: list[KernelChecksumRecord] = []
    for kernel in suite:
        prompt = build_vectorization_prompt(kernel.source)
        request = CompletionRequest(
            prompt=prompt,
            kernel_name=kernel.name,
            scalar_code=kernel.source,
            num_completions=num_completions,
            temperature=temperature,
        )
        completions = model.complete(request)
        record = KernelChecksumRecord(kernel=kernel.name)
        cache: dict[str, ChecksumOutcome] = {}
        for completion in completions:
            digest = hashlib.sha256(completion.code.encode()).hexdigest()
            outcome = cache.get(digest)
            if outcome is None:
                outcome = checksum_testing(kernel.source, completion.code, seed=checksum_seed).outcome
                cache[digest] = outcome
            record.outcomes.append(outcome)
            if outcome is ChecksumOutcome.PLAUSIBLE and record.first_plausible_code is None:
                record.first_plausible_code = completion.code
        records.append(record)
    return ChecksumEvaluation(records=records, num_completions=num_completions)
