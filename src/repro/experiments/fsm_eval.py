"""RQ4 experiment: evaluation of the multi-agent FSM (Section 4.4).

Two quantities from the paper are reproduced:

* how many kernels reach a plausible vectorization with a *single* LLM
  invocation under the FSM (the paper: 96, up from 72 with a bare completion);
* how many kernels the FSM solves within its ten-attempt budget, how many of
  those needed the repair loop (more than one attempt), and the maximum
  number of attempts observed (the paper: 92 solved, nine repaired, at most
  seven attempts).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.agents.fsm import FSMConfig, FSMResult, VectorizationFSM
from repro.llm.client import LLMClient
from repro.llm.synthetic import SyntheticLLM
from repro.tsvc import load_suite


@dataclass
class FSMEvaluation:
    results: list[FSMResult] = field(default_factory=list)

    @property
    def solved(self) -> list[FSMResult]:
        return [r for r in self.results if r.accepted]

    @property
    def solved_first_attempt(self) -> list[FSMResult]:
        return [r for r in self.results if r.accepted and r.attempts == 1]

    @property
    def repaired(self) -> list[FSMResult]:
        return [r for r in self.results if r.repaired]

    @property
    def max_attempts_to_solve(self) -> int:
        return max((r.attempts for r in self.solved), default=0)

    def summary(self) -> dict[str, int]:
        return {
            "kernels": len(self.results),
            "solved_within_budget": len(self.solved),
            "plausible_with_one_invocation": len(self.solved_first_attempt),
            "repaired_via_feedback": len(self.repaired),
            "max_attempts": self.max_attempts_to_solve,
        }


def run_fsm_evaluation(
    kernels: list[str] | None = None,
    llm: LLMClient | None = None,
    config: FSMConfig | None = None,
) -> FSMEvaluation:
    """Run the multi-agent FSM over the suite and collect RQ4 statistics."""
    model = llm or SyntheticLLM()
    fsm_config = config or FSMConfig()
    evaluation = FSMEvaluation()
    for kernel in load_suite(kernels):
        fsm = VectorizationFSM(model, kernel.name, kernel.source, fsm_config)
        evaluation.results.append(fsm.run())
    return evaluation
