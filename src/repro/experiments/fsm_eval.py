"""RQ4 experiment: evaluation of the multi-agent FSM (Section 4.4).

Two quantities from the paper are reproduced:

* how many kernels reach a plausible vectorization with a *single* LLM
  invocation under the FSM (the paper: 96, up from 72 with a bare completion);
* how many kernels the FSM solves within its ten-attempt budget, how many of
  those needed the repair loop (more than one attempt), and the maximum
  number of attempts observed (the paper: 92 solved, nine repaired, at most
  seven attempts).

Kernels run through the campaign engine: each gets a fresh synthetic LLM
seeded from (LLM seed, kernel name), so the evaluation parallelizes and its
results are order- and worker-count-independent.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace

from repro.agents.fsm import FSMConfig, run_fsm_on_kernel
from repro.llm.client import LLMClient
from repro.llm.synthetic import SyntheticLLM, SyntheticLLMConfig
from repro.pipeline.campaign import (
    CampaignConfig,
    CampaignRunner,
    CampaignSummary,
    KernelTask,
    as_campaign_runner,
    is_error_result,
)
from repro.pipeline.cache import config_fingerprint
from repro.tsvc import load_suite


@dataclass
class FSMKernelRecord:
    """Slim, JSON-friendly per-kernel outcome of one FSM run."""

    kernel: str
    accepted: bool
    attempts: int
    llm_invocations: int
    final_code: str | None = None

    @property
    def repaired(self) -> bool:
        """True when acceptance required more than one attempt."""
        return self.accepted and self.attempts > 1


@dataclass
class FSMEvaluation:
    results: list[FSMKernelRecord] = field(default_factory=list)
    campaign_summary: "CampaignSummary | None" = None

    @property
    def solved(self) -> list[FSMKernelRecord]:
        return [r for r in self.results if r.accepted]

    @property
    def solved_first_attempt(self) -> list[FSMKernelRecord]:
        return [r for r in self.results if r.accepted and r.attempts == 1]

    @property
    def repaired(self) -> list[FSMKernelRecord]:
        return [r for r in self.results if r.repaired]

    @property
    def max_attempts_to_solve(self) -> int:
        return max((r.attempts for r in self.solved), default=0)

    def summary(self) -> dict[str, int]:
        return {
            "kernels": len(self.results),
            "solved_within_budget": len(self.solved),
            "plausible_with_one_invocation": len(self.solved_first_attempt),
            "repaired_via_feedback": len(self.repaired),
            "max_attempts": self.max_attempts_to_solve,
        }


def fsm_kernel_job(task: KernelTask) -> dict:
    """Campaign job: run the multi-agent FSM on one kernel with its derived seed."""
    payload = task.payload
    llm = SyntheticLLM(replace(payload["llm_config"], seed=task.seed))
    result = run_fsm_on_kernel(llm, task.kernel, task.scalar_code, payload["fsm_config"])
    return {
        "kernel": task.kernel,
        "accepted": result.accepted,
        "attempts": result.attempts,
        "llm_invocations": result.llm_invocations,
        "final_code": result.final_code,
    }


def run_fsm_evaluation(
    kernels: list[str] | None = None,
    llm: LLMClient | None = None,
    config: FSMConfig | None = None,
    campaign: CampaignRunner | CampaignConfig | None = None,
) -> FSMEvaluation:
    """Run the multi-agent FSM over the suite and collect RQ4 statistics.

    The target ISA resolves through the pipeline's single rule: an
    explicitly-set ``config.target`` wins, an unset one inherits the
    campaign config's target, and the pipeline default applies last.  The
    resolved name is pinned into the FSM config, so the jobs and the
    campaign summary label can never disagree.
    """
    from repro.targets import resolve_target_setting

    fsm_config = config or FSMConfig()
    campaign_target = None
    if isinstance(campaign, (CampaignRunner, CampaignConfig)):
        campaign_config = campaign.config if isinstance(campaign, CampaignRunner) else campaign
        campaign_target = campaign_config.target
    resolved = resolve_target_setting(fsm_config.target, campaign_target).name
    if fsm_config.target != resolved:
        fsm_config = replace(fsm_config, target=resolved)
    if llm is not None and not isinstance(llm, SyntheticLLM):
        return _run_serial_with_instance(llm, kernels, fsm_config)

    llm_config = llm.config if isinstance(llm, SyntheticLLM) else SyntheticLLMConfig()
    payload = {"llm_config": llm_config, "fsm_config": fsm_config}
    runner = as_campaign_runner(campaign)
    tasks = runner.suite_tasks(
        kernels, payload, config_fingerprint(payload), base_seed=llm_config.seed
    )
    report = runner.run_tasks(fsm_kernel_job, tasks, label="fsm-eval",
                              target=fsm_config.target)
    # Error records carry no FSM fields; the summary's verdict counts
    # still surface them, so a partial campaign yields partial statistics.
    records = [
        FSMKernelRecord(
            kernel=result["kernel"],
            accepted=result["accepted"],
            attempts=result["attempts"],
            llm_invocations=result["llm_invocations"],
            final_code=result["final_code"],
        )
        for result in report.results()
        if not is_error_result(result)
    ]
    return FSMEvaluation(results=records, campaign_summary=report.summary)


def _run_serial_with_instance(
    llm: LLMClient, kernels: list[str] | None, fsm_config: FSMConfig
) -> FSMEvaluation:
    """Serial fallback for LLM clients that cannot be reconstructed per worker."""
    evaluation = FSMEvaluation()
    for kernel in load_suite(kernels):
        result = run_fsm_on_kernel(llm, kernel.name, kernel.source, fsm_config)
        evaluation.results.append(
            FSMKernelRecord(
                kernel=result.kernel_name,
                accepted=result.accepted,
                attempts=result.attempts,
                llm_invocations=result.llm_invocations,
                final_code=result.final_code,
            )
        )
    return evaluation
