"""Experiment harness: one function per table / figure of the paper."""

from repro.experiments.checksum_eval import ChecksumEvaluation, run_checksum_evaluation
from repro.experiments.verification_eval import VerificationFunnel, run_verification_funnel
from repro.experiments.fsm_eval import FSMEvaluation, run_fsm_evaluation
from repro.experiments.performance_eval import PerformanceEvaluation, run_performance_evaluation

__all__ = [
    "ChecksumEvaluation",
    "run_checksum_evaluation",
    "VerificationFunnel",
    "run_verification_funnel",
    "FSMEvaluation",
    "run_fsm_evaluation",
    "PerformanceEvaluation",
    "run_performance_evaluation",
]
