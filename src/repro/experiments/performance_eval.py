"""RQ3 experiment: runtime speedup of verified vectorizations (Figure 1(c), Figure 6).

For every kernel whose vectorization was proven equivalent, the cycle
simulator measures the LLM-generated code and each baseline compiler's code,
and the speedups are grouped into the six categories of Figure 6.

Measurements run per kernel through the campaign engine; the cache key
covers the scalar source, the verified candidate and the simulator
parameters, so repeated Figure 6 builds are pure cache hits.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.analysis.features import ALL_CATEGORIES
from repro.perf.simulator import KernelPerformance, SpeedupRecord, measure_kernel
from repro.pipeline.campaign import (
    CampaignConfig,
    CampaignRunner,
    CampaignSummary,
    KernelTask,
    as_campaign_runner,
    is_error_result,
)
from repro.pipeline.cache import config_fingerprint
from repro.targets import get_target
from repro.tsvc import load_kernel

COMPILER_NAMES = ("GCC", "Clang", "ICC")


@dataclass
class PerformanceEvaluation:
    """Speedups for verified kernels, ready to be grouped Figure-6 style."""

    performances: list[KernelPerformance] = field(default_factory=list)
    campaign_summary: "CampaignSummary | None" = None

    def by_category(self) -> dict[str, list[KernelPerformance]]:
        groups: dict[str, list[KernelPerformance]] = {name: [] for name in ALL_CATEGORIES}
        for performance in self.performances:
            groups.setdefault(performance.category, []).append(performance)
        return groups

    def speedup_rows(self) -> list[dict[str, object]]:
        """One row per kernel: category plus speedup against each compiler."""
        rows = []
        for performance in sorted(self.performances, key=lambda p: (p.category, p.kernel)):
            row: dict[str, object] = {"Test": performance.kernel, "Category": performance.category}
            for compiler in COMPILER_NAMES:
                row[f"vs {compiler}"] = round(performance.speedup_over(compiler), 2)
            rows.append(row)
        return rows

    def category_summary(self) -> list[dict[str, object]]:
        """Geometric-mean speedup per category per compiler (Figure 6 shape)."""
        summary = []
        for category, group in self.by_category().items():
            if not group:
                continue
            row: dict[str, object] = {"Category": category, "Tests": len(group)}
            for compiler in COMPILER_NAMES:
                speedups = [p.speedup_over(compiler) for p in group]
                row[f"vs {compiler}"] = round(_geomean(speedups), 2)
            summary.append(row)
        return summary

    def speedup_range(self) -> tuple[float, float]:
        """Min and max speedup over any compiler (the paper's 1.1x-9.4x headline)."""
        values = [p.speedup_over(c) for p in self.performances for c in COMPILER_NAMES]
        if not values:
            return (0.0, 0.0)
        return (min(values), max(values))


def _geomean(values: list[float]) -> float:
    filtered = [v for v in values if v > 0]
    if not filtered:
        return 0.0
    product = 1.0
    for value in filtered:
        product *= value
    return product ** (1.0 / len(filtered))


def performance_kernel_job(task: KernelTask) -> dict:
    """Campaign job: simulate one verified kernel against every baseline."""
    payload = task.payload
    performance = measure_kernel(
        kernel_name=task.kernel,
        scalar_code=task.scalar_code,
        llm_code=task.candidate_code,
        n=payload["trip_count"],
        seed=payload["seed"],
        target=payload.get("target"),
    )
    return {
        "kernel": performance.kernel,
        "category": performance.category,
        "llm_cycles": performance.llm_cycles,
        "scalar_cycles": performance.scalar_cycles,
        "records": [
            {
                "kernel": record.kernel,
                "compiler": record.compiler,
                "baseline_cycles": record.baseline_cycles,
                "llm_cycles": record.llm_cycles,
                "baseline_vectorized": record.baseline_vectorized,
                "baseline_reason": record.baseline_reason,
            }
            for record in performance.records
        ],
    }


def run_performance_evaluation(
    verified_candidates: dict[str, str],
    trip_count: int = 256,
    seed: int = 11,
    campaign: CampaignRunner | CampaignConfig | None = None,
    target: str | None = None,
) -> PerformanceEvaluation:
    """Measure every verified (kernel -> vectorized source) pair against the baselines.

    ``target`` prices the candidates with that ISA's cost tables (and salts
    the cache fingerprint); the default keeps the paper's AVX2 pricing.
    """
    payload = {"trip_count": trip_count, "seed": seed}
    # Canonicalize before salting so alias spellings ("avx", "AVX2") share
    # the same cache entries as the canonical name.
    canonical = get_target(target).name if target is not None else None
    if canonical is not None:
        payload["target"] = canonical
    config_hash = config_fingerprint(payload, target=canonical)
    tasks = [
        KernelTask(
            kernel=kernel_name,
            scalar_code=load_kernel(kernel_name).source,
            seed=seed,
            config_hash=config_hash,
            payload=payload,
            candidate_code=vectorized_source,
        )
        for kernel_name, vectorized_source in sorted(verified_candidates.items())
    ]
    runner = as_campaign_runner(campaign)
    report = runner.run_tasks(performance_kernel_job, tasks, label="performance-eval",
                              target=canonical or "avx2")
    # Error records carry no cycle measurements; the campaign summary still
    # counts them, so a partial measurement run yields partial speedups.
    performances = [
        KernelPerformance(
            kernel=result["kernel"],
            category=result["category"],
            llm_cycles=result["llm_cycles"],
            scalar_cycles=result["scalar_cycles"],
            records=[SpeedupRecord(**record) for record in result["records"]],
        )
        for result in report.results()
        if not is_error_result(result)
    ]
    return PerformanceEvaluation(performances=performances, campaign_summary=report.summary)
