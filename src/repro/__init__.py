"""repro — reproduction of "LLM-Vectorizer: LLM-Based Verified Loop Vectorizer" (CGO 2025).

The package re-implements the complete pipeline from the paper in pure
Python: a C-subset frontend and interpreter with AVX2 intrinsic semantics, a
checksum-based tester, a synthetic-LLM vectorizer behind the paper's LLM
client interface, the multi-agent finite-state-machine orchestration, a
bounded translation-validation stack (mini IR + bitvector SMT substrate)
standing in for Alive2/Z3, simulated GCC/Clang/ICC auto-vectorizing baselines
with a cycle cost model, and the TSVC benchmark suite.

See DESIGN.md for the system inventory and EXPERIMENTS.md for the
table-by-table reproduction record.
"""

__version__ = "1.0.0"
