"""repro — reproduction of "LLM-Vectorizer: LLM-Based Verified Loop Vectorizer" (CGO 2025).

The package re-implements the complete pipeline from the paper in pure
Python: a C-subset frontend and interpreter with AVX2 intrinsic semantics, a
checksum-based tester, a synthetic-LLM vectorizer behind the paper's LLM
client interface, the multi-agent finite-state-machine orchestration, a
bounded translation-validation stack (mini IR + bitvector SMT substrate)
standing in for Alive2/Z3, simulated GCC/Clang/ICC auto-vectorizing baselines
with a cycle cost model, and the TSVC benchmark suite.

``repro.__all__`` is the stable public surface: everything listed here keeps
its name and import path across releases, and anything not listed is
internal.  Names resolve lazily (PEP 562), so ``import repro`` stays cheap.

See DESIGN.md for the system inventory and EXPERIMENTS.md for the
table-by-table reproduction record.
"""

from __future__ import annotations

__version__ = "1.1.0"

#: name -> defining submodule for every stable public symbol.
_PUBLIC_API = {
    # Pipeline: single-kernel verification and campaign orchestration.
    "EquivalencePipeline": "repro.pipeline",
    "LLMVectorizer": "repro.pipeline",
    "LLMVectorizerConfig": "repro.pipeline",
    "CampaignConfig": "repro.pipeline",
    "CampaignRunner": "repro.pipeline",
    "CampaignReport": "repro.pipeline",
    "CampaignSummary": "repro.pipeline",
    "ResultCache": "repro.pipeline",
    "Verdict": "repro.pipeline",
    "merge_stores": "repro.pipeline",
    "report_from_store": "repro.pipeline",
    # Incremental re-verification and store hygiene.
    "plan_reverify": "repro.pipeline",
    "reverify": "repro.pipeline",
    "IncrementalPlan": "repro.pipeline",
    "compact_store": "repro.pipeline",
    "CompactionStats": "repro.pipeline",
    # Vectorizer: deterministic planning/codegen and the epilogue contract.
    "vectorize_kernel": "repro.vectorizer",
    "plan_vectorization": "repro.vectorizer",
    "VectorizationPlan": "repro.vectorizer",
    "EPILOGUE_STRATEGIES": "repro.vectorizer",
    "resolve_epilogue": "repro.vectorizer",
    # Plan cache: content-addressed parse/plan/codegen reuse knobs.
    "plan_cache_stats": "repro.vectorizer.plancache",
    "clear_plan_caches": "repro.vectorizer.plancache",
    "set_plan_cache_capacity": "repro.vectorizer.plancache",
    "plan_fingerprint": "repro.vectorizer.plancache",
    # Targets: ISA descriptions and intrinsic spelling resolution.
    "TargetISA": "repro.targets",
    "get_target": "repro.targets",
    "all_targets": "repro.targets",
    "ALL_TARGETS": "repro.targets",
    "DEFAULT_TARGET": "repro.targets",
    # Testing and verification stages.
    "checksum_testing": "repro.interp.checksum",
    "AliveVerifier": "repro.alive.verifier",
    "VerifierConfig": "repro.alive.verifier",
    # Benchmark suite and reporting.
    "load_kernel": "repro.tsvc",
    "load_suite": "repro.tsvc",
    "all_kernel_names": "repro.tsvc",
    "render_campaign_report": "repro.reporting",
    "render_campaign_summary": "repro.reporting",
    "render_table": "repro.reporting",
    "write_bench_json": "repro.reporting.campaign",
}

#: plancache exports use module-local names; map the public alias back.
_ALIASES = {
    "plan_cache_stats": "stats",
    "clear_plan_caches": "clear_caches",
    "set_plan_cache_capacity": "set_capacity",
}

__all__ = sorted(_PUBLIC_API) + ["__version__"]


def __getattr__(name: str):
    module_name = _PUBLIC_API.get(name)
    if module_name is None:
        raise AttributeError(f"module {__name__!r} has no attribute {name!r}")
    import importlib

    module = importlib.import_module(module_name)
    value = getattr(module, _ALIASES.get(name, name))
    globals()[name] = value
    return value


def __dir__():
    return sorted(set(globals()) | set(_PUBLIC_API))
