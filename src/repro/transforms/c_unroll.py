"""C-level unrolling of the scalar program (paper Section 3.2).

Because verification is restricted to trip counts that are multiples of the
vectorization width, the loop-termination check between consecutive scalar
iterations inside one vector block can be skipped.  This transform performs
that simplification *at the C level*, before symbolic execution: the loop

.. code-block:: c

    for (i = start; i < end; i++) body

becomes

.. code-block:: c

    i = start;
    while (i < end) {        // checked once per block of v iterations
        body; i += step;
        body; i += step;
        ...                  // v copies
    }

with the three fix-ups the paper describes: ``break`` is replaced by
``return``, ``goto`` labels are renamed per unrolled copy so they stay unique,
and duplicated declarations are renamed apart.
"""

from __future__ import annotations

import copy

from repro.analysis.loops import find_main_loop
from repro.cfront import ast_nodes as ast
from repro.cfront.ctypes import INT


class CUnrollError(Exception):
    """The function's main loop cannot be unrolled at the C level."""


def unroll_scalar_function(func: ast.FunctionDef, factor: int = 8) -> ast.FunctionDef:
    """Return a copy of ``func`` with its main loop body unrolled ``factor`` times."""
    new_func = copy.deepcopy(func)
    loop_info = find_main_loop(new_func)
    if loop_info is None:
        raise CUnrollError("the function contains no for loop")
    if not loop_info.is_canonical or loop_info.step is None:
        raise CUnrollError("the main loop is not in canonical form")
    loop = loop_info.node

    unrolled_body: list[ast.Stmt] = []
    for copy_index in range(factor):
        body_copy = copy.deepcopy(loop.body)
        body_copy = _rewrite_break_to_return(body_copy)
        body_copy = _rename_labels(body_copy, copy_index)
        body_copy = _rename_local_decls(body_copy, copy_index)
        unrolled_body.append(body_copy)
        unrolled_body.append(ast.ExprStmt(expr=copy.deepcopy(loop.step)))

    new_loop_body = ast.Block(body=unrolled_body)
    replacement_stmts: list[ast.Stmt] = []
    if loop_info.declares_iterator:
        replacement_stmts.append(
            ast.Decl(var_type=INT, name=loop_info.iterator, init=copy.deepcopy(loop_info.start))
        )
    elif loop.init is not None:
        replacement_stmts.append(copy.deepcopy(loop.init))
    block_loop = ast.WhileLoop(cond=copy.deepcopy(loop.cond), body=new_loop_body)
    replacement_stmts.append(block_loop)
    replacement = ast.Block(body=replacement_stmts)

    _replace_stmt(new_func.body, loop, replacement)
    return new_func


def _rewrite_break_to_return(stmt: ast.Stmt) -> ast.Stmt:
    for node in ast.walk(stmt):
        if isinstance(node, ast.Block):
            node.body = [ast.Return() if isinstance(s, ast.Break) else s for s in node.body]
        elif isinstance(node, ast.If):
            if isinstance(node.then, ast.Break):
                node.then = ast.Return()
            if isinstance(node.otherwise, ast.Break):
                node.otherwise = ast.Return()
        elif isinstance(node, ast.Label) and isinstance(node.stmt, ast.Break):
            node.stmt = ast.Return()
    return stmt


def _rename_labels(stmt: ast.Stmt, copy_index: int) -> ast.Stmt:
    suffix = f"_u{copy_index}"
    for node in ast.walk(stmt):
        if isinstance(node, ast.Label):
            node.name = node.name + suffix
        elif isinstance(node, ast.Goto):
            node.label = node.label + suffix
    return stmt


def _rename_local_decls(stmt: ast.Stmt, copy_index: int) -> ast.Stmt:
    """Rename block-local declarations so unrolled copies do not collide."""
    if copy_index == 0:
        return stmt
    renames: dict[str, str] = {}
    for node in ast.walk(stmt):
        if isinstance(node, ast.Decl):
            renames[node.name] = f"{node.name}_u{copy_index}"
    if not renames:
        return stmt
    for node in ast.walk(stmt):
        if isinstance(node, ast.Decl) and node.name in renames:
            node.name = renames[node.name]
        elif isinstance(node, ast.Identifier) and node.name in renames:
            node.name = renames[node.name]
    return stmt


def _replace_stmt(container: ast.Stmt, target: ast.Stmt, replacement: ast.Stmt) -> bool:
    if isinstance(container, ast.Block):
        for index, stmt in enumerate(container.body):
            if stmt is target:
                container.body[index] = replacement
                return True
            if _replace_stmt(stmt, target, replacement):
                return True
        return False
    if isinstance(container, ast.If):
        if container.then is target:
            container.then = replacement
            return True
        if _replace_stmt(container.then, target, replacement):
            return True
        if container.otherwise is not None:
            if container.otherwise is target:
                container.otherwise = replacement
                return True
            return _replace_stmt(container.otherwise, target, replacement)
        return False
    if isinstance(container, (ast.ForLoop, ast.WhileLoop, ast.DoWhileLoop)):
        if container.body is target:
            container.body = replacement
            return True
        return _replace_stmt(container.body, target, replacement)
    if isinstance(container, ast.Label):
        if container.stmt is target:
            container.stmt = replacement
            return True
        return _replace_stmt(container.stmt, target, replacement)
    return False
