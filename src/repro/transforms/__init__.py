"""Domain-specific source-to-source transforms that scale the verification (paper Section 3.2-3.3)."""

from repro.transforms.c_unroll import CUnrollError, unroll_scalar_function
from repro.transforms.spatial import SpatialSplitError, is_spatially_splittable, spatial_access_summary

__all__ = [
    "CUnrollError",
    "unroll_scalar_function",
    "SpatialSplitError",
    "is_spatially_splittable",
    "spatial_access_summary",
]
