"""Spatial case splitting precondition (paper Section 3.3).

For loops without loop-carried dependences, the equivalence of whole arrays
decomposes into one query per array index.  The paper's legality check is
deliberately syntactic and conservative; this module implements the same two
conditions:

1. the scalar program accesses only the ``i``-th element of every array in
   iteration ``i`` (affine subscripts with coefficient 1 and offset 0), and
   the vectorized program only touches vectors starting at the ``i``-th
   element; and
2. neither program updates a scalar across loop iterations.

Kernels that fail the check are "filtered away" exactly as in the paper.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.analysis.accesses import AccessKind, collect_accesses
from repro.analysis.dependence import analyze_dependences
from repro.analysis.loops import find_main_loop
from repro.cfront import ast_nodes as ast


class SpatialSplitError(Exception):
    """The kernel does not satisfy the conservative splitting precondition."""


@dataclass(frozen=True)
class SpatialSummary:
    """What the splitting check established about a kernel pair."""

    splittable: bool
    reason: str = ""
    written_arrays: tuple[str, ...] = ()


def _loop_iterator(loop) -> str | None:
    """The loop's induction variable, tolerating headers with an empty init.

    Vectorized candidates conventionally declare the iterator before the loop
    (``int i = 0; for (; i <= n - 8; i += 8)``), so the canonical-form
    extractor leaves ``iterator`` unset; the condition still names it.
    """
    if loop.iterator is not None:
        return loop.iterator
    cond = loop.node.cond
    if isinstance(cond, ast.BinOp) and isinstance(cond.left, ast.Identifier):
        return cond.left.name
    return None


def _check_one_function(func: ast.FunctionDef, role: str) -> tuple[bool, str, tuple[str, ...]]:
    loop = find_main_loop(func)
    if loop is None:
        return False, f"{role}: no loop", ()
    iterator = _loop_iterator(loop)
    if iterator is None:
        return False, f"{role}: no recognizable loop iterator", ()
    accesses = collect_accesses(loop.body, iterator)
    report = analyze_dependences(accesses, loop.body, iterator)
    if report.recurrences:
        return False, f"{role}: scalar value updated across iterations", ()
    written = []
    for access in accesses:
        affine = access.affine
        if not affine.is_iterator_affine or affine.coefficient != 1 or affine.offset != 0:
            return False, f"{role}: access {access.describe()} is not to the i-th element", ()
        if access.kind is AccessKind.WRITE and access.array not in written:
            written.append(access.array)
    return True, "", tuple(written)


def spatial_access_summary(scalar_func: ast.FunctionDef, vector_func: ast.FunctionDef) -> SpatialSummary:
    """Run the conservative splitting check on the scalar/vectorized pair."""
    ok_scalar, reason_scalar, written = _check_one_function(scalar_func, "scalar")
    if not ok_scalar:
        return SpatialSummary(splittable=False, reason=reason_scalar)
    ok_vector, reason_vector, _ = _check_one_function(vector_func, "vectorized")
    if not ok_vector:
        return SpatialSummary(splittable=False, reason=reason_vector)
    return SpatialSummary(splittable=True, written_arrays=written)


def is_spatially_splittable(scalar_func: ast.FunctionDef, vector_func: ast.FunctionDef) -> bool:
    return spatial_access_summary(scalar_func, vector_func).splittable
