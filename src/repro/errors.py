"""Common error types and source locations used across the toolchain.

Every stage of the pipeline (lexing, parsing, interpretation, lowering,
verification) reports problems through the exception hierarchy defined here so
callers can distinguish "the input program is malformed" from "the candidate
program misbehaves at runtime" from "the verifier ran out of resources".
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True)
class SourceLocation:
    """A position in a C source snippet (1-based line and column)."""

    line: int = 0
    column: int = 0

    def __str__(self) -> str:
        return f"{self.line}:{self.column}"


class ReproError(Exception):
    """Base class for every error raised by the repro toolchain."""


class LexError(ReproError):
    """A token could not be formed from the input text."""

    def __init__(self, message: str, location: SourceLocation | None = None):
        self.location = location or SourceLocation()
        super().__init__(f"{self.location}: {message}")


class ParseError(ReproError):
    """The token stream does not form a valid program in the C subset."""

    def __init__(self, message: str, location: SourceLocation | None = None):
        self.location = location or SourceLocation()
        super().__init__(f"{self.location}: {message}")


class TypeCheckError(ReproError):
    """A program is syntactically valid but ill-typed."""


class CompileError(ReproError):
    """A candidate program was rejected before execution.

    This is the analogue of a C compiler diagnostic: unknown identifiers,
    unknown intrinsics, arity mismatches, and so on.  The checksum tester
    classifies candidates that raise :class:`CompileError` as
    ``CANNOT_COMPILE``, matching the paper's Table 2 row.
    """


class InterpreterError(ReproError):
    """The interpreter could not continue executing a program."""


class UndefinedBehaviorError(InterpreterError):
    """Execution hit undefined behaviour that the memory model refuses to mask.

    Out-of-bounds accesses beyond the guard region, use of poison values in
    stores, and signed overflow in contexts where it matters raise this error
    when the interpreter runs in strict mode.
    """

    def __init__(self, message: str, kind: str = "generic"):
        self.kind = kind
        super().__init__(message)


class LoweringError(ReproError):
    """The C AST could not be lowered to the mini IR."""


class VerificationError(ReproError):
    """The verifier was mis-used (not a verdict; verdicts are data)."""


class ResourceBudgetExceeded(ReproError):
    """A solver or verifier exceeded its configured budget.

    Callers convert this into an ``INCONCLUSIVE`` verdict; it mirrors
    Alive2/Z3 timeouts and memory-outs in the paper.
    """

    def __init__(self, message: str, resource: str = "steps"):
        self.resource = resource
        super().__init__(message)
