"""The LLM client interface used by LLM-Vectorizer.

The pipeline never talks to a model directly; it sends a
:class:`CompletionRequest` (a natural-language prompt that embeds the scalar
C code and, optionally, dependence-analysis feedback) to an
:class:`LLMClient` and receives :class:`LLMCompletion` objects holding C
source text.  This mirrors the paper's setup (GPT-4, temperature 1.0,
``n`` code completions per request) while allowing the offline synthetic
stand-in and any future real client to be swapped freely.
"""

from __future__ import annotations

import abc
from dataclasses import dataclass, field


@dataclass(frozen=True)
class CompletionRequest:
    """One request for vectorized-code completions."""

    prompt: str
    kernel_name: str
    scalar_code: str
    num_completions: int = 1
    temperature: float = 1.0
    #: Extra context the agents attach (dependence analysis, test feedback).
    feedback: str = ""
    #: Target ISA name the completion should use.  ``None`` means "inherit":
    #: the single default-resolution rule in
    #: :func:`repro.targets.resolve_target_setting` applies, so requests,
    #: prompts and tool configs cannot disagree about the active target.
    target: str | None = None
    #: Epilogue strategy the completion should use (``"scalar"``, ``"masked"``
    #: or ``"predicated"``; see :data:`repro.vectorizer.EPILOGUE_STRATEGIES`).
    epilogue: str = "scalar"


@dataclass(frozen=True)
class LLMCompletion:
    """One code completion returned by the model."""

    code: str
    #: Metadata for experiment bookkeeping (the synthetic model records which
    #: faults, if any, were injected).  A real client leaves this empty.
    annotations: dict = field(default_factory=dict)


class LLMClient(abc.ABC):
    """Abstract client: prompt in, ``num_completions`` completions out."""

    #: API version string, mirroring the paper's experimental setup section.
    api_version: str = "2023-08-01-preview"

    @abc.abstractmethod
    def complete(self, request: CompletionRequest) -> list[LLMCompletion]:
        """Return ``request.num_completions`` candidate programs."""

    @property
    def invocation_count(self) -> int:
        """Number of ``complete`` calls made so far (for RQ4 accounting)."""
        return getattr(self, "_invocation_count", 0)

    def _record_invocation(self) -> None:
        self._invocation_count = self.invocation_count + 1
