"""SyntheticLLM: a deterministic, seeded stand-in for GPT-4.

The stand-in wraps the rule-based vectorizer (:mod:`repro.vectorizer`) in a
calibrated fault model (:mod:`repro.llm.faults`) so that the rest of the
pipeline — checksum testing, the multi-agent FSM, translation validation —
sees the same *distribution of candidate programs* the paper reports for
GPT-4: mostly-correct vectorizations, a tail of subtly wrong ones, a few that
do not compile, occasional low-effort "blocked scalar" rewrites for kernels
the model cannot truly vectorize, and outright wrong attempts for the rest.

Key behavioural knobs and the paper observations they are calibrated to:

* per-completion success improves when the prompt carries dependence-analysis
  context or tester feedback (Section 4.4.1's 72 -> 96 plausible with one
  invocation under the FSM);
* harder kernels (dependences, control flow) have higher fault rates, which
  produces the saturating pass@k curve of Figure 5;
* kernels the vectorizer cannot handle still get answers — usually wrong,
  occasionally a correct but unvectorized restructuring — reproducing the
  k=1/10/100 progression of Table 2.
"""

from __future__ import annotations

import copy
import hashlib
import random
from dataclasses import dataclass, field

from repro.analysis.features import (
    CATEGORY_DEPENDENCE,
    CATEGORY_DEPENDENCE_CF,
    CATEGORY_CONTROL_FLOW,
    CATEGORY_REDUCTION_CF,
)
from repro.cfront import ast_nodes as ast
from repro.cfront.ctypes import INT
from repro.cfront.printer import function_to_c
from repro.errors import ParseError, ReproError
from repro.llm.client import CompletionRequest, LLMClient, LLMCompletion
from repro.llm.faults import FaultProfile, applicable_faults, apply_fault
from repro.llm.prompts import has_dependence_feedback, has_tester_feedback
from repro.targets import TargetISA, get_target, resolve_target_setting
from repro.vectorizer.plancache import (
    cached_parse,
    cached_plan,
    cached_vectorize,
    seed_parse,
)
from repro.analysis.loops import find_main_loop


@dataclass
class SyntheticLLMConfig:
    """Calibration of the synthetic model."""

    seed: int = 2024
    temperature: float = 1.0
    fault_profile: FaultProfile = field(default_factory=FaultProfile)
    #: Per-completion probability of producing a *correct but unvectorized*
    #: blocked rewrite for kernels the vectorizer cannot handle (this is what
    #: lets additional kernels become plausible only at large k).  Calibrated
    #: so the hard-kernel contribution to pass@k saturates by k around 20-30,
    #: matching Figure 5's steep-rise-then-plateau shape; kernels whose main
    #: loop cannot be block-rewritten stay at zero, which keeps the plateau
    #: below 1.0 as in the paper.
    hard_kernel_success_rate: float = 0.13
    #: Among wrong attempts for hard kernels, how often the attempt does not
    #: even compile (Table 2's "Cannot compile" row).
    broken_compile_rate: float = 0.3
    #: Extra fault-rate multiplier for kernels in difficult categories.
    difficult_category_multiplier: float = 1.4


_DIFFICULT_CATEGORIES = {
    CATEGORY_DEPENDENCE,
    CATEGORY_DEPENDENCE_CF,
    CATEGORY_CONTROL_FLOW,
    CATEGORY_REDUCTION_CF,
}


class SyntheticLLM(LLMClient):
    """Deterministic GPT-4 stand-in; see the module docstring for the model."""

    def __init__(self, config: SyntheticLLMConfig | None = None):
        self.config = config or SyntheticLLMConfig()
        self._invocation_count = 0

    # -- public API ------------------------------------------------------------

    def complete(self, request: CompletionRequest) -> list[LLMCompletion]:
        self._record_invocation()
        completions: list[LLMCompletion] = []
        for index in range(request.num_completions):
            completions.append(self._one_completion(request, index))
        return completions

    # -- internals --------------------------------------------------------------

    def _rng_for(self, request: CompletionRequest, index: int) -> random.Random:
        key = f"{self.config.seed}:{request.kernel_name}:{self.invocation_count}:{index}:{request.temperature}"
        digest = hashlib.sha256(key.encode()).hexdigest()
        return random.Random(int(digest[:16], 16))

    def _kernel_difficulty(self, request: CompletionRequest, func: ast.FunctionDef) -> float:
        """A multiplier >= 1 raising fault rates for difficult kernels."""
        from repro.analysis.features import analyze_kernel

        try:
            category = analyze_kernel(func).category
        except ReproError:
            return self.config.difficult_category_multiplier
        if category in _DIFFICULT_CATEGORIES:
            return self.config.difficult_category_multiplier
        # Deterministic per-kernel jitter so pass@k varies smoothly across kernels.
        jitter = (int(hashlib.sha256(request.kernel_name.encode()).hexdigest()[:4], 16) % 100) / 400.0
        return 1.0 + jitter

    def _one_completion(self, request: CompletionRequest, index: int) -> LLMCompletion:
        rng = self._rng_for(request, index)
        target = resolve_target_setting(getattr(request, "target", None))
        epilogue = getattr(request, "epilogue", "scalar")
        try:
            scalar_func = cached_parse(request.scalar_code)
        except (ParseError, ReproError):
            return LLMCompletion(code=request.scalar_code, annotations={"mode": "echo"})

        result = cached_vectorize(request.scalar_code, scalar_func, target,
                                  epilogue=epilogue)
        if result is None:
            return self._hard_kernel_completion(request, scalar_func, rng, target,
                                                epilogue=epilogue)

        correct_source = result.source
        fault_rate = self.config.fault_profile.fault_rate(
            has_dependence_feedback(request.prompt),
            has_tester_feedback(request.prompt) or bool(request.feedback),
        )
        fault_rate = min(0.95, fault_rate * self._kernel_difficulty(request, scalar_func))
        fault_rate *= max(0.2, min(1.5, request.temperature))
        if rng.random() >= fault_rate:
            return LLMCompletion(
                code=correct_source,
                annotations={"mode": "correct", "strategy": result.strategy},
            )
        applicable = applicable_faults(correct_source)
        kind = self.config.fault_profile.sample_kind(rng, applicable)
        if kind is None:
            return LLMCompletion(code=correct_source, annotations={"mode": "correct"})
        mutated = apply_fault(correct_source, kind, rng)
        if mutated == correct_source:
            return LLMCompletion(code=correct_source, annotations={"mode": "correct"})
        return LLMCompletion(
            code=mutated,
            annotations={"mode": "faulty", "fault": kind.value, "strategy": result.strategy},
        )

    # -- hard kernels (the vectorizer cannot handle them) --------------------------

    def _hard_kernel_completion(
        self, request: CompletionRequest, scalar_func: ast.FunctionDef,
        rng: random.Random, target: TargetISA, epilogue: str = "scalar",
    ) -> LLMCompletion:
        plan = cached_plan(request.scalar_code, scalar_func, target, epilogue=epilogue)
        reason = plan.rejection_text or "unsupported"
        success_rate = self.config.hard_kernel_success_rate
        if has_dependence_feedback(request.prompt) or has_tester_feedback(request.prompt):
            success_rate *= 2.0
        if rng.random() < success_rate:
            blocked = _memoized_builder(
                "blocked", scalar_func, target.lanes,
                lambda: _blocked_rewrite(scalar_func, target.lanes))
            if blocked is not None:
                return LLMCompletion(
                    code=blocked, annotations={"mode": "blocked_rewrite", "reason": reason}
                )
        if rng.random() < self.config.broken_compile_rate:
            broken = _memoized_builder(
                "uncompilable", scalar_func, target.name,
                lambda: _uncompilable_attempt(scalar_func, target))
            return LLMCompletion(code=broken, annotations={"mode": "broken_compile", "reason": reason})
        broken = _memoized_builder(
            "broken", scalar_func, target.lanes,
            lambda: _broken_attempt(scalar_func, target.lanes))
        return LLMCompletion(code=broken, annotations={"mode": "broken_wrong", "reason": reason})


# ---------------------------------------------------------------------------
# candidate builders for kernels outside the vectorizer's capability
# ---------------------------------------------------------------------------

#: The three builders below are deterministic in (scalar function, lane
#: count / target); the rng only decides *which* builder a completion uses.
#: Hard kernels are retried many times per campaign, so each rebuild was
#: pure repeat work.  Entries hold a strong reference to the input function,
#: protecting the id-based key from reuse.
_BUILDER_MEMO: dict[tuple[str, int, object], tuple[ast.FunctionDef, str | None]] = {}
_BUILDER_MEMO_CAPACITY = 512


def _memoized_builder(kind: str, scalar_func: ast.FunctionDef, salt: object,
                      build) -> str | None:
    key = (kind, id(scalar_func), salt)
    entry = _BUILDER_MEMO.get(key)
    if entry is not None and entry[0] is scalar_func:
        return entry[1]
    source = build()
    if len(_BUILDER_MEMO) >= _BUILDER_MEMO_CAPACITY:
        _BUILDER_MEMO.clear()
    _BUILDER_MEMO[key] = (scalar_func, source)
    return source


def _blocked_rewrite(scalar_func: ast.FunctionDef, lanes: int = 8) -> str | None:
    """A correct but unvectorized rewrite: process the loop in lane-count blocks.

    This mirrors the low-effort completions GPT-4 sometimes produces for loops
    it cannot truly vectorize — correct (so checksum-plausible) but without
    SIMD intrinsics; the performance model charges scalar costs for it.
    """
    func = copy.deepcopy(scalar_func)
    loop = find_main_loop(func)
    if loop is None or not loop.is_canonical or loop.step != 1 or loop.end_op != "<":
        return None
    iterator = loop.iterator
    block_iter = f"{iterator}b"
    inner_end = ast.BinOp(op="+", left=ast.Identifier(name=block_iter), right=ast.IntLiteral(value=lanes))
    inner_loop = ast.ForLoop(
        init=ast.Decl(var_type=INT, name=iterator, init=ast.Identifier(name=block_iter)),
        cond=ast.BinOp(op="<", left=ast.Identifier(name=iterator), right=inner_end),
        step=ast.Assign(op="+=", target=ast.Identifier(name=iterator), value=ast.IntLiteral(value=1)),
        body=copy.deepcopy(loop.node.body),
    )
    outer_end = ast.BinOp(op="-", left=copy.deepcopy(loop.end), right=ast.IntLiteral(value=lanes - 1))
    outer_loop = ast.ForLoop(
        init=ast.Decl(var_type=INT, name=block_iter, init=copy.deepcopy(loop.start)),
        cond=ast.BinOp(op=loop.end_op, left=ast.Identifier(name=block_iter), right=outer_end),
        step=ast.Assign(op="+=", target=ast.Identifier(name=block_iter), value=ast.IntLiteral(value=lanes)),
        body=ast.Block(body=[inner_loop]),
    )
    epilogue_start = ast.BinOp(
        op="-",
        left=copy.deepcopy(loop.end),
        right=ast.BinOp(
            op="%",
            left=ast.BinOp(op="-", left=copy.deepcopy(loop.end), right=copy.deepcopy(loop.start)),
            right=ast.IntLiteral(value=lanes),
        ),
    )
    epilogue = ast.ForLoop(
        init=ast.Decl(var_type=INT, name=iterator, init=epilogue_start),
        cond=copy.deepcopy(loop.node.cond),
        step=copy.deepcopy(loop.node.step),
        body=copy.deepcopy(loop.node.body),
    )
    replacement = ast.Block(body=[outer_loop, epilogue])
    _replace_in(func.body, loop.node, replacement)
    source = function_to_c(func, include_header=True)
    seed_parse(source, func)
    return source


def _broken_attempt(scalar_func: ast.FunctionDef, lanes: int = 8) -> str:
    """A wrong attempt: bump the loop step to the lane count without processing
    the block."""
    func = copy.deepcopy(scalar_func)
    loop = find_main_loop(func)
    if loop is not None and loop.step_expr is not None:
        new_step = ast.Assign(
            op="+=", target=ast.Identifier(name=loop.iterator or "i"),
            value=ast.IntLiteral(value=lanes),
        )
        loop.node.step = new_step
    source = function_to_c(func, include_header=True)
    seed_parse(source, func)
    return source


def _uncompilable_attempt(scalar_func: ast.FunctionDef,
                          target: TargetISA | None = None) -> str:
    """A wrong attempt that also fails to compile (an invented intrinsic).

    The bogus gather spelling is target data: it follows the ISA's own
    naming style (so the candidate *looks* plausible) without being a name
    any registered target actually emits.
    """
    isa = get_target(target)
    source = function_to_c(copy.deepcopy(scalar_func), include_header=True)
    lines = source.splitlines()
    insertion = (f"    {isa.vector_type} vtmp = "
                 f"{isa.bogus_gather_spelling}(a, {isa.lanes});")
    for position, line in enumerate(lines):
        if line.strip().startswith("for ("):
            lines.insert(position + 2, insertion)
            break
    else:
        lines.append(insertion)
    return "\n".join(lines) + "\n"


def _replace_in(container: ast.Stmt, target: ast.Stmt, replacement: ast.Stmt) -> bool:
    if isinstance(container, ast.Block):
        for index, stmt in enumerate(container.body):
            if stmt is target:
                container.body[index] = replacement
                return True
            if _replace_in(stmt, target, replacement):
                return True
        return False
    if isinstance(container, ast.If):
        if container.then is target:
            container.then = replacement
            return True
        if _replace_in(container.then, target, replacement):
            return True
        if container.otherwise is not None:
            if container.otherwise is target:
                container.otherwise = replacement
                return True
            return _replace_in(container.otherwise, target, replacement)
        return False
    if isinstance(container, (ast.ForLoop, ast.WhileLoop, ast.DoWhileLoop)):
        if container.body is target:
            container.body = replacement
            return True
        return _replace_in(container.body, target, replacement)
    if isinstance(container, ast.Label):
        if container.stmt is target:
            container.stmt = replacement
            return True
        return _replace_in(container.stmt, target, replacement)
    return False
