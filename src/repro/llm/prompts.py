"""Prompt construction for the vectorizer agent.

The paper's user proxy agent sends the scalar code together with Clang's
dependence-analysis remark explaining why the loop was not auto-vectorized,
and on later attempts appends checksum-testing feedback.  These builders
produce the same structure for any target ISA (the paper's experiments use
AVX2, the default); the synthetic LLM inspects the presence of the
dependence/feedback sections to modulate its fault rates (which is the
mechanism by which the multi-agent FSM improves single-invocation success in
our reproduction, matching Section 4.4.1).
"""

from __future__ import annotations

from repro.targets import TargetISA, resolve_target_setting

DEPENDENCE_SECTION_HEADER = "Dependence analysis from the compiler:"
FEEDBACK_SECTION_HEADER = "Feedback from checksum-based testing:"

_LANE_WORDS = {4: "four", 8: "eight", 16: "sixteen"}


def _lane_phrase(isa: TargetISA) -> str:
    return _LANE_WORDS.get(isa.lanes, str(isa.lanes))


def build_vectorization_prompt(
    scalar_code: str,
    dependence_report: str = "",
    target: "TargetISA | str | None" = None,
) -> str:
    """The initial prompt asking for a vectorized program for one target ISA."""
    isa = resolve_target_setting(target)
    lines = [
        f"You are an expert in SIMD programming with {isa.display_name} compiler intrinsics.",
        "Rewrite the following scalar C function into an equivalent vectorized C",
        f"function using {isa.display_name} intrinsics (process {_lane_phrase(isa)} 32-bit integers per",
        "iteration) and keep the function signature unchanged. Handle the loop",
        "remainder with a scalar epilogue loop.",
        "",
        "Input scalar C code:",
        "```c",
        scalar_code.strip(),
        "```",
    ]
    if dependence_report:
        lines += [
            "",
            DEPENDENCE_SECTION_HEADER,
            dependence_report.strip(),
            "",
            "Eliminate or work around the reported dependences so the loop can be",
            "vectorized safely.",
        ]
    return "\n".join(lines)


def build_repair_prompt(
    scalar_code: str,
    previous_attempt: str,
    feedback: str,
    target: "TargetISA | str | None" = None,
) -> str:
    """The re-vectorization prompt carrying tester feedback (repair loop)."""
    isa = resolve_target_setting(target)
    lines = [
        f"The previous {isa.display_name} vectorization attempt was not equivalent to the",
        "scalar code. Produce a corrected vectorized C function.",
        "",
        "Original scalar C code:",
        "```c",
        scalar_code.strip(),
        "```",
        "",
        "Previous (incorrect) vectorized attempt:",
        "```c",
        previous_attempt.strip(),
        "```",
        "",
        FEEDBACK_SECTION_HEADER,
        feedback.strip(),
    ]
    return "\n".join(lines)


def has_dependence_feedback(prompt: str) -> bool:
    return DEPENDENCE_SECTION_HEADER in prompt


def has_tester_feedback(prompt: str) -> bool:
    return FEEDBACK_SECTION_HEADER in prompt
