"""LLM substrate: the client interface the pipeline talks to, plus the synthetic stand-in.

The paper drives GPT-4 through the Azure OpenAI API; this package exposes the
same shape of interface (:class:`LLMClient`: prompt in, k code completions
out) and provides :class:`SyntheticLLM`, a deterministic stand-in built from
the rule-based vectorizer wrapped in a calibrated fault model.  Any real LLM
can be substituted by implementing :class:`LLMClient`.
"""

from repro.llm.client import CompletionRequest, LLMClient, LLMCompletion
from repro.llm.faults import FaultKind, FaultProfile
from repro.llm.prompts import build_vectorization_prompt, build_repair_prompt
from repro.llm.synthetic import SyntheticLLM, SyntheticLLMConfig

__all__ = [
    "CompletionRequest",
    "LLMClient",
    "LLMCompletion",
    "FaultKind",
    "FaultProfile",
    "build_vectorization_prompt",
    "build_repair_prompt",
    "SyntheticLLM",
    "SyntheticLLMConfig",
]
