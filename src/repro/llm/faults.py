"""Fault model: the mistake classes the synthetic LLM injects into candidates.

The paper's qualitative analysis (Sections 4.1.3 and 4.4.2) identifies the
recurring GPT-4 failure modes: mishandled loop-carried dependences and
induction variables (the s453 first attempt), unsafe hoisting out of
conditionals, code that does not compile, and subtle bugs that survive
checksum testing but are caught by symbolic verification (the s124 story).
Each :class:`FaultKind` below reproduces one of those modes as a concrete
program transformation applied to an otherwise-correct vectorization, so the
downstream tools (checksum tester, translation validator, agents) are
exercised against *real* buggy programs rather than labels.
"""

from __future__ import annotations

import copy
import enum
import random
from dataclasses import dataclass, field

from repro.cfront import ast_nodes as ast
from repro.cfront.printer import function_to_c
from repro.targets import ALL_TARGETS, TargetISA, resolve_intrinsic


class FaultKind(enum.Enum):
    """A class of LLM mistake, with how the pipeline typically experiences it."""

    #: Misspelled intrinsic: the candidate does not compile (Table 2 row 3).
    COMPILE_ERROR = "compile_error"
    #: An arithmetic intrinsic replaced by another: caught by checksum testing.
    WRONG_OPERATOR = "wrong_operator"
    #: Induction vector built naively (the paper's s453 first attempt): caught
    #: by checksum testing and repairable from its feedback.
    NAIVE_INDUCTION = "naive_induction"
    #: A masked (if-converted) store made unconditional (unsafe hoisting):
    #: caught by checksum testing.
    UNSAFE_HOIST = "unsafe_hoist"
    #: A strict comparison relaxed to non-strict: usually invisible to random
    #: testing (needs a tie) but refuted by symbolic verification.
    CMP_OFF_BY_ONE = "cmp_off_by_one"
    #: The scalar epilogue loop dropped: correct only when the trip count is a
    #: multiple of the vector width.
    MISSING_EPILOGUE = "missing_epilogue"
    #: An accumulator's ``setzero`` initialization dropped.  The reference
    #: interpreter zero-fills uninitialized vector locals, so execution-based
    #: testing cannot see this one at all — it exists for the static vetter's
    #: ``use-before-init`` rule (a real compiler would read garbage).
    DROP_ACC_INIT = "drop_acc_init"
    #: A predicated store's ``whilelt`` governor replaced with an all-true
    #: predicate: every full-width iteration is unchanged, but the final
    #: partial iteration writes all lanes past the extent.
    UNGOVERNED_MEMORY = "ungoverned_memory"


#: Faults that the repair loop can plausibly fix once the tester reports a
#: mismatch (they are localized and the feedback pinpoints them).
REPAIRABLE_FAULTS = frozenset(
    {FaultKind.WRONG_OPERATOR, FaultKind.NAIVE_INDUCTION, FaultKind.UNSAFE_HOIST,
     FaultKind.COMPILE_ERROR}
)


@dataclass
class FaultProfile:
    """Per-request fault probabilities.

    ``base_fault_rate`` is the probability that a completion receives at
    least one fault; ``kind_weights`` selects which one.  The rates drop when
    dependence-analysis context is present (the agents' prompts) and when
    tester feedback identifies the previous fault — this is the calibrated
    mechanism behind the multi-agent FSM improvements of Section 4.4.
    """

    base_fault_rate: float = 0.32
    with_dependence_info_rate: float = 0.18
    with_feedback_rate: float = 0.12
    kind_weights: dict[FaultKind, float] = field(default_factory=lambda: {
        FaultKind.COMPILE_ERROR: 0.12,
        FaultKind.WRONG_OPERATOR: 0.22,
        FaultKind.NAIVE_INDUCTION: 0.16,
        FaultKind.UNSAFE_HOIST: 0.16,
        FaultKind.CMP_OFF_BY_ONE: 0.22,
        FaultKind.MISSING_EPILOGUE: 0.12,
        # Statically-visible kinds are not part of the calibrated mix (their
        # zero weight keeps every seeded campaign's rng stream unchanged);
        # tests and fault-corpus tooling inject them via apply_fault directly.
        FaultKind.DROP_ACC_INIT: 0.0,
        FaultKind.UNGOVERNED_MEMORY: 0.0,
    })

    def fault_rate(self, has_dependence_info: bool, has_feedback: bool) -> float:
        if has_feedback:
            return self.with_feedback_rate
        if has_dependence_info:
            return self.with_dependence_info_rate
        return self.base_fault_rate

    def sample_kind(self, rng: random.Random, applicable: list["FaultKind"]) -> "FaultKind" | None:
        candidates = [(kind, self.kind_weights.get(kind, 0.0)) for kind in applicable]
        total = sum(weight for _, weight in candidates)
        if total <= 0:
            return None
        pick = rng.uniform(0, total)
        accumulated = 0.0
        for kind, weight in candidates:
            accumulated += weight
            if pick <= accumulated:
                return kind
        return candidates[-1][0]


# ---------------------------------------------------------------------------
# fault application
# ---------------------------------------------------------------------------

#: Spelling data derived from the registered targets.  No prefix matching
#: and no string surgery: the bidirectional op <-> name mapping lives with
#: each :class:`~repro.targets.TargetISA`, so a backend whose names share
#: nothing with the x86 grammar (NEON) participates automatically, and an
#: unknown spelling raises :class:`~repro.targets.UnknownIntrinsicName`
#: instead of being silently mutated into another ISA's name.  Predicate-
#: first targets (SVE) have no data-vector ``select``/``cmpgt`` at all, so
#: each mutation carries a predicate-aware twin over ``psel``/``pcmpgt``,
#: again respelled through the owning ISA.
def _spellings(op: str) -> frozenset[str]:
    return frozenset(t.intrinsic(op) for t in ALL_TARGETS if t.supports(op))


_OPERATOR_SWAPS = {
    t.intrinsic(a): t.intrinsic(b)
    for t in ALL_TARGETS
    for a, b in (("add", "sub"), ("sub", "add"), ("mul", "add"))
    if t.supports(a) and t.supports(b)
}

_SELECT_NAMES = _spellings("select")
_PSEL_NAMES = _spellings("psel")
_CMPGT_NAMES = _spellings("cmpgt")
_PCMPGT_NAMES = _spellings("pcmpgt")
_SETR_NAMES = _spellings("setr")
_INDEX_NAMES = _spellings("index")
_SETZERO_NAMES = _spellings("setzero")
_PSTORE_NAMES = _spellings("pstore")
_WHILELT_NAMES = _spellings("whilelt")

#: Setr arities a ramp can legitimately have (one per registered width).
_RAMP_ARITIES = {t.lanes for t in ALL_TARGETS}


def _target_of(name: str) -> TargetISA:
    """The target ISA owning an intrinsic spelling.

    Raises :class:`~repro.targets.UnknownIntrinsicName` for spellings no
    registered target emits — a fault mutation must never respell a
    candidate into a different ISA.
    """
    isa, _op = resolve_intrinsic(name)
    return isa


def _zero_call(isa: TargetISA) -> ast.Call:
    name, args = isa.zero_call()
    return ast.Call(func=name, args=[ast.IntLiteral(value=arg) for arg in args])


#: ``applicable_faults`` is pure in its source text, and the synthetic LLM
#: asks about the same (plan-cached) candidate once per faulty attempt.
_APPLICABLE_MEMO: dict[str, list[FaultKind]] = {}
_APPLICABLE_MEMO_CAPACITY = 1024


def applicable_faults(vectorized_source: str) -> list[FaultKind]:
    """Which fault kinds can be expressed on this particular candidate."""
    cached = _APPLICABLE_MEMO.get(vectorized_source)
    if cached is not None:
        return list(cached)
    faults = _applicable_faults_uncached(vectorized_source)
    if len(_APPLICABLE_MEMO) >= _APPLICABLE_MEMO_CAPACITY:
        _APPLICABLE_MEMO.clear()
    _APPLICABLE_MEMO[vectorized_source] = faults
    return list(faults)


def _applicable_faults_uncached(vectorized_source: str) -> list[FaultKind]:
    faults = [FaultKind.COMPILE_ERROR]
    if any(name in vectorized_source for name in _OPERATOR_SWAPS):
        faults.append(FaultKind.WRONG_OPERATOR)
    if any(name in vectorized_source for name in _SETR_NAMES | _INDEX_NAMES):
        faults.append(FaultKind.NAIVE_INDUCTION)
    if any(name in vectorized_source for name in _SELECT_NAMES | _PSEL_NAMES):
        faults.append(FaultKind.UNSAFE_HOIST)
    if any(name in vectorized_source for name in _CMPGT_NAMES | _PCMPGT_NAMES):
        faults.append(FaultKind.CMP_OFF_BY_ONE)
    if _count_for_loops(vectorized_source) >= 2:
        faults.append(FaultKind.MISSING_EPILOGUE)
    # New kinds stay at the end of the list: sample_kind accumulates weights
    # in list order, so appending (zero-weight) kinds preserves the exact rng
    # stream of every seeded campaign recorded before they existed.
    if any(name in vectorized_source for name in _SETZERO_NAMES):
        faults.append(FaultKind.DROP_ACC_INIT)
    if any(name in vectorized_source for name in _PSTORE_NAMES) and any(
            name in vectorized_source for name in _WHILELT_NAMES):
        faults.append(FaultKind.UNGOVERNED_MEMORY)
    return faults


def _count_for_loops(source: str) -> int:
    # Read-only walk, so the shared-AST cache is safe here (candidate sources
    # are usually renderer output and already seeded).
    from repro.vectorizer.plancache import cached_parse

    try:
        func = cached_parse(source)
    except Exception:
        return 0
    return sum(1 for node in ast.walk(func) if isinstance(node, ast.ForLoop))


def apply_fault(vectorized_source: str, kind: FaultKind, rng: random.Random) -> str:
    """Return a mutated copy of ``vectorized_source`` exhibiting ``kind``.

    If the requested mutation turns out not to apply (e.g. no blend to
    un-guard), the source is returned unchanged; callers treat that as "no
    fault injected".
    """
    if kind is FaultKind.COMPILE_ERROR:
        return _inject_compile_error(vectorized_source, rng)
    # A private copy of the (usually cache-seeded) tree: the mutators below
    # edit in place, and the shared AST must never be touched.
    from repro.vectorizer.plancache import cached_parse

    func = copy.deepcopy(cached_parse(vectorized_source))
    if kind is FaultKind.WRONG_OPERATOR:
        changed = _swap_one_operator(func, rng)
    elif kind is FaultKind.NAIVE_INDUCTION:
        changed = _naive_induction(func)
    elif kind is FaultKind.UNSAFE_HOIST:
        changed = _unsafe_hoist(func, rng)
    elif kind is FaultKind.CMP_OFF_BY_ONE:
        changed = _relax_comparison(func, rng)
    elif kind is FaultKind.MISSING_EPILOGUE:
        changed = _drop_epilogue(func)
    elif kind is FaultKind.DROP_ACC_INIT:
        changed = _drop_acc_init(func)
    elif kind is FaultKind.UNGOVERNED_MEMORY:
        changed = _ungoverned_store(func, rng)
    else:  # pragma: no cover - defensive
        changed = False
    if not changed:
        return vectorized_source
    mutated_source = function_to_c(func, include_header=True)
    # ``func`` was parsed fresh above (never from the shared-AST cache — the
    # mutators edit it in place) and is final now; seed the parse cache so the
    # tester/verifier reuse this tree instead of re-parsing the rendering.
    from repro.vectorizer.plancache import seed_parse

    seed_parse(mutated_source, func)
    return mutated_source


def _inject_compile_error(source: str, rng: random.Random) -> str:
    """Misspell one intrinsic so the candidate fails to compile."""
    for op in ("loadu", "pload", "add", "mul", "storeu", "pstore", "set1"):
        for isa in ALL_TARGETS:
            if not isa.supports(op):
                continue
            name = isa.intrinsic(op)
            if name in source:
                return source.replace(name, name + "x", 1)
    return source + "\n/* missing translation unit */ int __undefined_symbol = undeclared_variable;\n"


def _calls(func: ast.FunctionDef, names: set[str]) -> list[ast.Call]:
    return [node for node in ast.walk(func) if isinstance(node, ast.Call) and node.func in names]


def _swap_one_operator(func: ast.FunctionDef, rng: random.Random) -> bool:
    calls = _calls(func, set(_OPERATOR_SWAPS))
    if not calls:
        return False
    target = rng.choice(calls)
    target.func = _OPERATOR_SWAPS[target.func]
    return True


def _naive_induction(func: ast.FunctionDef) -> bool:
    """Replace a ramp constructor with a constant splat of its first element.

    This reproduces the paper's s453 first attempt, where the induction
    vector was initialized as if a single scalar update covered all the
    lanes.  On x86/NEON the ramp is a ``setr`` with one argument per lane;
    on SVE it is ``svindex(base, step)``, which degrades to ``svdup(base)``
    — the same bug respelled through the owning ISA.
    """
    calls = _calls(func, _SETR_NAMES)
    ramps = [c for c in calls if len(c.args) in _RAMP_ARITIES]
    if ramps:
        ramp = ramps[0]
        first = ramp.args[0]
        ramp.args = [first] * len(ramp.args)
        return True
    index_calls = _calls(func, _INDEX_NAMES)
    if not index_calls:
        return False
    ramp = index_calls[0]
    isa = _target_of(ramp.func)
    ramp.func = isa.intrinsic("set1")
    ramp.args = [ramp.args[0]]
    return True


def _unsafe_hoist(func: ast.FunctionDef, rng: random.Random) -> bool:
    """Drop the select on one if-converted value (store the 'then' value always).

    Works on both blend shapes — ``select(else, then, mask)`` and the
    predicate-first ``psel(pred, then, else)`` — because both carry the
    'then' value second.
    """
    calls = _calls(func, _SELECT_NAMES | _PSEL_NAMES)
    if not calls:
        return False
    target = rng.choice(calls)
    isa = _target_of(target.func)
    then_value = target.args[1]
    target.func = isa.intrinsic("add")
    target.args = [then_value, _zero_call(isa)]
    return True


def _relax_comparison(func: ast.FunctionDef, rng: random.Random) -> bool:
    """Turn one strict ``>`` mask into ``>=`` (greater-or-equal).

    The difference only shows when the compared lanes tie, so random testing
    rarely notices — but translation validation does.  On a predicate-first
    target the mask is a predicate register, so the relaxed form is the
    predicate OR of the strict compare and an equality compare, each
    governed by the original predicate.
    """
    calls = _calls(func, _CMPGT_NAMES | _PCMPGT_NAMES)
    if not calls:
        return False
    target = rng.choice(calls)
    isa = _target_of(target.func)
    if target.func in _PCMPGT_NAMES:
        gov, left, right = target.args
        greater = ast.Call(func=isa.intrinsic("pcmpgt"),
                           args=[copy.deepcopy(gov), left, right])
        equal = ast.Call(func=isa.intrinsic("pcmpeq"),
                         args=[copy.deepcopy(gov), copy.deepcopy(left),
                               copy.deepcopy(right)])
        target.func = isa.intrinsic("por")
        target.args = [gov, greater, equal]
        return True
    left, right = target.args
    greater = ast.Call(func=isa.intrinsic("cmpgt"), args=[left, right])
    equal = ast.Call(func=isa.intrinsic("cmpeq"), args=[left, right])
    target.func = isa.intrinsic("or")
    target.args = [greater, equal]
    return True


def _drop_acc_init(func: ast.FunctionDef) -> bool:
    """Drop the ``setzero`` initializer of one vector declaration.

    The interpreter zero-fills uninitialized (non-scalable) vector locals,
    so the mutated candidate *behaves* identically — this fault is the
    static vetter's to catch (``use-before-init``), modeling the class of
    bugs that are invisible to any amount of execution.
    """
    for node in ast.walk(func):
        if (isinstance(node, ast.Decl) and isinstance(node.init, ast.Call)
                and node.init.func in _SETZERO_NAMES):
            node.init = None
            return True
    return False


def _ungoverned_store(func: ast.FunctionDef, rng: random.Random) -> bool:
    """Replace one predicated store's governor with an all-true predicate.

    Full-width iterations are unchanged; the final partial iteration of the
    whilelt loop stores every lane, running past the extent.
    """
    calls = [c for c in _calls(func, _PSTORE_NAMES) if c.args]
    if not calls:
        return False
    target = rng.choice(calls)
    isa = _target_of(target.func)
    target.args[0] = ast.Call(func=isa.intrinsic("ptrue"), args=[])
    return True


def _drop_epilogue(func: ast.FunctionDef) -> bool:
    """Remove the scalar epilogue loop (the last for loop of the region)."""
    loops = [node for node in ast.walk(func) if isinstance(node, ast.ForLoop)]
    if len(loops) < 2:
        return False
    epilogue = loops[-1]
    return _remove_stmt(func.body, epilogue)


def _remove_stmt(container: ast.Stmt, target: ast.Stmt) -> bool:
    if isinstance(container, ast.Block):
        for index, stmt in enumerate(container.body):
            if stmt is target:
                del container.body[index]
                return True
            if _remove_stmt(stmt, target):
                return True
        return False
    if isinstance(container, ast.If):
        if _remove_stmt(container.then, target):
            return True
        if container.otherwise is not None:
            return _remove_stmt(container.otherwise, target)
        return False
    if isinstance(container, (ast.ForLoop, ast.WhileLoop, ast.DoWhileLoop)):
        return _remove_stmt(container.body, target)
    if isinstance(container, ast.Label):
        return _remove_stmt(container.stmt, target)
    return False
