"""Agent primitives: messages and the agent interface."""

from __future__ import annotations

import abc
from dataclasses import dataclass, field


@dataclass(frozen=True)
class Message:
    """One turn in the agent conversation."""

    sender: str
    recipient: str
    content: str
    #: Structured payload (candidate code, test report, ...), keyed by kind.
    payload: dict = field(default_factory=dict)


class Agent(abc.ABC):
    """An agent that can receive a message and produce a reply.

    Agents are intentionally synchronous and stateless between calls except
    for the conversation history they are handed; the FSM owns control flow.
    """

    name: str = "agent"

    @abc.abstractmethod
    def respond(self, message: Message, history: list[Message]) -> Message:
        """Produce the reply to ``message`` given the conversation so far."""
