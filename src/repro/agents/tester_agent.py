"""The compiler tester assistant agent: checksum testing + feedback."""

from __future__ import annotations

from repro.agents.base import Agent, Message
from repro.interp.checksum import ChecksumOutcome, checksum_testing


class CompilerTesterAgent(Agent):
    """Runs checksum-based testing on the candidate and reports the outcome.

    On a mismatch (or a compile failure) the reply carries enough detail —
    example inputs, expected and actual output arrays — for the vectorizer to
    attempt a repair, matching the s453 walkthrough of Section 4.4.2.
    """

    name = "tester"

    def __init__(self, scalar_code: str, seed: int = 0, trip_counts: list[int] | None = None):
        self.scalar_code = scalar_code
        self.seed = seed
        self.trip_counts = trip_counts

    def respond(self, message: Message, history: list[Message]) -> Message:
        candidate = message.payload.get("candidate_code", "")
        report = checksum_testing(
            self.scalar_code, candidate, seed=self.seed, trip_counts=self.trip_counts
        )
        accepted = report.outcome is ChecksumOutcome.PLAUSIBLE
        return Message(
            sender=self.name,
            recipient="vectorizer",
            content=report.feedback_text(),
            payload={
                "outcome": report.outcome.value,
                "accepted": accepted,
                "candidate_code": candidate,
                "report": report,
            },
        )
