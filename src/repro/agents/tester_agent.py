"""The compiler tester assistant agent: static vetting + checksum testing."""

from __future__ import annotations

from repro.agents.base import Agent, Message
from repro.interp.checksum import ChecksumOutcome, checksum_testing
from repro.perf import profile

#: The per-candidate outcome of a screen-mode static rejection; sits next
#: to the :class:`~repro.interp.checksum.ChecksumOutcome` values in attempt
#: records and campaign accounting.
STATIC_REJECT_OUTCOME = "static_reject"


class CompilerTesterAgent(Agent):
    """Vets the candidate statically, then runs checksum-based testing.

    On a mismatch (or a compile failure) the reply carries enough detail —
    example inputs, expected and actual output arrays — for the vectorizer to
    attempt a repair, matching the s453 walkthrough of Section 4.4.2.

    ``static_check`` selects what the rule-based linter contributes:

    * ``"off"`` — not run at all;
    * ``"advisory"`` (default) — the :class:`~repro.staticcheck.StaticReport`
      rides along in the reply payload, but acceptance is checksum testing's
      alone, bit-identical to the pre-linter pipeline;
    * ``"screen"`` — a candidate with any error-severity diagnostic is
      rejected *before* any execution, with the diagnostics as the repair
      feedback; clean candidates proceed to checksum testing as usual.
    """

    name = "tester"

    def __init__(self, scalar_code: str, seed: int = 0,
                 trip_counts: list[int] | None = None,
                 static_check: str = "advisory",
                 target: str | None = None, epilogue: str = "scalar"):
        self.scalar_code = scalar_code
        self.seed = seed
        self.trip_counts = trip_counts
        self.static_check = static_check
        self.target = target
        self.epilogue = epilogue

    def _vet(self, candidate: str):
        from repro.staticcheck import check_candidate

        with profile.stage("staticcheck"):
            return check_candidate(
                candidate, target=self.target, epilogue=self.epilogue,
                scalar_source=self.scalar_code)

    def respond(self, message: Message, history: list[Message]) -> Message:
        candidate = message.payload.get("candidate_code", "")
        static_report = None
        if self.static_check != "off":
            static_report = self._vet(candidate)
            if self.static_check == "screen" and static_report.has_errors:
                return Message(
                    sender=self.name,
                    recipient="vectorizer",
                    content=static_report.feedback_text(),
                    payload={
                        "outcome": STATIC_REJECT_OUTCOME,
                        "accepted": False,
                        "candidate_code": candidate,
                        "static_report": static_report,
                    },
                )
        report = checksum_testing(
            self.scalar_code, candidate, seed=self.seed, trip_counts=self.trip_counts
        )
        accepted = report.outcome is ChecksumOutcome.PLAUSIBLE
        payload = {
            "outcome": report.outcome.value,
            "accepted": accepted,
            "candidate_code": candidate,
            "report": report,
        }
        if static_report is not None:
            payload["static_report"] = static_report
        return Message(
            sender=self.name,
            recipient="vectorizer",
            content=report.feedback_text(),
            payload=payload,
        )
