"""Multi-agent finite-state-machine orchestration (paper Section 2.2).

Three agents cooperate: a *user proxy* that kicks off the conversation with
the scalar code plus the compiler's dependence analysis, a *vectorizer
assistant* that consults the LLM, and a *compiler tester assistant* that runs
checksum-based testing and feeds discrepancies back.  The FSM bounds the
conversation at ten attempts and terminates as soon as a plausible candidate
is found, which is how the paper reduces the number of LLM invocations.
"""

from repro.agents.base import Agent, Message
from repro.agents.fsm import FSMConfig, FSMResult, FSMState, VectorizationFSM
from repro.agents.tester_agent import CompilerTesterAgent
from repro.agents.user_proxy import UserProxyAgent
from repro.agents.vectorizer_agent import VectorizerAgent

__all__ = [
    "Agent",
    "Message",
    "FSMConfig",
    "FSMResult",
    "FSMState",
    "VectorizationFSM",
    "CompilerTesterAgent",
    "UserProxyAgent",
    "VectorizerAgent",
]
