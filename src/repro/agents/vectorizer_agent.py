"""The vectorizer assistant agent: consults the LLM for candidate code."""

from __future__ import annotations

from repro.agents.base import Agent, Message
from repro.llm.client import CompletionRequest, LLMClient
from repro.llm.prompts import build_repair_prompt


class VectorizerAgent(Agent):
    """Wraps the LLM client; first attempt uses the proxy's prompt, repairs
    use the tester's feedback."""

    name = "vectorizer"

    def __init__(self, llm: LLMClient, kernel_name: str, scalar_code: str,
                 temperature: float = 1.0, target: str | None = None,
                 epilogue: str = "scalar"):
        self.llm = llm
        self.kernel_name = kernel_name
        self.scalar_code = scalar_code
        self.temperature = temperature
        self.target = target
        self.epilogue = epilogue
        self.last_candidate: str | None = None

    def respond(self, message: Message, history: list[Message]) -> Message:
        if message.sender == "user_proxy":
            prompt = message.content
            feedback = ""
        else:
            feedback = message.content
            prompt = build_repair_prompt(
                self.scalar_code, self.last_candidate or "", feedback,
                target=self.target,
            )
        request = CompletionRequest(
            prompt=prompt,
            kernel_name=self.kernel_name,
            scalar_code=self.scalar_code,
            num_completions=1,
            temperature=self.temperature,
            feedback=feedback,
            target=self.target,
            epilogue=self.epilogue,
        )
        completion = self.llm.complete(request)[0]
        self.last_candidate = completion.code
        return Message(
            sender=self.name,
            recipient="tester",
            content="Here is the vectorized candidate.",
            payload={
                "candidate_code": completion.code,
                "annotations": dict(completion.annotations),
            },
        )
