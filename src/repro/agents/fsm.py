"""The finite state machine orchestrating the agents (paper Figure 3).

States::

    INIT -> GENERATE -> TEST -> (ACCEPTED | REPAIR | FAILED)
                 ^                    |
                 +----- REPAIR <------+   (up to ``max_attempts`` times)

The FSM's two design goals from the paper are made measurable here: the
number of LLM invocations needed to reach a plausible candidate, and whether
the feedback loop manages to repair an initially wrong candidate.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field

from repro.agents.base import Message
from repro.agents.tester_agent import CompilerTesterAgent
from repro.agents.user_proxy import UserProxyAgent
from repro.agents.vectorizer_agent import VectorizerAgent
from repro.llm.client import LLMClient


class FSMState(enum.Enum):
    INIT = "init"
    GENERATE = "generate"
    TEST = "test"
    REPAIR = "repair"
    ACCEPTED = "accepted"
    FAILED = "failed"


@dataclass
class FSMConfig:
    """Knobs of the orchestration: the paper allows at most ten attempts."""

    max_attempts: int = 10
    temperature: float = 1.0
    checksum_seed: int = 0
    trip_counts: list[int] | None = None
    #: Target ISA name the agents vectorize for.  ``None`` means "inherit":
    #: the tool/campaign layer resolves the active target through
    #: :func:`repro.targets.resolve_target_setting` and pins it here.
    target: str | None = None
    #: Epilogue strategy the agents request (``"scalar"``, ``"masked"`` or
    #: ``"predicated"``); pinned by the tool/campaign layer like ``target``.
    epilogue: str = "scalar"
    #: What the static candidate vetter contributes before checksum testing:
    #: ``"off"`` (not run), ``"advisory"`` (reports attached, acceptance
    #: unchanged) or ``"screen"`` (error-severity candidates rejected before
    #: any execution).
    static_check: str = "advisory"


@dataclass
class AttemptRecord:
    """One generate/test round."""

    attempt: int
    candidate_code: str
    outcome: str
    llm_annotations: dict = field(default_factory=dict)
    #: Per-rule *error* counts from the static vetter (empty when it ran
    #: clean or was off) and its one-line summary of everything it saw.
    static_flags: dict = field(default_factory=dict)
    static_summary: str | None = None


@dataclass
class FSMResult:
    """Outcome of a full FSM run on one kernel."""

    kernel_name: str
    accepted: bool
    attempts: int
    llm_invocations: int
    final_code: str | None
    history: list[AttemptRecord] = field(default_factory=list)
    conversation: list[Message] = field(default_factory=list)

    @property
    def repaired(self) -> bool:
        """True when acceptance required more than one attempt."""
        return self.accepted and self.attempts > 1


class VectorizationFSM:
    """Drives the three agents until acceptance or the attempt budget runs out."""

    def __init__(self, llm: LLMClient, kernel_name: str, scalar_code: str,
                 config: FSMConfig | None = None):
        self.config = config or FSMConfig()
        self.kernel_name = kernel_name
        self.scalar_code = scalar_code
        self.llm = llm
        self.user_proxy = UserProxyAgent(kernel_name, scalar_code, target=self.config.target)
        self.vectorizer = VectorizerAgent(llm, kernel_name, scalar_code,
                                          self.config.temperature, target=self.config.target,
                                          epilogue=self.config.epilogue)
        self.tester = CompilerTesterAgent(
            scalar_code, seed=self.config.checksum_seed, trip_counts=self.config.trip_counts,
            static_check=self.config.static_check, target=self.config.target,
            epilogue=self.config.epilogue,
        )
        self.state = FSMState.INIT

    def run(self) -> FSMResult:
        conversation: list[Message] = []
        history: list[AttemptRecord] = []
        invocations_before = self.llm.invocation_count

        self.state = FSMState.GENERATE
        message = self.user_proxy.initial_message()
        conversation.append(message)

        accepted_code: str | None = None
        attempts = 0
        while attempts < self.config.max_attempts:
            attempts += 1
            # GENERATE: the vectorizer consults the LLM.
            candidate_msg = self.vectorizer.respond(message, conversation)
            conversation.append(candidate_msg)
            self.state = FSMState.TEST
            # TEST: the tester runs checksum-based testing.
            verdict_msg = self.tester.respond(candidate_msg, conversation)
            conversation.append(verdict_msg)
            static_report = verdict_msg.payload.get("static_report")
            history.append(
                AttemptRecord(
                    attempt=attempts,
                    candidate_code=candidate_msg.payload.get("candidate_code", ""),
                    outcome=verdict_msg.payload.get("outcome", "unknown"),
                    llm_annotations=candidate_msg.payload.get("annotations", {}),
                    static_flags=(static_report.rule_counts(errors_only=True)
                                  if static_report is not None else {}),
                    static_summary=(static_report.summary_line()
                                    if static_report is not None else None),
                )
            )
            if verdict_msg.payload.get("accepted"):
                accepted_code = verdict_msg.payload.get("candidate_code")
                self.state = FSMState.ACCEPTED
                break
            # REPAIR: feed the tester's report back to the vectorizer.
            self.state = FSMState.REPAIR
            message = verdict_msg

        if accepted_code is None:
            self.state = FSMState.FAILED

        return FSMResult(
            kernel_name=self.kernel_name,
            accepted=accepted_code is not None,
            attempts=attempts,
            llm_invocations=self.llm.invocation_count - invocations_before,
            final_code=accepted_code,
            history=history,
            conversation=conversation,
        )


def run_fsm_on_kernel(llm: LLMClient, kernel_name: str, scalar_code: str,
                      config: FSMConfig | None = None) -> FSMResult:
    """Convenience wrapper: build the FSM for one kernel and run it."""
    return VectorizationFSM(llm, kernel_name, scalar_code, config).run()
