"""The user proxy agent: initiates the dialogue with code + dependence analysis."""

from __future__ import annotations

from repro.agents.base import Agent, Message
from repro.analysis.features import analyze_kernel
from repro.errors import ReproError
from repro.llm.prompts import build_vectorization_prompt
from repro.vectorizer.plancache import cached_parse


class UserProxyAgent(Agent):
    """Builds the opening request for the vectorizer assistant.

    Mirrors the paper's workflow: the proxy attaches the scalar code and the
    Clang-style dependence-analysis remark explaining why the loop was not
    auto-vectorized, and instructs the assistant to eliminate the dependence.
    """

    name = "user_proxy"

    def __init__(self, kernel_name: str, scalar_code: str, target: str | None = None):
        self.kernel_name = kernel_name
        self.scalar_code = scalar_code
        self.target = target

    def initial_message(self) -> Message:
        dependence_report = self._dependence_report()
        prompt = build_vectorization_prompt(self.scalar_code, dependence_report,
                                            target=self.target)
        return Message(
            sender=self.name,
            recipient="vectorizer",
            content=prompt,
            payload={"kernel_name": self.kernel_name, "scalar_code": self.scalar_code},
        )

    def respond(self, message: Message, history: list[Message]) -> Message:
        # The user proxy only speaks first; afterwards the FSM routes between
        # the vectorizer and the tester.
        return self.initial_message()

    def _dependence_report(self) -> str:
        try:
            features = analyze_kernel(cached_parse(self.scalar_code))
        except ReproError:
            return ""
        return features.dependence_summary()
