"""Instruction cost tables for the cycle simulator, per target ISA.

Costs are rough reciprocal-throughput figures expressed in cycles per
executed operation.  The base tables model a Haswell/Skylake-class AVX2
core (the paper's hardware); :func:`cost_model_for` derives every other
registered target's variant by applying that target's category overrides —
narrower 128-bit loads (SSE4, NEON) move half the data and cost less,
512-bit operations pay a latency/licensing premium but amortize over twice
the lanes.  The tables do
not model instruction-level parallelism or the memory hierarchy; the
simulator's output is a cycle *estimate* whose ratios (scalar loop vs.
vector loop, one width vs. another) match the qualitative behaviour the
paper's Figure 6 relies on.
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass, field

from repro.targets import TargetISA, get_target


def _base_scalar_costs() -> dict[str, float]:
    return {
        "scalar_arith": 1.0,
        "scalar_mul": 3.0,
        "scalar_load": 4.0,
        "scalar_store": 4.0,
        "branch": 1.5,
        "decl": 0.5,
        "alloc": 2.0,
        "loop_iteration": 1.0,   # induction update + compare overhead
    }


def _base_vector_costs() -> dict[str, float]:
    return {
        "vec_load": 6.0,
        "vec_store": 6.0,
        "vec_maskload": 8.0,
        "vec_maskstore": 8.0,
        "vec_pure_binary": 1.5,
        "vec_pure_unary": 1.0,
        "vec_pure_vector": 2.0,   # blends, horizontal adds
        "vec_pure_imm": 1.0,
        "vec_pure_imm2": 3.0,
        "vec_set1": 1.5,
        "vec_setr": 2.0,
        "vec_set": 2.0,
        "vec_setzero": 0.5,
        "vec_extract": 3.0,
        "vec_cast_low": 0.0,
        "vec_index": 2.0,
        # Predicate-register work (SVE-class targets): predicate construction
        # and logic run on the flag/predicate ports and are cheap; the
        # whilelt/ptest pair is the per-iteration price of a tail-free loop;
        # predicate-governed memory carries a small overhead over the plain
        # vector loads/stores of the same width.
        "vec_ptrue": 0.5,
        "vec_whilelt": 1.0,
        "vec_ptest": 1.0,
        "vec_pred_unary": 0.5,
        "vec_pred_binary": 0.5,
        "vec_pred_cmp": 1.0,
        "vec_psel": 1.5,
        "vec_pred_merge_binary": 1.5,
        "vec_pload": 6.5,
        "vec_pstore": 6.5,
    }


@dataclass(frozen=True)
class CostModel:
    """Cycle costs per interpreter operation category."""

    scalar_costs: dict[str, float] = field(default_factory=_base_scalar_costs)
    vector_costs: dict[str, float] = field(default_factory=_base_vector_costs)
    #: Fixed per-invocation overhead charged to every measured run (call,
    #: prologue, loop setup).
    invocation_overhead: float = 20.0
    #: The ISA whose vector tables these are (informational).
    target_name: str = "avx2"

    def cycles_for(self, op_counts: Counter) -> float:
        """Total estimated cycles for an execution's operation counts."""
        total = self.invocation_overhead
        for category, count in op_counts.items():
            if category in self.scalar_costs:
                total += self.scalar_costs[category] * count
            elif category in self.vector_costs:
                total += self.vector_costs[category] * count
            # Aggregate categories (vector_op, vector_instr, scalar_read/write)
            # are bookkeeping duplicates of the specific ones and carry no cost.
        return total


DEFAULT_COST_MODEL = CostModel()

_MODEL_CACHE: dict[str, CostModel] = {"avx2": DEFAULT_COST_MODEL}


def cost_model_for(target: "TargetISA | str | None") -> CostModel:
    """The cost model of one target: base AVX2 tables + the target's overrides."""
    isa = get_target(target)
    cached = _MODEL_CACHE.get(isa.name)
    if cached is None:
        vector_costs = _base_vector_costs()
        vector_costs.update(isa.vector_cost_overrides)
        cached = CostModel(vector_costs=vector_costs, target_name=isa.name)
        _MODEL_CACHE[isa.name] = cached
    return cached
