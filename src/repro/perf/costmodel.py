"""Instruction cost tables for the cycle simulator.

Costs are rough reciprocal-throughput figures for a Haswell/Skylake-class
AVX2 core, expressed in cycles per executed operation.  They do not model
instruction-level parallelism or the memory hierarchy; the simulator's output
is a cycle *estimate* whose ratios (scalar loop vs. 8-lane vector loop,
if-converted vs. straight-line) match the qualitative behaviour the paper's
Figure 6 relies on.
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass, field


@dataclass(frozen=True)
class CostModel:
    """Cycle costs per interpreter operation category."""

    scalar_costs: dict = field(default_factory=lambda: {
        "scalar_arith": 1.0,
        "scalar_mul": 3.0,
        "scalar_load": 4.0,
        "scalar_store": 4.0,
        "branch": 1.5,
        "decl": 0.5,
        "alloc": 2.0,
        "loop_iteration": 1.0,   # induction update + compare overhead
    })
    vector_costs: dict = field(default_factory=lambda: {
        "vec_load": 6.0,
        "vec_store": 6.0,
        "vec_maskload": 8.0,
        "vec_maskstore": 8.0,
        "vec_pure_binary": 1.5,
        "vec_pure_unary": 1.0,
        "vec_pure_vector": 2.0,   # blends, horizontal adds
        "vec_pure_imm": 1.0,
        "vec_pure_imm2": 3.0,
        "vec_set1": 1.5,
        "vec_setr": 2.0,
        "vec_set": 2.0,
        "vec_setzero": 0.5,
        "vec_extract": 3.0,
        "vec_extract128": 3.0,
        "vec_cast128": 0.0,
    })
    #: Fixed per-invocation overhead charged to every measured run (call,
    #: prologue, loop setup).
    invocation_overhead: float = 20.0

    def cycles_for(self, op_counts: Counter) -> float:
        """Total estimated cycles for an execution's operation counts."""
        total = self.invocation_overhead
        for category, count in op_counts.items():
            if category in self.scalar_costs:
                total += self.scalar_costs[category] * count
            elif category in self.vector_costs:
                total += self.vector_costs[category] * count
            # Aggregate categories (vector_op, vector_instr, scalar_read/write)
            # are bookkeeping duplicates of the specific ones and carry no cost.
        return total


DEFAULT_COST_MODEL = CostModel()
