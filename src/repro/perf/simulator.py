"""The runtime simulator: cycle estimates and speedups against the baselines.

For the LLM-generated candidate the interpreter executes the actual vector
code and the target's cost model prices the executed instruction mix.  For
each baseline compiler the scalar kernel is executed once, and the
baseline's :class:`~repro.compilers.base.CompilerDecision` determines
whether its cycles are charged at scalar cost or scaled by the target's
lane count times the baseline's codegen-efficiency factor.  Speedup is then
the ratio of baseline cycles to LLM cycles — the quantity plotted in the
paper's Figure 1(c) and Figure 6.  Passing ``target`` prices both sides
with that ISA's tables, which is how per-width speedups are compared.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field

from repro.analysis.features import analyze_kernel
from repro.cfront import ast_nodes as ast
from repro.cfront.cparser import parse_function
from repro.compilers.base import CompilerDecision, SimulatedCompiler
from repro.compilers.suites import all_compilers
from repro.interp.interpreter import run_function
from repro.interp.randominit import InputSpec, make_test_vector
from repro.perf.costmodel import DEFAULT_COST_MODEL, CostModel, cost_model_for
from repro.targets import TargetISA, get_target
from repro.vectorizer.planner import VECTOR_WIDTH


@dataclass
class SpeedupRecord:
    """Speedup of the LLM-vectorized code over one baseline compiler."""

    kernel: str
    compiler: str
    baseline_cycles: float
    llm_cycles: float
    baseline_vectorized: bool
    baseline_reason: str

    @property
    def speedup(self) -> float:
        if self.llm_cycles <= 0:
            return 0.0
        return self.baseline_cycles / self.llm_cycles


@dataclass
class KernelPerformance:
    """Full performance record of one kernel: LLM cycles plus per-baseline speedups."""

    kernel: str
    category: str
    llm_cycles: float
    scalar_cycles: float
    records: list[SpeedupRecord] = field(default_factory=list)

    def speedup_over(self, compiler_name: str) -> float:
        for record in self.records:
            if record.compiler.lower() == compiler_name.lower():
                return record.speedup
        raise KeyError(f"no speedup record for {compiler_name!r}")


def _execute_for_counts(func: ast.FunctionDef, n: int, seed: int):
    spec = InputSpec.from_function(func)
    vector = make_test_vector(spec, n, random.Random(seed))
    return run_function(func, vector.arrays, vector.scalars, max_steps=5_000_000)


def estimate_cycles(code: str | ast.FunctionDef, n: int = 256, seed: int = 11,
                    cost_model: CostModel = DEFAULT_COST_MODEL) -> float:
    """Estimated cycles of one execution of ``code`` with trip count ``n``."""
    func = code if isinstance(code, ast.FunctionDef) else parse_function(code)
    result = _execute_for_counts(func, n, seed)
    return cost_model.cycles_for(result.op_counts)


def baseline_cycles(scalar_cycles: float, decision: CompilerDecision,
                    trip_count: int, scalar_efficiency: float = 1.0,
                    vector_width: int = VECTOR_WIDTH) -> float:
    """Cycles for a baseline compiler, given the scalar-execution estimate.

    ``scalar_efficiency`` captures how much faster than the naive estimate the
    compiler's own (scalar or vector) code generation is; it applies to both
    decisions so a compiler with strong scalar optimization (ICC) remains hard
    to beat even when it refuses to vectorize.
    """
    if not decision.vectorized or decision.efficiency <= 0:
        return scalar_cycles / scalar_efficiency
    # The compiler vectorizes the loop: the loop body collapses by the vector
    # width scaled by this compiler's codegen efficiency; loop-control and
    # call overhead (roughly proportional to the trip count) stays scalar.
    overhead = DEFAULT_COST_MODEL.invocation_overhead + trip_count * 0.25
    body = max(scalar_cycles - overhead, 0.0)
    return (overhead + body / (vector_width * decision.efficiency)) / scalar_efficiency


def measure_kernel(
    kernel_name: str,
    scalar_code: str,
    llm_code: str,
    n: int = 256,
    seed: int = 11,
    compilers: list[SimulatedCompiler] | None = None,
    cost_model: CostModel | None = None,
    target: "TargetISA | str | None" = None,
) -> KernelPerformance:
    """Measure LLM-vectorized ``llm_code`` against every baseline for one kernel.

    ``target`` selects the ISA cost tables and the lane count used to scale
    vectorizing baselines; an explicit ``cost_model`` overrides the tables.
    """
    isa = get_target(target)
    if cost_model is None:
        cost_model = cost_model_for(isa)
    scalar_func = parse_function(scalar_code)
    features = analyze_kernel(scalar_func)
    scalar_cycles = estimate_cycles(scalar_func, n=n, seed=seed, cost_model=cost_model)
    llm_cycles = estimate_cycles(llm_code, n=n, seed=seed, cost_model=cost_model)

    performance = KernelPerformance(
        kernel=kernel_name,
        category=features.category,
        llm_cycles=llm_cycles,
        scalar_cycles=scalar_cycles,
    )
    for compiler in compilers or all_compilers():
        decision = compiler.decide(features)
        cycles = baseline_cycles(scalar_cycles, decision, trip_count=n,
                                 scalar_efficiency=compiler.scalar_efficiency,
                                 vector_width=isa.lanes)
        performance.records.append(
            SpeedupRecord(
                kernel=kernel_name,
                compiler=compiler.name,
                baseline_cycles=cycles,
                llm_cycles=llm_cycles,
                baseline_vectorized=decision.vectorized,
                baseline_reason=decision.reason,
            )
        )
    return performance


def speedups_for_kernel(performance: KernelPerformance) -> dict[str, float]:
    """Convenience: compiler name -> speedup mapping."""
    return {record.compiler: record.speedup for record in performance.records}
