"""Performance model: instruction cost tables and the cycle simulator.

Wall-clock measurement on AVX2 hardware is replaced by an instruction-level
cycle estimate over the operations the interpreter actually executed.  The
model only needs to be faithful *relatively*: who wins and by roughly what
factor, which is determined by (a) whether each baseline compiler vectorizes
the loop at all and (b) the instruction mix of the vector body.
"""

from repro.perf.costmodel import CostModel, DEFAULT_COST_MODEL
from repro.perf.simulator import (
    KernelPerformance,
    SpeedupRecord,
    estimate_cycles,
    measure_kernel,
    speedups_for_kernel,
)

__all__ = [
    "CostModel",
    "DEFAULT_COST_MODEL",
    "KernelPerformance",
    "SpeedupRecord",
    "estimate_cycles",
    "measure_kernel",
    "speedups_for_kernel",
]
