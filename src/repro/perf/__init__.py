"""Performance model: instruction cost tables, the cycle simulator, profiling.

Wall-clock measurement on AVX2 hardware is replaced by an instruction-level
cycle estimate over the operations the interpreter actually executed.  The
model only needs to be faithful *relatively*: who wins and by roughly what
factor, which is determined by (a) whether each baseline compiler vectorizes
the loop at all and (b) the instruction mix of the vector body.

:mod:`repro.perf.profile` additionally times the verification pipeline
itself (per-stage wall clock: parse/plan/codegen/interp/symexec/solve).
The package exports lazily (PEP 562): the profiling hooks are imported from
the lowest-level modules (parser, interpreter, symbolic executor), so the
package ``__init__`` must not eagerly pull the simulator — which imports
those same modules — back in.
"""

from __future__ import annotations

import importlib

_EXPORTS = {
    "CostModel": "costmodel",
    "DEFAULT_COST_MODEL": "costmodel",
    "KernelPerformance": "simulator",
    "SpeedupRecord": "simulator",
    "estimate_cycles": "simulator",
    "measure_kernel": "simulator",
    "speedups_for_kernel": "simulator",
}

__all__ = [*_EXPORTS, "profile"]


def __getattr__(name: str):
    module_name = _EXPORTS.get(name)
    if module_name is None:
        raise AttributeError(f"module {__name__!r} has no attribute {name!r}")
    value = getattr(importlib.import_module(f"{__name__}.{module_name}"), name)
    globals()[name] = value
    return value
