"""Lightweight per-stage wall-clock profiling of the verification pipeline.

Every expensive pipeline stage — ``parse``, ``plan``, ``codegen``,
``interp``, ``symexec``, ``solve`` — brackets its work in
:func:`stage`, and the process-local accumulator tallies wall-clock
seconds and call counts per stage.  The campaign engine snapshots the
accumulator around each job, so campaign summaries (and from there
``BENCH_campaign.json``) carry an attributable stage breakdown instead of
just a headline kernels/sec number.

The module is dependency-free by design: it is imported from the hottest,
lowest-level modules (the C parser, the interpreter, the symbolic
executor), so it must never pull the rest of the package in.  Overhead is
two ``perf_counter`` calls and two dict updates per stage entry.
"""

from __future__ import annotations

import time
from contextlib import contextmanager

#: The canonical stage names, in pipeline order.
STAGES = ("parse", "plan", "codegen", "interp", "symexec", "solve")


class StageProfile:
    """Accumulated wall-clock seconds and call counts, per stage."""

    __slots__ = ("seconds", "calls")

    def __init__(self) -> None:
        self.seconds: dict[str, float] = {}
        self.calls: dict[str, int] = {}

    def add(self, name: str, elapsed: float) -> None:
        self.seconds[name] = self.seconds.get(name, 0.0) + elapsed
        self.calls[name] = self.calls.get(name, 0) + 1

    def snapshot(self) -> dict[str, float]:
        """The per-stage seconds so far, rounded, in stable (sorted) order."""
        return {name: round(value, 6)
                for name, value in sorted(self.seconds.items())}

    def clear(self) -> None:
        self.seconds.clear()
        self.calls.clear()


_PROFILE = StageProfile()
_DEPTH: dict[str, int] = {}


@contextmanager
def stage(name: str):
    """Time one pipeline stage section.

    Re-entrant sections of the *same* stage (the symbolic executor calling
    itself, a parse triggered from inside a parse) are counted once, at the
    outermost entry, so stage totals never double-count nested work.
    """
    depth = _DEPTH.get(name, 0)
    _DEPTH[name] = depth + 1
    started = time.perf_counter()
    try:
        yield
    finally:
        _DEPTH[name] = depth
        if depth == 0:
            _PROFILE.add(name, time.perf_counter() - started)


def snapshot() -> dict[str, float]:
    """The per-stage wall-clock totals accumulated so far (seconds)."""
    return _PROFILE.snapshot()


def call_counts() -> dict[str, int]:
    """How many (outermost) sections each stage has timed so far."""
    return dict(sorted(_PROFILE.calls.items()))


def reset() -> dict[str, float]:
    """Clear the accumulator; returns the snapshot it held."""
    previous = _PROFILE.snapshot()
    _PROFILE.clear()
    return previous


def merge_stage_seconds(total: dict[str, float],
                        part: dict[str, float] | None) -> dict[str, float]:
    """Accumulate one stage breakdown into ``total`` (tolerates ``None``)."""
    if part:
        for name, value in part.items():
            if isinstance(value, (int, float)):
                total[name] = round(total.get(name, 0.0) + float(value), 6)
    return total
