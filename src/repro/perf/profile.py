"""Lightweight per-stage wall-clock profiling of the verification pipeline.

Every expensive pipeline stage — ``parse``, ``plan``, ``codegen``,
``staticcheck``, ``interp``, ``symexec``, ``solve`` — brackets its work in
:func:`stage`, and the process-local accumulator tallies wall-clock
seconds and call counts per stage.  The campaign engine snapshots the
accumulator around each job, so campaign summaries (and from there
``BENCH_campaign.json``) carry an attributable stage breakdown instead of
just a headline kernels/sec number.

The module is dependency-free by design: it is imported from the hottest,
lowest-level modules (the C parser, the interpreter, the symbolic
executor), so it must never pull the rest of the package in.  Overhead is
two ``perf_counter`` calls and two dict updates per stage entry.
"""

from __future__ import annotations

import time
from contextlib import contextmanager

#: The canonical stage names, in pipeline order.  ``staticcheck`` sits
#: between code generation and execution: the static vetter screens (or
#: annotates) every candidate before the interpreter sees it.
STAGES = ("parse", "plan", "codegen", "staticcheck", "interp", "symexec",
          "solve")


class StageProfile:
    """Accumulated wall-clock seconds and call counts, per stage."""

    __slots__ = ("seconds", "calls")

    def __init__(self) -> None:
        self.seconds: dict[str, float] = {}
        self.calls: dict[str, int] = {}

    def add(self, name: str, elapsed: float) -> None:
        self.seconds[name] = self.seconds.get(name, 0.0) + elapsed
        self.calls[name] = self.calls.get(name, 0) + 1

    def snapshot(self) -> dict[str, float]:
        """The per-stage seconds so far, rounded, in stable (sorted) order."""
        return {name: round(value, 6)
                for name, value in sorted(self.seconds.items())}

    def clear(self) -> None:
        self.seconds.clear()
        self.calls.clear()


_PROFILE = StageProfile()
_DEPTH: dict[str, int] = {}


@contextmanager
def stage(name: str):
    """Time one pipeline stage section.

    Re-entrant sections of the *same* stage (the symbolic executor calling
    itself, a parse triggered from inside a parse) are counted once, at the
    outermost entry, so stage totals never double-count nested work.
    """
    depth = _DEPTH.get(name, 0)
    _DEPTH[name] = depth + 1
    started = time.perf_counter()
    try:
        yield
    finally:
        _DEPTH[name] = depth
        if depth == 0:
            _PROFILE.add(name, time.perf_counter() - started)


def snapshot() -> dict[str, float]:
    """The per-stage wall-clock totals accumulated so far (seconds)."""
    return _PROFILE.snapshot()


def call_counts() -> dict[str, int]:
    """How many (outermost) sections each stage has timed so far."""
    return dict(sorted(_PROFILE.calls.items()))


def reset() -> dict[str, float]:
    """Clear the accumulator; returns the snapshot it held."""
    previous = _PROFILE.snapshot()
    _PROFILE.clear()
    return previous


def merge_stage_seconds(total: dict[str, float],
                        part: dict[str, float] | None) -> dict[str, float]:
    """Accumulate one stage breakdown into ``total`` (tolerates ``None``)."""
    if part:
        for name, value in part.items():
            if isinstance(value, (int, float)):
                total[name] = round(total.get(name, 0.0) + float(value), 6)
    return total


def machine_score(repeats: int = 3) -> float:
    """A deterministic single-core CPU probe, in arbitrary probe-runs/second.

    Benchmark entries record the probe score of the machine that produced
    them, so throughput ratchets can scale their floors by the ratio of the
    current machine's score to the recording machine's — a uniformly slower
    container no longer reads as a code regression, while a genuine
    slowdown of one pipeline stage or target still does.  The workload
    (an interpreter-bound integer loop plus a fixed hash chain, mirroring
    the pure-Python pipeline's profile) is fixed; the best of ``repeats``
    runs is kept to shave scheduler noise.
    """
    import hashlib

    payload = bytes(range(256)) * 64
    best = 0.0
    for _ in range(max(1, repeats)):
        started = time.perf_counter()
        digest = payload
        for _ in range(16):
            digest = hashlib.sha256(digest).digest()
        acc = 0
        for value in range(150_000):
            acc = (acc * 1103515245 + value) & 0xFFFFFFFF
        elapsed = time.perf_counter() - started
        if elapsed > 0.0:
            best = max(best, 1.0 / elapsed)
    return round(best, 2)


def merge_counts(total: dict[str, int], part: dict[str, int] | None) -> dict[str, int]:
    """Accumulate one integer-counter breakdown into ``total``.

    The counter sibling of :func:`merge_stage_seconds`: campaign workers
    report per-batch cache/plan-cache counter deltas, and the campaign
    engine folds them into one fleet-wide tally with this.
    """
    if part:
        for name, value in part.items():
            if isinstance(value, int) and not isinstance(value, bool):
                total[name] = total.get(name, 0) + value
    return total


def counter_delta(before: dict[str, int], after: dict[str, int]) -> dict[str, int]:
    """The per-counter growth between two snapshots (zero entries dropped)."""
    return {name: after[name] - before.get(name, 0)
            for name in after
            if after[name] - before.get(name, 0) > 0}
