"""Operator-drift rules: the candidate's operators vs the scalar kernel's.

With the scalar source available as a reference, many wrong-operator
mutations are statically visible, from both directions:

* ``operator-drift`` — the candidate computes a vector operation the
  scalar kernel never performs: a subtraction for a kernel that never
  subtracts, a multiplication from nowhere, an equality comparison for a
  kernel whose conditions are all strict.  Only operators the code
  generator never introduces structurally participate (lane-index ramps
  are built from adds, so ``add`` is exempt);
* ``operator-loss`` — the inverse: the scalar loop body multiplies or
  subtracts *values*, but a vectorized loop of the candidate does neither
  in vector form.  This catches drifts *into* ubiquitous operators
  (``mul`` → ``add``) that the drift rule must exempt.  Only operators in
  value position count — a ``-`` inside a subscript (``b[i-1]``) becomes
  pointer arithmetic, not a vector subtraction.
"""

from __future__ import annotations

from repro.cfront import ast_nodes as ast
from repro.intrinsics.registry import IntrinsicSpec, registry_for
from repro.lanetypes import LaneType
from repro.staticcheck.diagnostics import Severity, StaticReport
from repro.staticcheck.loopshape import _spec_of
from repro.targets import TargetISA

#: Vector ops checkable against scalar operator usage.  Maps the generic
#: op to the scalar spellings that justify it.
_JUSTIFICATIONS: dict[str, frozenset[str]] = {
    "sub": frozenset({"-", "-="}),
    "mul": frozenset({"*", "*="}),
    "cmpeq": frozenset({"==", "!="}),
    "pcmpeq": frozenset({"==", "!="}),
}


#: Generic ops the loss rule demands when the scalar loop body uses them in
#: value position.  ``add`` is excluded on both sides (everything turns
#: into adds); predicate-merging twins count as the operation being present.
_LOSS_OPS: dict[str, frozenset[str]] = {
    "mul": frozenset({"*", "*="}),
    "sub": frozenset({"-", "-="}),
}
_LOSS_EQUIVALENTS: dict[str, frozenset[str]] = {
    "mul": frozenset({"mul", "pmul"}),
    "sub": frozenset({"sub", "psub"}),
}
_MEMORY_KINDS = frozenset({"load", "store", "maskload", "maskstore",
                           "pload", "pstore"})


def _scalar_operators(scalar_func: ast.FunctionDef) -> set[str]:
    operators: set[str] = set()
    for node in ast.walk(scalar_func):
        if isinstance(node, ast.BinOp):
            operators.add(node.op)
        elif isinstance(node, ast.Assign):
            operators.add(node.op)
        elif isinstance(node, (ast.UnaryOp, ast.PostfixOp)):
            operators.add(node.op)
    return operators


def _value_operators(scalar_func: ast.FunctionDef) -> set[str]:
    """Operators used on loop-body *values* — subscript and loop-header
    arithmetic (``b[i-1]``, ``i < n - 1``, ``i += 2``) is excluded, since it
    vectorizes to addressing and bounds, not to vector arithmetic."""
    operators: set[str] = set()

    def visit_expr(expr: ast.Expr | None) -> None:
        if expr is None:
            return
        if isinstance(expr, ast.ArrayRef):
            if not isinstance(expr.base, ast.Identifier):
                visit_expr(expr.base)
            return  # the index subtree is addressing, not value arithmetic
        if isinstance(expr, ast.BinOp):
            operators.add(expr.op)
            visit_expr(expr.left)
            visit_expr(expr.right)
        elif isinstance(expr, ast.Assign):
            operators.add(expr.op)
            visit_expr(expr.target)
            visit_expr(expr.value)
        elif isinstance(expr, (ast.UnaryOp, ast.PostfixOp)):
            operators.add(expr.op)
            visit_expr(expr.operand)
        elif isinstance(expr, ast.Call):
            for arg in expr.args:
                visit_expr(arg)
        elif isinstance(expr, ast.TernaryOp):
            visit_expr(expr.cond)
            visit_expr(expr.then)
            visit_expr(expr.otherwise)
        elif isinstance(expr, ast.Cast):
            visit_expr(expr.operand)

    def visit_stmt(stmt: ast.Stmt, in_loop: bool) -> None:
        if isinstance(stmt, ast.Block):
            for inner in stmt.body:
                visit_stmt(inner, in_loop)
        elif isinstance(stmt, ast.ExprStmt):
            if in_loop:
                visit_expr(stmt.expr)
        elif isinstance(stmt, ast.Decl):
            if in_loop and stmt.init is not None:
                visit_expr(stmt.init)
        elif isinstance(stmt, ast.If):
            if in_loop:
                visit_expr(stmt.cond)
            visit_stmt(stmt.then, in_loop)
            if stmt.otherwise is not None:
                visit_stmt(stmt.otherwise, in_loop)
        elif isinstance(stmt, (ast.ForLoop, ast.WhileLoop, ast.DoWhileLoop)):
            visit_stmt(stmt.body, True)
        elif isinstance(stmt, ast.Label):
            visit_stmt(stmt.stmt, in_loop)

    visit_stmt(scalar_func.body, False)
    return operators


def run_drift(func: ast.FunctionDef, target: TargetISA, dtype: LaneType,
              report: StaticReport,
              scalar_func: ast.FunctionDef | None = None) -> None:
    """Flag candidate vector ops with no scalar-source justification."""
    if scalar_func is None:
        return
    try:
        registry = registry_for(target, dtype)
    except KeyError:
        return
    scalar_ops = _scalar_operators(scalar_func)
    flagged: set[str] = set()
    for call in ast.collect(func, ast.Call):
        spec = _spec_of(call.func, registry, dtype)
        if spec is None or spec.op not in _JUSTIFICATIONS:
            continue
        if spec.op in flagged:
            continue
        justification = _JUSTIFICATIONS[spec.op]
        if justification & scalar_ops:
            continue
        flagged.add(spec.op)
        wanted = " or ".join(sorted(justification))
        report.add(
            "operator-drift", Severity.ERROR,
            f"candidate computes a vector {spec.op!r} ({spec.name}) but the "
            f"scalar kernel never uses {wanted}; an operator was swapped",
            call)

    _check_loss(func, registry, dtype, report, scalar_func)


def _check_loss(func: ast.FunctionDef, registry: dict[str, IntrinsicSpec],
                dtype: LaneType,
                report: StaticReport,
                scalar_func: ast.FunctionDef) -> None:
    value_ops = _value_operators(scalar_func)
    demanded = [op for op, spellings in _LOSS_OPS.items()
                if spellings & value_ops]
    if not demanded:
        return
    lost: set[str] = set()
    for loop in ast.collect(func, (ast.ForLoop, ast.WhileLoop,
                                   ast.DoWhileLoop)):
        ops = set()
        kinds = set()
        for node in ast.walk(loop):
            if not isinstance(node, ast.Call):
                continue
            spec = _spec_of(node.func, registry, dtype)
            if spec is not None:
                ops.add(spec.op)
                kinds.add(spec.kind)
        if not kinds & _MEMORY_KINDS:
            continue  # not a vectorized loop (scalar epilogue)
        for op in demanded:
            if op not in lost and not ops & _LOSS_EQUIVALENTS[op]:
                lost.add(op)
                spelled = " or ".join(sorted(_LOSS_OPS[op]))
                report.add(
                    "operator-loss", Severity.ERROR,
                    f"the scalar loop body uses {spelled} on values but this "
                    f"vectorized loop computes no vector {op!r}; an operator "
                    f"was swapped away", loop)
