"""Static candidate vetting: a rule-based vector-code linter.

The verifier pipeline (interpret → symbolically execute → solve) proves
candidates wrong one counterexample at a time; this package screens them
first with rules that prove whole *classes* of candidates wrong at a
glance — use of an uninitialized accumulator, an intrinsic the target
doesn't have, a loop stepping one element while moving eight-lane
vectors.  ``check_candidate`` runs every rule pass over one candidate and
returns a ``StaticReport``; the campaign engine consumes it in advisory
mode (reports attached, verdicts untouched) or screen mode (error-severity
candidates fast-rejected before any execution).

Run it standalone with ``python -m repro.staticcheck file.c --target avx2``.
"""

from repro.staticcheck.checker import check_candidate, clear_staticcheck_cache
from repro.staticcheck.diagnostics import Diagnostic, Severity, StaticReport

__all__ = [
    "Diagnostic",
    "Severity",
    "StaticReport",
    "check_candidate",
    "clear_staticcheck_cache",
]
