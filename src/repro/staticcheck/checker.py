"""The static vetting entry point: parse once, run every rule pass.

:func:`check_candidate` is the one function the rest of the system calls.
It parses a candidate into the C-subset AST, resolves the (target, dtype)
pair the rules should judge it against, and runs the five rule families —
definite-assignment / intrinsic dataflow (typeflow), loop shape, dead
masks, predicate governance, and operator drift — collecting everything
into one :class:`~repro.staticcheck.diagnostics.StaticReport`.

Results are memoized: repair loops re-check near-identical candidates and
campaigns re-check identical accepted code across stages, so the cache is
keyed on the exact ``(source, target, dtype, epilogue, scalar)`` tuple and
bounded LRU-style.
"""

from __future__ import annotations

from collections import OrderedDict

from repro.cfront import ast_nodes as ast
from repro.cfront.cparser import parse_function
from repro.errors import ReproError
from repro.lanetypes import LaneType, get_lane_type
from repro.staticcheck.deadmask import run_deadmask
from repro.staticcheck.diagnostics import Diagnostic, Severity, StaticReport
from repro.staticcheck.drift import run_drift
from repro.staticcheck.loopshape import run_loopshape
from repro.staticcheck.predicates import run_predicates
from repro.staticcheck.typeflow import run_typeflow
from repro.targets import TargetISA, detect_target, get_target

_CACHE_LIMIT = 512
_cache: OrderedDict[tuple, StaticReport] = OrderedDict()

_scalar_cache: OrderedDict[str, ast.FunctionDef | None] = OrderedDict()


def clear_staticcheck_cache() -> None:
    """Drop all memoized reports (tests and long-lived workers)."""
    _cache.clear()
    _scalar_cache.clear()


def _parse_scalar(scalar_source: str) -> ast.FunctionDef | None:
    """Parse the scalar reference, tolerating failure (drift just skips)."""
    if scalar_source in _scalar_cache:
        _scalar_cache.move_to_end(scalar_source)
        return _scalar_cache[scalar_source]
    try:
        func = parse_function(scalar_source)
    except ReproError:
        func = None
    _scalar_cache[scalar_source] = func
    while len(_scalar_cache) > _CACHE_LIMIT:
        _scalar_cache.popitem(last=False)
    return func


def _resolve_dtype(dtype: LaneType | str | None,
                   func: ast.FunctionDef) -> LaneType:
    if dtype is not None:
        return get_lane_type(dtype)
    try:
        return ast.kernel_dtype(func)
    except ReproError:
        return get_lane_type(None)


def check_candidate(source: str, *,
                    target: TargetISA | str | None = None,
                    dtype: LaneType | str | None = None,
                    epilogue: str | None = None,
                    scalar_source: str | None = None) -> StaticReport:
    """Statically vet one candidate; never raises on bad candidate code.

    ``target``/``dtype`` default to what the source itself implies
    (intrinsic spellings / sized integer declarations).  ``epilogue`` is
    the declared tail strategy, checked against the actual structure.
    ``scalar_source`` enables the operator-drift rule.
    """
    target_key = target.name if isinstance(target, TargetISA) else target
    dtype_key = dtype.name if isinstance(dtype, LaneType) else dtype
    key = (source, target_key, dtype_key, epilogue, scalar_source)
    cached = _cache.get(key)
    if cached is not None:
        _cache.move_to_end(key)
        return cached

    try:
        func = parse_function(source)
    except ReproError as exc:
        location = getattr(exc, "location", None)
        span = (location.line, location.column) if location else (0, 0)
        isa = detect_target(source, default=target)
        report = StaticReport(target=isa.name,
                              dtype=get_lane_type(dtype).name, checked=False)
        report.diagnostics.append(Diagnostic(
            rule_id="parse-error", severity=Severity.ERROR,
            message=f"candidate does not parse: {exc}", node_span=span))
    else:
        isa = get_target(target) if target is not None \
            else detect_target(source)
        lane_type = _resolve_dtype(dtype, func)
        report = StaticReport(target=isa.name, dtype=lane_type.name)
        run_typeflow(func, isa, lane_type, report)
        run_loopshape(func, isa, lane_type, report, epilogue=epilogue)
        run_deadmask(func, isa, lane_type, report)
        run_predicates(func, isa, lane_type, report)
        if scalar_source:
            run_drift(func, isa, lane_type, report,
                      scalar_func=_parse_scalar(scalar_source))

    _cache[key] = report
    while len(_cache) > _CACHE_LIMIT:
        _cache.popitem(last=False)
    return report
