"""Diagnostic vocabulary of the static candidate vetter.

Every rule pass emits :class:`Diagnostic` records — rule id, severity,
message, source span — and :func:`repro.staticcheck.check_candidate`
collects them into one :class:`StaticReport` per candidate.  The report is
what travels: the campaign engine attaches it to result records, the
tester agent turns it into repair feedback, and the CLI renders it as a
table.  Severities draw the screening line: only ``ERROR`` diagnostics can
fast-reject a candidate in ``static_check="screen"`` mode; warnings and
notes are advisory in every mode.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field


class Severity(enum.Enum):
    """How certain (and how consequential) a diagnostic is.

    ``ERROR`` means the rule proved the candidate wrong for *every* input —
    the verifier could only confirm the refutation.  ``WARNING`` flags a
    structure that is usually wrong but has legitimate spellings; it never
    rejects.  ``NOTE`` is purely informational.
    """

    ERROR = "error"
    WARNING = "warning"
    NOTE = "note"


#: Ordering for sort/threshold purposes (most severe first).
_SEVERITY_RANK = {Severity.ERROR: 0, Severity.WARNING: 1, Severity.NOTE: 2}


@dataclass(frozen=True)
class Diagnostic:
    """One finding of one rule pass at one source position."""

    rule_id: str
    severity: Severity
    message: str
    #: ``(line, column)`` of the offending node (1-based; ``(0, 0)`` when
    #: the pass has no better anchor than the whole function).
    node_span: tuple[int, int] = (0, 0)

    def render(self) -> str:
        line, column = self.node_span
        anchor = f"{line}:{column}: " if line else ""
        return f"{anchor}{self.severity.value}: [{self.rule_id}] {self.message}"

    def as_dict(self) -> dict:
        return {
            "rule_id": self.rule_id,
            "severity": self.severity.value,
            "message": self.message,
            "node_span": list(self.node_span),
        }

    @classmethod
    def from_dict(cls, data: dict) -> "Diagnostic":
        span = data.get("node_span") or (0, 0)
        return cls(
            rule_id=str(data["rule_id"]),
            severity=Severity(data.get("severity", "error")),
            message=str(data.get("message", "")),
            node_span=(int(span[0]), int(span[1])),
        )


@dataclass
class StaticReport:
    """Everything the static vetter found on one candidate.

    ``checked`` distinguishes "ran and found nothing" from "skipped"
    (``static_check="off"`` attaches no report at all, so a present report
    with ``checked=False`` only appears when the candidate could not even
    be parsed into a checkable AST — the parse failure itself is then the
    sole diagnostic).
    """

    target: str = ""
    dtype: str = "int32"
    checked: bool = True
    diagnostics: list[Diagnostic] = field(default_factory=list)

    def add(self, rule_id: str, severity: Severity, message: str,
            node=None) -> None:
        """Append one diagnostic, anchoring it to ``node``'s location."""
        span = (0, 0)
        location = getattr(node, "location", None)
        if location is not None:
            span = (location.line, location.column)
        self.diagnostics.append(
            Diagnostic(rule_id=rule_id, severity=severity, message=message,
                       node_span=span))

    @property
    def has_errors(self) -> bool:
        return any(d.severity is Severity.ERROR for d in self.diagnostics)

    def errors(self) -> list[Diagnostic]:
        return [d for d in self.diagnostics if d.severity is Severity.ERROR]

    def sorted_diagnostics(self) -> list[Diagnostic]:
        return sorted(self.diagnostics,
                      key=lambda d: (_SEVERITY_RANK[d.severity], d.node_span,
                                     d.rule_id))

    def rule_counts(self, errors_only: bool = False) -> dict[str, int]:
        """Per-rule hit counts — the ``static_flags`` currency."""
        counts: dict[str, int] = {}
        for diagnostic in self.diagnostics:
            if errors_only and diagnostic.severity is not Severity.ERROR:
                continue
            counts[diagnostic.rule_id] = counts.get(diagnostic.rule_id, 0) + 1
        return dict(sorted(counts.items()))

    def summary_line(self) -> str:
        """One line for report tables: ``rule-id xN`` joined, or ``clean``."""
        if not self.diagnostics:
            return "clean"
        parts = []
        for rule_id, count in self.rule_counts().items():
            parts.append(rule_id if count == 1 else f"{rule_id} x{count}")
        return ", ".join(parts)

    def feedback_text(self) -> str:
        """The tester-agent feedback body for a statically rejected candidate."""
        lines = ["Static vetting rejected the candidate before testing:"]
        lines.extend(f"  {d.render()}" for d in self.sorted_diagnostics())
        return "\n".join(lines)

    def as_dict(self) -> dict:
        return {
            "target": self.target,
            "dtype": self.dtype,
            "checked": self.checked,
            "diagnostics": [d.as_dict() for d in self.diagnostics],
        }

    @classmethod
    def from_dict(cls, data: dict) -> "StaticReport":
        return cls(
            target=str(data.get("target", "")),
            dtype=str(data.get("dtype", "int32")),
            checked=bool(data.get("checked", True)),
            diagnostics=[Diagnostic.from_dict(d)
                         for d in data.get("diagnostics", [])],
        )
