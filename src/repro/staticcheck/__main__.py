"""CLI for the static candidate vetter.

    python -m repro.staticcheck candidate.c --target avx2 --dtype int32

Prints each diagnostic (or a table with ``--table``), optionally the full
JSON report, and exits 1 when any error-severity diagnostic fired — the
same line screen mode draws inside a campaign.
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path

from repro.staticcheck.checker import check_candidate


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.staticcheck",
        description="Statically vet a vectorized candidate before the "
                    "verifier sees it.")
    parser.add_argument("file", help="candidate C source file")
    parser.add_argument("--target", default=None,
                        help="target ISA (default: inferred from spellings)")
    parser.add_argument("--dtype", default=None,
                        help="lane element type (default: inferred)")
    parser.add_argument("--epilogue", default=None,
                        choices=("scalar", "masked", "predicated"),
                        help="declared tail strategy to check against")
    parser.add_argument("--scalar", default=None, metavar="FILE",
                        help="scalar reference source (enables operator-"
                             "drift checking)")
    parser.add_argument("--table", action="store_true",
                        help="render diagnostics as an aligned table")
    parser.add_argument("--json", action="store_true", dest="as_json",
                        help="emit the full report as JSON")
    args = parser.parse_args(argv)

    source = Path(args.file).read_text(encoding="utf-8")
    scalar_source = None
    if args.scalar:
        scalar_source = Path(args.scalar).read_text(encoding="utf-8")

    report = check_candidate(source, target=args.target, dtype=args.dtype,
                             epilogue=args.epilogue,
                             scalar_source=scalar_source)

    if args.as_json:
        print(json.dumps(report.as_dict(), indent=2))
    elif args.table and report.diagnostics:
        from repro.reporting.tables import render_table
        rows = [{
            "Where": f"{d.node_span[0]}:{d.node_span[1]}",
            "Severity": d.severity.value,
            "Rule": d.rule_id,
            "Message": d.message,
        } for d in report.sorted_diagnostics()]
        print(render_table(rows, title=f"{args.file} "
                                       f"[{report.target}/{report.dtype}]"))
    else:
        for diagnostic in report.sorted_diagnostics():
            print(f"{args.file}:{diagnostic.render()}")
        verdict = "rejected" if report.has_errors else "passed"
        errors = len(report.errors())
        print(f"{args.file}: {verdict} ({errors} error(s), "
              f"{len(report.diagnostics) - errors} other) "
              f"[{report.target}/{report.dtype}]")
    return 1 if report.has_errors else 0


if __name__ == "__main__":
    sys.exit(main())
