"""Predicate-governance rules for predicate-first (SVE-class) targets.

Inside a ``whilelt``-governed loop every predicated memory operation must
be governed by the loop predicate (or something derived from it): a
``ptrue``-governed store writes all lanes of the final, partial iteration
— clobbering memory past the extent — and a ``ptrue``-governed load reads
past it.  The rule traces each ``pload``/``pstore`` governor back to its
construction and reports stores as errors, loads as warnings (the
over-read is unsafe but does not corrupt results by itself).
"""

from __future__ import annotations

from repro.cfront import ast_nodes as ast
from repro.intrinsics.registry import registry_for
from repro.lanetypes import LaneType
from repro.staticcheck.diagnostics import Severity, StaticReport
from repro.staticcheck.loopshape import _spec_of
from repro.targets import TargetISA


def run_predicates(func: ast.FunctionDef, target: TargetISA, dtype: LaneType,
                   report: StaticReport) -> None:
    """Flag all-true-governed memory inside loop-predicated loops."""
    if not target.predicate_type:
        return
    try:
        registry = registry_for(target, dtype)
    except KeyError:
        return

    def op_of(expr: ast.Expr) -> str | None:
        if isinstance(expr, ast.Call):
            spec = _spec_of(expr.func, registry, dtype)
            if spec is not None:
                return spec.op
        return None

    # Flow-insensitive predicate origins: a name ever assigned from
    # ``whilelt`` (or predicate logic over a whilelt result) counts as
    # loop-derived, so re-assignments inside the loop never false-positive.
    origins: dict[str, str] = {}

    def record(name: str, value: ast.Expr | None) -> None:
        op = op_of(value) if value is not None else None
        if op == "whilelt":
            origins[name] = "whilelt"
        elif op in ("pand", "por", "pnot") and isinstance(value, ast.Call):
            derived = {origins.get(arg.name) for arg in value.args
                       if isinstance(arg, ast.Identifier)}
            if "whilelt" in derived:
                origins[name] = "whilelt"
            elif origins.get(name) != "whilelt":
                origins.setdefault(name, "ptrue")
        elif op == "ptrue" and origins.get(name) != "whilelt":
            origins[name] = "ptrue"

    for node in ast.walk(func):
        if isinstance(node, ast.Decl):
            record(node.name, node.init)
        elif isinstance(node, ast.Assign) and node.op == "=" \
                and isinstance(node.target, ast.Identifier):
            record(node.target.name, node.value)

    def governor_is_all_true(expr: ast.Expr) -> bool:
        if op_of(expr) == "ptrue":
            return True
        if isinstance(expr, ast.Identifier):
            return origins.get(expr.name) == "ptrue"
        return False

    for loop in ast.collect(func, (ast.ForLoop, ast.WhileLoop,
                                   ast.DoWhileLoop)):
        governed = any(
            op_of(node) in ("whilelt", "ptest_any")
            for node in ast.walk(loop)
            if isinstance(node, ast.Call)
        )
        if not governed:
            continue
        for call in ast.collect(loop.body, ast.Call):
            spec = _spec_of(call.func, registry, dtype)
            if spec is None or spec.kind not in ("pload", "pstore") \
                    or not call.args:
                continue
            if governor_is_all_true(call.args[0]):
                what = "store" if spec.kind == "pstore" else "load"
                severity = (Severity.ERROR if spec.kind == "pstore"
                            else Severity.WARNING)
                report.add(
                    "ungoverned-memory", severity,
                    f"{spec.name} {what}s all lanes under an all-true "
                    f"predicate inside a whilelt-governed loop; the final "
                    f"partial iteration runs past the extent", call)
