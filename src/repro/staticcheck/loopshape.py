"""Loop-shape rules: induction, tail coverage, ramps.

These rules compare each vector loop's *shape* — induction step, bound
truncation, what follows it — against what a correct vectorization at the
active (target, dtype) must look like:

* ``naive-induction`` — a lane ramp built from one repeated scalar
  (``setr(i, i, ..., i)``, ``svindex(i, 0)``): the paper's s453 first
  attempt, where a single scalar update was assumed to cover all lanes;
* ``induction-step`` — a loop stepping its iterator by an amount that is
  not a whole number of vector registers while its body moves full-width
  vectors;
* ``tail-overrun`` — a full-width unpredicated loop whose bound is not
  truncated enough: the last iteration reads or writes past the extent
  the bound implies (the affine-subscript range vs trip count check);
* ``missing-epilogue`` — a correctly truncated full-width loop with no
  tail handling after it (no scalar loop, no masked tail, no predicated
  remainder): the dropped-epilogue fault;
* ``epilogue-mismatch`` (warning) — the declared epilogue strategy does
  not match the candidate's actual tail structure.

The bound analysis reuses :mod:`repro.analysis.accesses`'s affine matcher,
the same machinery the planner's legality checks are built on.
"""

from __future__ import annotations

from repro.analysis.accesses import affine_index
from repro.cfront import ast_nodes as ast
from repro.cfront.printer import expr_to_c
from repro.intrinsics.registry import IntrinsicSpec, lookup_intrinsic, registry_for
from repro.lanetypes import LaneType
from repro.staticcheck.diagnostics import Severity, StaticReport
from repro.targets import TargetISA

#: Spec kinds that move whole registers through memory.
_FULL_WIDTH_MEMORY = {"load", "store"}
_MASKED_MEMORY = {"maskload", "maskstore"}
_PREDICATED_MEMORY = {"pload", "pstore"}
_MEMORY_KINDS = _FULL_WIDTH_MEMORY | _MASKED_MEMORY | _PREDICATED_MEMORY


def _spec_of(name: str, registry: dict[str, IntrinsicSpec],
             dtype: LaneType) -> IntrinsicSpec | None:
    spec = registry.get(name)
    if spec is not None:
        return spec
    try:
        return lookup_intrinsic(name, dtype)
    except KeyError:
        return None


class LoopShape:
    """One instance checks one function's loops and ramps."""

    def __init__(self, func: ast.FunctionDef, target: TargetISA,
                 dtype: LaneType, report: StaticReport,
                 epilogue: str | None = None) -> None:
        self.func = func
        self.target = target
        self.dtype = dtype
        self.report = report
        self.epilogue = epilogue
        try:
            self.registry = registry_for(target, dtype)
        except KeyError:
            self.registry = {}

    def run(self) -> None:
        self._check_ramps()
        self._scan_block(self.func.body)
        self._check_epilogue_declaration()

    # -- ramps ---------------------------------------------------------------

    def _check_ramps(self) -> None:
        for call in ast.collect(self.func, ast.Call):
            spec = _spec_of(call.func, self.registry, self.dtype)
            if spec is None:
                continue
            if spec.kind in ("setr", "set") and len(call.args) >= 2:
                renderings = {expr_to_c(arg) for arg in call.args}
                if len(renderings) == 1:
                    self.report.add(
                        "naive-induction", Severity.ERROR,
                        f"{spec.name} builds a lane ramp from one repeated "
                        f"value ({renderings.pop()}); consecutive lanes need "
                        f"consecutive values", call)
            elif spec.kind == "index" and len(call.args) == 2:
                step = call.args[1]
                if isinstance(step, ast.IntLiteral) and step.value == 0:
                    self.report.add(
                        "naive-induction", Severity.ERROR,
                        f"{spec.name} with step 0 broadcasts its base "
                        f"instead of building a lane ramp", call)

    # -- loop discovery ------------------------------------------------------

    def _scan_block(self, block: ast.Stmt) -> None:
        if isinstance(block, ast.Block):
            for index, stmt in enumerate(block.body):
                if isinstance(stmt, ast.ForLoop):
                    self._check_loop(stmt, block.body[index + 1:])
                self._scan_block(stmt)
        elif isinstance(block, ast.If):
            self._scan_block(block.then)
            if block.otherwise is not None:
                self._scan_block(block.otherwise)
        elif isinstance(block, (ast.ForLoop, ast.WhileLoop, ast.DoWhileLoop)):
            self._scan_block(block.body)
        elif isinstance(block, ast.Label):
            self._scan_block(block.stmt)

    # -- per-loop analysis ---------------------------------------------------

    def _check_loop(self, loop: ast.ForLoop, rest: list[ast.Stmt]) -> None:
        shape = self._loop_shape(loop)
        if shape["predicated"] or not shape["full_lanes"]:
            return  # predicated loops cover their own tail; scalar loops
        width = shape["full_lanes"]
        step = self._step_amount(loop)
        if step is not None and step >= 1 and step % width != 0:
            self.report.add(
                "induction-step", Severity.ERROR,
                f"loop steps its iterator by {step} while its body moves "
                f"{width}-lane {self.dtype.name} vectors; full-width "
                f"iterations advance by a multiple of {width}", loop)
        if shape["masked"]:
            return  # a masked-memory loop covers its own tail
        iterator = self._iterator_name(loop)
        bound = self._bound(loop, iterator)
        if bound is None:
            return
        slack, symbolic, literal = bound
        if symbolic:
            if slack < width - 1:
                self.report.add(
                    "tail-overrun", Severity.ERROR,
                    f"full-width loop reads {width} lanes from its iterator "
                    f"but its bound leaves only {slack} elements of slack; "
                    f"the last iteration runs {width - 1 - slack} elements "
                    f"past the bound", loop)
            elif not self._covers_tail(rest):
                self.report.add(
                    "missing-epilogue", Severity.ERROR,
                    f"loop is truncated {slack} elements short of its extent "
                    f"but nothing after it handles the remainder (no scalar "
                    f"epilogue, masked tail or predicated remainder)", loop)
        elif literal is not None and step:
            last = ((literal - 1) // step) * step
            if last >= 0 and last + width > literal:
                self.report.add(
                    "tail-overrun", Severity.ERROR,
                    f"full-width loop to {literal} stepping by {step} "
                    f"touches index {last + width - 1}", loop)

    def _loop_shape(self, loop: ast.ForLoop) -> dict:
        """Classify the loop's memory traffic and predication."""
        full_lanes = 0
        masked = False
        predicated = False
        nodes = list(ast.walk(loop.body))
        if loop.cond is not None:
            nodes.extend(ast.walk(loop.cond))
        for node in nodes:
            if not isinstance(node, ast.Call):
                continue
            spec = _spec_of(node.func, self.registry, self.dtype)
            if spec is None:
                continue
            if spec.op in ("whilelt", "ptest_any"):
                predicated = True
            elif spec.kind in _FULL_WIDTH_MEMORY:
                full_lanes = max(full_lanes, spec.lanes)
            elif spec.kind in _MASKED_MEMORY:
                masked = True
            elif spec.kind in _PREDICATED_MEMORY:
                # Predicate-governed memory in a loop that never constructs
                # a loop predicate is full-width traffic under an all-true
                # governor (the SVE plain-loop idiom).
                full_lanes = max(full_lanes, spec.lanes)
        return {"full_lanes": full_lanes, "masked": masked,
                "predicated": predicated}

    @staticmethod
    def _iterator_name(loop: ast.ForLoop) -> str | None:
        init = loop.init
        if isinstance(init, ast.Decl):
            return init.name
        if isinstance(init, ast.ExprStmt) and isinstance(init.expr, ast.Assign):
            target = init.expr.target
            if isinstance(target, ast.Identifier):
                return target.name
        if isinstance(loop.cond, ast.BinOp) and isinstance(loop.cond.left,
                                                           ast.Identifier):
            return loop.cond.left.name
        return None

    @staticmethod
    def _step_amount(loop: ast.ForLoop) -> int | None:
        step = loop.step
        if isinstance(step, ast.Assign):
            if step.op == "+=" and isinstance(step.value, ast.IntLiteral):
                return step.value.value
            if step.op == "=" and isinstance(step.value, ast.BinOp) \
                    and step.value.op == "+" \
                    and isinstance(step.value.right, ast.IntLiteral):
                return step.value.right.value
        if isinstance(step, (ast.PostfixOp, ast.UnaryOp)) and step.op == "++":
            return 1
        return None

    def _bound(self, loop: ast.ForLoop,
               iterator: str | None) -> tuple[int, bool, int | None] | None:
        """``(slack, symbolic, literal)`` of an ``i < E`` / ``i <= E`` bound.

        ``slack`` is how many elements short of the symbolic base the bound
        stops (``i < n - 7`` has slack 7); ``literal`` carries a fully
        constant bound instead.
        """
        cond = loop.cond
        if not isinstance(cond, ast.BinOp) or cond.op not in ("<", "<="):
            return None
        if not (isinstance(cond.left, ast.Identifier)
                and iterator is not None and cond.left.name == iterator):
            return None
        affine = affine_index(cond.right, None)
        adjust = -1 if cond.op == "<=" else 0
        if affine.symbolic:
            return (-affine.offset + adjust, True, None)
        return (adjust, False, affine.offset - adjust)

    def _covers_tail(self, rest: list[ast.Stmt]) -> bool:
        """Whether anything after the loop can retire leftover iterations."""
        for stmt in rest:
            for node in ast.walk(stmt):
                if isinstance(node, (ast.ForLoop, ast.WhileLoop,
                                     ast.DoWhileLoop)):
                    return True
                if isinstance(node, ast.Call):
                    spec = _spec_of(node.func, self.registry, self.dtype)
                    if spec is not None and spec.kind in (
                            _MASKED_MEMORY | _PREDICATED_MEMORY):
                        return True
        return False

    # -- declared strategy vs structure --------------------------------------

    def _check_epilogue_declaration(self) -> None:
        if not self.epilogue or self.epilogue == "scalar":
            return
        calls = [node for node in ast.walk(self.func)
                 if isinstance(node, ast.Call)]
        kinds = set()
        ops = set()
        for call in calls:
            spec = _spec_of(call.func, self.registry, self.dtype)
            if spec is not None:
                kinds.add(spec.kind)
                ops.add(spec.op)
        if not kinds & _MEMORY_KINDS:
            return  # not a vectorized candidate at all
        if self.epilogue == "masked" and not kinds & _MASKED_MEMORY:
            self.report.add(
                "epilogue-mismatch", Severity.WARNING,
                "candidate declares a masked epilogue but contains no "
                "masked memory operations", self.func)
        elif self.epilogue == "predicated" and "whilelt" not in ops:
            self.report.add(
                "epilogue-mismatch", Severity.WARNING,
                "candidate declares a predicated loop but never constructs "
                "a loop predicate (no whilelt)", self.func)


def run_loopshape(func: ast.FunctionDef, target: TargetISA, dtype: LaneType,
                  report: StaticReport, epilogue: str | None = None) -> None:
    """The pass entry point: induction, ramp and tail-coverage rules."""
    LoopShape(func, target, dtype, report, epilogue=epilogue).run()
