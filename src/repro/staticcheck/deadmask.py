"""Dead-blend rules: the residue a dropped conditional leaves behind.

The unsafe-hoist mistake turns ``select(mask, then, else)`` /
``psel(pred, then, else)`` into an unconditional ``add(then, 0)``.  That
leaves two statically visible scars, each its own rule:

* ``dead-mask`` — the comparison that produced ``mask`` is still computed
  but nothing reads it any more.  A vectorized candidate has no reason to
  materialize a comparison it does not consume;
* ``noop-arith`` — the ``add(then, 0)`` itself: adding a zero vector is a
  no-op no generator emits on purpose, and in this subset it is exactly
  the shape an un-guarded blend collapses to (it also covers the case
  where the comparison was nested inline and vanished with the blend, so
  no dead mask remains to see).
"""

from __future__ import annotations

from repro.cfront import ast_nodes as ast
from repro.lanetypes import LaneType
from repro.staticcheck.diagnostics import Severity, StaticReport
from repro.staticcheck.loopshape import _spec_of
from repro.intrinsics.registry import registry_for
from repro.targets import TargetISA

#: Generic ops whose results are masks/predicates feeding a blend.
_COMPARE_OPS = {"cmpgt", "cmpeq", "pcmpgt", "pcmpeq"}


def _is_zero_vector(expr: ast.Expr | None, registry, dtype: LaneType) -> bool:
    """Whether ``expr`` constructs an all-zeros vector (setzero / set1(0))."""
    if not isinstance(expr, ast.Call):
        return False
    spec = _spec_of(expr.func, registry, dtype)
    if spec is None:
        return False
    if spec.kind == "setzero":
        return True
    if spec.kind == "set1" and len(expr.args) == 1:
        arg = expr.args[0]
        return isinstance(arg, ast.IntLiteral) and arg.value == 0
    return False


def run_deadmask(func: ast.FunctionDef, target: TargetISA, dtype: LaneType,
                 report: StaticReport) -> None:
    """Flag comparison results assigned to variables that are never read."""
    try:
        registry = registry_for(target, dtype)
    except KeyError:
        registry = {}

    for call in ast.collect(func, ast.Call):
        spec = _spec_of(call.func, registry, dtype)
        if spec is None or spec.op not in ("add", "padd"):
            continue
        operands = call.args[1:3] if spec.op == "padd" else call.args[:2]
        if any(_is_zero_vector(arg, registry, dtype) for arg in operands):
            report.add(
                "noop-arith", Severity.ERROR,
                f"{spec.name} adds an all-zeros vector — a no-op the "
                f"generator never emits; this is the shape a dropped blend "
                f"(hoisted conditional) collapses to", call)

    def compare_call(expr: ast.Expr | None) -> ast.Call | None:
        if isinstance(expr, ast.Call):
            spec = _spec_of(expr.func, registry, dtype)
            if spec is not None and spec.op in _COMPARE_OPS:
                return expr
        return None

    masks: dict[str, ast.Node] = {}
    assign_targets: set[int] = set()
    for node in ast.walk(func):
        if isinstance(node, ast.Decl) and compare_call(node.init) is not None:
            masks[node.name] = node
        elif isinstance(node, ast.Assign) and isinstance(node.target, ast.Identifier):
            assign_targets.add(id(node.target))
            if node.op == "=" and compare_call(node.value) is not None:
                masks.setdefault(node.target.name, node)
    if not masks:
        return

    read_names = {
        node.name
        for node in ast.walk(func)
        if isinstance(node, ast.Identifier) and id(node) not in assign_targets
    }
    for name, node in masks.items():
        if name not in read_names:
            report.add(
                "dead-mask", Severity.ERROR,
                f"comparison result {name!r} is computed but never consumed; "
                f"the blend it was meant to govern is gone (hoisted "
                f"conditional?)", node)
