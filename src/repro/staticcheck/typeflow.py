"""Intrinsic dataflow type checking plus def-use analysis.

One abstract-execution walk over the candidate AST propagates a small value
lattice — vector (with element dtype and lane count), predicate, scalar,
pointer, unknown — through every expression, checking each intrinsic call
against the per-(target, dtype) registry:

* ``unknown-intrinsic`` — a spelling no registered target emits (the
  misspelled-intrinsic compile errors, ``bogus_gather_spelling``);
* ``dtype-mismatch`` — a spelling of the right target at the wrong lane
  element type (an ``epi16`` value feeding an ``epi32`` op), or an operand
  whose inferred dtype conflicts with the op's;
* ``wrong-target`` — another ISA's spelling of an operation the active
  target supports under a different name;
* ``isa-availability`` — another ISA's spelling of an operation the active
  target cannot express at all, reported with the same vocabulary the
  planner uses;
* ``lane-width`` — operand lane counts that disagree with the op's
  register width (including ``setr`` arity vs lane count);
* ``operand-kind`` — a predicate where a vector is required (or vice
  versa), wrong argument counts;
* ``use-before-init`` — a vector or predicate variable read before any
  assignment (the dropped ``setzero``/``ptrue`` accumulator init).

Cross-width spellings of the *same header family* (an AVX2 reduction tail
casting to ``__m128i`` and extracting through the SSE4 spelling) are
legitimate auxiliaries: they type-check against their own spec but raise no
availability diagnostic.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.cfront import ast_nodes as ast
from repro.intrinsics.registry import IntrinsicSpec, lookup_intrinsic, registry_for
from repro.lanetypes import LaneType
from repro.staticcheck.diagnostics import Severity, StaticReport
from repro.targets import (
    TargetISA,
    dtype_of_spelling,
    known_intrinsic_spellings,
    resolve_intrinsic,
    vector_type_lanes_for,
)

#: The planner's rejection phrasing for operations a target cannot express
#: (:class:`repro.vectorizer.planner.RejectionReason.UNSUPPORTED_OPERATION`);
#: the availability rule reuses it so feedback reads the same either way.
UNSUPPORTED_PHRASE = "operation has no {isa} integer equivalent"

#: Scalar C library calls the interpreter models (scalar epilogues call
#: these); they are not intrinsic spellings and raise no diagnostic.
_SCALAR_BUILTINS = frozenset({"abs", "labs", "min", "max"})


@dataclass(frozen=True)
class Value:
    """One point of the abstract value lattice."""

    kind: str  # "vec" | "pred" | "scalar" | "ptr" | "unknown"
    dtype: str | None = None
    lanes: int | None = None


SCALAR = Value("scalar")
POINTER = Value("ptr")
UNKNOWN = Value("unknown")
VOID = Value("unknown")


def _vec(dtype: str | None, lanes: int | None) -> Value:
    return Value("vec", dtype=dtype, lanes=lanes)


def _pred(lanes: int | None) -> Value:
    return Value("pred", lanes=lanes)


#: Expected operand shapes per spec kind: "v" vector, "p" predicate,
#: "s" scalar, "a" address/pointer.  ``None`` marks kinds with spelled-out
#: handling (setr/set take ``lanes`` scalars).
_OPERAND_SHAPES: dict[str, str] = {
    "pure_binary": "vv",
    "pure_unary": "v",
    "pure_vector": "vvv",  # truncated to the spec arity (hadd takes 2)
    "pure_imm": "vs",
    "pure_imm2": "vvs",
    "load": "a",
    "store": "av",
    "maskload": "av",
    "maskstore": "avv",
    "set1": "s",
    "setzero": "",
    "index": "ss",
    "extract": "vs",
    "cast_low": "v",
    "ptrue": "",
    "whilelt": "ss",
    "ptest": "p",
    "pred_unary": "pp",
    "pred_binary": "ppp",
    "pred_cmp": "pvv",
    "psel": "pvv",
    "pred_merge_binary": "pvv",
    "pload": "pa",
    "pstore": "pav",
}


class TypeFlow:
    """The abstract evaluator; one instance checks one function."""

    def __init__(self, func: ast.FunctionDef, target: TargetISA,
                 dtype: LaneType, report: StaticReport) -> None:
        self.func = func
        self.target = target
        self.dtype = dtype
        self.report = report
        try:
            self.registry: dict[str, IntrinsicSpec] = registry_for(target, dtype)
        except KeyError:
            self.registry = {}
        self.env: dict[str, Value] = {}
        self.assigned: set[str] = set()
        self._flagged_uninit: set[str] = set()
        self._flagged_calls: set[str] = set()
        self._known_spellings = known_intrinsic_spellings()

    # -- entry point --------------------------------------------------------

    def run(self) -> None:
        for param in self.func.params:
            self.env[param.name] = POINTER if param.param_type.is_pointer else SCALAR
            self.assigned.add(param.name)
        self._exec(self.func.body)

    # -- statements ---------------------------------------------------------

    def _exec(self, stmt: ast.Stmt) -> None:
        if isinstance(stmt, ast.Block):
            for inner in stmt.body:
                self._exec(inner)
        elif isinstance(stmt, ast.ExprStmt):
            self._eval(stmt.expr)
        elif isinstance(stmt, ast.Decl):
            self._exec_decl(stmt)
        elif isinstance(stmt, ast.If):
            self._eval(stmt.cond)
            before = set(self.assigned)
            self._exec(stmt.then)
            after_then = self.assigned
            self.assigned = set(before)
            if stmt.otherwise is not None:
                self._exec(stmt.otherwise)
            after_else = self.assigned
            # Only assignments made on *every* path count as definite.
            self.assigned = before | (after_then & after_else)
        elif isinstance(stmt, ast.ForLoop):
            if stmt.init is not None:
                self._exec(stmt.init)
            if stmt.cond is not None:
                self._eval(stmt.cond)
            self._exec(stmt.body)
            if stmt.step is not None:
                self._eval(stmt.step)
        elif isinstance(stmt, (ast.WhileLoop, ast.DoWhileLoop)):
            self._eval(stmt.cond)
            self._exec(stmt.body)
        elif isinstance(stmt, ast.Return):
            if stmt.value is not None:
                self._eval(stmt.value)
        elif isinstance(stmt, ast.Label):
            self._exec(stmt.stmt)
        # Break/Continue/Goto: nothing to evaluate.

    def _exec_decl(self, decl: ast.Decl) -> None:
        declared = self._declared_value(decl)
        if decl.array_size is not None:
            self._eval(decl.array_size)
            self.env[decl.name] = POINTER
            self.assigned.add(decl.name)
            return
        if decl.init is None:
            self.env[decl.name] = declared
            self.assigned.discard(decl.name)
            return
        value = self._eval(decl.init)
        self.env[decl.name] = self._merge_decl(decl, declared, value)
        self.assigned.add(decl.name)

    def _declared_value(self, decl: ast.Decl) -> Value:
        ctype = decl.var_type
        if ctype.is_pointer:
            return POINTER
        if ctype.is_vector:
            lanes = vector_type_lanes_for(ctype.name, self.dtype) or None
            return _vec(None, lanes)
        if ctype.is_predicate:
            return _pred(None)
        return SCALAR

    def _merge_decl(self, decl: ast.Decl, declared: Value, value: Value) -> Value:
        if declared.kind == "vec":
            if value.kind == "pred":
                self.report.add(
                    "operand-kind", Severity.ERROR,
                    f"vector variable {decl.name!r} initialized from a "
                    f"predicate value", decl)
                return declared
            if value.kind == "vec":
                if (declared.lanes and value.lanes
                        and declared.lanes != value.lanes):
                    self.report.add(
                        "lane-width", Severity.ERROR,
                        f"{decl.var_type.name} {decl.name} holds "
                        f"{declared.lanes} {self.dtype.name} lanes but its "
                        f"initializer produces {value.lanes}", decl)
                return _vec(value.dtype, declared.lanes or value.lanes)
            return declared
        if declared.kind == "pred":
            if value.kind == "vec":
                self.report.add(
                    "operand-kind", Severity.ERROR,
                    f"predicate variable {decl.name!r} initialized from a "
                    f"data vector", decl)
                return declared
            if value.kind == "pred":
                return value
            return declared
        return declared

    # -- expressions ---------------------------------------------------------

    def _eval(self, expr: ast.Expr) -> Value:
        if isinstance(expr, ast.IntLiteral):
            return SCALAR
        if isinstance(expr, ast.Identifier):
            return self._read(expr)
        if isinstance(expr, ast.Call):
            return self._eval_call(expr)
        if isinstance(expr, ast.Assign):
            return self._eval_assign(expr)
        if isinstance(expr, ast.ArrayRef):
            self._eval(expr.index)
            if not isinstance(expr.base, ast.Identifier):
                self._eval(expr.base)
            return SCALAR
        if isinstance(expr, ast.UnaryOp):
            if expr.op == "&":
                self._eval_address(expr.operand)
                return POINTER
            operand = self._eval(expr.operand)
            if expr.op == "*":
                return SCALAR if operand.kind == "ptr" else operand
            return operand if operand.kind != "ptr" else SCALAR
        if isinstance(expr, ast.PostfixOp):
            return self._eval(expr.operand)
        if isinstance(expr, ast.BinOp):
            self._eval(expr.left)
            self._eval(expr.right)
            return SCALAR
        if isinstance(expr, ast.TernaryOp):
            self._eval(expr.cond)
            then = self._eval(expr.then)
            otherwise = self._eval(expr.otherwise)
            return then if then == otherwise else UNKNOWN
        if isinstance(expr, ast.Cast):
            self._eval(expr.operand)
            ctype = expr.target_type
            if ctype.is_pointer:
                return POINTER
            if ctype.is_vector:
                lanes = vector_type_lanes_for(ctype.name, self.dtype) or None
                return _vec(None, lanes)
            if ctype.is_predicate:
                return _pred(None)
            return SCALAR
        return UNKNOWN

    def _eval_address(self, expr: ast.Expr) -> None:
        """Evaluate the insides of ``&expr`` without kinding the result."""
        if isinstance(expr, ast.ArrayRef):
            self._eval(expr.index)
            if not isinstance(expr.base, ast.Identifier):
                self._eval(expr.base)
            return
        self._eval(expr)

    def _read(self, identifier: ast.Identifier) -> Value:
        name = identifier.name
        value = self.env.get(name, UNKNOWN)
        if (value.kind in ("vec", "pred") and name not in self.assigned
                and name not in self._flagged_uninit):
            self._flagged_uninit.add(name)
            what = "vector" if value.kind == "vec" else "predicate"
            self.report.add(
                "use-before-init", Severity.ERROR,
                f"{what} variable {name!r} is read before any assignment "
                f"(missing accumulator initialization?)", identifier)
        return value

    def _eval_assign(self, assign: ast.Assign) -> Value:
        if assign.op != "=" and isinstance(assign.target, ast.Identifier):
            self._read(assign.target)  # compound assignment reads first
        value = self._eval(assign.value)
        target = assign.target
        if isinstance(target, ast.Identifier):
            declared = self.env.get(target.name)
            if value.kind in ("vec", "pred"):
                if declared is not None and declared.kind in ("vec", "pred"):
                    if declared.kind != value.kind:
                        got = "predicate" if value.kind == "pred" else "data vector"
                        self.report.add(
                            "operand-kind", Severity.ERROR,
                            f"{declared.kind} variable {target.name!r} "
                            f"assigned a {got} value", target)
                    elif (declared.kind == "vec" and declared.lanes
                          and value.lanes and declared.lanes != value.lanes):
                        self.report.add(
                            "lane-width", Severity.ERROR,
                            f"variable {target.name!r} holds {declared.lanes} "
                            f"lanes but is assigned a {value.lanes}-lane "
                            f"value", target)
                    if declared.kind == "vec" and value.kind == "vec":
                        value = _vec(value.dtype, declared.lanes or value.lanes)
                self.env[target.name] = value
            elif declared is None:
                self.env[target.name] = value
            self.assigned.add(target.name)
            return value
        # Array-element or pointer target: evaluate its address parts.
        self._eval_address(target)
        return value

    # -- calls ----------------------------------------------------------------

    def _eval_call(self, call: ast.Call) -> Value:
        spec = self.registry.get(call.func)
        if spec is not None:
            return self._check_against(call, spec)
        return self._foreign_call(call)

    def _foreign_call(self, call: ast.Call) -> Value:
        name = call.func
        if name in _SCALAR_BUILTINS:
            for arg in call.args:
                self._eval(arg)
            return SCALAR
        if name not in self._known_spellings:
            if name not in self._flagged_calls:
                self._flagged_calls.add(name)
                self.report.add(
                    "unknown-intrinsic", Severity.ERROR,
                    f"intrinsic spelling {name!r} belongs to no registered "
                    f"target", call)
            for arg in call.args:
                self._eval(arg)
            return UNKNOWN
        owner, op = resolve_intrinsic(name)
        if owner.name == self.target.name:
            # The active target's own spelling, but absent from the active
            # (target, dtype) registry: it belongs to another element type.
            spelled_dtype = dtype_of_spelling(name)
            if name not in self._flagged_calls:
                self._flagged_calls.add(name)
                spelled = (f"{spelled_dtype.name} spelling"
                           if spelled_dtype is not None
                           else "spelling of another element type")
                self.report.add(
                    "dtype-mismatch", Severity.ERROR,
                    f"{name} is {owner.display_name}'s {spelled} of {op!r}; "
                    f"this kernel models {self.dtype.name} lanes", call)
            for arg in call.args:
                self._eval(arg)
            return UNKNOWN
        if owner.header == self.target.header:
            # Same header family at another register width (AVX2 reduction
            # tails extracting through the SSE4 low half): legitimate
            # auxiliary — type-check against its own spec.
            spec = self._auxiliary_spec(name)
            if spec is not None:
                return self._check_against(call, spec)
            for arg in call.args:
                self._eval(arg)
            return UNKNOWN
        if name not in self._flagged_calls:
            self._flagged_calls.add(name)
            if self.target.supports(op, self.dtype):
                self.report.add(
                    "wrong-target", Severity.ERROR,
                    f"{name} is {owner.display_name}'s spelling of {op!r}; "
                    f"{self.target.display_name} spells it "
                    f"{self.target.intrinsic(op, self.dtype)}", call)
            else:
                phrase = UNSUPPORTED_PHRASE.format(isa=self.target.display_name)
                self.report.add(
                    "isa-availability", Severity.ERROR,
                    f"{name} ({owner.display_name} {op!r}): {phrase}", call)
        for arg in call.args:
            self._eval(arg)
        return UNKNOWN

    def _auxiliary_spec(self, name: str) -> IntrinsicSpec | None:
        try:
            return lookup_intrinsic(name, self.dtype)
        except KeyError:
            return None

    def _check_against(self, call: ast.Call, spec: IntrinsicSpec) -> Value:
        values = [self._eval(arg) for arg in call.args]
        if len(values) != spec.arity:
            if spec.kind in ("setr", "set"):
                self.report.add(
                    "lane-width", Severity.ERROR,
                    f"{spec.name} builds a {spec.lanes}-lane {spec.dtype} "
                    f"vector and takes {spec.lanes} scalar arguments, got "
                    f"{len(values)}", call)
            else:
                self.report.add(
                    "operand-kind", Severity.ERROR,
                    f"{spec.name} takes {spec.arity} arguments, got "
                    f"{len(values)}", call)
            return self._result_of(spec)
        shape = _OPERAND_SHAPES.get(spec.kind)
        if shape is None:
            if spec.kind in ("setr", "set"):
                shape = "s" * spec.arity
            else:
                shape = ""
        for index, (want, value) in enumerate(zip(shape, values)):
            self._check_operand(call, spec, index, want, value)
        return self._result_of(spec)

    def _check_operand(self, call: ast.Call, spec: IntrinsicSpec, index: int,
                       want: str, value: Value) -> None:
        position = f"argument {index + 1} of {spec.name}"
        if want == "v":
            if value.kind == "pred":
                self.report.add(
                    "operand-kind", Severity.ERROR,
                    f"{position} must be a data vector, got a predicate",
                    call)
            elif value.kind in ("scalar", "ptr"):
                self.report.add(
                    "operand-kind", Severity.ERROR,
                    f"{position} must be a data vector, got a "
                    f"{'scalar' if value.kind == 'scalar' else 'pointer'}",
                    call)
            elif value.kind == "vec":
                if value.lanes and value.lanes != spec.lanes:
                    self.report.add(
                        "lane-width", Severity.ERROR,
                        f"{position} is a {value.lanes}-lane vector; "
                        f"{spec.name} operates on {spec.lanes} "
                        f"{spec.dtype} lanes", call)
                elif value.dtype and value.dtype != spec.dtype:
                    self.report.add(
                        "dtype-mismatch", Severity.ERROR,
                        f"{position} carries {value.dtype} lanes; "
                        f"{spec.name} operates on {spec.dtype} lanes", call)
        elif want == "p":
            if value.kind == "vec":
                self.report.add(
                    "operand-kind", Severity.ERROR,
                    f"{position} must be a predicate, got a data vector",
                    call)
            elif value.kind == "scalar":
                self.report.add(
                    "operand-kind", Severity.ERROR,
                    f"{position} must be a predicate, got a scalar", call)
        elif want == "s" and value.kind in ("vec", "pred"):
            self.report.add(
                "operand-kind", Severity.ERROR,
                f"{position} must be a scalar, got a "
                f"{'vector' if value.kind == 'vec' else 'predicate'}",
                call)
        elif want == "a" and value.kind in ("vec", "pred"):
            self.report.add(
                "operand-kind", Severity.ERROR,
                f"{position} must be an address, got a "
                f"{'vector' if value.kind == 'vec' else 'predicate'}",
                call)

    def _result_of(self, spec: IntrinsicSpec) -> Value:
        kind = spec.kind
        if kind in ("store", "maskstore", "pstore"):
            return VOID
        if kind in ("extract", "ptest"):
            return SCALAR
        if kind in ("ptrue", "whilelt", "pred_unary", "pred_binary",
                    "pred_cmp"):
            return _pred(spec.lanes)
        if kind == "cast_low":
            return _vec(spec.dtype, max(1, spec.lanes // 2))
        return _vec(spec.dtype, spec.lanes)


def run_typeflow(func: ast.FunctionDef, target: TargetISA, dtype: LaneType,
                 report: StaticReport) -> None:
    """The pass entry point: dataflow type checking + def-use analysis."""
    TypeFlow(func, target, dtype, report).run()
