"""Checksum-based testing (paper Section 2.1).

Given a scalar function and a candidate vectorized function, the tester
initializes the input arrays randomly, executes both functions, and compares
the output arrays.  The outcome is one of

* ``PLAUSIBLE`` — outputs matched on every test vector (possibly correct),
* ``NOT_EQUIVALENT`` — some output array differed,
* ``CANNOT_COMPILE`` — the candidate was rejected before execution
  (parse error, unknown intrinsic, undeclared identifier, ...).

Checksum testing deliberately does *not* fail a candidate for guard-zone
(out-of-bounds-by-a-vector) accesses: on real hardware those reads usually
succeed, which is exactly why the paper needs symbolic verification to catch
bugs like the unconditional load in s124.
"""

from __future__ import annotations

import enum
import random
from dataclasses import dataclass, field

from repro.cfront import ast_nodes as ast
from repro.errors import (
    CompileError,
    InterpreterError,
    ParseError,
    LexError,
    ReproError,
    UndefinedBehaviorError,
)
from repro.interp.interpreter import ExecutionResult, run_function
from repro.interp.randominit import InputSpec, TestVector, make_test_suite


class ChecksumOutcome(enum.Enum):
    """Verdict of checksum-based testing."""

    PLAUSIBLE = "plausible"
    NOT_EQUIVALENT = "not_equivalent"
    CANNOT_COMPILE = "cannot_compile"


@dataclass
class Mismatch:
    """A single observed difference between scalar and vectorized outputs."""

    array: str
    index: int
    expected: int
    actual: int
    trip_count: int

    def __str__(self) -> str:
        return (
            f"{self.array}[{self.index}] differs for n={self.trip_count}: "
            f"scalar={self.expected}, vectorized={self.actual}"
        )


@dataclass
class ChecksumReport:
    """Full report of a checksum-testing run, used as agent feedback."""

    outcome: ChecksumOutcome
    mismatches: list[Mismatch] = field(default_factory=list)
    compile_error: str | None = None
    tests_run: int = 0
    scalar_ub_events: int = 0
    vector_ub_events: int = 0
    sample_inputs: dict[str, list[int]] = field(default_factory=dict)
    sample_expected: dict[str, list[int]] = field(default_factory=dict)
    sample_actual: dict[str, list[int]] = field(default_factory=dict)

    @property
    def is_plausible(self) -> bool:
        return self.outcome is ChecksumOutcome.PLAUSIBLE

    def feedback_text(self, limit: int = 5) -> str:
        """Human/LLM-readable feedback, mirroring the tester agent's messages."""
        if self.outcome is ChecksumOutcome.CANNOT_COMPILE:
            return f"The vectorized code does not compile: {self.compile_error}"
        if self.outcome is ChecksumOutcome.PLAUSIBLE:
            return "The vectorized code matches the scalar code on all random tests."
        lines = ["The vectorized code produced different outputs than the scalar code:"]
        for mismatch in self.mismatches[:limit]:
            lines.append(f"  - {mismatch}")
        if self.sample_inputs:
            lines.append("Example input arrays:")
            for name, values in sorted(self.sample_inputs.items()):
                lines.append(f"  {name} = {values[:12]}")
            lines.append("Expected (scalar) outputs:")
            for name, values in sorted(self.sample_expected.items()):
                lines.append(f"  {name} = {values[:12]}")
            lines.append("Actual (vectorized) outputs:")
            for name, values in sorted(self.sample_actual.items()):
                lines.append(f"  {name} = {values[:12]}")
        return "\n".join(lines)


def _ensure_function(code: str | ast.FunctionDef) -> ast.FunctionDef:
    if isinstance(code, ast.FunctionDef):
        return code
    # Shared-AST cache: checksum testing re-sees the same scalar source every
    # attempt and the same candidate source every stage, and the interpreter
    # below never mutates what it executes.
    from repro.vectorizer.plancache import cached_parse

    return cached_parse(code)


def _execute(func: ast.FunctionDef, vector: TestVector) -> ExecutionResult:
    return run_function(func, arrays=vector.arrays, scalars=vector.scalars)


#: Scalar-side memo: during a campaign the tester re-runs the *same* scalar
#: reference over the *same* seeded test suite once per candidate attempt.
#: The interpreter copies array contents on allocation and ``outputs()``
#: snapshots, so suites and results are safely shareable.  Keyed by the
#: identity of the (cache-shared) scalar AST; the entry holds a strong
#: reference to the function, so an id can never be silently reused.
_SCALAR_MEMO: dict[
    tuple[int, int, tuple[int, ...] | None, tuple[int, int]],
    tuple[ast.FunctionDef, list[TestVector], list[ExecutionResult]],
] = {}
_SCALAR_MEMO_CAPACITY = 256


def _scalar_suite(
    scalar_func: ast.FunctionDef,
    seed: int,
    trip_counts: list[int] | None,
    value_range: tuple[int, int],
) -> tuple[list[TestVector], list[ExecutionResult]]:
    """The seeded test suite plus a lazily-filled list of scalar results."""
    key = (id(scalar_func), seed,
           tuple(trip_counts) if trip_counts is not None else None, value_range)
    entry = _SCALAR_MEMO.get(key)
    if entry is not None and entry[0] is scalar_func:
        return entry[1], entry[2]
    rng = random.Random(seed)
    spec = InputSpec.from_function(scalar_func)
    suite = make_test_suite(spec, rng, trip_counts=trip_counts, value_range=value_range)
    results: list[ExecutionResult] = []
    if len(_SCALAR_MEMO) >= _SCALAR_MEMO_CAPACITY:
        _SCALAR_MEMO.clear()
    _SCALAR_MEMO[key] = (scalar_func, suite, results)
    return suite, results


def _compare_outputs(
    scalar_result: ExecutionResult,
    vector_result: ExecutionResult,
    vector: TestVector,
) -> list[Mismatch]:
    mismatches: list[Mismatch] = []
    scalar_out = scalar_result.outputs()
    vector_out = vector_result.outputs()
    trip = next(iter(vector.scalars.values()), 0)
    for name, expected_values in scalar_out.items():
        actual_values = vector_out.get(name)
        if actual_values is None:
            continue
        for index, (expected, actual) in enumerate(zip(expected_values, actual_values)):
            if expected != actual:
                mismatches.append(
                    Mismatch(
                        array=name,
                        index=index,
                        expected=expected,
                        actual=actual,
                        trip_count=vector.scalars.get("n", trip),
                    )
                )
    return mismatches


def checksum_testing(
    scalar_code: str | ast.FunctionDef,
    vectorized_code: str | ast.FunctionDef,
    seed: int = 0,
    trip_counts: list[int] | None = None,
    value_range: tuple[int, int] = (-1000, 1000),
) -> ChecksumReport:
    """Run checksum-based testing of ``vectorized_code`` against ``scalar_code``."""
    try:
        scalar_func = _ensure_function(scalar_code)
    except (ParseError, LexError) as exc:
        raise ReproError(f"the scalar reference program failed to parse: {exc}") from exc

    try:
        vector_func = _ensure_function(vectorized_code)
    except (ParseError, LexError, CompileError) as exc:
        return ChecksumReport(
            outcome=ChecksumOutcome.CANNOT_COMPILE, compile_error=str(exc), tests_run=0
        )

    suite, scalar_results = _scalar_suite(scalar_func, seed, trip_counts, value_range)

    report = ChecksumReport(outcome=ChecksumOutcome.PLAUSIBLE)
    for index, vector in enumerate(suite):
        if index < len(scalar_results):
            scalar_result = scalar_results[index]
        else:
            try:
                scalar_result = _execute(scalar_func, vector)
            except ReproError as exc:
                raise ReproError(f"the scalar reference program failed to execute: {exc}") from exc
            scalar_results.append(scalar_result)
        try:
            vector_result = _execute(vector_func, vector)
        except (CompileError,) as exc:
            return ChecksumReport(
                outcome=ChecksumOutcome.CANNOT_COMPILE,
                compile_error=str(exc),
                tests_run=report.tests_run,
            )
        except (UndefinedBehaviorError, InterpreterError) as exc:
            report.outcome = ChecksumOutcome.NOT_EQUIVALENT
            report.compile_error = None
            report.mismatches.append(
                Mismatch(array="<crash>", index=0, expected=0, actual=0,
                         trip_count=vector.scalars.get("n", 0))
            )
            report.tests_run += 1
            report.sample_inputs = {k: list(v) for k, v in vector.arrays.items()}
            report.sample_expected = scalar_result.outputs()
            report.sample_actual = {}
            _ = exc
            return report

        report.tests_run += 1
        report.scalar_ub_events += len(scalar_result.ub_events)
        report.vector_ub_events += len(vector_result.ub_events)
        mismatches = _compare_outputs(scalar_result, vector_result, vector)
        if mismatches:
            report.outcome = ChecksumOutcome.NOT_EQUIVALENT
            report.mismatches.extend(mismatches)
            report.sample_inputs = {k: list(v) for k, v in vector.arrays.items()}
            report.sample_expected = scalar_result.outputs()
            report.sample_actual = vector_result.outputs()
            return report
    return report
