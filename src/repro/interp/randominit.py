"""Random input generation for checksum-based testing.

Checksum testing (paper Section 2.1) initializes the input arrays with random
values, fixes a loop upper bound, executes the scalar and vectorized
functions, and compares the output arrays.  Values are kept small so that
32-bit multiplications do not overflow in ways that would make *both* sides
wrap identically and mask nothing — small magnitudes keep the comparison
sensitive to indexing and induction-variable mistakes, which are the dominant
LLM failure modes the paper reports.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field

from repro.cfront import ast_nodes as ast


@dataclass(frozen=True)
class TestVector:
    """One concrete input: array contents plus scalar arguments."""

    arrays: dict[str, list[int]]
    scalars: dict[str, int]


@dataclass
class InputSpec:
    """Shape description of a kernel's inputs.

    ``array_params`` are the pointer parameters, ``scalar_params`` the value
    parameters; ``trip_count_param`` names the parameter that bounds the loop
    (``n`` in every TSVC kernel).
    """

    array_params: list[str]
    scalar_params: list[str]
    trip_count_param: str = "n"
    extra_scalars: dict[str, int] = field(default_factory=dict)

    @staticmethod
    def from_function(func: ast.FunctionDef) -> "InputSpec":
        arrays = [p.name for p in func.params if p.param_type.is_pointer]
        scalars = [p.name for p in func.params if not p.param_type.is_pointer]
        trip = "n" if "n" in scalars else (scalars[0] if scalars else "n")
        return InputSpec(array_params=arrays, scalar_params=scalars, trip_count_param=trip)


#: Pointer-parameter names treated as index arrays: their contents must be
#: valid indices in ``[0, n)`` rather than arbitrary data (TSVC's indirect
#: addressing kernels crash otherwise, exactly as the real benchmark would).
INDEX_ARRAY_NAMES = frozenset({"indx", "index", "ip", "idx"})


def make_test_vector(
    spec: InputSpec,
    n: int,
    rng: random.Random,
    array_size: int | None = None,
    value_range: tuple[int, int] = (-64, 64),
) -> TestVector:
    """Build one random test vector with trip count ``n``.

    Arrays are sized ``array_size`` (default ``4 * n + 8`` so strided kernels
    such as ``a[i * inc]`` and ``a[i + 1]`` style accesses stay in bounds for
    the scalar program with the small random strides we generate).  Index
    arrays (see :data:`INDEX_ARRAY_NAMES`) are filled with valid indices.
    """
    size = array_size if array_size is not None else 4 * n + 8
    low, high = value_range
    arrays = {}
    for name in spec.array_params:
        if name in INDEX_ARRAY_NAMES:
            arrays[name] = [rng.randrange(0, max(1, n)) for _ in range(size)]
        else:
            arrays[name] = [rng.randint(low, high) for _ in range(size)]
    scalars: dict[str, int] = {}
    for name in spec.scalar_params:
        if name == spec.trip_count_param:
            scalars[name] = n
        elif name in spec.extra_scalars:
            scalars[name] = spec.extra_scalars[name]
        else:
            scalars[name] = rng.randint(1, 4)
    return TestVector(arrays=arrays, scalars=scalars)


def make_test_suite(
    spec: InputSpec,
    rng: random.Random,
    trip_counts: list[int] | None = None,
    value_range: tuple[int, int] = (-64, 64),
) -> list[TestVector]:
    """Build the default battery of test vectors used by the checksum tester.

    Trip counts are chosen to be multiples of the vector width (so candidates
    without an epilogue loop are not unfairly failed — the paper makes the
    same assumption for verification) plus one non-multiple to exercise
    epilogue handling when present.
    """
    if trip_counts is None:
        trip_counts = [16, 32, 64]
    return [make_test_vector(spec, n, rng, value_range=value_range) for n in trip_counts]
