"""Concrete execution substrate: memory model, interpreter and checksum testing."""

from repro.interp.memory import ArrayRegion, Memory, UBEvent
from repro.interp.interpreter import ExecutionResult, Interpreter, run_function
from repro.interp.checksum import ChecksumOutcome, ChecksumReport, checksum_testing

__all__ = [
    "ArrayRegion",
    "Memory",
    "UBEvent",
    "ExecutionResult",
    "Interpreter",
    "run_function",
    "ChecksumOutcome",
    "ChecksumReport",
    "checksum_testing",
]
