"""Memory model for the interpreter.

Arrays passed to a TSVC kernel live in distinct regions (the non-aliasing
assumption the paper establishes for verification, Section 3.1).  Each region
is a fixed-size buffer of integers at the kernel's lane element width
(32-bit by default) with a guard zone: reads inside the
declared extent return data, reads within the guard zone return *poison*
values and record a :class:`UBEvent`, and accesses beyond the guard raise
:class:`~repro.errors.UndefinedBehaviorError`.

The guard zone is what lets checksum-based testing *miss* the out-of-bounds
bug of the paper's s124 example while symbolic verification catches it: the
vector loop may read up to a vector width past the end of an array without
crashing, exactly as on real hardware with malloc slack.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from collections.abc import Iterable

from repro.errors import UndefinedBehaviorError
from repro.lanetypes import INT32, LaneType

#: Number of guard elements kept past the end of every array region.
DEFAULT_GUARD_ELEMS = 16


@dataclass(frozen=True)
class UBEvent:
    """A record of undefined behaviour observed during execution."""

    kind: str
    region: str
    index: int
    detail: str = ""

    def __str__(self) -> str:
        return f"UB[{self.kind}] {self.region}[{self.index}] {self.detail}".rstrip()


@dataclass
class ArrayRegion:
    """A single array region: declared extent plus a guard zone."""

    name: str
    size: int
    guard: int = DEFAULT_GUARD_ELEMS
    data: list[int] = field(default_factory=list)
    poison: list[bool] = field(default_factory=list)

    def __post_init__(self) -> None:
        total = self.size + self.guard
        if not self.data:
            self.data = [0] * total
        if len(self.data) < total:
            self.data = list(self.data) + [0] * (total - len(self.data))
        if not self.poison:
            # Guard elements hold poison: reading them is observable UB.
            self.poison = [False] * self.size + [True] * self.guard

    def in_bounds(self, index: int) -> bool:
        return 0 <= index < self.size

    def in_guard(self, index: int) -> bool:
        return self.size <= index < self.size + self.guard

    def snapshot(self) -> list[int]:
        """Return the declared (non-guard) contents."""
        return list(self.data[: self.size])


class Memory:
    """A collection of named array regions plus a UB event log."""

    def __init__(self, strict: bool = False, dtype: LaneType = INT32):
        self.regions: dict[str, ArrayRegion] = {}
        self.ub_events: list[UBEvent] = []
        #: In strict mode every UB event raises immediately (used by the
        #: verifier's concretization path); in permissive mode (checksum
        #: testing) guard-zone accesses proceed with poison values.
        self.strict = strict
        #: Lane element type every stored value wraps at.
        self.dtype = dtype
        self._wrap = dtype.wrap

    # -- region management ---------------------------------------------------

    def allocate(self, name: str, size: int, values: Iterable[int] | None = None,
                 guard: int = DEFAULT_GUARD_ELEMS) -> ArrayRegion:
        """Allocate a region named ``name`` with ``size`` declared elements."""
        data = [self._wrap(v) for v in values] if values is not None else None
        region = ArrayRegion(name=name, size=size, guard=guard, data=data or [])
        if values is not None:
            # Re-run post-init padding with the provided prefix.
            padded = [self._wrap(v) for v in values][:size]
            padded += [0] * (size + guard - len(padded))
            region.data = padded
        self.regions[name] = region
        return region

    def region(self, name: str) -> ArrayRegion:
        if name not in self.regions:
            raise UndefinedBehaviorError(f"access to unknown memory region {name!r}", "unknown-region")
        return self.regions[name]

    def has_region(self, name: str) -> bool:
        return name in self.regions

    # -- element access -------------------------------------------------------

    def _record(self, event: UBEvent) -> None:
        self.ub_events.append(event)
        if self.strict:
            raise UndefinedBehaviorError(str(event), event.kind)

    def load(self, name: str, index: int) -> tuple[int, bool]:
        """Load one element; returns ``(value, poison)``."""
        region = self.region(name)
        if region.in_bounds(index):
            return region.data[index], region.poison[index]
        if region.in_guard(index):
            self._record(UBEvent("oob-read", name, index, "read in guard zone"))
            return region.data[index], True
        if -region.guard <= index < 0:
            self._record(UBEvent("oob-read", name, index, "read before start"))
            return 0, True
        raise UndefinedBehaviorError(
            f"out-of-bounds read {name}[{index}] (size {region.size})", "oob-read-far"
        )

    def store(self, name: str, index: int, value: int, poison: bool = False) -> None:
        """Store one element, recording UB for guard-zone or poison stores."""
        region = self.region(name)
        if poison:
            self._record(UBEvent("poison-store", name, index, "stored a poison value"))
        if region.in_bounds(index):
            region.data[index] = self._wrap(value)
            region.poison[index] = poison
            return
        if region.in_guard(index):
            self._record(UBEvent("oob-write", name, index, "write in guard zone"))
            region.data[index] = self._wrap(value)
            region.poison[index] = True
            return
        if -region.guard <= index < 0:
            self._record(UBEvent("oob-write", name, index, "write before start"))
            return
        raise UndefinedBehaviorError(
            f"out-of-bounds write {name}[{index}] (size {region.size})", "oob-write-far"
        )

    def load_vector(self, name: str, index: int, lanes: int = 8) -> tuple[list[int], list[bool]]:
        values: list[int] = []
        poison: list[bool] = []
        for lane in range(lanes):
            value, is_poison = self.load(name, index + lane)
            values.append(value)
            poison.append(is_poison)
        return values, poison

    def store_vector(self, name: str, index: int, values: list[int], poison: list[bool]) -> None:
        for lane, (value, is_poison) in enumerate(zip(values, poison)):
            self.store(name, index + lane, value, is_poison)

    # -- observation ----------------------------------------------------------

    def snapshot(self) -> dict[str, list[int]]:
        """Declared contents of every region, for output comparison."""
        return {name: region.snapshot() for name, region in self.regions.items()}

    def checksum(self) -> int:
        """An order-sensitive checksum over every region's declared contents."""
        acc = 0
        wrap = self._wrap
        for name in sorted(self.regions):
            for value in self.regions[name].snapshot():
                acc = wrap(acc * 31 + value)
        return acc

    @property
    def has_ub(self) -> bool:
        return bool(self.ub_events)
