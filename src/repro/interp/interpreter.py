"""Tree-walking interpreter for the C subset, including SIMD intrinsics.

The interpreter executes both the scalar TSVC kernels and the vectorized
candidates.  It is the execution substrate behind checksum-based testing
(Section 2.1 of the paper) and behind the performance model (operation counts
collected during execution feed the cycle cost model in :mod:`repro.perf`).

Semantics notes:

* all integer arithmetic is two's-complement wraparound at the kernel's lane
  element width (:func:`repro.cfront.ast_nodes.kernel_dtype`; 32-bit by
  default) — the subset models one uniform element width per kernel, not
  C's int promotion rules;
* pointers are ``(region, offset)`` pairs — distinct arrays never alias,
  matching the non-aliasing assumption the paper establishes for parameters;
* out-of-bounds accesses inside the guard zone yield poison and are recorded
  as UB events rather than crashing (this is what lets checksum testing miss
  the s124-style bug that symbolic verification catches);
* ``goto`` is supported for forward jumps to labels declared in an enclosing
  statement sequence, which covers the TSVC control-flow kernels.
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass, field
from collections.abc import Mapping

from functools import lru_cache

from repro.cfront import ast_nodes as ast
from repro.errors import CompileError, InterpreterError, UndefinedBehaviorError
from repro.interp.memory import Memory, UBEvent
from repro.intrinsics.lanemath import lane_active
from repro.intrinsics.registry import (
    apply_pure_intrinsic,
    is_intrinsic,
    lookup_intrinsic,
)
from repro.intrinsics.values import PredValue, VecValue
from repro.lanetypes import INT32, LaneType
from repro.targets import vector_type_lanes_for


@dataclass(frozen=True)
class Pointer:
    """A pointer value: a named region plus an element offset."""

    region: str
    offset: int = 0

    def advanced(self, delta: int) -> "Pointer":
        return Pointer(self.region, self.offset + delta)


Value = int | Pointer | VecValue | PredValue


class _BreakSignal(Exception):
    pass


class _ContinueSignal(Exception):
    pass


class _ReturnSignal(Exception):
    def __init__(self, value: Value | None):
        self.value = value
        super().__init__("return")


class _GotoSignal(Exception):
    def __init__(self, label: str):
        self.label = label
        super().__init__(f"goto {label}")


@dataclass
class ExecutionResult:
    """Everything observable about one execution of a kernel."""

    memory: Memory
    return_value: Value | None
    op_counts: Counter = field(default_factory=Counter)
    steps: int = 0

    @property
    def ub_events(self) -> list[UBEvent]:
        return self.memory.ub_events

    @property
    def has_ub(self) -> bool:
        return self.memory.has_ub

    def outputs(self) -> dict[str, list[int]]:
        return self.memory.snapshot()

    def checksum(self) -> int:
        return self.memory.checksum()


class Interpreter:
    """Executes a single :class:`~repro.cfront.ast_nodes.FunctionDef`."""

    def __init__(self, func: ast.FunctionDef, memory: Memory, scalars: Mapping[str, int],
                 max_steps: int = 2_000_000):
        self.func = func
        self.memory = memory
        self.scope: dict[str, Value] = {}
        self.max_steps = max_steps
        self.steps = 0
        self.op_counts: Counter = Counter()
        #: The kernel's lane element type; every scalar wraps at its width.
        self.dtype: LaneType = ast.kernel_dtype(func)
        self._wrap = self.dtype.wrap
        self._binops = _scalar_binops_for(self.dtype)
        self._bind_parameters(scalars)

    # -- setup ----------------------------------------------------------------

    def _bind_parameters(self, scalars: Mapping[str, int]) -> None:
        for param in self.func.params:
            if param.param_type.is_pointer:
                if not self.memory.has_region(param.name):
                    raise CompileError(
                        f"no array provided for pointer parameter {param.name!r}"
                    )
                self.scope[param.name] = Pointer(param.name, 0)
            else:
                if param.name not in scalars:
                    raise CompileError(f"no value provided for scalar parameter {param.name!r}")
                self.scope[param.name] = self._wrap(int(scalars[param.name]))

    # -- bookkeeping ----------------------------------------------------------

    def _tick(self, category: str, amount: int = 1) -> None:
        self.steps += 1
        self.op_counts[category] += amount
        if self.steps > self.max_steps:
            raise InterpreterError(
                f"execution exceeded {self.max_steps} steps (possible infinite loop)"
            )

    # -- public entry ----------------------------------------------------------

    def run(self) -> ExecutionResult:
        return_value: Value | None = None
        try:
            self._exec_stmt(self.func.body)
        except _ReturnSignal as signal:
            return_value = signal.value
        except _GotoSignal as signal:
            raise InterpreterError(f"goto to unknown label {signal.label!r}") from signal
        return ExecutionResult(
            memory=self.memory,
            return_value=return_value,
            op_counts=self.op_counts,
            steps=self.steps,
        )

    # -- statements -------------------------------------------------------------

    def _exec_stmt(self, stmt: ast.Stmt) -> None:
        # Dispatch on the concrete node class: one dict probe instead of a
        # cascade of isinstance checks on the interpretation hot path.
        handler = _STMT_HANDLERS.get(stmt.__class__)
        if handler is None:
            raise InterpreterError(f"cannot execute statement {type(stmt).__name__}")
        handler(self, stmt)

    def _exec_block(self, stmt: ast.Block) -> None:
        self._exec_sequence(stmt.body)

    def _exec_expr_stmt(self, stmt: ast.ExprStmt) -> None:
        self._eval(stmt.expr)

    def _exec_if(self, stmt: ast.If) -> None:
        self._tick("branch")
        if self._truth(self._eval(stmt.cond)):
            self._exec_stmt(stmt.then)
        elif stmt.otherwise is not None:
            self._exec_stmt(stmt.otherwise)

    def _exec_return(self, stmt: ast.Return) -> None:
        value = self._eval(stmt.value) if stmt.value is not None else None
        raise _ReturnSignal(value)

    def _exec_break(self, stmt: ast.Break) -> None:
        raise _BreakSignal()

    def _exec_continue(self, stmt: ast.Continue) -> None:
        raise _ContinueSignal()

    def _exec_goto(self, stmt: ast.Goto) -> None:
        raise _GotoSignal(stmt.label)

    def _exec_label(self, stmt: ast.Label) -> None:
        self._exec_stmt(stmt.stmt)

    def _exec_sequence(self, stmts: list[ast.Stmt]) -> None:
        """Execute a statement list, resolving forward ``goto`` jumps locally."""
        index = 0
        while index < len(stmts):
            stmt = stmts[index]
            try:
                self._exec_stmt(stmt)
            except _GotoSignal as signal:
                target = self._find_label(stmts, signal.label)
                if target is None:
                    raise
                index = target
                continue
            index += 1

    @staticmethod
    def _find_label(stmts: list[ast.Stmt], label: str) -> int | None:
        for position, stmt in enumerate(stmts):
            if isinstance(stmt, ast.Label) and stmt.name == label:
                return position
        return None

    def _exec_decl(self, decl: ast.Decl) -> None:
        if decl.array_size is not None:
            size = self._as_int(self._eval(decl.array_size))
            if size < 0:
                raise UndefinedBehaviorError(f"negative array size for {decl.name!r}", "bad-alloc")
            self.memory.allocate(decl.name, size)
            self.scope[decl.name] = Pointer(decl.name, 0)
            self._tick("alloc")
            return
        if decl.init is not None:
            value = self._eval(decl.init)
        elif decl.var_type.is_vector:
            lanes = vector_type_lanes_for(decl.var_type.name, self.dtype)
            if not lanes:
                # Scalable vector types carry no width of their own; only an
                # initializer's intrinsic can supply one.
                raise CompileError(
                    f"declaration of scalable vector {decl.name!r} needs an "
                    f"initializer (the width travels with the intrinsics, "
                    f"not with {decl.var_type})"
                )
            value = VecValue.zero(lanes, dtype=self.dtype)
        elif decl.var_type.is_predicate:
            raise CompileError(
                f"declaration of predicate {decl.name!r} needs an initializer "
                f"(predicate widths travel with the intrinsics)"
            )
        elif decl.var_type.is_pointer:
            value = Pointer("__null__", 0)
        else:
            value = 0
        self.scope[decl.name] = self._coerce_for_type(value, decl.var_type)
        self._tick("decl")

    def _exec_for(self, loop: ast.ForLoop) -> None:
        if loop.init is not None:
            self._exec_stmt(loop.init)
        while True:
            if loop.cond is not None:
                self._tick("branch")
                if not self._truth(self._eval(loop.cond)):
                    break
            try:
                self._exec_stmt(loop.body)
            except _BreakSignal:
                break
            except _ContinueSignal:
                pass
            self.op_counts["loop_iteration"] += 1
            if loop.step is not None:
                self._eval(loop.step)

    def _exec_while(self, loop: ast.WhileLoop) -> None:
        while True:
            self._tick("branch")
            if not self._truth(self._eval(loop.cond)):
                break
            try:
                self._exec_stmt(loop.body)
            except _BreakSignal:
                break
            except _ContinueSignal:
                continue
            self.op_counts["loop_iteration"] += 1

    def _exec_do_while(self, loop: ast.DoWhileLoop) -> None:
        while True:
            try:
                self._exec_stmt(loop.body)
            except _BreakSignal:
                break
            except _ContinueSignal:
                pass
            self.op_counts["loop_iteration"] += 1
            self._tick("branch")
            if not self._truth(self._eval(loop.cond)):
                break

    # -- expressions --------------------------------------------------------------

    def _eval(self, expr: ast.Expr) -> Value:
        # Same single-probe dispatch as ``_exec_stmt``.
        handler = _EVAL_HANDLERS.get(expr.__class__)
        if handler is None:
            raise InterpreterError(f"cannot evaluate expression {type(expr).__name__}")
        return handler(self, expr)

    def _eval_literal(self, expr: ast.IntLiteral) -> int:
        return self._wrap(expr.value)

    def _eval_identifier(self, expr: ast.Identifier) -> Value:
        return self._load_identifier(expr.name)

    def _eval_ternary(self, expr: ast.TernaryOp) -> Value:
        self._tick("branch")
        if self._truth(self._eval(expr.cond)):
            return self._eval(expr.then)
        return self._eval(expr.otherwise)

    def _load_identifier(self, name: str) -> Value:
        if name not in self.scope:
            raise CompileError(f"use of undeclared identifier {name!r}")
        self._tick("scalar_read", 0)
        return self.scope[name]

    def _eval_array_load(self, expr: ast.ArrayRef) -> int:
        pointer, index = self._resolve_element(expr)
        value, poison = self.memory.load(pointer.region, pointer.offset + index)
        self._tick("scalar_load")
        if poison:
            # The concrete value is still produced (as on hardware); the UB
            # event has already been recorded by the memory model.
            return value
        return value

    def _resolve_element(self, expr: ast.ArrayRef) -> tuple[Pointer, int]:
        base = self._eval(expr.base)
        index = self._as_int(self._eval(expr.index))
        if not isinstance(base, Pointer):
            raise InterpreterError("array subscript applied to a non-pointer value")
        return base, index

    def _eval_binop(self, expr: ast.BinOp) -> Value:
        op = expr.op
        if op == "&&":
            self._tick("scalar_arith")
            return 1 if self._truth(self._eval(expr.left)) and self._truth(self._eval(expr.right)) else 0
        if op == "||":
            self._tick("scalar_arith")
            return 1 if self._truth(self._eval(expr.left)) or self._truth(self._eval(expr.right)) else 0
        left = self._eval(expr.left)
        right = self._eval(expr.right)
        # Pointer arithmetic: ptr + int, ptr - int, int + ptr.
        if isinstance(left, Pointer) or isinstance(right, Pointer):
            return self._pointer_arith(op, left, right)
        lhs, rhs = self._as_int(left), self._as_int(right)
        self._tick("scalar_mul" if op in ("*", "/", "%") else "scalar_arith")
        return self._scalar_binop(op, lhs, rhs)

    def _scalar_binop(self, op: str, lhs: int, rhs: int) -> int:
        fn = self._binops.get(op)
        if fn is not None:
            return fn(lhs, rhs)
        if op == "/":
            if rhs == 0:
                self.memory._record(UBEvent("div-by-zero", "<scalar>", 0, "division by zero"))
                return 0
            return self._wrap(int(lhs / rhs))  # C truncates toward zero
        if op == "%":
            if rhs == 0:
                self.memory._record(UBEvent("div-by-zero", "<scalar>", 0, "modulo by zero"))
                return 0
            return self._wrap(lhs - int(lhs / rhs) * rhs)
        raise InterpreterError(f"unsupported binary operator {op!r}")

    def _pointer_arith(self, op: str, left: Value, right: Value) -> Value:
        if isinstance(left, Pointer) and isinstance(right, Pointer):
            if op == "-" and left.region == right.region:
                return self._wrap(left.offset - right.offset)
            if op in ("==", "!="):
                same = left == right
                return (1 if same else 0) if op == "==" else (0 if same else 1)
            raise InterpreterError(f"unsupported pointer-pointer operation {op!r}")
        if isinstance(left, Pointer):
            delta = self._as_int(right)
            if op == "+":
                return left.advanced(delta)
            if op == "-":
                return left.advanced(-delta)
        if isinstance(right, Pointer) and op == "+":
            return right.advanced(self._as_int(left))
        raise InterpreterError(f"unsupported pointer arithmetic {op!r}")

    def _eval_unary(self, expr: ast.UnaryOp) -> Value:
        op = expr.op
        if op == "&":
            if isinstance(expr.operand, ast.ArrayRef):
                pointer, index = self._resolve_element(expr.operand)
                return pointer.advanced(index)
            if isinstance(expr.operand, ast.Identifier):
                value = self._load_identifier(expr.operand.name)
                if isinstance(value, Pointer):
                    return value
                raise InterpreterError("address-of scalar variables is not supported")
            raise InterpreterError("unsupported address-of operand")
        if op == "*":
            value = self._eval(expr.operand)
            if isinstance(value, Pointer):
                loaded, _poison = self.memory.load(value.region, value.offset)
                self._tick("scalar_load")
                return loaded
            raise InterpreterError("dereference of a non-pointer value")
        if op in ("++", "--"):
            delta = 1 if op == "++" else -1
            return self._apply_increment(expr.operand, delta, return_new=True)
        operand = self._eval(expr.operand)
        value = self._as_int(operand)
        self._tick("scalar_arith")
        if op == "-":
            return self._wrap(-value)
        if op == "+":
            return value
        if op == "!":
            return 0 if value else 1
        if op == "~":
            return self._wrap(~value)
        raise InterpreterError(f"unsupported unary operator {op!r}")

    def _eval_postfix(self, expr: ast.PostfixOp) -> int:
        delta = 1 if expr.op == "++" else -1
        return self._apply_increment(expr.operand, delta, return_new=False)

    def _apply_increment(self, target: ast.Expr, delta: int, return_new: bool) -> int:
        old = self._as_int(self._read_lvalue(target))
        new = self._wrap(old + delta)
        self._write_lvalue(target, new)
        self._tick("scalar_arith")
        return new if return_new else old

    def _eval_assign(self, expr: ast.Assign) -> Value:
        if expr.op == "=":
            value = self._eval(expr.value)
            self._write_lvalue(expr.target, value)
            return value
        # Compound assignment: target op= value.
        base_op = expr.op[:-1]
        current = self._read_lvalue(expr.target)
        rhs = self._eval(expr.value)
        if isinstance(current, Pointer):
            result: Value = self._pointer_arith(base_op, current, rhs)
        else:
            self._tick("scalar_mul" if base_op in ("*", "/", "%") else "scalar_arith")
            result = self._scalar_binop(base_op, self._as_int(current), self._as_int(rhs))
        self._write_lvalue(expr.target, result)
        return result

    def _read_lvalue(self, target: ast.Expr) -> Value:
        if isinstance(target, ast.Identifier):
            return self._load_identifier(target.name)
        if isinstance(target, ast.ArrayRef):
            return self._eval_array_load(target)
        if isinstance(target, ast.UnaryOp) and target.op == "*":
            return self._eval(target)
        raise InterpreterError(f"unsupported lvalue {type(target).__name__}")

    def _write_lvalue(self, target: ast.Expr, value: Value) -> None:
        if isinstance(target, ast.Identifier):
            if target.name not in self.scope:
                raise CompileError(f"assignment to undeclared identifier {target.name!r}")
            existing = self.scope[target.name]
            if isinstance(existing, (VecValue, PredValue)) or isinstance(
                value, (VecValue, PredValue)
            ):
                self.scope[target.name] = value
            elif isinstance(existing, Pointer) or isinstance(value, Pointer):
                self.scope[target.name] = value
            else:
                self.scope[target.name] = self._wrap(self._as_int(value))
            self._tick("scalar_write", 0)
            return
        if isinstance(target, ast.ArrayRef):
            pointer, index = self._resolve_element(target)
            self.memory.store(pointer.region, pointer.offset + index, self._as_int(value))
            self._tick("scalar_store")
            return
        if isinstance(target, ast.UnaryOp) and target.op == "*":
            pointer = self._eval(target.operand)
            if not isinstance(pointer, Pointer):
                raise InterpreterError("store through a non-pointer value")
            self.memory.store(pointer.region, pointer.offset, self._as_int(value))
            self._tick("scalar_store")
            return
        raise InterpreterError(f"unsupported assignment target {type(target).__name__}")

    def _eval_cast(self, expr: ast.Cast) -> Value:
        value = self._eval(expr.operand)
        return self._coerce_for_type(value, expr.target_type)

    def _coerce_for_type(self, value: Value, target_type) -> Value:
        if target_type.is_pointer:
            if isinstance(value, Pointer):
                return value
            if isinstance(value, int) and value == 0:
                return Pointer("__null__", 0)
            raise InterpreterError(f"cannot cast {type(value).__name__} to pointer type")
        if target_type.is_vector:
            if isinstance(value, VecValue):
                return value
            raise InterpreterError(f"cannot cast a scalar to {target_type}")
        if target_type.is_predicate:
            if isinstance(value, PredValue):
                return value
            raise InterpreterError(f"cannot cast a non-predicate to {target_type}")
        if isinstance(value, int):
            return self._wrap(value)
        if isinstance(value, Pointer):
            raise InterpreterError("cannot cast a pointer to int in this subset")
        raise InterpreterError(f"cannot coerce {type(value).__name__} to {target_type}")

    # -- intrinsic calls -----------------------------------------------------------

    def _eval_call(self, expr: ast.Call) -> Value:
        name = expr.func
        if name in ("abs", "labs"):
            value = self._as_int(self._eval(expr.args[0]))
            self._tick("scalar_arith")
            return self._wrap(abs(value))
        if name in ("min", "max"):
            lhs = self._as_int(self._eval(expr.args[0]))
            rhs = self._as_int(self._eval(expr.args[1]))
            self._tick("scalar_arith")
            return min(lhs, rhs) if name == "min" else max(lhs, rhs)
        if not is_intrinsic(name):
            raise CompileError(f"call to unknown function or intrinsic {name!r}")
        spec = lookup_intrinsic(name, self.dtype)
        if len(expr.args) != spec.arity and spec.kind not in ("setr", "set"):
            raise CompileError(
                f"intrinsic {name} expects {spec.arity} arguments, got {len(expr.args)}"
            )
        self.op_counts[f"vec_{spec.kind}"] += 1
        self.op_counts["vector_op"] += 1
        self._tick("vector_instr")
        if spec.kind == "load":
            pointer = self._pointer_argument(expr.args[0])
            values, poison = self.memory.load_vector(pointer.region, pointer.offset, spec.lanes)
            return VecValue.from_lanes(values, poison, dtype=spec.lane_type)
        if spec.kind == "maskload":
            pointer = self._pointer_argument(expr.args[0])
            mask = self._vector_argument(expr.args[1], spec.lanes)
            values: list[int] = []
            poison: list[bool] = []
            for lane in range(spec.lanes):
                if lane_active(mask.lanes[lane], spec.lane_type):
                    value, is_poison = self.memory.load(pointer.region, pointer.offset + lane)
                    values.append(value)
                    poison.append(is_poison)
                else:
                    values.append(0)
                    poison.append(False)
            return VecValue.from_lanes(values, poison, dtype=spec.lane_type)
        if spec.kind == "store":
            pointer = self._pointer_argument(expr.args[0])
            vector = self._vector_argument(expr.args[1], spec.lanes)
            self.memory.store_vector(pointer.region, pointer.offset, list(vector.lanes), list(vector.poison))
            return vector
        if spec.kind == "maskstore":
            pointer = self._pointer_argument(expr.args[0])
            mask = self._vector_argument(expr.args[1], spec.lanes)
            vector = self._vector_argument(expr.args[2], spec.lanes)
            for lane in range(spec.lanes):
                if lane_active(mask.lanes[lane], spec.lane_type):
                    self.memory.store(
                        pointer.region, pointer.offset + lane, vector.lanes[lane], vector.poison[lane]
                    )
            return vector
        if spec.kind == "pload":
            # Predicate-governed load: active lanes read memory (recording
            # OOB/poison like any load), inactive lanes come back zero and —
            # the property the predicated-loop legalization rests on — never
            # touch memory at all.  A poison predicate lane makes the loaded
            # lane unreliable rather than the access itself.
            pred = self._pred_argument(expr.args[0], spec.lanes)
            pointer = self._pointer_argument(expr.args[1])
            values, poison = [], []
            for lane in range(spec.lanes):
                if pred.lanes[lane]:
                    value, is_poison = self.memory.load(pointer.region, pointer.offset + lane)
                    values.append(value)
                    poison.append(is_poison or pred.poison[lane])
                else:
                    values.append(0)
                    poison.append(pred.poison[lane])
            return VecValue.from_lanes(values, poison, dtype=spec.lane_type)
        if spec.kind == "pstore":
            # Mirror image: active lanes store, inactive lanes leave memory
            # untouched; storing under a poison predicate lane stores poison
            # (the checker observes it as a poison-store UB event).
            pred = self._pred_argument(expr.args[0], spec.lanes)
            pointer = self._pointer_argument(expr.args[1])
            vector = self._vector_argument(expr.args[2], spec.lanes)
            for lane in range(spec.lanes):
                if pred.lanes[lane]:
                    self.memory.store(
                        pointer.region, pointer.offset + lane, vector.lanes[lane],
                        vector.poison[lane] or pred.poison[lane],
                    )
            return vector
        if spec.kind == "extract":
            vector = self._vector_argument(expr.args[0], spec.lanes)
            lane = self._as_int(self._eval(expr.args[1])) % spec.lanes
            return vector.lanes[lane]
        if spec.kind == "cast_low":
            # The cast reinterprets the low register half: truncate to half
            # the lanes so narrower downstream consumers see a width-correct
            # value (the historical AVX2 reduction-tail idiom).
            half = spec.lanes // 2
            vector = self._vector_argument(expr.args[0], spec.lanes)
            return VecValue(vector.lanes[:half], vector.poison[:half],
                            vector.dtype)
        args = [self._eval(arg) for arg in expr.args]
        return apply_pure_intrinsic(name, args, self.dtype)

    def _pointer_argument(self, expr: ast.Expr) -> Pointer:
        value = self._eval(expr)
        if not isinstance(value, Pointer):
            raise InterpreterError("intrinsic memory operand is not a pointer")
        return value

    def _vector_argument(self, expr: ast.Expr, lanes: int | None = None) -> VecValue:
        value = self._eval(expr)
        if not isinstance(value, VecValue):
            raise InterpreterError("intrinsic vector operand is not a vector value")
        if lanes is not None and value.width != lanes:
            raise InterpreterError(
                f"intrinsic vector operand has {value.width} lanes, expected {lanes}"
            )
        return value

    def _pred_argument(self, expr: ast.Expr, lanes: int | None = None) -> PredValue:
        value = self._eval(expr)
        if not isinstance(value, PredValue):
            raise InterpreterError("intrinsic predicate operand is not a predicate value")
        if lanes is not None and value.width != lanes:
            raise InterpreterError(
                f"intrinsic predicate operand has {value.width} lanes, expected {lanes}"
            )
        return value

    # -- helpers ---------------------------------------------------------------------

    def _truth(self, value: Value) -> bool:
        if isinstance(value, Pointer):
            return value.region != "__null__"
        return self._as_int(value) != 0

    @staticmethod
    def _as_int(value: Value) -> int:
        if isinstance(value, bool):
            return int(value)
        if isinstance(value, int):
            return value
        if isinstance(value, VecValue):
            raise InterpreterError("a vector value was used where a scalar was expected")
        if isinstance(value, PredValue):
            raise InterpreterError(
                "a predicate value was used where a scalar was expected "
                "(query it with a ptest intrinsic)"
            )
        if isinstance(value, Pointer):
            raise InterpreterError("a pointer value was used where a scalar was expected")
        raise InterpreterError(f"unexpected value of type {type(value).__name__}")


#: Pure scalar operators (no UB to record) as a per-dtype dispatch table;
#: ``/`` and ``%`` stay in ``_scalar_binop`` because a zero divisor records
#: a UB event.  Shift counts mask to the lane width like the vector shifts.
@lru_cache(maxsize=None)
def _scalar_binops_for(dtype: LaneType) -> dict:
    wrap = dtype.wrap
    shift_mask = dtype.bits - 1
    return {
        "+": lambda lhs, rhs: wrap(lhs + rhs),
        "-": lambda lhs, rhs: wrap(lhs - rhs),
        "*": lambda lhs, rhs: wrap(lhs * rhs),
        "<": lambda lhs, rhs: 1 if lhs < rhs else 0,
        ">": lambda lhs, rhs: 1 if lhs > rhs else 0,
        "<=": lambda lhs, rhs: 1 if lhs <= rhs else 0,
        ">=": lambda lhs, rhs: 1 if lhs >= rhs else 0,
        "==": lambda lhs, rhs: 1 if lhs == rhs else 0,
        "!=": lambda lhs, rhs: 1 if lhs != rhs else 0,
        "&": lambda lhs, rhs: wrap(lhs & rhs),
        "|": lambda lhs, rhs: wrap(lhs | rhs),
        "^": lambda lhs, rhs: wrap(lhs ^ rhs),
        "<<": lambda lhs, rhs: wrap(lhs << (rhs & shift_mask)),
        ">>": lambda lhs, rhs: wrap(lhs >> (rhs & shift_mask)),
    }


_SCALAR_BINOPS = _scalar_binops_for(INT32)

#: Concrete-class dispatch tables for the interpretation hot path, built once
#: at import.  ``stmt.__class__`` keys make each dispatch a single dict probe.
_STMT_HANDLERS = {
    ast.Block: Interpreter._exec_block,
    ast.Decl: Interpreter._exec_decl,
    ast.ExprStmt: Interpreter._exec_expr_stmt,
    ast.If: Interpreter._exec_if,
    ast.ForLoop: Interpreter._exec_for,
    ast.WhileLoop: Interpreter._exec_while,
    ast.DoWhileLoop: Interpreter._exec_do_while,
    ast.Return: Interpreter._exec_return,
    ast.Break: Interpreter._exec_break,
    ast.Continue: Interpreter._exec_continue,
    ast.Goto: Interpreter._exec_goto,
    ast.Label: Interpreter._exec_label,
}

_EVAL_HANDLERS = {
    ast.IntLiteral: Interpreter._eval_literal,
    ast.Identifier: Interpreter._eval_identifier,
    ast.ArrayRef: Interpreter._eval_array_load,
    ast.BinOp: Interpreter._eval_binop,
    ast.UnaryOp: Interpreter._eval_unary,
    ast.PostfixOp: Interpreter._eval_postfix,
    ast.TernaryOp: Interpreter._eval_ternary,
    ast.Assign: Interpreter._eval_assign,
    ast.Cast: Interpreter._eval_cast,
    ast.Call: Interpreter._eval_call,
}


def run_function(
    func: ast.FunctionDef,
    arrays: Mapping[str, list[int]],
    scalars: Mapping[str, int],
    guard: int = 16,
    max_steps: int = 2_000_000,
) -> ExecutionResult:
    """Execute ``func`` with the given array contents and scalar arguments.

    ``arrays`` maps pointer-parameter names to initial contents; each becomes
    an isolated memory region (plus guard zone).  ``scalars`` maps value
    parameters such as ``n``.
    """
    from repro.perf.profile import stage

    with stage("interp"):
        memory = Memory(dtype=ast.kernel_dtype(func))
        for name, values in arrays.items():
            memory.allocate(name, len(values), values, guard=guard)
        interpreter = Interpreter(func, memory, scalars, max_steps=max_steps)
        return interpreter.run()
