"""Equivalence checking of bitvector terms.

The checker discharges "is term S equal to term T for all inputs?" queries in
three stages (cheapest first):

1. **Algebraic normalization** — wraparound add/sub/mul form a commutative
   ring, so both terms are rewritten into a canonical polynomial form (atoms
   such as comparisons or selects become opaque variables whose arguments are
   normalized recursively).  Structural equality of the normal forms is a
   sound proof of equivalence at full width.
2. **Randomized refutation** — concrete evaluation at 32 bits over a battery
   of random and boundary assignments; any difference is a genuine
   counterexample.
3. **Bit-blasting + CDCL SAT at reduced width** — an UNSAT answer proves
   equivalence *modulo bitwidth reduction* (the documented soundness trade of
   this reproduction); a SAT answer is re-checked at 32 bits before being
   reported as a refutation; budget exhaustion is Inconclusive, mirroring
   Alive2/Z3 timeouts in the paper.
"""

from __future__ import annotations

import contextlib
import enum
import random
from dataclasses import dataclass

from repro.smt.bitblast import BitBlaster, UnsupportedTerm
from repro.smt.sat import CDCLSolver, SATResult, SATStatistics
from repro.smt.terms import (
    Term,
    TermKind,
    WORD_BITS,
    active_bits,
    bv_const,
    bv_var,
    collect_variables,
    evaluate,
    mk,
    modeled_bits,
    term_size,
    to_unsigned,
)

_RING_OPS = {TermKind.ADD, TermKind.SUB, TermKind.MUL, TermKind.NEG}


def _modulus() -> int:
    """Ring modulus at the active modeled width (2**bits)."""
    return 1 << active_bits()

#: Polynomial expansion is worst-case exponential (a product of n sums has
#: 2^n monomials); past this many monomials normalization abandons the ring
#: expansion and falls back to a structural form.  The fallback only means a
#: cheap equality proof is not attempted — the concrete and SAT stages still
#: decide the query.
_MAX_MONOMIALS = 4096


class _PolynomialBlowup(Exception):
    """Raised when ring expansion would exceed the monomial cap."""


class EquivalenceOutcome(enum.Enum):
    EQUIVALENT = "equivalent"
    NOT_EQUIVALENT = "not_equivalent"
    INCONCLUSIVE = "inconclusive"


@dataclass
class SolverBudget:
    """Resource limits; exhausting any of them yields Inconclusive."""

    max_term_nodes: int = 6000
    random_samples: int = 48
    sat_bitwidth: int = 6
    sat_conflict_budget: int = 30_000
    sat_propagation_budget: int = 1_500_000


@dataclass
class EquivalenceResult:
    outcome: EquivalenceOutcome
    method: str = ""
    counterexample: dict[str, int] | None = None
    detail: str = ""
    #: Statistics of the SAT stage that produced this result — None when the
    #: query was decided before bit-blasting.  A solve-cache hit carries the
    #: statistics recorded when the batch was first solved.
    sat_stats: SATStatistics | None = None


# ---------------------------------------------------------------------------
# stage 1: algebraic normalization
# ---------------------------------------------------------------------------


def _polynomial(term: Term, atoms: dict[Term, str],
                memo: dict[Term, dict] | None = None) -> dict[tuple[str, ...], int]:
    """Multivariate polynomial (monomial -> coefficient mod 2^32) of ``term``.

    Non-ring sub-terms become atom variables; their *normalized* form is used
    as the atom key so equal-modulo-arithmetic atoms coincide.  ``memo``
    (per top-level expansion) keeps shared DAG nodes from being re-expanded
    once per path — unrolled kernels share almost every subterm.  Returned
    dicts may be shared through the memo, so callers must not mutate them.
    """
    if memo is None:
        memo = {}
    cached = memo.get(term)
    if cached is not None:
        return cached
    kind = term.kind
    if kind is TermKind.CONST:
        result = {(): term.value % _modulus()} if term.value % _modulus() else {}
    elif kind is TermKind.VAR:
        result = {(term.name,): 1}
    elif kind is TermKind.ADD:
        result = _poly_add(_polynomial(term.args[0], atoms, memo),
                           _polynomial(term.args[1], atoms, memo), 1)
    elif kind is TermKind.SUB:
        result = _poly_add(_polynomial(term.args[0], atoms, memo),
                           _polynomial(term.args[1], atoms, memo), -1)
    elif kind is TermKind.NEG:
        result = _poly_scale(_polynomial(term.args[0], atoms, memo), -1)
    elif kind is TermKind.MUL:
        result = _poly_mul(_polynomial(term.args[0], atoms, memo),
                           _polynomial(term.args[1], atoms, memo))
    else:
        # Non-ring operation: normalize it recursively, treat it as an atom.
        normalized = normalize_term(term)
        if normalized.kind in _RING_OPS or normalized.kind in (TermKind.CONST, TermKind.VAR):
            result = _polynomial(normalized, atoms, memo)
        else:
            name = atoms.setdefault(normalized, f"__atom{len(atoms)}")
            result = {(name,): 1}
    memo[term] = result
    return result


def _poly_add(left: dict, right: dict, sign: int) -> dict:
    modulus = _modulus()
    result = dict(left)
    for monomial, coefficient in right.items():
        result[monomial] = (result.get(monomial, 0) + sign * coefficient) % modulus
        if result[monomial] == 0:
            del result[monomial]
    return result


def _poly_scale(poly: dict, factor: int) -> dict:
    modulus = _modulus()
    result = {}
    for monomial, coefficient in poly.items():
        scaled = (coefficient * factor) % modulus
        if scaled:
            result[monomial] = scaled
    return result


def _poly_mul(left: dict, right: dict) -> dict:
    if len(left) * len(right) > _MAX_MONOMIALS:
        raise _PolynomialBlowup()
    modulus = _modulus()
    result: dict[tuple[str, ...], int] = {}
    for mono_l, coeff_l in left.items():
        for mono_r, coeff_r in right.items():
            monomial = tuple(sorted(mono_l + mono_r))
            coefficient = (result.get(monomial, 0) + coeff_l * coeff_r) % modulus
            if coefficient:
                result[monomial] = coefficient
            elif monomial in result:
                del result[monomial]
    return result


def _poly_to_term(poly: dict, atom_terms: dict[str, Term]) -> Term:
    if not poly:
        return bv_const(0)
    terms: list[Term] = []
    for monomial in sorted(poly):
        coefficient = poly[monomial]
        factors: list[Term] = []
        for name in monomial:
            factors.append(atom_terms.get(name, bv_var(name)))
        product: Term = bv_const(coefficient)
        if factors:
            product = factors[0]
            for factor in factors[1:]:
                product = Term(TermKind.MUL, (product, factor))
            if coefficient != 1:
                product = Term(TermKind.MUL, (bv_const(coefficient), product))
        terms.append(product)
    result = terms[0]
    for term in terms[1:]:
        result = Term(TermKind.ADD, (result, term))
    return result


#: Associative-commutative operators flattened and sorted during normalization.
_AC_OPS = {TermKind.MAX, TermKind.MIN, TermKind.AND, TermKind.OR, TermKind.XOR}


def _flatten_ac(term: Term, kind: TermKind, out: list[Term]) -> None:
    if term.kind is kind:
        for arg in term.args:
            _flatten_ac(arg, kind, out)
    else:
        out.append(term)


def normalize_term(term: Term) -> Term:
    """Canonical form: polynomial normal form with recursively-normalized atoms.

    Memoized at every node, not just the root: the unrolled lane terms of one
    kernel share almost all of their subterms, and without subterm
    memoization the recursion re-normalizes each shared node once per path —
    which used to dominate the whole solve stage.

    Besides the ring normalization, two more canonicalizations are applied so
    that scalar and vectorized programs converge to the same shape:

    * associative-commutative chains (min/max/and/or/xor) are flattened and
      their operands sorted, so a left-deep scalar reduction matches a
      lane-then-combine vector reduction;
    * ``ite(c, t, e)`` is rewritten into the additive form ``e + ite(c, t-e, 0)``,
      so a conditionally-accumulated scalar (``ite(c, s+x, s)``) matches the
      masked vector accumulation (``s + ite(c, x, 0)``).
    """
    key = (active_bits(), term)
    cached = _NORMALIZE_CACHE.get(key)
    if cached is None:
        cached = _normalize_node(term)
        if len(_NORMALIZE_CACHE) > _NORMALIZE_CACHE_CAP:
            _NORMALIZE_CACHE.clear()
        _NORMALIZE_CACHE[key] = cached
    return cached


def _normalize_node(term: Term) -> Term:
    if term.kind in (TermKind.CONST, TermKind.VAR, TermKind.POISON):
        return term
    if term.kind in _RING_OPS:
        atoms: dict[Term, str] = {}
        try:
            poly = _polynomial(term, atoms)
        except _PolynomialBlowup:
            # Too large to expand: canonicalize the operands only.
            return mk(term.kind, *(normalize_term(a) for a in term.args))
        atom_terms = {name: atom for atom, name in atoms.items()}
        return _poly_to_term(poly, atom_terms)
    if term.kind in _AC_OPS:
        operands: list[Term] = []
        _flatten_ac(term, term.kind, operands)
        normalized = sorted((normalize_term(o) for o in operands), key=_ordering_key)
        if term.kind is not TermKind.XOR:
            # min/max/and/or are idempotent: duplicate operands collapse.
            deduped: list[Term] = []
            for operand in normalized:
                if not deduped or deduped[-1] != operand:
                    deduped.append(operand)
            normalized = deduped
        result = normalized[0]
        for operand in normalized[1:]:
            result = Term(term.kind, (result, operand))
        return result
    if term.kind is TermKind.ITE:
        cond = normalize_term(term.args[0])
        then = normalize_term(term.args[1])
        otherwise = normalize_term(term.args[2])
        if then == otherwise:
            return then
        difference = normalize_term(Term(TermKind.SUB, (then, otherwise)))
        selected = mk(TermKind.ITE, cond, difference, bv_const(0))
        if otherwise == bv_const(0):
            return selected
        return normalize_term(Term(TermKind.ADD, (otherwise, selected)))
    normalized_args = tuple(normalize_term(a) for a in term.args)
    return mk(term.kind, *normalized_args)


_ORDERING_KEY_CACHE: dict[Term, tuple] = {}


def _ordering_key(term: Term) -> tuple:
    # A structural tuple, not a repr string: nesting repr re-escapes the
    # quotes of inner keys, which makes key size exponential in term depth.
    # Tuples share the child keys by reference and compare lazily.
    key = _ORDERING_KEY_CACHE.get(term)
    if key is None:
        key = (
            term.kind.value,
            term.value if term.value is not None else 0,
            term.name or "",
            tuple(_ordering_key(a) for a in term.args),
        )
        if len(_ORDERING_KEY_CACHE) > _NORMALIZE_CACHE_CAP:
            _ORDERING_KEY_CACHE.clear()
        _ORDERING_KEY_CACHE[term] = key
    return key


_NORMALIZE_CACHE: dict[tuple[int, Term], Term] = {}
_NORMALIZE_CACHE_CAP = 200_000


def cached_normalize(term: Term) -> Term:
    """Alias of :func:`normalize_term`, which is memoized at every node."""
    return normalize_term(term)


def terms_structurally_equal(left: Term, right: Term) -> bool:
    """Equality after canonical normalization (a sound full-width proof)."""
    if left == right:
        return True
    return cached_normalize(left) == cached_normalize(right)


# ---------------------------------------------------------------------------
# stage 2: randomized refutation; stage 3: bit-blasting
# ---------------------------------------------------------------------------


def _boundary_values(bits: int) -> list[int]:
    """Boundary probe values at one modeled width (INT_MAX/INT_MIN/-1/-2)."""
    top = 1 << bits
    return [0, 1, 2, 7, 8, top // 2 - 1, top // 2, top - 1, top - 2]


_BOUNDARY_VALUES = _boundary_values(WORD_BITS)


def _alpha_canonical_pair(source: Term, target: Term) -> tuple[Term, Term, dict[str, str]]:
    """Rename the pair's variables to first-occurrence order (``v0``, ``v1``...).

    Two pairs that differ only in variable names — the lane/unroll copies of
    one kernel, ``b_0*b_0+a_0`` vs ``b_7*b_7+a_7`` — map to the same
    canonical pair, so one SAT verdict transfers to all of them.  Returns
    the renamed terms plus the original→canonical variable map (used to
    translate SAT models back).  Node-memoized so shared DAG subterms are
    renamed once per pair, not once per path.
    """
    var_map: dict[str, str] = {}
    node_memo: dict[int, Term] = {}

    def rename(term: Term) -> Term:
        done = node_memo.get(id(term))
        if done is not None:
            return done
        if term.kind is TermKind.VAR:
            canon = var_map.get(term.name)
            if canon is None:
                canon = f"v{len(var_map)}"
                var_map[term.name] = canon
            renamed = bv_var(canon)
        elif not term.args:
            renamed = term
        else:
            renamed = Term(term.kind, tuple(rename(a) for a in term.args))
        node_memo[id(term)] = renamed
        return renamed

    return rename(source), rename(target), var_map


class EquivalenceChecker:
    """Checks pairs of terms for equivalence under a resource budget."""

    def __init__(self, budget: SolverBudget | None = None, seed: int = 7,
                 model_bits: int = WORD_BITS):
        self.budget = budget or SolverBudget()
        self.seed = seed
        #: The modeled lane element width: normalization, concrete sampling
        #: and full-width confirmation all run at this width (the SAT stage
        #: still blasts at the reduced ``sat_bitwidth``).
        self.model_bits = model_bits
        self._boundaries = _boundary_values(model_bits)

    # -- public ------------------------------------------------------------------

    def check_pair(self, source: Term, target: Term) -> EquivalenceResult:
        """Is ``source == target`` for all variable assignments?"""
        from repro.perf.profile import stage

        with stage("solve"), modeled_bits(self.model_bits):
            return self._check_pair(source, target)

    def _check_pair(self, source: Term, target: Term) -> EquivalenceResult:
        if terms_structurally_equal(source, target):
            return EquivalenceResult(EquivalenceOutcome.EQUIVALENT, method="normalization")

        counterexample = self._random_refute(source, target)
        if counterexample is not None:
            return EquivalenceResult(
                EquivalenceOutcome.NOT_EQUIVALENT, method="concrete", counterexample=counterexample
            )

        total_nodes = term_size(source) + term_size(target)
        if total_nodes > self.budget.max_term_nodes:
            return EquivalenceResult(
                EquivalenceOutcome.INCONCLUSIVE,
                method="budget",
                detail=f"term too large for the SAT stage ({total_nodes} nodes)",
            )
        return self._sat_check(source, target)

    def check_pairs(self, pairs: list[tuple[Term, Term]]) -> EquivalenceResult:
        """All pairs must be equivalent; the first refutation / inconclusive wins.

        Pairs are first filtered through normalization (cheap proofs), then a
        single batched random-refutation pass runs over the survivors before
        any of them is handed to the SAT stage.
        """
        from repro.perf.profile import stage

        with stage("solve"), modeled_bits(self.model_bits):
            return self._check_pairs(pairs)

    def _check_pairs(self, pairs: list[tuple[Term, Term]]) -> EquivalenceResult:
        unproven: list[tuple[Term, Term]] = []
        for source, target in pairs:
            if not terms_structurally_equal(source, target):
                unproven.append((source, target))
        if not unproven:
            return EquivalenceResult(EquivalenceOutcome.EQUIVALENT, method="all-pairs")

        counterexample = self._batched_random_refute(unproven)
        if counterexample is not None:
            return EquivalenceResult(
                EquivalenceOutcome.NOT_EQUIVALENT, method="concrete", counterexample=counterexample
            )

        oversized: EquivalenceResult | None = None
        sat_pairs: list[tuple[Term, Term]] = []
        for source, target in sorted(unproven, key=lambda p: term_size(p[0]) + term_size(p[1])):
            total_nodes = term_size(source) + term_size(target)
            if total_nodes > self.budget.max_term_nodes:
                oversized = EquivalenceResult(
                    EquivalenceOutcome.INCONCLUSIVE, method="budget",
                    detail=f"term too large for the SAT stage ({total_nodes} nodes)",
                )
            else:
                sat_pairs.append((source, target))
        batch: EquivalenceResult | None = None
        if sat_pairs:
            batch = self._sat_check_batch(sat_pairs)
            if batch.outcome is EquivalenceOutcome.NOT_EQUIVALENT:
                return batch
        if oversized is not None:
            if batch is not None:
                oversized.sat_stats = batch.sat_stats
            return oversized
        if batch is not None and batch.outcome is EquivalenceOutcome.INCONCLUSIVE:
            return batch
        return EquivalenceResult(EquivalenceOutcome.EQUIVALENT, method="all-pairs",
                                 sat_stats=batch.sat_stats if batch else None)

    def _batched_random_refute(self, pairs: list[tuple[Term, Term]]) -> dict[str, int] | None:
        variables: set[str] = set()
        for source, target in pairs:
            variables |= collect_variables(source) | collect_variables(target)
        ordered = sorted(variables)
        rng = random.Random(self.seed)
        bits = self.model_bits
        for sample in range(self.budget.random_samples):
            assignment: dict[str, int] = {}
            for name in ordered:
                if sample < len(self._boundaries):
                    assignment[name] = to_unsigned(
                        self._boundaries[sample] + rng.randint(-2, 2), bits)
                elif sample % 3 == 0:
                    assignment[name] = to_unsigned(rng.randint(-10, 10), bits)
                else:
                    assignment[name] = rng.getrandbits(bits)
            for source, target in pairs:
                if evaluate(source, assignment, bits) != evaluate(target, assignment, bits):
                    return assignment
        return None

    # -- internals ------------------------------------------------------------------

    def _random_refute(self, source: Term, target: Term) -> dict[str, int] | None:
        variables = sorted(collect_variables(source) | collect_variables(target))
        rng = random.Random(self.seed)
        bits = self.model_bits
        for sample in range(self.budget.random_samples):
            assignment: dict[str, int] = {}
            for name in variables:
                if sample < len(self._boundaries):
                    base = self._boundaries[sample]
                    assignment[name] = to_unsigned(base + rng.randint(-2, 2), bits)
                elif sample % 3 == 0:
                    assignment[name] = to_unsigned(rng.randint(-10, 10), bits)
                else:
                    assignment[name] = rng.getrandbits(bits)
            if evaluate(source, assignment, bits) != evaluate(target, assignment, bits):
                return assignment
        return None

    def _sat_check(self, source: Term, target: Term) -> EquivalenceResult:
        return self._sat_check_batch([(source, target)])

    def _sat_check_batch(self, pairs: list[tuple[Term, Term]]) -> EquivalenceResult:
        """Solve every pair in one incremental solver; aggregate the verdicts.

        Each pair's difference clause is guarded by a fresh selector literal
        and solved under that assumption, so the bit-blasted gate structure
        and learned clauses are shared across the near-identical lane/unroll
        copies instead of rebuilt per pair; retiring the selector keeps
        earlier queries from constraining later ones.  Per-pair budgets are
        unchanged: every ``solve`` call gets the full conflict/propagation
        allowance as a fresh delta.

        The aggregated result is cached content-addressed on the ordered
        pair digests plus solver parameters (:mod:`repro.smt.solvecache`) —
        everything the computation depends on, so a hit is bit-identical to
        a fresh solve under any campaign scheduling.

        Within one batch, pairs that are alpha-equivalent — identical up to
        variable renaming, which is what the lane/unroll copies of one
        kernel are (``..._0`` vs ``..._15``) — are solved once: the verdict
        of the canonical representative transfers to every copy, with SAT
        models renamed back through each copy's own variable map before the
        full-width confirmation.
        """
        from repro.smt import solvecache

        budget = self.budget
        key = solvecache.query_key(pairs, budget.sat_bitwidth,
                                   budget.sat_conflict_budget,
                                   budget.sat_propagation_budget,
                                   model_bits=self.model_bits)
        record = solvecache.lookup(key)
        if record is not None:
            return self._result_from_record(record)

        solver = CDCLSolver(
            propagation_budget=budget.sat_propagation_budget,
            conflict_budget=budget.sat_conflict_budget,
        )
        blaster = BitBlaster(solver, bits=budget.sat_bitwidth)
        alpha_memo: dict[tuple[Term, Term], tuple[SATResult, dict[str, int] | None]] = {}
        worst: EquivalenceResult | None = None
        refutation: EquivalenceResult | None = None
        for source, target in pairs:
            try:
                canon_source, canon_target, var_map = _alpha_canonical_pair(source, target)
                memo_key = (canon_source, canon_target)
                cached = alpha_memo.get(memo_key)
                if cached is not None:
                    result, canon_assignment = cached
                    assignment = None
                    if canon_assignment is not None:
                        assignment = {name: canon_assignment[canon]
                                      for name, canon in var_map.items()
                                      if canon in canon_assignment}
                else:
                    left_bits = blaster.blast(source)
                    right_bits = blaster.blast(target)
                    difference = [blaster._xor_gate(a, b)
                                  for a, b in zip(left_bits, right_bits)]
                    selector = solver.new_var()
                    solver.add_clause([-selector] + difference)
                    result, model = solver.solve([selector])
                    solver.add_clause([-selector])  # retire this query's guard
                    assignment = None
                    if result is SATResult.SAT:
                        # SAT at reduced width: extract an assignment for the
                        # full-width confirmation below.
                        assignment = self._model_to_assignment(blaster, model)
                    canon_assignment = None
                    if assignment is not None:
                        canon_assignment = {canon: assignment[name]
                                            for name, canon in var_map.items()
                                            if name in assignment}
                    alpha_memo[memo_key] = (result, canon_assignment)
            except (UnsupportedTerm, RecursionError) as exc:
                if worst is None:
                    worst = EquivalenceResult(
                        EquivalenceOutcome.INCONCLUSIVE, method="bitblast", detail=str(exc)
                    )
                continue
            if result is SATResult.UNSAT:
                continue
            if result is SATResult.UNKNOWN:
                if worst is None:
                    worst = EquivalenceResult(
                        EquivalenceOutcome.INCONCLUSIVE, method="sat-budget",
                        detail="solver budget exhausted",
                    )
                continue
            with contextlib.suppress(KeyError):
                if assignment is not None and \
                        evaluate(source, assignment, self.model_bits) != \
                        evaluate(target, assignment, self.model_bits):
                    refutation = EquivalenceResult(
                        EquivalenceOutcome.NOT_EQUIVALENT, method="sat-model",
                        counterexample=assignment,
                    )
                    break
            if worst is None:
                worst = EquivalenceResult(
                    EquivalenceOutcome.INCONCLUSIVE,
                    method="sat-width-artifact",
                    detail="reduced-width counterexample did not reproduce at full width",
                )
        final = refutation or worst or EquivalenceResult(
            EquivalenceOutcome.EQUIVALENT,
            method=f"sat-unsat@{budget.sat_bitwidth}bit",
            detail="equivalent modulo bitwidth reduction",
        )
        final.sat_stats = solver.stats
        solvecache.stats.add_solver(solver.stats)
        solvecache.store(key, self._record_from_result(final))
        return final

    @staticmethod
    def _record_from_result(result: EquivalenceResult) -> dict:
        return {
            "outcome": result.outcome.value,
            "method": result.method,
            "counterexample": result.counterexample,
            "detail": result.detail,
            "stats": result.sat_stats.as_dict() if result.sat_stats else None,
        }

    @staticmethod
    def _result_from_record(record: dict) -> EquivalenceResult:
        stats = record.get("stats")
        return EquivalenceResult(
            EquivalenceOutcome(record["outcome"]),
            method=record.get("method", ""),
            counterexample=record.get("counterexample"),
            detail=record.get("detail", ""),
            sat_stats=SATStatistics(**stats) if stats else None,
        )

    def _model_to_assignment(self, blaster: BitBlaster, model: dict[int, bool]) -> dict[str, int]:
        assignment: dict[str, int] = {}
        for name, bits in blaster._var_bits.items():
            value = 0
            for position, literal in enumerate(bits):
                if model.get(abs(literal), False) == (literal > 0):
                    value |= 1 << position
            # Sign-extend the reduced-width value into the modeled width so
            # boundary behaviour (negative numbers) is preserved.
            if value & (1 << (blaster.bits - 1)):
                value |= ((1 << (self.model_bits - blaster.bits)) - 1) << blaster.bits
            assignment[name] = value
        return assignment
