"""Equivalence checking of bitvector terms.

The checker discharges "is term S equal to term T for all inputs?" queries in
three stages (cheapest first):

1. **Algebraic normalization** — wraparound add/sub/mul form a commutative
   ring, so both terms are rewritten into a canonical polynomial form (atoms
   such as comparisons or selects become opaque variables whose arguments are
   normalized recursively).  Structural equality of the normal forms is a
   sound proof of equivalence at full width.
2. **Randomized refutation** — concrete evaluation at 32 bits over a battery
   of random and boundary assignments; any difference is a genuine
   counterexample.
3. **Bit-blasting + CDCL SAT at reduced width** — an UNSAT answer proves
   equivalence *modulo bitwidth reduction* (the documented soundness trade of
   this reproduction); a SAT answer is re-checked at 32 bits before being
   reported as a refutation; budget exhaustion is Inconclusive, mirroring
   Alive2/Z3 timeouts in the paper.
"""

from __future__ import annotations

import enum
import random
from dataclasses import dataclass
from typing import Optional

from repro.smt.bitblast import BitBlaster, UnsupportedTerm, assert_words_differ
from repro.smt.sat import CDCLSolver, SATResult
from repro.smt.terms import (
    Term,
    TermKind,
    WORD_BITS,
    bv_const,
    bv_var,
    collect_variables,
    evaluate,
    mk,
    term_size,
    to_unsigned,
)

_RING_OPS = {TermKind.ADD, TermKind.SUB, TermKind.MUL, TermKind.NEG}
_MODULUS = 1 << WORD_BITS

#: Polynomial expansion is worst-case exponential (a product of n sums has
#: 2^n monomials); past this many monomials normalization abandons the ring
#: expansion and falls back to a structural form.  The fallback only means a
#: cheap equality proof is not attempted — the concrete and SAT stages still
#: decide the query.
_MAX_MONOMIALS = 4096


class _PolynomialBlowup(Exception):
    """Raised when ring expansion would exceed the monomial cap."""


class EquivalenceOutcome(enum.Enum):
    EQUIVALENT = "equivalent"
    NOT_EQUIVALENT = "not_equivalent"
    INCONCLUSIVE = "inconclusive"


@dataclass
class SolverBudget:
    """Resource limits; exhausting any of them yields Inconclusive."""

    max_term_nodes: int = 6000
    random_samples: int = 48
    sat_bitwidth: int = 6
    sat_conflict_budget: int = 30_000
    sat_propagation_budget: int = 1_500_000


@dataclass
class EquivalenceResult:
    outcome: EquivalenceOutcome
    method: str = ""
    counterexample: Optional[dict[str, int]] = None
    detail: str = ""


# ---------------------------------------------------------------------------
# stage 1: algebraic normalization
# ---------------------------------------------------------------------------


def _polynomial(term: Term, atoms: dict[Term, str]) -> dict[tuple[str, ...], int]:
    """Multivariate polynomial (monomial -> coefficient mod 2^32) of ``term``.

    Non-ring sub-terms become atom variables; their *normalized* form is used
    as the atom key so equal-modulo-arithmetic atoms coincide.
    """
    kind = term.kind
    if kind is TermKind.CONST:
        return {(): term.value % _MODULUS} if term.value % _MODULUS else {}
    if kind is TermKind.VAR:
        return {(term.name,): 1}
    if kind is TermKind.ADD:
        return _poly_add(_polynomial(term.args[0], atoms), _polynomial(term.args[1], atoms), 1)
    if kind is TermKind.SUB:
        return _poly_add(_polynomial(term.args[0], atoms), _polynomial(term.args[1], atoms), -1)
    if kind is TermKind.NEG:
        return _poly_scale(_polynomial(term.args[0], atoms), -1)
    if kind is TermKind.MUL:
        return _poly_mul(_polynomial(term.args[0], atoms), _polynomial(term.args[1], atoms))
    # Non-ring operation: normalize it recursively and treat it as an atom.
    normalized = normalize_term(term)
    if normalized.kind in _RING_OPS or normalized.kind in (TermKind.CONST, TermKind.VAR):
        return _polynomial(normalized, atoms)
    name = atoms.setdefault(normalized, f"__atom{len(atoms)}")
    return {(name,): 1}


def _poly_add(left: dict, right: dict, sign: int) -> dict:
    result = dict(left)
    for monomial, coefficient in right.items():
        result[monomial] = (result.get(monomial, 0) + sign * coefficient) % _MODULUS
        if result[monomial] == 0:
            del result[monomial]
    return result


def _poly_scale(poly: dict, factor: int) -> dict:
    result = {}
    for monomial, coefficient in poly.items():
        scaled = (coefficient * factor) % _MODULUS
        if scaled:
            result[monomial] = scaled
    return result


def _poly_mul(left: dict, right: dict) -> dict:
    if len(left) * len(right) > _MAX_MONOMIALS:
        raise _PolynomialBlowup()
    result: dict[tuple[str, ...], int] = {}
    for mono_l, coeff_l in left.items():
        for mono_r, coeff_r in right.items():
            monomial = tuple(sorted(mono_l + mono_r))
            coefficient = (result.get(monomial, 0) + coeff_l * coeff_r) % _MODULUS
            if coefficient:
                result[monomial] = coefficient
            elif monomial in result:
                del result[monomial]
    return result


def _poly_to_term(poly: dict, atom_terms: dict[str, Term]) -> Term:
    if not poly:
        return bv_const(0)
    terms: list[Term] = []
    for monomial in sorted(poly):
        coefficient = poly[monomial]
        factors: list[Term] = []
        for name in monomial:
            factors.append(atom_terms.get(name, bv_var(name)))
        product: Term = bv_const(coefficient)
        if factors:
            product = factors[0]
            for factor in factors[1:]:
                product = Term(TermKind.MUL, (product, factor))
            if coefficient != 1:
                product = Term(TermKind.MUL, (bv_const(coefficient), product))
        terms.append(product)
    result = terms[0]
    for term in terms[1:]:
        result = Term(TermKind.ADD, (result, term))
    return result


#: Associative-commutative operators flattened and sorted during normalization.
_AC_OPS = {TermKind.MAX, TermKind.MIN, TermKind.AND, TermKind.OR, TermKind.XOR}


def _flatten_ac(term: Term, kind: TermKind, out: list[Term]) -> None:
    if term.kind is kind:
        for arg in term.args:
            _flatten_ac(arg, kind, out)
    else:
        out.append(term)


def normalize_term(term: Term) -> Term:
    """Canonical form: polynomial normal form with recursively-normalized atoms.

    Besides the ring normalization, two more canonicalizations are applied so
    that scalar and vectorized programs converge to the same shape:

    * associative-commutative chains (min/max/and/or/xor) are flattened and
      their operands sorted, so a left-deep scalar reduction matches a
      lane-then-combine vector reduction;
    * ``ite(c, t, e)`` is rewritten into the additive form ``e + ite(c, t-e, 0)``,
      so a conditionally-accumulated scalar (``ite(c, s+x, s)``) matches the
      masked vector accumulation (``s + ite(c, x, 0)``).
    """
    if term.kind in (TermKind.CONST, TermKind.VAR, TermKind.POISON):
        return term
    if term.kind in _RING_OPS:
        atoms: dict[Term, str] = {}
        try:
            poly = _polynomial(term, atoms)
        except _PolynomialBlowup:
            # Too large to expand: canonicalize the operands only.
            return mk(term.kind, *(normalize_term(a) for a in term.args))
        atom_terms = {name: atom for atom, name in atoms.items()}
        return _poly_to_term(poly, atom_terms)
    if term.kind in _AC_OPS:
        operands: list[Term] = []
        _flatten_ac(term, term.kind, operands)
        normalized = sorted((normalize_term(o) for o in operands), key=_ordering_key)
        if term.kind is not TermKind.XOR:
            # min/max/and/or are idempotent: duplicate operands collapse.
            deduped: list[Term] = []
            for operand in normalized:
                if not deduped or deduped[-1] != operand:
                    deduped.append(operand)
            normalized = deduped
        result = normalized[0]
        for operand in normalized[1:]:
            result = Term(term.kind, (result, operand))
        return result
    if term.kind is TermKind.ITE:
        cond = normalize_term(term.args[0])
        then = normalize_term(term.args[1])
        otherwise = normalize_term(term.args[2])
        if then == otherwise:
            return then
        difference = normalize_term(Term(TermKind.SUB, (then, otherwise)))
        selected = mk(TermKind.ITE, cond, difference, bv_const(0))
        if otherwise == bv_const(0):
            return selected
        return normalize_term(Term(TermKind.ADD, (otherwise, selected)))
    normalized_args = tuple(normalize_term(a) for a in term.args)
    return mk(term.kind, *normalized_args)


def _ordering_key(term: Term) -> tuple:
    # A structural tuple, not a repr string: nesting repr re-escapes the
    # quotes of inner keys, which makes key size exponential in term depth.
    # Tuples share the child keys by reference and compare lazily.
    return (
        term.kind.value,
        term.value if term.value is not None else 0,
        term.name or "",
        tuple(_ordering_key(a) for a in term.args),
    )


_NORMALIZE_CACHE: dict[Term, Term] = {}


def cached_normalize(term: Term) -> Term:
    """Memoized :func:`normalize_term` (normal forms are reused across queries)."""
    cached = _NORMALIZE_CACHE.get(term)
    if cached is None:
        cached = normalize_term(term)
        if len(_NORMALIZE_CACHE) > 50_000:
            _NORMALIZE_CACHE.clear()
        _NORMALIZE_CACHE[term] = cached
    return cached


def terms_structurally_equal(left: Term, right: Term) -> bool:
    """Equality after canonical normalization (a sound full-width proof)."""
    if left == right:
        return True
    return cached_normalize(left) == cached_normalize(right)


# ---------------------------------------------------------------------------
# stage 2: randomized refutation; stage 3: bit-blasting
# ---------------------------------------------------------------------------


_BOUNDARY_VALUES = [0, 1, 2, 7, 8, 0x7FFFFFFF, 0x80000000, 0xFFFFFFFF, 0xFFFFFFFE]


class EquivalenceChecker:
    """Checks pairs of terms for equivalence under a resource budget."""

    def __init__(self, budget: SolverBudget | None = None, seed: int = 7):
        self.budget = budget or SolverBudget()
        self.seed = seed

    # -- public ------------------------------------------------------------------

    def check_pair(self, source: Term, target: Term) -> EquivalenceResult:
        """Is ``source == target`` for all variable assignments?"""
        from repro.perf.profile import stage

        with stage("solve"):
            return self._check_pair(source, target)

    def _check_pair(self, source: Term, target: Term) -> EquivalenceResult:
        if terms_structurally_equal(source, target):
            return EquivalenceResult(EquivalenceOutcome.EQUIVALENT, method="normalization")

        counterexample = self._random_refute(source, target)
        if counterexample is not None:
            return EquivalenceResult(
                EquivalenceOutcome.NOT_EQUIVALENT, method="concrete", counterexample=counterexample
            )

        total_nodes = term_size(source) + term_size(target)
        if total_nodes > self.budget.max_term_nodes:
            return EquivalenceResult(
                EquivalenceOutcome.INCONCLUSIVE,
                method="budget",
                detail=f"term too large for the SAT stage ({total_nodes} nodes)",
            )
        return self._sat_check(source, target)

    def check_pairs(self, pairs: list[tuple[Term, Term]]) -> EquivalenceResult:
        """All pairs must be equivalent; the first refutation / inconclusive wins.

        Pairs are first filtered through normalization (cheap proofs), then a
        single batched random-refutation pass runs over the survivors before
        any of them is handed to the SAT stage.
        """
        from repro.perf.profile import stage

        with stage("solve"):
            return self._check_pairs(pairs)

    def _check_pairs(self, pairs: list[tuple[Term, Term]]) -> EquivalenceResult:
        unproven: list[tuple[Term, Term]] = []
        for source, target in pairs:
            if not terms_structurally_equal(source, target):
                unproven.append((source, target))
        if not unproven:
            return EquivalenceResult(EquivalenceOutcome.EQUIVALENT, method="all-pairs")

        counterexample = self._batched_random_refute(unproven)
        if counterexample is not None:
            return EquivalenceResult(
                EquivalenceOutcome.NOT_EQUIVALENT, method="concrete", counterexample=counterexample
            )

        worst: Optional[EquivalenceResult] = None
        for source, target in sorted(unproven, key=lambda p: term_size(p[0]) + term_size(p[1])):
            total_nodes = term_size(source) + term_size(target)
            if total_nodes > self.budget.max_term_nodes:
                worst = EquivalenceResult(
                    EquivalenceOutcome.INCONCLUSIVE, method="budget",
                    detail=f"term too large for the SAT stage ({total_nodes} nodes)",
                )
                continue
            result = self._sat_check(source, target)
            if result.outcome is EquivalenceOutcome.NOT_EQUIVALENT:
                return result
            if result.outcome is EquivalenceOutcome.INCONCLUSIVE and worst is None:
                worst = result
        if worst is not None:
            return worst
        return EquivalenceResult(EquivalenceOutcome.EQUIVALENT, method="all-pairs")

    def _batched_random_refute(self, pairs: list[tuple[Term, Term]]) -> Optional[dict[str, int]]:
        variables: set[str] = set()
        for source, target in pairs:
            variables |= collect_variables(source) | collect_variables(target)
        ordered = sorted(variables)
        rng = random.Random(self.seed)
        for sample in range(self.budget.random_samples):
            assignment: dict[str, int] = {}
            for name in ordered:
                if sample < len(_BOUNDARY_VALUES):
                    assignment[name] = to_unsigned(_BOUNDARY_VALUES[sample] + rng.randint(-2, 2))
                elif sample % 3 == 0:
                    assignment[name] = to_unsigned(rng.randint(-10, 10))
                else:
                    assignment[name] = rng.getrandbits(WORD_BITS)
            for source, target in pairs:
                if evaluate(source, assignment) != evaluate(target, assignment):
                    return assignment
        return None

    # -- internals ------------------------------------------------------------------

    def _random_refute(self, source: Term, target: Term) -> Optional[dict[str, int]]:
        variables = sorted(collect_variables(source) | collect_variables(target))
        rng = random.Random(self.seed)
        for sample in range(self.budget.random_samples):
            assignment: dict[str, int] = {}
            for name in variables:
                if sample < len(_BOUNDARY_VALUES):
                    base = _BOUNDARY_VALUES[sample]
                    assignment[name] = to_unsigned(base + rng.randint(-2, 2))
                elif sample % 3 == 0:
                    assignment[name] = to_unsigned(rng.randint(-10, 10))
                else:
                    assignment[name] = rng.getrandbits(WORD_BITS)
            if evaluate(source, assignment) != evaluate(target, assignment):
                return assignment
        return None

    def _sat_check(self, source: Term, target: Term) -> EquivalenceResult:
        solver = CDCLSolver(
            propagation_budget=self.budget.sat_propagation_budget,
            conflict_budget=self.budget.sat_conflict_budget,
        )
        blaster = BitBlaster(solver, bits=self.budget.sat_bitwidth)
        try:
            left_bits = blaster.blast(source)
            right_bits = blaster.blast(target)
        except (UnsupportedTerm, RecursionError) as exc:
            return EquivalenceResult(
                EquivalenceOutcome.INCONCLUSIVE, method="bitblast", detail=str(exc)
            )
        assert_words_differ(blaster, left_bits, right_bits)
        result, model = solver.solve()
        if result is SATResult.UNSAT:
            return EquivalenceResult(
                EquivalenceOutcome.EQUIVALENT,
                method=f"sat-unsat@{self.budget.sat_bitwidth}bit",
                detail="equivalent modulo bitwidth reduction",
            )
        if result is SATResult.UNKNOWN:
            return EquivalenceResult(
                EquivalenceOutcome.INCONCLUSIVE, method="sat-budget", detail="solver budget exhausted"
            )
        # SAT at reduced width: extract an assignment and confirm at 32 bits.
        assignment = self._model_to_assignment(blaster, model)
        try:
            if evaluate(source, assignment) != evaluate(target, assignment):
                return EquivalenceResult(
                    EquivalenceOutcome.NOT_EQUIVALENT, method="sat-model", counterexample=assignment
                )
        except KeyError:
            pass
        return EquivalenceResult(
            EquivalenceOutcome.INCONCLUSIVE,
            method="sat-width-artifact",
            detail="reduced-width counterexample did not reproduce at full width",
        )

    @staticmethod
    def _model_to_assignment(blaster: BitBlaster, model: dict[int, bool]) -> dict[str, int]:
        assignment: dict[str, int] = {}
        for name, bits in blaster._var_bits.items():
            value = 0
            for position, literal in enumerate(bits):
                if model.get(abs(literal), False) == (literal > 0):
                    value |= 1 << position
            # Sign-extend the reduced-width value into 32 bits so boundary
            # behaviour (negative numbers) is preserved.
            if value & (1 << (blaster.bits - 1)):
                value |= ((1 << (WORD_BITS - blaster.bits)) - 1) << blaster.bits
            assignment[name] = value
        return assignment
