"""SMT substrate: bitvector terms, a CDCL SAT solver, bit-blasting and equivalence checking.

This package stands in for Z3 in the paper's pipeline.  Equivalence queries
produced by the translation validator are discharged in three stages:

1. algebraic normalization — wraparound integer arithmetic forms a commutative
   ring, so pure add/sub/mul expressions are compared via a canonical
   polynomial form (sound and complete for that fragment);
2. randomized concrete evaluation — a cheap refutation engine that produces
   genuine counterexamples;
3. bit-blasting to CNF at a reduced bitwidth solved with a CDCL SAT solver —
   sound "modulo bitwidth reduction", with a resource budget whose exhaustion
   is reported as inconclusive (mirroring Alive2/Z3 timeouts).
"""

from repro.smt.terms import Term, TermKind, bv_const, bv_var, evaluate, term_digest
from repro.smt.equiv import EquivalenceChecker, EquivalenceOutcome, EquivalenceResult, SolverBudget
from repro.smt.sat import CDCLSolver, SATResult, SATStatistics

__all__ = [
    "Term",
    "TermKind",
    "bv_const",
    "bv_var",
    "evaluate",
    "term_digest",
    "EquivalenceChecker",
    "EquivalenceOutcome",
    "EquivalenceResult",
    "SolverBudget",
    "CDCLSolver",
    "SATResult",
    "SATStatistics",
]
