"""Bitvector term language.

Terms are immutable, hash-consed DAG nodes over one modeled word width (32
bits by default; the :func:`modeled_bits` context switches the active width
to the kernel's lane element width, and the bit-blaster may re-interpret
terms at a further reduced width).  The operation set covers exactly what
the symbolic executor needs for TSVC kernels and their SIMD vectorizations:
wraparound arithmetic, bitwise logic, comparisons (yielding 0/1),
if-then-else selection, min/max and absolute value.
"""

from __future__ import annotations

import enum
import hashlib
from contextlib import contextmanager
from dataclasses import dataclass
from collections.abc import Iterable, Iterator, Mapping

WORD_BITS = 32
_WORD_MASK = (1 << WORD_BITS) - 1
_SIGN_BIT = 1 << (WORD_BITS - 1)

#: The active modeled width.  Width-sensitive construction steps (constant
#: masking, constant folding, the full-lane mask algebra) read it, so terms
#: built inside ``modeled_bits(16)`` wrap like int16 lanes.  The default is
#: the historical 32-bit word.
_ACTIVE_BITS = WORD_BITS


def active_bits() -> int:
    """The modeled word width terms are currently being built at."""
    return _ACTIVE_BITS


@contextmanager
def modeled_bits(bits: int) -> Iterator[None]:
    """Build terms at ``bits``-wide word semantics for the ``with`` body.

    The symbolic executor wraps each kernel encoding in this context so the
    term layer's constant folding, constant masking and mask-algebra
    rewrites all happen at the kernel's lane element width.  Nesting is
    fine; the previous width is restored on exit.
    """
    global _ACTIVE_BITS
    if bits <= 0:
        raise ValueError(f"modeled width must be positive, got {bits}")
    previous = _ACTIVE_BITS
    _ACTIVE_BITS = bits
    try:
        yield
    finally:
        _ACTIVE_BITS = previous


def to_signed(value: int, bits: int = WORD_BITS) -> int:
    mask = (1 << bits) - 1
    value &= mask
    if value & (1 << (bits - 1)):
        value -= 1 << bits
    return value


def to_unsigned(value: int, bits: int = WORD_BITS) -> int:
    return value & ((1 << bits) - 1)


class TermKind(enum.Enum):
    CONST = "const"
    VAR = "var"
    ADD = "add"
    SUB = "sub"
    MUL = "mul"
    NEG = "neg"
    AND = "and"
    OR = "or"
    XOR = "xor"
    NOT = "not"
    SHL = "shl"
    LSHR = "lshr"
    ASHR = "ashr"
    DIV = "div"      # C-style truncating signed division
    REM = "rem"      # C-style signed remainder
    ITE = "ite"      # ite(cond, a, b) where cond is 0/1
    LT = "lt"        # signed less-than, yields 0/1
    LE = "le"
    GT = "gt"
    GE = "ge"
    EQ = "eq"
    NE = "ne"
    MIN = "min"
    MAX = "max"
    ABS = "abs"
    POISON = "poison"  # a poison marker value (UB tracking)


_COMMUTATIVE = {TermKind.ADD, TermKind.MUL, TermKind.AND, TermKind.OR, TermKind.XOR,
                TermKind.EQ, TermKind.NE, TermKind.MIN, TermKind.MAX}


@dataclass(frozen=True, eq=False)
class Term:
    """One node of the term DAG.

    Equality is structural, but every node caches its structural hash at
    construction time, so hashing is O(1) and equality checks short-circuit
    on hash inequality before falling back to a structural walk.  Nodes
    built through :func:`mk` are additionally hash-consed (interned):
    structurally equal terms constructed through it are pointer-equal, so
    the identity fast path below decides most comparisons.  Direct
    ``Term(...)`` construction (the normalizer builds raw nodes) stays
    valid — such nodes simply aren't interned.
    """

    kind: TermKind
    args: tuple["Term", ...] = ()
    value: int | None = None       # for CONST
    name: str | None = None        # for VAR / POISON provenance

    def __post_init__(self) -> None:
        if self.kind is TermKind.CONST and self.value is None:
            raise ValueError("constant terms need a value")
        if self.kind is TermKind.VAR and not self.name:
            raise ValueError("variable terms need a name")
        object.__setattr__(
            self, "_hash", hash((self.kind, self.args, self.value, self.name))
        )

    def __hash__(self) -> int:
        return self._hash

    def __eq__(self, other: object) -> bool:
        if self is other:
            return True
        if not isinstance(other, Term):
            return NotImplemented
        if self._hash != other._hash:
            return False
        return (
            self.kind is other.kind
            and self.value == other.value
            and self.name == other.name
            and self.args == other.args
        )

    def __str__(self) -> str:  # pragma: no cover - debugging aid
        if self.kind is TermKind.CONST:
            return str(to_signed(self.value))
        if self.kind is TermKind.VAR:
            return self.name
        return f"{self.kind.value}({', '.join(str(a) for a in self.args)})"


_CONST_CACHE: dict[int, Term] = {}
_VAR_CACHE: dict[str, Term] = {}

#: Interning table for compound nodes built by :func:`mk`, keyed by the
#: (kind, args) pair itself: the key tuple holds strong references, so ids
#: stay valid, and lookups are cheap thanks to the cached per-node hashes.
_NODE_CACHE: dict[tuple[TermKind, tuple["Term", ...]], Term] = {}

#: Memo over the whole :func:`mk` simplification pipeline.  The symbolic
#: executor rebuilds structurally identical subtrees once per bounded-unroll
#: copy; this returns the previously simplified (and interned) result
#: without re-running folding, identity and mask-algebra rewrites.
_MK_CACHE: dict[tuple[int, TermKind, tuple["Term", ...]], Term] = {}

_TERM_CACHE_LIMIT = 200_000


def _intern(kind: TermKind, args: tuple[Term, ...]) -> Term:
    key = (kind, args)
    node = _NODE_CACHE.get(key)
    if node is None:
        node = Term(kind, args)
        if len(_NODE_CACHE) >= _TERM_CACHE_LIMIT:
            _NODE_CACHE.clear()
        _NODE_CACHE[key] = node
    return node


def bv_const(value: int) -> Term:
    value = to_unsigned(int(value), _ACTIVE_BITS)
    if value not in _CONST_CACHE:
        _CONST_CACHE[value] = Term(TermKind.CONST, value=value)
    return _CONST_CACHE[value]


def bv_var(name: str) -> Term:
    if name not in _VAR_CACHE:
        _VAR_CACHE[name] = Term(TermKind.VAR, name=name)
    return _VAR_CACHE[name]


def poison(reason: str = "poison") -> Term:
    return Term(TermKind.POISON, name=reason)


ZERO = bv_const(0)
ONE = bv_const(1)


def _all_const(args: Iterable[Term]) -> bool:
    return all(a.kind is TermKind.CONST for a in args)


def mk(kind: TermKind, *args: Term) -> Term:
    """Build a term with light local simplification (constant folding, identities).

    Results are memoized and interned: calling ``mk`` twice with equal
    arguments returns the same object, and the simplification rules run
    only on the first call.
    """
    # Simplification is width-sensitive (folding, mask algebra), so the memo
    # is keyed by the active modeled width as well as the node itself.
    memo_key = (_ACTIVE_BITS, kind, args)
    cached = _MK_CACHE.get(memo_key)
    if cached is not None:
        return cached
    result = _mk_uncached(kind, *args)
    if len(_MK_CACHE) >= _TERM_CACHE_LIMIT:
        _MK_CACHE.clear()
    _MK_CACHE[memo_key] = result
    return result


def _mk_uncached(kind: TermKind, *args: Term) -> Term:
    if any(a.kind is TermKind.POISON for a in args):
        # Poison propagates through every operation except ITE selection,
        # which the executor handles explicitly before calling ``mk``.
        for a in args:
            if a.kind is TermKind.POISON:
                return a
    if _all_const(args):
        return bv_const(evaluate(Term(kind, tuple(args)), {}, bits=_ACTIVE_BITS))
    if kind is TermKind.ADD:
        left, right = args
        if left is ZERO:
            return right
        if right is ZERO:
            return left
    if kind is TermKind.SUB:
        left, right = args
        if right is ZERO:
            return left
        if left == right:
            return ZERO
    if kind is TermKind.MUL:
        left, right = args
        if left is ZERO or right is ZERO:
            return ZERO
        if left is ONE:
            return right
        if right is ONE:
            return left
    if kind in (TermKind.GT, TermKind.GE):
        # Canonical comparison direction: only LT / LE survive construction.
        flipped = TermKind.LT if kind is TermKind.GT else TermKind.LE
        return mk(flipped, args[1], args[0])
    if kind is TermKind.ITE:
        cond, then, otherwise = args
        if cond.kind is TermKind.CONST:
            return then if cond.value != 0 else otherwise
        if then == otherwise:
            return then
        minmax = _minmax_pattern(cond, then, otherwise)
        if minmax is not None:
            return minmax
    rewritten = _comparison_negation(kind, args)
    if rewritten is not None:
        return rewritten
    rewritten = _mask_algebra(kind, args)
    if rewritten is not None:
        return rewritten
    if kind in _COMMUTATIVE and len(args) == 2:
        left, right = args
        # Canonical argument order gives structural equality a better chance.
        if _term_key(right) < _term_key(left):
            args = (right, left)
    return _intern(kind, tuple(args))


def _minmax_pattern(cond: Term, then: Term, otherwise: Term) -> Term | None:
    """Recognize ``ite(a < b ? ...)`` selections that are really min/max."""
    if cond.kind not in (TermKind.LT, TermKind.LE):
        return None
    low, high = cond.args
    if low == otherwise and high == then:
        # ite(e < t, t, e): picks the larger operand.
        return _intern(TermKind.MAX, tuple(sorted((then, otherwise), key=_term_key)))
    if low == then and high == otherwise:
        # ite(t < e, t, e): picks the smaller operand.
        return _intern(TermKind.MIN, tuple(sorted((then, otherwise), key=_term_key)))
    return None


_COMPARISON_NEGATIONS = {
    TermKind.LT: TermKind.GE,
    TermKind.LE: TermKind.GT,
    TermKind.EQ: TermKind.NE,
    TermKind.NE: TermKind.EQ,
}


def _comparison_negation(kind: TermKind, args: tuple[Term, ...]) -> Term | None:
    """Fold ``(a CMP b) == 0`` into the negated comparison."""
    if kind is not TermKind.EQ or len(args) != 2:
        return None
    left, right = args
    for cmp_term, zero in ((left, right), (right, left)):
        if zero.kind is TermKind.CONST and zero.value == 0 and cmp_term.kind in _COMPARISON_NEGATIONS:
            negated = _COMPARISON_NEGATIONS[cmp_term.kind]
            return mk(negated, cmp_term.args[0], cmp_term.args[1])
    return None


def _all_ones_value() -> int:
    """The all-ones constant (-1) at the active modeled width."""
    return (1 << _ACTIVE_BITS) - 1


def _as_lane_mask(term: Term) -> Term | None:
    """If ``term`` is a full-lane mask (``ite(cond, -1, 0)``), return ``cond``."""
    if (
        term.kind is TermKind.ITE
        and term.args[1].kind is TermKind.CONST
        and term.args[2].kind is TermKind.CONST
        and term.args[1].value == _all_ones_value()
        and term.args[2].value == 0
    ):
        return term.args[0]
    return None


def _bool_not(cond: Term) -> Term:
    """Negation of a 0/1-valued condition term."""
    return mk(TermKind.EQ, cond, bv_const(0))


def _mask_algebra(kind: TermKind, args: tuple[Term, ...]) -> Term | None:
    """Rewrite the AVX2 mask idioms back into plain conditions.

    Comparison intrinsics produce per-lane masks ``ite(cond, -1, 0)``; blends
    test them with ``!= 0`` and combine them with bitwise and/or/xor.  These
    rules fold that algebra away so that the vectorized program's final terms
    normalize to the same ``ite(cond, ...)`` shape as the scalar program's —
    letting the normalization stage prove equivalence without bit-blasting.
    """
    if kind in (TermKind.NE, TermKind.EQ) and len(args) == 2:
        left, right = args
        if right.kind is TermKind.CONST and right.value == 0:
            cond = _as_lane_mask(left)
            if cond is not None:
                return cond if kind is TermKind.NE else _bool_not(cond)
        if left.kind is TermKind.CONST and left.value == 0:
            cond = _as_lane_mask(right)
            if cond is not None:
                return cond if kind is TermKind.NE else _bool_not(cond)
    if kind in (TermKind.AND, TermKind.OR) and len(args) == 2:
        cond_a = _as_lane_mask(args[0])
        cond_b = _as_lane_mask(args[1])
        if cond_a is not None and cond_b is not None:
            combined = mk(kind, cond_a, cond_b)
            return mk(TermKind.ITE, combined, bv_const(-1), bv_const(0))
        # andnot(mask, x) shows up as and(not(mask), x).
    if kind is TermKind.NOT and len(args) == 1:
        cond = _as_lane_mask(args[0])
        if cond is not None:
            return mk(TermKind.ITE, _bool_not(cond), bv_const(-1), bv_const(0))
    if kind is TermKind.XOR and len(args) == 2:
        left, right = args
        for mask_arg, other in ((left, right), (right, left)):
            cond = _as_lane_mask(mask_arg)
            if cond is not None and other.kind is TermKind.CONST and other.value == _all_ones_value():
                return mk(TermKind.ITE, _bool_not(cond), bv_const(-1), bv_const(0))
    return None


def _term_key(term: Term) -> tuple:
    return (term.kind.value, term.value if term.value is not None else -1, term.name or "", len(term.args))


def evaluate(term: Term, assignment: Mapping[str, int], bits: int = WORD_BITS) -> int:
    """Evaluate ``term`` under ``assignment`` (values are unsigned ``bits``-wide).

    The evaluation is memoized over DAG node identity so shared sub-terms are
    evaluated once.
    """
    mask = (1 << bits) - 1
    cache: dict[int, int] = {}

    def sgn(value: int) -> int:
        return to_signed(value, bits)

    def go(node: Term) -> int:
        cached = cache.get(id(node))
        if cached is not None:
            return cached
        result = _eval_node(node)
        cache[id(node)] = result
        return result

    def _eval_node(node: Term) -> int:
        if node.kind is TermKind.CONST:
            return node.value & mask
        if node.kind is TermKind.VAR:
            if node.name not in assignment:
                raise KeyError(f"unassigned variable {node.name!r}")
            return assignment[node.name] & mask
        if node.kind is TermKind.POISON:
            # Concrete evaluation treats poison as an arbitrary-but-fixed value.
            return 0xDEAD & mask
        values = [go(a) for a in node.args]
        if node.kind is TermKind.ADD:
            return (values[0] + values[1]) & mask
        if node.kind is TermKind.SUB:
            return (values[0] - values[1]) & mask
        if node.kind is TermKind.MUL:
            return (values[0] * values[1]) & mask
        if node.kind is TermKind.NEG:
            return (-values[0]) & mask
        if node.kind is TermKind.AND:
            return values[0] & values[1]
        if node.kind is TermKind.OR:
            return values[0] | values[1]
        if node.kind is TermKind.XOR:
            return values[0] ^ values[1]
        if node.kind is TermKind.NOT:
            return (~values[0]) & mask
        if node.kind is TermKind.SHL:
            return (values[0] << (values[1] % bits)) & mask
        if node.kind is TermKind.LSHR:
            return (values[0] >> (values[1] % bits)) & mask
        if node.kind is TermKind.ASHR:
            return (sgn(values[0]) >> (values[1] % bits)) & mask
        if node.kind is TermKind.DIV:
            if sgn(values[1]) == 0:
                return 0
            return int(sgn(values[0]) / sgn(values[1])) & mask
        if node.kind is TermKind.REM:
            if sgn(values[1]) == 0:
                return 0
            quotient = int(sgn(values[0]) / sgn(values[1]))
            return (sgn(values[0]) - quotient * sgn(values[1])) & mask
        if node.kind is TermKind.ITE:
            return values[1] if values[0] != 0 else values[2]
        if node.kind is TermKind.LT:
            return 1 if sgn(values[0]) < sgn(values[1]) else 0
        if node.kind is TermKind.LE:
            return 1 if sgn(values[0]) <= sgn(values[1]) else 0
        if node.kind is TermKind.GT:
            return 1 if sgn(values[0]) > sgn(values[1]) else 0
        if node.kind is TermKind.GE:
            return 1 if sgn(values[0]) >= sgn(values[1]) else 0
        if node.kind is TermKind.EQ:
            return 1 if values[0] == values[1] else 0
        if node.kind is TermKind.NE:
            return 1 if values[0] != values[1] else 0
        if node.kind is TermKind.MIN:
            return values[0] if sgn(values[0]) <= sgn(values[1]) else values[1]
        if node.kind is TermKind.MAX:
            return values[0] if sgn(values[0]) >= sgn(values[1]) else values[1]
        if node.kind is TermKind.ABS:
            return abs(sgn(values[0])) & mask
        raise ValueError(f"cannot evaluate term kind {node.kind}")

    return go(term)


def collect_variables(term: Term) -> set[str]:
    """All variable names appearing in ``term``."""
    names: set[str] = set()
    stack = [term]
    seen: set[int] = set()
    while stack:
        node = stack.pop()
        if id(node) in seen:
            continue
        seen.add(id(node))
        if node.kind is TermKind.VAR:
            names.add(node.name)
        stack.extend(node.args)
    return names


def contains_poison(term: Term) -> bool:
    stack = [term]
    seen: set[int] = set()
    while stack:
        node = stack.pop()
        if id(node) in seen:
            continue
        seen.add(id(node))
        if node.kind is TermKind.POISON:
            return True
        stack.extend(node.args)
    return False


def term_size(term: Term) -> int:
    """Number of distinct DAG nodes in ``term`` (used for budget decisions)."""
    count = 0
    stack = [term]
    seen: set[int] = set()
    while stack:
        node = stack.pop()
        if id(node) in seen:
            continue
        seen.add(id(node))
        count += 1
        stack.extend(node.args)
    return count


_DIGEST_CACHE: dict[Term, str] = {}
_DIGEST_CACHE_LIMIT = 200_000


def term_digest(term: Term) -> str:
    """A content-stable digest of ``term``'s structure.

    Unlike ``hash(term)`` (salted per process for strings), the digest
    depends only on structural content — kind, value, name and (recursively)
    the argument digests — so structurally-equal terms share a digest across
    processes and runs regardless of how their DAGs happen to be shared.
    That makes it fit to key caches that are persisted to disk or shipped
    between campaign workers (:mod:`repro.smt.solvecache`).
    """
    cache = _DIGEST_CACHE
    cached = cache.get(term)
    if cached is not None:
        return cached
    if len(cache) > _DIGEST_CACHE_LIMIT:
        cache.clear()
    stack = [term]
    while stack:
        node = stack[-1]
        if node in cache:
            stack.pop()
            continue
        missing = [arg for arg in node.args if arg not in cache]
        if missing:
            stack.extend(missing)
            continue
        stack.pop()
        payload = ":".join((
            node.kind.value,
            "" if node.value is None else str(node.value),
            node.name or "",
            ",".join(cache[arg] for arg in node.args),
        ))
        cache[node] = hashlib.sha256(payload.encode()).hexdigest()[:32]
    return cache[term]
