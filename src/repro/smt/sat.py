"""A compact CDCL SAT solver.

The solver implements the standard conflict-driven clause learning loop with
two-watched-literal propagation, first-UIP conflict analysis, VSIDS-style
activity ordering and Luby-free geometric restarts.  It is deliberately small
but it is a real solver: the bit-blasted vectorization equivalence queries it
receives routinely contain a few thousand clauses.

Literals are encoded as nonzero integers (DIMACS convention: ``-v`` is the
negation of variable ``v``).  A propagation/decision budget turns
runaway queries into a ``SATResult.UNKNOWN`` answer, which the verification
layer reports as Inconclusive — the analogue of an Alive2/Z3 timeout.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass


class SATResult(enum.Enum):
    SAT = "sat"
    UNSAT = "unsat"
    UNKNOWN = "unknown"


@dataclass
class SATStatistics:
    decisions: int = 0
    propagations: int = 0
    conflicts: int = 0
    learned_clauses: int = 0
    restarts: int = 0


class CDCLSolver:
    """Conflict-driven clause-learning SAT solver over integer literals."""

    def __init__(self, propagation_budget: int = 2_000_000, conflict_budget: int = 50_000):
        self.clauses: list[list[int]] = []
        self.num_vars = 0
        self.propagation_budget = propagation_budget
        self.conflict_budget = conflict_budget
        self.stats = SATStatistics()

    # -- problem construction -----------------------------------------------------

    def new_var(self) -> int:
        self.num_vars += 1
        return self.num_vars

    def add_clause(self, literals: list[int]) -> None:
        """Add a clause (list of literals); empty clauses make the problem UNSAT."""
        clause = sorted(set(literals), key=abs)
        # Skip tautologies (x OR NOT x).
        seen = set(clause)
        if any(-lit in seen for lit in clause):
            return
        for literal in clause:
            self.num_vars = max(self.num_vars, abs(literal))
        self.clauses.append(clause)

    # -- solving ---------------------------------------------------------------------

    def solve(self, assumptions: list[int] | None = None) -> tuple[SATResult, dict[int, bool]]:
        """Solve the formula; returns (result, model) where model maps var -> bool."""
        if any(len(clause) == 0 for clause in self.clauses):
            return SATResult.UNSAT, {}
        self._init_state()
        if self.root_conflict:
            return SATResult.UNSAT, {}
        for literal in assumptions or []:
            if not self._assume(literal):
                return SATResult.UNSAT, {}

        while True:
            conflict = self._propagate()
            if conflict is not None:
                self.stats.conflicts += 1
                if self.stats.conflicts > self.conflict_budget:
                    return SATResult.UNKNOWN, {}
                if self.decision_level == 0:
                    return SATResult.UNSAT, {}
                learned, backtrack_level = self._analyze(conflict)
                self._backtrack(backtrack_level)
                self._learn(learned)
            else:
                if self.stats.propagations > self.propagation_budget:
                    return SATResult.UNKNOWN, {}
                literal = self._pick_branch()
                if literal is None:
                    model = {var: self.assignment[var] for var in range(1, self.num_vars + 1)
                             if self.assignment[var] is not None}
                    return SATResult.SAT, model
                self.stats.decisions += 1
                self.decision_level += 1
                self._enqueue(literal, None)

    # -- internal state ---------------------------------------------------------------

    def _init_state(self) -> None:
        size = self.num_vars + 1
        self.assignment: list[bool | None] = [None] * size
        self.level: list[int] = [0] * size
        self.reason: list[list[int] | None] = [None] * size
        self.activity: list[float] = [0.0] * size
        self.activity_increment = 1.0
        self.trail: list[int] = []
        self.trail_limits: list[int] = []
        self.decision_level = 0
        self.propagation_head = 0
        # Two-watched-literals: watches[lit] = clauses watching lit.
        self.watches: dict[int, list[list[int]]] = {}
        self.all_clauses: list[list[int]] = []
        self.root_conflict = False
        for clause in self.clauses:
            self._attach(clause)

    def _attach(self, clause: list[int]) -> None:
        self.all_clauses.append(clause)
        if len(clause) == 1:
            # A unit clause assigns at level 0; contradictory units (x) and
            # (not x) must surface as a root conflict, not overwrite each
            # other on the trail.
            value = self._value(clause[0])
            if value is False:
                self.root_conflict = True
            elif value is None:
                self._enqueue(clause[0], clause)
            return
        self.watches.setdefault(clause[0], []).append(clause)
        self.watches.setdefault(clause[1], []).append(clause)

    def _value(self, literal: int) -> bool | None:
        assigned = self.assignment[abs(literal)]
        if assigned is None:
            return None
        return assigned if literal > 0 else not assigned

    def _assume(self, literal: int) -> bool:
        if self._value(literal) is False:
            return False
        if self._value(literal) is None:
            self._enqueue(literal, None)
        return True

    def _enqueue(self, literal: int, reason: list[int] | None) -> None:
        variable = abs(literal)
        self.assignment[variable] = literal > 0
        self.level[variable] = self.decision_level
        self.reason[variable] = reason
        self.trail.append(literal)
        if self.decision_level > 0 and len(self.trail_limits) < self.decision_level:
            self.trail_limits.append(len(self.trail) - 1)

    def _propagate(self) -> list[int] | None:
        """Unit propagation; returns a conflicting clause or None."""
        while self.propagation_head < len(self.trail):
            literal = self.trail[self.propagation_head]
            self.propagation_head += 1
            self.stats.propagations += 1
            falsified = -literal
            watching = self.watches.get(falsified, [])
            index = 0
            while index < len(watching):
                clause = watching[index]
                # Ensure the falsified literal is in position 1.
                if clause[0] == falsified:
                    clause[0], clause[1] = clause[1], clause[0]
                first = clause[0]
                if self._value(first) is True:
                    index += 1
                    continue
                # Look for a replacement watch.
                replaced = False
                for position in range(2, len(clause)):
                    if self._value(clause[position]) is not False:
                        clause[1], clause[position] = clause[position], clause[1]
                        self.watches.setdefault(clause[1], []).append(clause)
                        watching.pop(index)
                        replaced = True
                        break
                if replaced:
                    continue
                # No replacement: clause is unit or conflicting.
                if self._value(first) is False:
                    return clause
                self._enqueue(first, clause)
                index += 1
        return None

    def _analyze(self, conflict: list[int]) -> tuple[list[int], int]:
        """First-UIP conflict analysis; returns (learned clause, backtrack level)."""
        learned: list[int] = []
        seen = [False] * (self.num_vars + 1)
        counter = 0
        literal = None
        clause = conflict
        trail_index = len(self.trail) - 1

        while True:
            for lit in clause:
                variable = abs(lit)
                if not seen[variable] and self.level[variable] > 0:
                    seen[variable] = True
                    self._bump(variable)
                    if self.level[variable] == self.decision_level:
                        counter += 1
                    else:
                        learned.append(lit)
            # Find the next literal on the trail at the current level.
            while True:
                literal = self.trail[trail_index]
                trail_index -= 1
                if seen[abs(literal)]:
                    break
            counter -= 1
            if counter == 0:
                break
            clause = self.reason[abs(literal)] or []
        learned.append(-literal)
        self.stats.learned_clauses += 1
        if len(learned) == 1:
            return learned, 0
        backtrack_level = max(self.level[abs(lit)] for lit in learned[:-1])
        return learned, backtrack_level

    def _backtrack(self, level: int) -> None:
        while self.decision_level > level:
            limit = self.trail_limits.pop() if self.trail_limits else 0
            while len(self.trail) > limit:
                literal = self.trail.pop()
                variable = abs(literal)
                self.assignment[variable] = None
                self.reason[variable] = None
            self.decision_level -= 1
        self.propagation_head = min(self.propagation_head, len(self.trail))

    def _learn(self, clause: list[int]) -> None:
        # Put the asserting literal first so it becomes unit immediately.
        asserting = clause[-1]
        ordered = [asserting] + clause[:-1]
        if len(ordered) == 1:
            self._enqueue(asserting, ordered)
            return
        # Second watch: a literal from the backtrack level.
        self.watches.setdefault(ordered[0], []).append(ordered)
        self.watches.setdefault(ordered[1], []).append(ordered)
        self.all_clauses.append(ordered)
        self._enqueue(asserting, ordered)

    def _bump(self, variable: int) -> None:
        self.activity[variable] += self.activity_increment
        if self.activity[variable] > 1e100:
            for index in range(1, self.num_vars + 1):
                self.activity[index] *= 1e-100
            self.activity_increment *= 1e-100
        self.activity_increment *= 1.05

    def _pick_branch(self) -> int | None:
        best_var = None
        best_activity = -1.0
        for variable in range(1, self.num_vars + 1):
            if self.assignment[variable] is None and self.activity[variable] > best_activity:
                best_var = variable
                best_activity = self.activity[variable]
        if best_var is None:
            return None
        return -best_var  # branch negative first: bit-blasted queries favour zeros
