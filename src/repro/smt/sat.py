"""A compact incremental CDCL SAT solver.

The solver implements the standard conflict-driven clause learning loop with
two-watched-literal propagation, first-UIP conflict analysis, lazy max-heap
VSIDS decision ordering, phase saving, Luby restarts and LBD-based learned
clause database reduction.  It is deliberately small but it is a real solver:
the bit-blasted vectorization equivalence queries it receives routinely
contain a few thousand clauses.

The engine is *incremental*: clause database, learned clauses, variable
activities and saved phases persist across :meth:`CDCLSolver.solve` calls, and
``solve(assumptions)`` answers satisfiability under the given assumption
literals without destroying that state.  The equivalence checker exploits this
by asserting every lane/unroll pair of one kernel behind a selector literal in
a single solver instance, so the shared gate structure and lemmas are learned
once instead of per pair.

Literals are encoded as nonzero integers (DIMACS convention: ``-v`` is the
negation of variable ``v``).  Per-call propagation/conflict budgets turn
runaway queries into a ``SATResult.UNKNOWN`` answer, which the verification
layer reports as Inconclusive — the analogue of an Alive2/Z3 timeout.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from heapq import heapify, heappop, heappush


class SATResult(enum.Enum):
    SAT = "sat"
    UNSAT = "unsat"
    UNKNOWN = "unknown"


@dataclass
class SATStatistics:
    decisions: int = 0
    propagations: int = 0
    conflicts: int = 0
    learned_clauses: int = 0
    restarts: int = 0

    def as_dict(self) -> dict[str, int]:
        return {
            "decisions": self.decisions,
            "propagations": self.propagations,
            "conflicts": self.conflicts,
            "learned_clauses": self.learned_clauses,
            "restarts": self.restarts,
        }


def luby(index: int) -> int:
    """The Luby restart sequence 1 1 2 1 1 2 4 1 1 2 1 1 2 4 8 ... (1-based)."""
    k = 1
    while (1 << (k + 1)) - 1 <= index:
        k += 1
    while index != (1 << k) - 1:
        index -= (1 << k) - 1
        k = 1
        while (1 << (k + 1)) - 1 <= index:
            k += 1
    return 1 << (k - 1)


_RESTART_BASE = 128


class CDCLSolver:
    """Incremental conflict-driven clause-learning solver over integer literals."""

    def __init__(self, propagation_budget: int = 2_000_000, conflict_budget: int = 50_000):
        self.num_vars = 0
        self.propagation_budget = propagation_budget
        self.conflict_budget = conflict_budget
        self.stats = SATStatistics()
        # Permanent per-variable state (index 1..num_vars; slot 0 unused).
        self._values: list[bool | None] = [None]  # literal-indexed, size 2n+1
        self._level: list[int] = [0]
        self._reason: list[list[int] | None] = [None]
        self._activity: list[float] = [0.0]
        self._phase: list[bool] = [False]  # saved phases; default negative-first
        self._activity_increment = 1.0
        self._heap: list[tuple[float, int]] = []
        # Clause state.
        self.clauses: list[list[int]] = []  # original (problem) clauses
        self._pending: list[list[int]] = []  # added since the last solve()
        self._learned: list[list[int]] = []
        self._clause_lbd: dict[int, int] = {}
        self._learned_limit = 2000
        self._watches: dict[int, list[list[int]]] = {}
        # Search state.
        self._trail: list[int] = []
        self._trail_limits: list[int] = []
        self._decision_level = 0
        self._propagation_head = 0
        self._unsat = False  # permanently UNSAT at the root

    # -- problem construction -----------------------------------------------------

    def new_var(self) -> int:
        self.num_vars += 1
        return self.num_vars

    def add_clause(self, literals: list[int]) -> None:
        """Add a clause (list of literals); empty clauses make the problem UNSAT."""
        clause = sorted(set(literals), key=abs)
        seen = set(clause)
        if any(-lit in seen for lit in clause):
            return  # tautology (x OR NOT x)
        for literal in clause:
            if abs(literal) > self.num_vars:
                self.num_vars = abs(literal)
        self.clauses.append(clause)
        self._pending.append(clause)

    def _grow(self) -> None:
        size = self.num_vars + 1
        while len(self._level) < size:
            variable = len(self._level)
            self._level.append(0)
            self._reason.append(None)
            self._activity.append(0.0)
            self._phase.append(False)
            heappush(self._heap, (0.0, variable))
        # The literal-indexed value array uses Python's negative indexing:
        # _values[lit] is distinct for lit and -lit as long as the list holds
        # 2*num_vars + 1 slots.  Growth must rebuild rather than append —
        # extending the list in place would relocate every negative slot.
        need = 2 * self.num_vars + 1
        if len(self._values) < need:
            old = self._values
            old_vars = (len(old) - 1) // 2
            new = [None] * need
            for variable in range(1, old_vars + 1):
                new[variable] = old[variable]
                new[-variable] = old[-variable]
            self._values = new

    # -- solving ---------------------------------------------------------------------

    def solve(self, assumptions: list[int] | None = None) -> tuple[SATResult, dict[int, bool]]:
        """Solve under ``assumptions``; returns (result, model) with model var -> bool.

        The call is incremental: learned clauses, activities and phases are
        kept for the next call, and the trail is rewound to the root on exit.
        UNSAT under non-empty assumptions means only that this assumption set
        is infeasible, not that the clause database is.
        """
        if self._unsat:
            return SATResult.UNSAT, {}
        for literal in assumptions or []:
            if abs(literal) > self.num_vars:
                self.num_vars = abs(literal)
        self._grow()
        self._backtrack(0)
        if not self._attach_pending():
            self._unsat = True
            return SATResult.UNSAT, {}
        if self._propagate() is not None:
            self._unsat = True
            return SATResult.UNSAT, {}

        assumptions = assumptions or []
        stats = self.stats
        conflict_ceiling = stats.conflicts + self.conflict_budget
        propagation_ceiling = stats.propagations + self.propagation_budget
        restart_index = 1
        conflicts_until_restart = luby(restart_index) * _RESTART_BASE
        values = self._values

        while True:
            conflict = self._propagate()
            if conflict is not None:
                stats.conflicts += 1
                conflicts_until_restart -= 1
                if self._decision_level == 0:
                    self._unsat = True
                    return SATResult.UNSAT, {}
                if self._decision_level <= len(assumptions):
                    # The conflict depends on no real decision, only on the
                    # assumption prefix: UNSAT under these assumptions.
                    self._backtrack(0)
                    return SATResult.UNSAT, {}
                if stats.conflicts > conflict_ceiling:
                    self._backtrack(0)
                    return SATResult.UNKNOWN, {}
                learned, backtrack_level, lbd = self._analyze(conflict)
                # Backtrack to the asserting level even when that is below the
                # assumption prefix — the decision loop re-assumes the tail, and
                # a unit lemma lands permanently at level 0 (it is implied by
                # the clause database alone, not by the assumptions).
                self._backtrack(backtrack_level)
                self._learn(learned, lbd)
            elif conflicts_until_restart <= 0:
                stats.restarts += 1
                restart_index += 1
                conflicts_until_restart = luby(restart_index) * _RESTART_BASE
                self._backtrack(0)
                if len(self._learned) > self._learned_limit:
                    self._reduce_learned()
            else:
                if stats.propagations > propagation_ceiling:
                    self._backtrack(0)
                    return SATResult.UNKNOWN, {}
                if self._decision_level < len(assumptions):
                    literal = assumptions[self._decision_level]
                    value = values[literal]
                    if value is False:
                        self._backtrack(0)
                        return SATResult.UNSAT, {}
                    self._trail_limits.append(len(self._trail))
                    self._decision_level += 1
                    if value is None:
                        self._enqueue(literal, None)
                    continue
                literal = self._pick_branch()
                if literal is None:
                    model = {var: values[var] for var in range(1, self.num_vars + 1)
                             if values[var] is not None}
                    self._backtrack(0)
                    return SATResult.SAT, model
                stats.decisions += 1
                self._trail_limits.append(len(self._trail))
                self._decision_level += 1
                self._enqueue(literal, None)

    # -- clause attachment -------------------------------------------------------------

    def _attach_pending(self) -> bool:
        """Attach clauses added since the last solve; False on a root conflict.

        Runs at decision level 0, so any assigned literal is permanently
        assigned and can be simplified out of the incoming clause.
        """
        values = self._values
        for clause in self._pending:
            live = [lit for lit in clause if values[lit] is not False]
            if any(values[lit] is True for lit in live):
                continue
            if not live:
                return False
            if len(live) == 1:
                self._enqueue(live[0], clause)
                continue
            self._watches.setdefault(live[0], []).append(live)
            self._watches.setdefault(live[1], []).append(live)
        self._pending.clear()
        return True

    # -- internal state ---------------------------------------------------------------

    def _enqueue(self, literal: int, reason: list[int] | None) -> None:
        variable = literal if literal > 0 else -literal
        self._values[literal] = True
        self._values[-literal] = False
        self._level[variable] = self._decision_level
        self._reason[variable] = reason
        self._phase[variable] = literal > 0
        self._trail.append(literal)

    def _propagate(self) -> list[int] | None:
        """Unit propagation; returns a conflicting clause or None."""
        values = self._values
        trail = self._trail
        watches = self._watches
        head = self._propagation_head
        count = 0
        while head < len(trail):
            literal = trail[head]
            head += 1
            count += 1
            falsified = -literal
            watching = watches.get(falsified)
            if not watching:
                continue
            index = 0
            while index < len(watching):
                clause = watching[index]
                # Ensure the falsified literal is in position 1.
                if clause[0] == falsified:
                    clause[0], clause[1] = clause[1], clause[0]
                first = clause[0]
                if values[first] is True:
                    index += 1
                    continue
                # Look for a replacement watch.
                replaced = False
                for position in range(2, len(clause)):
                    other = clause[position]
                    if values[other] is not False:
                        clause[1], clause[position] = other, clause[1]
                        watches.setdefault(other, []).append(clause)
                        watching[index] = watching[-1]
                        watching.pop()
                        replaced = True
                        break
                if replaced:
                    continue
                # No replacement: clause is unit or conflicting.
                if values[first] is False:
                    self._propagation_head = head
                    self.stats.propagations += count
                    return clause
                self._enqueue(first, clause)
                index += 1
        self._propagation_head = head
        self.stats.propagations += count
        return None

    def _analyze(self, conflict: list[int]) -> tuple[list[int], int, int]:
        """First-UIP analysis; returns (learned clause, backtrack level, LBD)."""
        learned: list[int] = []
        seen = bytearray(self.num_vars + 1)
        level = self._level
        counter = 0
        literal = None
        clause = conflict
        trail = self._trail
        trail_index = len(trail) - 1
        current_level = self._decision_level

        while True:
            for lit in clause:
                variable = lit if lit > 0 else -lit
                if not seen[variable] and level[variable] > 0:
                    seen[variable] = 1
                    self._bump(variable)
                    if level[variable] == current_level:
                        counter += 1
                    else:
                        learned.append(lit)
            # Find the next literal on the trail at the current level.
            while True:
                literal = trail[trail_index]
                trail_index -= 1
                if seen[literal if literal > 0 else -literal]:
                    break
            counter -= 1
            if counter == 0:
                break
            variable = literal if literal > 0 else -literal
            clause = self._reason[variable] or []
        learned.append(-literal)
        self.stats.learned_clauses += 1
        if len(learned) == 1:
            return learned, 0, 1
        backtrack_level = max(level[lit if lit > 0 else -lit] for lit in learned[:-1])
        lbd = len({level[lit if lit > 0 else -lit] for lit in learned})
        return learned, backtrack_level, lbd

    def _backtrack(self, target: int) -> None:
        if self._decision_level <= target:
            return
        limit = self._trail_limits[target]
        del self._trail_limits[target:]
        values = self._values
        trail = self._trail
        heap = self._heap
        activity = self._activity
        for position in range(len(trail) - 1, limit - 1, -1):
            literal = trail[position]
            variable = literal if literal > 0 else -literal
            values[literal] = None
            values[-literal] = None
            self._reason[variable] = None
            heappush(heap, (-activity[variable], variable))
        del trail[limit:]
        self._decision_level = target
        self._propagation_head = limit

    def _learn(self, clause: list[int], lbd: int) -> None:
        # Put the asserting literal first so it becomes unit immediately.
        asserting = clause[-1]
        ordered = [asserting] + clause[:-1]
        if len(ordered) == 1:
            self._enqueue(asserting, ordered)
            return
        self._watches.setdefault(ordered[0], []).append(ordered)
        self._watches.setdefault(ordered[1], []).append(ordered)
        self._learned.append(ordered)
        self._clause_lbd[id(ordered)] = lbd
        self._enqueue(asserting, ordered)

    def _reduce_learned(self) -> None:
        """Drop the worst (highest-LBD) half of the learned clause database.

        Called at a restart, so the trail holds only level-0 assignments;
        clauses acting as level-0 reasons and glue clauses (LBD <= 2) are kept.
        """
        protected = {id(reason) for reason in self._reason if reason is not None}
        lbd = self._clause_lbd
        ranked = sorted(self._learned, key=lambda c: lbd.get(id(c), 1), reverse=True)
        doomed: set[int] = set()
        for clause in ranked[: len(ranked) // 2]:
            clause_id = id(clause)
            if lbd.get(clause_id, 1) <= 2 or clause_id in protected:
                continue
            doomed.add(clause_id)
        if not doomed:
            self._learned_limit = int(self._learned_limit * 1.5)
            return
        self._learned = [c for c in self._learned if id(c) not in doomed]
        for clause_id in doomed:
            lbd.pop(clause_id, None)
        for literal, watching in self._watches.items():
            if any(id(c) in doomed for c in watching):
                self._watches[literal] = [c for c in watching if id(c) not in doomed]
        self._learned_limit = int(self._learned_limit * 1.1)

    def _bump(self, variable: int) -> None:
        activity = self._activity
        activity[variable] += self._activity_increment
        if activity[variable] > 1e100:
            for index in range(1, self.num_vars + 1):
                activity[index] *= 1e-100
            self._activity_increment *= 1e-100
            values = self._values
            self._heap = [(-activity[v], v) for v in range(1, self.num_vars + 1)
                          if values[v] is None]
            heapify(self._heap)
        else:
            heappush(self._heap, (-activity[variable], variable))
        self._activity_increment *= 1.05

    def _pick_branch(self) -> int | None:
        """Highest-activity unassigned variable, in its saved phase.

        The heap is lazy: bumps push fresh entries without removing stale
        ones, so entries whose recorded activity no longer matches the
        variable's current activity are discarded on pop (a fresher, larger
        entry for that variable is still in the heap).
        """
        heap = self._heap
        values = self._values
        activity = self._activity
        while heap:
            negated, variable = heappop(heap)
            if values[variable] is not None or activity[variable] != -negated:
                continue
            return variable if self._phase[variable] else -variable
        return None
