"""Content-addressed cache of solved SAT equivalence queries.

The plan cache (:mod:`repro.vectorizer.plancache`) deduplicates the parse
and planning work of one kernel; this module is its counterpart for the
verification endgame: the aggregated verdict of one SAT *query batch* — the
ordered list of term pairs one kernel's equivalence check hands to the
bit-blasting stage — keyed by the content digests of those exact pairs plus
every solver parameter the answer depends on (bitwidth, conflict and
propagation budgets).

Keying on the full input set is what makes the cache safe under any
scheduling: a hit can only occur where a fresh solve would have received
bit-identical inputs, so it returns bit-identical output, and campaign
results stay independent of worker count, batch size and completion order.
The payoff is cross-target and cross-run reuse: the two simulated SVE
vector lengths (``sve128``/``sve256``) emit identical query batches today
and used to solve every one of them twice, and a persisted cache
(:func:`save`/:func:`load`) carries solved queries across campaigns.

Entries are plain JSON-serializable dicts, so they ship through the warm
worker initializer and come back in batch envelopes exactly like the plan
cache's counters (:mod:`repro.pipeline.scheduler`).  The module also keeps
the fleet-wide solver counters (decisions/conflicts/learned/restarts) that
:class:`~repro.pipeline.campaign.CampaignSummary` aggregates.
"""

from __future__ import annotations

import json
from dataclasses import dataclass
from pathlib import Path
from collections.abc import Iterable

from repro.smt.sat import SATStatistics
from repro.smt.terms import Term, term_digest

#: Entry cap; hitting it clears the cache (same policy as the plan cache —
#: a full reset beats LRU bookkeeping at this scale, and one campaign's
#: working set is far below the cap).
DEFAULT_CAPACITY = 8192


@dataclass
class SolveCacheStats:
    """Fleet-accountable counters: cache traffic plus raw solver work.

    Every field is a monotonic counter so the scheduler's
    ``counter_delta``/``merge_counts`` protocol can ship per-batch deltas
    from workers and fold them into one campaign-wide tally.
    """

    cache_hits: int = 0
    cache_misses: int = 0
    cache_stores: int = 0
    decisions: int = 0
    propagations: int = 0
    conflicts: int = 0
    learned_clauses: int = 0
    restarts: int = 0

    def as_dict(self) -> dict[str, int]:
        return {
            "cache_hits": self.cache_hits,
            "cache_misses": self.cache_misses,
            "cache_stores": self.cache_stores,
            "decisions": self.decisions,
            "propagations": self.propagations,
            "conflicts": self.conflicts,
            "learned_clauses": self.learned_clauses,
            "restarts": self.restarts,
        }

    def add_solver(self, solver_stats: SATStatistics) -> None:
        self.decisions += solver_stats.decisions
        self.propagations += solver_stats.propagations
        self.conflicts += solver_stats.conflicts
        self.learned_clauses += solver_stats.learned_clauses
        self.restarts += solver_stats.restarts


stats = SolveCacheStats()

_capacity = DEFAULT_CAPACITY
_CACHE: dict[str, dict] = {}
#: Append-only journal of (key, record) stores, so a worker can ship the
#: entries it discovered during one batch back to the campaign parent.
_journal: list[tuple[str, dict]] = []


def query_key(pairs: "list[tuple[Term, Term]]", bitwidth: int,
              conflict_budget: int, propagation_budget: int,
              model_bits: int = 32) -> str:
    """The content address of one SAT query batch.

    Covers everything the batched solve depends on: the ordered source and
    target term digests and the solver parameters, including the modeled
    lane element width (``model_bits``) — structurally identical terms mean
    different things at different widths, so dtype-distinct queries can
    never share a record.  Two batches with the same key are solved
    bit-identically, which is the determinism contract a cache hit relies
    on.
    """
    parts = [f"w{bitwidth}/m{model_bits}/c{conflict_budget}/p{propagation_budget}"]
    for source, target in pairs:
        parts.append(term_digest(source))
        parts.append(term_digest(target))
    return "|".join(parts)


def lookup(key: str) -> dict | None:
    """The stored batch record, counting the hit/miss."""
    record = _CACHE.get(key)
    if record is None:
        stats.cache_misses += 1
        return None
    stats.cache_hits += 1
    return record


def store(key: str, record: dict) -> None:
    """Store one solved batch record (a JSON-serializable dict)."""
    if len(_CACHE) >= _capacity:
        _CACHE.clear()
    _CACHE[key] = record
    _journal.append((key, record))
    stats.cache_stores += 1


def journal_position() -> int:
    """Marker for :func:`entries_since` (workers snapshot it per batch)."""
    return len(_journal)


def entries_since(position: int) -> list[tuple[str, dict]]:
    """Every (key, record) stored after ``position`` was taken."""
    return _journal[position:]


def export_entries() -> list[tuple[str, dict]]:
    """Every live entry, for pre-seeding warm workers."""
    return list(_CACHE.items())


def seed_entries(entries: "Iterable[tuple[str, dict]]") -> None:
    """Adopt entries discovered elsewhere (another worker or a saved file).

    Seeding counts as stores only for genuinely new keys and never touches
    the hit/miss counters — it is bookkeeping, not solving.
    """
    for key, record in entries:
        if key in _CACHE:
            continue
        if len(_CACHE) >= _capacity:
            _CACHE.clear()
        _CACHE[key] = record


def set_capacity(capacity: int) -> None:
    global _capacity
    if capacity < 1:
        raise ValueError(f"cache capacity must be >= 1, got {capacity}")
    _capacity = capacity


def clear_caches() -> None:
    """Drop every entry and reset the counters (tests measure from zero)."""
    _CACHE.clear()
    _journal.clear()
    stats.cache_hits = stats.cache_misses = stats.cache_stores = 0
    stats.decisions = stats.propagations = 0
    stats.conflicts = stats.learned_clauses = stats.restarts = 0


def save(path: "str | Path") -> int:
    """Persist the live entries as JSONL; returns the number written."""
    entries = export_entries()
    payload = "".join(json.dumps({"key": key, "record": record},
                                 sort_keys=True) + "\n"
                      for key, record in entries)
    Path(path).write_text(payload, encoding="utf-8")
    return len(entries)


def load(path: "str | Path") -> int:
    """Seed the cache from a JSONL file; returns the number adopted.

    Missing files are fine (first run); malformed lines are skipped — a
    truncated cache file costs re-solving, never correctness.
    """
    file = Path(path)
    if not file.exists():
        return 0
    adopted = 0
    for line in file.read_text(encoding="utf-8").splitlines():
        if not line.strip():
            continue
        try:
            entry = json.loads(line)
            key, record = entry["key"], entry["record"]
        except (json.JSONDecodeError, KeyError, TypeError):
            continue
        if isinstance(key, str) and isinstance(record, dict) and key not in _CACHE:
            seed_entries([(key, record)])
            adopted += 1
    return adopted
