"""Bit-blasting of bitvector terms to CNF.

Terms are translated at a configurable (usually reduced) bitwidth into CNF
over a :class:`~repro.smt.sat.CDCLSolver` via the standard Tseitin-style
encodings: ripple-carry adders, shift-and-add multipliers, comparator chains
and multiplexers for ``ite``.  Reduced-width verification is the documented
soundness trade of this reproduction (DESIGN.md): a proof at width ``w`` is
reported as "equivalent modulo bitwidth reduction".
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.smt.sat import CDCLSolver
from repro.smt.terms import Term, TermKind


@dataclass
class BitBlaster:
    """Translates terms into CNF over a shared solver instance.

    Tseitin gates are structurally hashed: two requests for the same
    (operation, input literals) yield one output variable, and gates fold
    to existing literals when an input is the constant true/false literal
    or the inputs coincide (``a AND a``, ``a XOR -a``, ...).  On the
    near-identical unroll copies of one kernel this collapses most of the
    circuit into shared structure instead of fresh clauses per copy.
    """

    solver: CDCLSolver
    bits: int = 8
    _term_bits: dict[int, list[int]] = field(default_factory=dict)
    _var_bits: dict[str, list[int]] = field(default_factory=dict)
    _gate_cache: dict[tuple, int] = field(default_factory=dict)
    _true_literal: int | None = None

    # -- plumbing -------------------------------------------------------------------

    def true_literal(self) -> int:
        if self._true_literal is None:
            literal = self.solver.new_var()
            self.solver.add_clause([literal])
            self._true_literal = literal
        return self._true_literal

    def false_literal(self) -> int:
        return -self.true_literal()

    def _const_bits(self, value: int) -> list[int]:
        bits = []
        for position in range(self.bits):
            bit = (value >> position) & 1
            bits.append(self.true_literal() if bit else self.false_literal())
        return bits

    def variable_bits(self, name: str) -> list[int]:
        if name not in self._var_bits:
            self._var_bits[name] = [self.solver.new_var() for _ in range(self.bits)]
        return self._var_bits[name]

    # -- gate encodings ---------------------------------------------------------------

    def _and_gate(self, a: int, b: int) -> int:
        true = self.true_literal()
        if a == -true or b == -true or a == -b:
            return -true
        if a == true or a == b:
            return b
        if b == true:
            return a
        key = ("and", a, b) if a < b else ("and", b, a)
        out = self._gate_cache.get(key)
        if out is None:
            out = self.solver.new_var()
            self.solver.add_clause([-a, -b, out])
            self.solver.add_clause([a, -out])
            self.solver.add_clause([b, -out])
            self._gate_cache[key] = out
        return out

    def _or_gate(self, a: int, b: int) -> int:
        true = self.true_literal()
        if a == true or b == true or a == -b:
            return true
        if a == -true or a == b:
            return b
        if b == -true:
            return a
        key = ("or", a, b) if a < b else ("or", b, a)
        out = self._gate_cache.get(key)
        if out is None:
            out = self.solver.new_var()
            self.solver.add_clause([a, b, -out])
            self.solver.add_clause([-a, out])
            self.solver.add_clause([-b, out])
            self._gate_cache[key] = out
        return out

    def _xor_gate(self, a: int, b: int) -> int:
        true = self.true_literal()
        if a == true:
            return -b
        if a == -true:
            return b
        if b == true:
            return -a
        if b == -true:
            return a
        if a == b:
            return -true
        if a == -b:
            return true
        # XOR is symmetric under joint negation: encode the gate on the
        # positive variables once and re-apply the sign on the way out.
        negate = (a < 0) != (b < 0)
        a, b = abs(a), abs(b)
        key = ("xor", a, b) if a < b else ("xor", b, a)
        out = self._gate_cache.get(key)
        if out is None:
            out = self.solver.new_var()
            self.solver.add_clause([-a, -b, -out])
            self.solver.add_clause([a, b, -out])
            self.solver.add_clause([-a, b, out])
            self.solver.add_clause([a, -b, out])
            self._gate_cache[key] = out
        return -out if negate else out

    def _mux_gate(self, select: int, then: int, otherwise: int) -> int:
        true = self.true_literal()
        if select == true:
            return then
        if select == -true:
            return otherwise
        if then == otherwise:
            return then
        if then == -otherwise:
            # mux(s, NOT o, o): true when exactly one of s, o holds.
            return self._xor_gate(select, otherwise)
        if select < 0:
            select, then, otherwise = -select, otherwise, then
        key = ("mux", select, then, otherwise)
        out = self._gate_cache.get(key)
        if out is None:
            out = self.solver.new_var()
            self.solver.add_clause([-select, -then, out])
            self.solver.add_clause([-select, then, -out])
            self.solver.add_clause([select, -otherwise, out])
            self.solver.add_clause([select, otherwise, -out])
            self._gate_cache[key] = out
        return out

    def _full_adder(self, a: int, b: int, carry_in: int) -> tuple[int, int]:
        sum_bit = self._xor_gate(self._xor_gate(a, b), carry_in)
        carry_out = self._or_gate(
            self._and_gate(a, b), self._and_gate(carry_in, self._xor_gate(a, b))
        )
        return sum_bit, carry_out

    # -- word-level encodings ------------------------------------------------------------

    def _add_words(self, a: list[int], b: list[int]) -> list[int]:
        carry = self.false_literal()
        out = []
        for bit_a, bit_b in zip(a, b):
            sum_bit, carry = self._full_adder(bit_a, bit_b, carry)
            out.append(sum_bit)
        return out

    def _negate_word(self, a: list[int]) -> list[int]:
        inverted = [-bit for bit in a]
        one = self._const_bits(1)
        return self._add_words(inverted, one)

    def _mul_words(self, a: list[int], b: list[int]) -> list[int]:
        # Prefer the operand with more constant bits as the multiplier: a
        # constant control skips the row (zero bit) or adds the shifted
        # word ungated (one bit), so constant-by-symbolic multiplies cost
        # popcount-many adders and no AND gates.
        true = self.true_literal()

        def constant_bits(word: list[int]) -> int:
            return sum(1 for bit in word if bit == true or bit == -true)

        if constant_bits(a) > constant_bits(b):
            a, b = b, a
        false = -true
        accumulator = self._const_bits(0)
        for shift, control in enumerate(b):
            if control == false:
                continue
            shifted = [false] * shift + a[: self.bits - shift]
            if control != true:
                shifted = [self._and_gate(control, bit) for bit in shifted]
            accumulator = self._add_words(accumulator, shifted)
        return accumulator

    def _less_than_signed(self, a: list[int], b: list[int]) -> int:
        """a < b (two's complement): compare after flipping the sign bits."""
        a_adjusted = a[:-1] + [-a[-1]]
        b_adjusted = b[:-1] + [-b[-1]]
        return self._less_than_unsigned(a_adjusted, b_adjusted)

    def _less_than_unsigned(self, a: list[int], b: list[int]) -> int:
        result = self.false_literal()
        for bit_a, bit_b in zip(a, b):  # LSB to MSB
            lt_here = self._and_gate(-bit_a, bit_b)
            eq_here = -self._xor_gate(bit_a, bit_b)
            result = self._or_gate(lt_here, self._and_gate(eq_here, result))
        return result

    def _equal_words(self, a: list[int], b: list[int]) -> int:
        result = self.true_literal()
        for bit_a, bit_b in zip(a, b):
            result = self._and_gate(result, -self._xor_gate(bit_a, bit_b))
        return result

    def _bool_to_word(self, literal: int) -> list[int]:
        return [literal] + [self.false_literal()] * (self.bits - 1)

    def _word_is_nonzero(self, word: list[int]) -> int:
        result = self.false_literal()
        for bit in word:
            result = self._or_gate(result, bit)
        return result

    def _mux_words(self, select: int, then: list[int], otherwise: list[int]) -> list[int]:
        return [self._mux_gate(select, t, o) for t, o in zip(then, otherwise)]

    # -- the main translation --------------------------------------------------------------

    def blast(self, term: Term) -> list[int]:
        """Return the list of literals (LSB first) representing ``term``."""
        cached = self._term_bits.get(id(term))
        if cached is not None:
            return cached
        bits = self._blast_node(term)
        self._term_bits[id(term)] = bits
        return bits

    def _blast_node(self, term: Term) -> list[int]:
        kind = term.kind
        if kind is TermKind.CONST:
            return self._const_bits(term.value & ((1 << self.bits) - 1))
        if kind is TermKind.VAR:
            return self.variable_bits(term.name)
        if kind is TermKind.POISON:
            # Poison is modelled as a fresh unconstrained word: refinement
            # checks treat any difference produced by it as a refutation.
            return [self.solver.new_var() for _ in range(self.bits)]
        args = [self.blast(a) for a in term.args]
        if kind is TermKind.ADD:
            return self._add_words(args[0], args[1])
        if kind is TermKind.SUB:
            return self._add_words(args[0], self._negate_word(args[1]))
        if kind is TermKind.NEG:
            return self._negate_word(args[0])
        if kind is TermKind.MUL:
            return self._mul_words(args[0], args[1])
        if kind is TermKind.AND:
            return [self._and_gate(a, b) for a, b in zip(args[0], args[1])]
        if kind is TermKind.OR:
            return [self._or_gate(a, b) for a, b in zip(args[0], args[1])]
        if kind is TermKind.XOR:
            return [self._xor_gate(a, b) for a, b in zip(args[0], args[1])]
        if kind is TermKind.NOT:
            return [-bit for bit in args[0]]
        if kind is TermKind.ITE:
            select = self._word_is_nonzero(args[0])
            return self._mux_words(select, args[1], args[2])
        if kind is TermKind.LT:
            return self._bool_to_word(self._less_than_signed(args[0], args[1]))
        if kind is TermKind.GT:
            return self._bool_to_word(self._less_than_signed(args[1], args[0]))
        if kind is TermKind.LE:
            return self._bool_to_word(-self._less_than_signed(args[1], args[0]))
        if kind is TermKind.GE:
            return self._bool_to_word(-self._less_than_signed(args[0], args[1]))
        if kind is TermKind.EQ:
            return self._bool_to_word(self._equal_words(args[0], args[1]))
        if kind is TermKind.NE:
            return self._bool_to_word(-self._equal_words(args[0], args[1]))
        if kind is TermKind.MIN:
            select = self._less_than_signed(args[0], args[1])
            return self._mux_words(select, args[0], args[1])
        if kind is TermKind.MAX:
            select = self._less_than_signed(args[1], args[0])
            return self._mux_words(select, args[0], args[1])
        if kind is TermKind.ABS:
            negative = args[0][-1]
            return self._mux_words(negative, self._negate_word(args[0]), args[0])
        if kind in (TermKind.SHL, TermKind.LSHR, TermKind.ASHR):
            return self._blast_shift(kind, term, args)
        if kind in (TermKind.DIV, TermKind.REM):
            raise UnsupportedTerm(f"bit-blasting of {kind.value} is not supported")
        raise UnsupportedTerm(f"unsupported term kind {kind.value}")

    def _blast_shift(self, kind: TermKind, term: Term, args: list[list[int]]) -> list[int]:
        amount_term = term.args[1]
        if amount_term.kind is not TermKind.CONST:
            raise UnsupportedTerm("only constant shift amounts are supported")
        amount = amount_term.value % self.bits
        word = args[0]
        if kind is TermKind.SHL:
            return [self.false_literal()] * amount + word[: self.bits - amount]
        if kind is TermKind.LSHR:
            return word[amount:] + [self.false_literal()] * amount
        return word[amount:] + [word[-1]] * amount  # ASHR


class UnsupportedTerm(Exception):
    """Raised when a term cannot be bit-blasted (reported as Inconclusive)."""


def assert_words_differ(blaster: BitBlaster, left: list[int], right: list[int]) -> None:
    """Add clauses asserting that the two words differ in at least one bit."""
    difference_bits = [blaster._xor_gate(a, b) for a, b in zip(left, right)]
    blaster.solver.add_clause(difference_bits)
