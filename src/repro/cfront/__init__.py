"""C-subset frontend: lexer, parser, AST, types and pretty printer.

The frontend accepts the dialect of C used by the TSVC kernels and by the
SIMD-vectorized candidates the paper's LLM produces: ``int`` scalars,
``int*`` array parameters, the vector-register values of every registered
target ISA, ``for``/``while``/``if``/``goto`` control flow, and calls to
the targets' intrinsics.  The vector type names (and thus the lexer and
parser keyword sets) are derived from :mod:`repro.targets`, never
hardcoded.

Public entry points:

* :func:`repro.cfront.cparser.parse_program` — parse a translation unit.
* :func:`repro.cfront.cparser.parse_function` — parse a single function.
* :func:`repro.cfront.printer.to_c` — pretty-print an AST back to C text.
"""

from repro.cfront.ast_nodes import (
    ArrayRef,
    Assign,
    BinOp,
    Block,
    Break,
    Call,
    Cast,
    Continue,
    Decl,
    ExprStmt,
    ForLoop,
    FunctionDef,
    Goto,
    Identifier,
    If,
    IntLiteral,
    Label,
    Program,
    Return,
    TernaryOp,
    UnaryOp,
    WhileLoop,
)
from repro.cfront.ast_nodes import kernel_dtype
from repro.cfront.cparser import parse_expression, parse_function, parse_program
from repro.cfront.ctypes import (
    CType,
    INT,
    INT16_T,
    INT64_T,
    INTEGER_TYPE_NAMES,
    PTR_INT,
    SIZED_INT_NAMES,
    VOID,
)
from repro.cfront.lexer import Token, TokenKind, tokenize
from repro.cfront.printer import to_c

__all__ = [
    "ArrayRef",
    "Assign",
    "BinOp",
    "Block",
    "Break",
    "Call",
    "Cast",
    "Continue",
    "Decl",
    "ExprStmt",
    "ForLoop",
    "FunctionDef",
    "Goto",
    "Identifier",
    "If",
    "IntLiteral",
    "Label",
    "Program",
    "Return",
    "TernaryOp",
    "UnaryOp",
    "WhileLoop",
    "CType",
    "INT",
    "INT16_T",
    "INT64_T",
    "INTEGER_TYPE_NAMES",
    "SIZED_INT_NAMES",
    "VOID",
    "PTR_INT",
    "kernel_dtype",
    "Token",
    "TokenKind",
    "tokenize",
    "parse_program",
    "parse_function",
    "parse_expression",
    "to_c",
]
