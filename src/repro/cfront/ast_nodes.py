"""AST node definitions for the C subset.

The AST is deliberately small and regular so that the interpreter, the
dependence analysis, the source-to-source transforms (C-level unrolling,
spatial splitting) and the IR lowering can all traverse it with plain
structural pattern matching.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from collections.abc import Iterator

from repro.cfront.ctypes import CType
from repro.errors import SourceLocation


@dataclass
class Node:
    """Base class for every AST node."""

    location: SourceLocation = field(default_factory=SourceLocation, kw_only=True)

    def clone(self, **changes) -> "Node":
        """Return a shallow copy of this node with ``changes`` applied."""
        return replace(self, **changes)


# ---------------------------------------------------------------------------
# Expressions
# ---------------------------------------------------------------------------


@dataclass
class Expr(Node):
    """Base class for expressions."""


@dataclass
class IntLiteral(Expr):
    value: int


@dataclass
class Identifier(Expr):
    name: str


@dataclass
class ArrayRef(Expr):
    """``base[index]`` where ``base`` is an expression of pointer type."""

    base: Expr
    index: Expr


@dataclass
class UnaryOp(Expr):
    """Prefix unary operator: ``-``, ``+``, ``!``, ``~``, ``&``, ``*``, ``++``, ``--``."""

    op: str
    operand: Expr


@dataclass
class PostfixOp(Expr):
    """Postfix ``++`` / ``--``."""

    op: str
    operand: Expr


@dataclass
class BinOp(Expr):
    op: str
    left: Expr
    right: Expr


@dataclass
class TernaryOp(Expr):
    cond: Expr
    then: Expr
    otherwise: Expr


@dataclass
class Assign(Expr):
    """Assignment expression ``target op target/value``.

    ``op`` is ``=`` or a compound assignment such as ``+=``.
    """

    op: str
    target: Expr
    value: Expr


@dataclass
class Call(Expr):
    """A call; in this subset all callees are simple identifiers."""

    func: str
    args: list[Expr]


@dataclass
class Cast(Expr):
    target_type: CType
    operand: Expr


# ---------------------------------------------------------------------------
# Statements
# ---------------------------------------------------------------------------


@dataclass
class Stmt(Node):
    """Base class for statements."""


@dataclass
class ExprStmt(Stmt):
    expr: Expr


@dataclass
class Decl(Stmt):
    """A declaration of one variable, optionally initialized.

    Multi-declarator declarations are split by the parser into one
    :class:`Decl` per variable so transforms never have to handle lists.
    """

    var_type: CType
    name: str
    init: Expr | None = None
    array_size: Expr | None = None


@dataclass
class Block(Stmt):
    body: list[Stmt] = field(default_factory=list)

    def __iter__(self) -> Iterator[Stmt]:
        return iter(self.body)


@dataclass
class If(Stmt):
    cond: Expr
    then: Stmt
    otherwise: Stmt | None = None


@dataclass
class ForLoop(Stmt):
    """``for (init; cond; step) body``; each header slot may be empty."""

    init: Stmt | None
    cond: Expr | None
    step: Expr | None
    body: Stmt


@dataclass
class WhileLoop(Stmt):
    cond: Expr
    body: Stmt


@dataclass
class DoWhileLoop(Stmt):
    body: Stmt
    cond: Expr


@dataclass
class Return(Stmt):
    value: Expr | None = None


@dataclass
class Break(Stmt):
    pass


@dataclass
class Continue(Stmt):
    pass


@dataclass
class Goto(Stmt):
    label: str


@dataclass
class Label(Stmt):
    """A label attached to a statement (``L20: stmt``)."""

    name: str
    stmt: Stmt


# ---------------------------------------------------------------------------
# Top level
# ---------------------------------------------------------------------------


@dataclass
class Parameter(Node):
    param_type: CType
    name: str


@dataclass
class FunctionDef(Node):
    return_type: CType
    name: str
    params: list[Parameter]
    body: Block

    def param_names(self) -> list[str]:
        return [p.name for p in self.params]


@dataclass
class Program(Node):
    """A translation unit: the functions it defines, in order."""

    functions: list[FunctionDef] = field(default_factory=list)

    def function(self, name: str) -> FunctionDef:
        for func in self.functions:
            if func.name == name:
                return func
        raise KeyError(f"no function named {name!r}")


AnyNode = Expr | Stmt | FunctionDef | Program | Parameter


def walk(node: AnyNode) -> Iterator[Node]:
    """Yield ``node`` and every node reachable from it, preorder."""
    yield node
    for child in children(node):
        yield from walk(child)


def children(node: AnyNode) -> Iterator[Node]:
    """Yield the direct child nodes of ``node``."""
    if isinstance(node, Program):
        yield from node.functions
    elif isinstance(node, FunctionDef):
        yield from node.params
        yield node.body
    elif isinstance(node, Block):
        yield from node.body
    elif isinstance(node, ExprStmt):
        yield node.expr
    elif isinstance(node, Decl):
        if node.array_size is not None:
            yield node.array_size
        if node.init is not None:
            yield node.init
    elif isinstance(node, If):
        yield node.cond
        yield node.then
        if node.otherwise is not None:
            yield node.otherwise
    elif isinstance(node, ForLoop):
        if node.init is not None:
            yield node.init
        if node.cond is not None:
            yield node.cond
        if node.step is not None:
            yield node.step
        yield node.body
    elif isinstance(node, WhileLoop):
        yield node.cond
        yield node.body
    elif isinstance(node, DoWhileLoop):
        yield node.body
        yield node.cond
    elif isinstance(node, Return):
        if node.value is not None:
            yield node.value
    elif isinstance(node, Label):
        yield node.stmt
    elif isinstance(node, ArrayRef):
        yield node.base
        yield node.index
    elif isinstance(node, (UnaryOp, PostfixOp)):
        yield node.operand
    elif isinstance(node, BinOp):
        yield node.left
        yield node.right
    elif isinstance(node, TernaryOp):
        yield node.cond
        yield node.then
        yield node.otherwise
    elif isinstance(node, Assign):
        yield node.target
        yield node.value
    elif isinstance(node, Call):
        yield from node.args
    elif isinstance(node, Cast):
        yield node.operand
    # Leaf nodes (IntLiteral, Identifier, Break, Continue, Goto, Parameter)
    # contribute no children.


def collect(node: AnyNode, node_type) -> list:
    """Collect every descendant of ``node`` that is an instance of ``node_type``."""
    return [n for n in walk(node) if isinstance(n, node_type)]


def kernel_dtype(func: FunctionDef):
    """The lane element type a kernel is modelled at (a ``LaneType``).

    One kernel has one element dtype: it is the sized integer spelling
    (``int16_t``/``int64_t``) its declarations use, or the default 32-bit
    type when every integer is plain ``int``.  Plain ``int`` coexists with
    one sized spelling (loop counters stay ``int``) and is then modelled at
    the kernel dtype's width — the subset models a uniform element width,
    not C's int promotion rules.  Mixing two different sized spellings in
    one kernel raises :class:`~repro.errors.CompileError`.
    """
    from repro.errors import CompileError
    from repro.lanetypes import DEFAULT_LANE_TYPE, get_lane_type

    sized: dict[str, SourceLocation] = {}
    for node in walk(func):
        if isinstance(node, Parameter):
            ctype = node.param_type
        elif isinstance(node, Decl):
            ctype = node.var_type
        elif isinstance(node, Cast):
            ctype = node.target_type
        else:
            continue
        if ctype.name in ("int16_t", "int64_t"):
            sized.setdefault(ctype.name, node.location)
    if not sized:
        return DEFAULT_LANE_TYPE
    if len(sized) > 1:
        names = " and ".join(sorted(sized))
        raise CompileError(
            f"kernel {func.name!r} mixes element types {names}; "
            f"one kernel models one lane element type"
        )
    (name,) = sized
    return get_lane_type(name)
