"""Tokenizer for the C subset used by TSVC kernels and SIMD candidates.

The keyword set includes the vector type name of every registered target
ISA (derived from :mod:`repro.targets`), so candidates for a new backend
lex without touching this module.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from collections.abc import Iterator

from repro.errors import LexError, SourceLocation
from repro.targets.isa import PREDICATE_TYPE_NAMES, VECTOR_TYPE_LANES


class TokenKind(enum.Enum):
    """Lexical category of a token."""

    IDENT = "ident"
    NUMBER = "number"
    KEYWORD = "keyword"
    PUNCT = "punct"
    STRING = "string"
    EOF = "eof"


KEYWORDS = frozenset(
    {
        "int",
        "void",
        "char",
        "long",
        "short",
        "unsigned",
        "signed",
        "const",
        "if",
        "else",
        "for",
        "while",
        "do",
        "return",
        "break",
        "continue",
        "goto",
        "struct",
        "sizeof",
        "static",
        "extern",
        "int16_t",
        "int32_t",
        "int64_t",
    }
) | frozenset(VECTOR_TYPE_LANES) | PREDICATE_TYPE_NAMES

# Multi-character punctuators, longest first so maximal munch works.
_PUNCTUATORS = [
    "<<=",
    ">>=",
    "...",
    "==",
    "!=",
    "<=",
    ">=",
    "&&",
    "||",
    "++",
    "--",
    "+=",
    "-=",
    "*=",
    "/=",
    "%=",
    "&=",
    "|=",
    "^=",
    "<<",
    ">>",
    "->",
    "+",
    "-",
    "*",
    "/",
    "%",
    "=",
    "<",
    ">",
    "!",
    "&",
    "|",
    "^",
    "~",
    "?",
    ":",
    ";",
    ",",
    "(",
    ")",
    "{",
    "}",
    "[",
    "]",
    ".",
]


@dataclass(frozen=True)
class Token:
    """A single lexical token with its source location."""

    kind: TokenKind
    text: str
    location: SourceLocation

    def is_punct(self, text: str) -> bool:
        return self.kind is TokenKind.PUNCT and self.text == text

    def is_keyword(self, text: str) -> bool:
        return self.kind is TokenKind.KEYWORD and self.text == text

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Token({self.kind.name}, {self.text!r}, {self.location})"


class _Cursor:
    """Mutable scanning cursor over the source text."""

    def __init__(self, text: str):
        self.text = text
        self.pos = 0
        self.line = 1
        self.column = 1

    def location(self) -> SourceLocation:
        return SourceLocation(self.line, self.column)

    def peek(self, offset: int = 0) -> str:
        index = self.pos + offset
        if index >= len(self.text):
            return ""
        return self.text[index]

    def advance(self, count: int = 1) -> None:
        for _ in range(count):
            if self.pos >= len(self.text):
                return
            char = self.text[self.pos]
            self.pos += 1
            if char == "\n":
                self.line += 1
                self.column = 1
            else:
                self.column += 1

    def at_end(self) -> bool:
        return self.pos >= len(self.text)

    def startswith(self, prefix: str) -> bool:
        return self.text.startswith(prefix, self.pos)


def _skip_trivia(cursor: _Cursor) -> None:
    """Skip whitespace, comments and preprocessor lines."""
    while not cursor.at_end():
        char = cursor.peek()
        if char in " \t\r\n":
            cursor.advance()
        elif cursor.startswith("//"):
            while not cursor.at_end() and cursor.peek() != "\n":
                cursor.advance()
        elif cursor.startswith("/*"):
            cursor.advance(2)
            while not cursor.at_end() and not cursor.startswith("*/"):
                cursor.advance()
            if cursor.at_end():
                raise LexError("unterminated block comment", cursor.location())
            cursor.advance(2)
        elif char == "#" and cursor.column == 1:
            # Preprocessor directives (#include <immintrin.h>) are ignored;
            # intrinsic semantics are supplied by repro.intrinsics.
            while not cursor.at_end() and cursor.peek() != "\n":
                cursor.advance()
        else:
            return


def _lex_number(cursor: _Cursor) -> Token:
    location = cursor.location()
    start = cursor.pos
    if cursor.peek() == "0" and cursor.peek(1) and cursor.peek(1) in "xX":
        cursor.advance(2)
        while cursor.peek() and cursor.peek() in "0123456789abcdefABCDEF":
            cursor.advance()
    else:
        while cursor.peek().isdigit():
            cursor.advance()
        if cursor.peek() == "." and cursor.peek(1).isdigit():
            cursor.advance()
            while cursor.peek().isdigit():
                cursor.advance()
    # Integer suffixes are accepted and discarded.  (peek() returns "" at
    # end of input, and "" is a substring of any string — guard against it.)
    while cursor.peek() and cursor.peek() in "uUlL":
        cursor.advance()
    text = cursor.text[start : cursor.pos]
    return Token(TokenKind.NUMBER, text, location)


def _lex_ident(cursor: _Cursor) -> Token:
    location = cursor.location()
    start = cursor.pos
    while cursor.peek().isalnum() or cursor.peek() == "_":
        cursor.advance()
    text = cursor.text[start : cursor.pos]
    kind = TokenKind.KEYWORD if text in KEYWORDS else TokenKind.IDENT
    return Token(kind, text, location)


def _lex_string(cursor: _Cursor) -> Token:
    location = cursor.location()
    quote = cursor.peek()
    cursor.advance()
    start = cursor.pos
    while not cursor.at_end() and cursor.peek() != quote:
        if cursor.peek() == "\\":
            cursor.advance()
        cursor.advance()
    if cursor.at_end():
        raise LexError("unterminated string literal", location)
    text = cursor.text[start : cursor.pos]
    cursor.advance()
    return Token(TokenKind.STRING, text, location)


def iter_tokens(source: str) -> Iterator[Token]:
    """Yield tokens for ``source``, ending with a single EOF token."""
    cursor = _Cursor(source)
    while True:
        _skip_trivia(cursor)
        if cursor.at_end():
            yield Token(TokenKind.EOF, "", cursor.location())
            return
        char = cursor.peek()
        if char.isdigit():
            yield _lex_number(cursor)
        elif char.isalpha() or char == "_":
            yield _lex_ident(cursor)
        elif char in "\"'":
            yield _lex_string(cursor)
        else:
            location = cursor.location()
            for punct in _PUNCTUATORS:
                if cursor.startswith(punct):
                    cursor.advance(len(punct))
                    yield Token(TokenKind.PUNCT, punct, location)
                    break
            else:
                raise LexError(f"unexpected character {char!r}", location)


def tokenize(source: str) -> list[Token]:
    """Tokenize ``source`` into a list ending with an EOF token."""
    return list(iter_tokens(source))
